//! # ldp — collecting and analyzing multidimensional data under local
//! differential privacy
//!
//! A Rust implementation of *Wang et al., "Collecting and Analyzing
//! Multidimensional Data with Local Differential Privacy", ICDE 2019*
//! (arXiv:1907.00782): the Piecewise Mechanism (PM), the Hybrid Mechanism
//! (HM), their multidimensional attribute-sampling extension (Algorithm 4),
//! every baseline the paper compares against, and the LDP-SGD case study.
//!
//! This crate is a facade over the workspace:
//!
//! * [`core`] ([`ldp_core`]) — mechanisms and theory,
//! * [`data`] ([`ldp_data`]) — datasets and workload generators,
//! * [`analytics`] ([`ldp_analytics`]) — aggregator-side estimation,
//! * [`query`] ([`ldp_query`]) — HDG-style multi-dimensional range queries,
//! * [`ml`] ([`ldp_ml`]) — empirical risk minimization under LDP.
//!
//! ## Quick start: estimate a mean under ε-LDP
//!
//! ```
//! use ldp::core::{numeric::Hybrid, Epsilon, NumericMechanism, rng::seeded_rng};
//!
//! let eps = Epsilon::new(1.0)?;
//! let hm = Hybrid::new(eps);
//! let mut rng = seeded_rng(42);
//!
//! // 10 000 users each hold a value in [-1, 1] and submit a noisy report.
//! let true_values: Vec<f64> = (0..10_000).map(|i| (i % 100) as f64 / 100.0).collect();
//! let sum: f64 = true_values
//!     .iter()
//!     .map(|&t| hm.perturb(t, &mut rng).unwrap())
//!     .sum();
//! let estimate = sum / true_values.len() as f64;
//! let truth = true_values.iter().sum::<f64>() / true_values.len() as f64;
//! assert!((estimate - truth).abs() < 0.1);
//! # Ok::<(), ldp::core::LdpError>(())
//! ```
//!
//! ## Multidimensional collection (Algorithm 4)
//!
//! ```
//! use ldp::analytics::{Collector, Protocol, numeric_mse};
//! use ldp::core::{Epsilon, NumericKind, OracleKind};
//! use ldp::data::synthetic::{gaussian, numeric_dataset};
//!
//! let dataset = numeric_dataset(20_000, 8, gaussian(0.5), 7)?;
//! let collector = Collector::new(
//!     Protocol::Sampling { numeric: NumericKind::Hybrid, oracle: OracleKind::Oue },
//!     Epsilon::new(2.0)?,
//! );
//! let result = collector.run(&dataset, 1)?;
//! assert!(numeric_mse(&result, &dataset)? < 0.05);
//! # Ok::<(), ldp::core::LdpError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use ldp_analytics as analytics;
pub use ldp_core as core;
pub use ldp_data as data;
pub use ldp_ml as ml;
pub use ldp_query as query;
