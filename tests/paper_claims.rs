//! Integration tests pinning the paper's quantitative claims, end to end
//! through the facade crate.

use ldp::core::math::{epsilon_sharp, epsilon_star};
use ldp::core::rng::seeded_rng;
use ldp::core::theory::{row_consistent, table1_row, Regime};
use ldp::core::{variance, Epsilon, NumericKind};

/// Table I, reproduced row by row over the exact regime boundaries.
#[test]
fn table_1_regimes_exactly() {
    // d > 1, any ε: HM < PM < Duchi.
    for d in [2usize, 16, 94] {
        for eps in [0.1, 0.61, 1.29, 3.0, 8.0] {
            let row = table1_row(d, eps);
            assert_eq!(row.regime, Regime::MultiDim);
            assert!(row.hm < row.pm && row.pm < row.duchi, "{row:?}");
        }
    }
    // d = 1 regime walk.
    assert_eq!(
        table1_row(1, epsilon_star() - 1e-6).regime,
        Regime::OneDimSmall
    );
    assert_eq!(
        table1_row(1, epsilon_star() + 1e-6).regime,
        Regime::OneDimMiddle
    );
    assert_eq!(table1_row(1, epsilon_sharp()).regime, Regime::OneDimSharp);
    assert_eq!(
        table1_row(1, epsilon_sharp() + 1e-6).regime,
        Regime::OneDimLarge
    );
}

/// The paper's two constants to their printed precision.
#[test]
fn constants_match_paper() {
    assert!((epsilon_star() - 0.6094).abs() < 5e-4, "{}", epsilon_star());
    assert!(
        (epsilon_sharp() - 1.2898).abs() < 5e-4,
        "{}",
        epsilon_sharp()
    );
}

/// Figure 1's qualitative content: the variance order at representative ε.
#[test]
fn figure_1_orderings() {
    // Small ε: Duchi ≪ Laplace; large ε: Laplace < Duchi.
    assert!(variance::duchi_1d_worst(0.5) < variance::laplace(0.5));
    assert!(variance::laplace(6.0) < variance::duchi_1d_worst(6.0));
    // PM always below Laplace; HM always the minimum of the four.
    for i in 1..=80 {
        let eps = i as f64 * 0.1;
        assert!(variance::pm_1d_worst(eps) < variance::laplace(eps));
        let hm = variance::hm_1d_worst(eps);
        assert!(hm <= variance::pm_1d_worst(eps) + 1e-9);
        assert!(hm <= variance::duchi_1d_worst(eps) + 1e-9);
        assert!(hm <= variance::laplace(eps) + 1e-9);
    }
}

/// Lemma 1: PM's closed-form variance against a large-sample simulation,
/// across the ε grid of the experiments.
#[test]
fn lemma_1_variance_against_simulation() {
    let mut rng = seeded_rng(2024);
    for eps in [0.5, 1.0, 2.0, 4.0] {
        let pm = NumericKind::Piecewise.build(Epsilon::new(eps).unwrap());
        for t in [0.0, -0.7, 1.0] {
            let n = 200_000;
            let mut sum = 0.0;
            let mut sq = 0.0;
            for _ in 0..n {
                let x = pm.perturb(t, &mut rng).unwrap();
                sum += x;
                sq += x * x;
            }
            let mean = sum / n as f64;
            let var = sq / n as f64 - mean * mean;
            let expect = pm.variance(t);
            assert!(
                (var - expect).abs() / expect < 0.05,
                "eps={eps} t={t}: {var} vs {expect}"
            );
            assert!((mean - t).abs() < 0.03, "bias at eps={eps} t={t}: {mean}");
        }
    }
}

/// Equation 8: HM's worst-case formula against simulation at the worst
/// input (t = 0 below ε*, any t above — we use both endpoints).
#[test]
fn equation_8_against_simulation() {
    let mut rng = seeded_rng(2025);
    for eps in [0.4, 1.0, 3.0] {
        let hm = NumericKind::Hybrid.build(Epsilon::new(eps).unwrap());
        let worst = hm.worst_case_variance();
        for t in [0.0, 1.0] {
            let n = 200_000;
            let mut sum = 0.0;
            let mut sq = 0.0;
            for _ in 0..n {
                let x = hm.perturb(t, &mut rng).unwrap();
                sum += x;
                sq += x * x;
            }
            let mean = sum / n as f64;
            let var = sq / n as f64 - mean * mean;
            assert!(
                var <= worst * 1.05,
                "eps={eps} t={t}: simulated {var} exceeds worst-case {worst}"
            );
        }
    }
}

/// Equations 13–15 against simulation through the full multidimensional
/// perturbers (one spot-check per mechanism; the fine-grained grids live in
/// the unit tests).
#[test]
fn multidim_variance_formulas_against_simulation() {
    use ldp::core::multidim::{DuchiMultidim, SamplingPerturber};
    use ldp::core::{AttrSpec, OracleKind};
    let eps = Epsilon::new(4.0).unwrap();
    let d = 6usize;
    let t = [0.3, -0.5, 0.0, 0.8, -0.9, 0.1];
    let n = 150_000;

    // Duchi MD (Equation 13).
    let md = DuchiMultidim::new(eps, d).unwrap();
    let mut rng = seeded_rng(2026);
    let mut sq = vec![0.0; d];
    let mut sums = vec![0.0; d];
    for _ in 0..n {
        for (j, x) in md.perturb(&t, &mut rng).unwrap().into_iter().enumerate() {
            sums[j] += x;
            sq[j] += x * x;
        }
    }
    for j in 0..d {
        let mean = sums[j] / n as f64;
        let var = sq[j] / n as f64 - mean * mean;
        let expect = variance::duchi_md(eps.value(), d, t[j]);
        assert!(
            (var - expect).abs() / expect < 0.05,
            "Duchi j={j}: {var} vs {expect}"
        );
    }

    // Algorithm 4 + PM (Equation 14).
    let p = SamplingPerturber::new(
        eps,
        vec![AttrSpec::Numeric; d],
        NumericKind::Piecewise,
        OracleKind::Oue,
    )
    .unwrap();
    let mut rng = seeded_rng(2027);
    let mut sq = vec![0.0; d];
    let mut sums = vec![0.0; d];
    for _ in 0..n {
        for (j, x) in p
            .perturb_numeric(&t, &mut rng)
            .unwrap()
            .into_iter()
            .enumerate()
        {
            sums[j] += x;
            sq[j] += x * x;
        }
    }
    for j in 0..d {
        let mean = sums[j] / n as f64;
        let var = sq[j] / n as f64 - mean * mean;
        let expect = variance::pm_md(eps.value(), d, t[j]);
        assert!(
            (var - expect).abs() / expect < 0.05,
            "PM j={j}: {var} vs {expect}"
        );
    }

    // Algorithm 4 + HM (Equation 15, with the derived small-ε branch).
    let p = SamplingPerturber::new(
        eps,
        vec![AttrSpec::Numeric; d],
        NumericKind::Hybrid,
        OracleKind::Oue,
    )
    .unwrap();
    let mut rng = seeded_rng(2028);
    let mut sq = vec![0.0; d];
    let mut sums = vec![0.0; d];
    for _ in 0..n {
        for (j, x) in p
            .perturb_numeric(&t, &mut rng)
            .unwrap()
            .into_iter()
            .enumerate()
        {
            sums[j] += x;
            sq[j] += x * x;
        }
    }
    for j in 0..d {
        let mean = sums[j] / n as f64;
        let var = sq[j] / n as f64 - mean * mean;
        let expect = variance::hm_md(eps.value(), d, t[j]);
        assert!(
            (var - expect).abs() / expect < 0.05,
            "HM j={j}: {var} vs {expect}"
        );
    }
}

/// §III-B: PM's variance falls as |t| falls, Duchi's rises — the asymmetry
/// HM exploits and the reason PM excels on near-zero gradients.
#[test]
fn variance_monotonicity_in_input_magnitude() {
    for eps in [0.5, 1.0, 4.0] {
        let mut prev_pm = -1.0;
        let mut prev_duchi = f64::INFINITY;
        for i in 0..=10 {
            let t = i as f64 / 10.0;
            let pm = variance::pm_1d(eps, t);
            let duchi = variance::duchi_1d(eps, t);
            assert!(pm >= prev_pm, "PM must rise with |t|");
            assert!(duchi <= prev_duchi, "Duchi must fall with |t|");
            prev_pm = pm;
            prev_duchi = duchi;
        }
    }
}

/// All regimes of Table I verified densely (the claim check behind the
/// `table1_regimes` binary).
#[test]
fn dense_regime_sweep_is_clean() {
    for d in [1usize, 3, 16] {
        for i in 1..=200 {
            let eps = i as f64 * 0.04;
            assert!(row_consistent(&table1_row(d, eps)), "d={d} eps={eps}");
        }
    }
}
