//! End-to-end integration tests across all four crates: data generation →
//! perturbation → aggregation → analysis, and the full LDP-SGD loop.

use ldp::analytics::{categorical_mse, numeric_mse, BestEffortNumeric, Collector, Protocol};
use ldp::core::multidim::optimal_k;
use ldp::core::testutil::mse_ci_bounds;
use ldp::core::{variance, Epsilon, NumericKind, OracleKind};
use ldp::data::census::{generate_br, generate_mx};
use ldp::data::synthetic::{gaussian, numeric_dataset, paper_power_law};
use ldp::data::{DesignMatrix, KFold, TargetKind};
use ldp::ml::{
    cross_validate, misclassification_rate, regression_mse, GradientMechanism, LdpSgd, LossKind,
    NonPrivateSgd, SgdConfig,
};

fn eps(v: f64) -> Epsilon {
    Epsilon::new(v).unwrap()
}

/// Figure 4 in miniature: on both census datasets, the proposed protocol
/// beats the best-effort baseline on numeric AND categorical MSE.
#[test]
fn proposed_beats_baseline_on_both_censuses() {
    for (name, ds) in [
        ("BR", generate_br(25_000, 1).unwrap()),
        ("MX", generate_mx(25_000, 1).unwrap()),
    ] {
        let e = eps(1.0);
        let proposed = Collector::new(
            Protocol::Sampling {
                numeric: NumericKind::Hybrid,
                oracle: OracleKind::Oue,
            },
            e,
        );
        let baseline = Collector::new(
            Protocol::BestEffort {
                numeric: BestEffortNumeric::PerAttribute(NumericKind::Laplace),
                oracle: OracleKind::Oue,
            },
            e,
        );
        let runs = 4;
        let (mut pn, mut pc, mut bn, mut bc) = (0.0, 0.0, 0.0, 0.0);
        for r in 0..runs {
            let p = proposed.run(&ds, 10 + r).unwrap();
            let b = baseline.run(&ds, 50 + r).unwrap();
            pn += numeric_mse(&p, &ds).unwrap();
            pc += categorical_mse(&p, &ds).unwrap();
            bn += numeric_mse(&b, &ds).unwrap();
            bc += categorical_mse(&b, &ds).unwrap();
        }
        assert!(pn < bn, "{name} numeric: {pn} vs {bn}");
        assert!(pc < bc, "{name} categorical: {pc} vs {bc}");
    }
}

/// Corollary 2 empirically: on numeric-only data, PM and HM (Algorithm 4)
/// beat Duchi et al.'s multidimensional mechanism at every ε of the sweep.
#[test]
fn pm_hm_beat_duchi_md_empirically() {
    let ds = numeric_dataset(30_000, 16, gaussian(0.0), 5).unwrap();
    for e_val in [0.5, 1.0, 4.0] {
        let runs = 4;
        let mut results = Vec::new();
        for protocol in [
            Protocol::Sampling {
                numeric: NumericKind::Piecewise,
                oracle: OracleKind::Oue,
            },
            Protocol::Sampling {
                numeric: NumericKind::Hybrid,
                oracle: OracleKind::Oue,
            },
            Protocol::BestEffort {
                numeric: BestEffortNumeric::DuchiMultidim,
                oracle: OracleKind::Oue,
            },
        ] {
            let collector = Collector::new(protocol, eps(e_val));
            let mut total = 0.0;
            for r in 0..runs {
                let result = collector.run(&ds, 100 * e_val as u64 + r).unwrap();
                total += numeric_mse(&result, &ds).unwrap();
            }
            results.push(total / runs as f64);
        }
        let (pm, hm, duchi) = (results[0], results[1], results[2]);
        assert!(pm < duchi, "eps={e_val}: PM {pm} vs Duchi {duchi}");
        assert!(hm < duchi, "eps={e_val}: HM {hm} vs Duchi {duchi}");
    }
}

/// MSE decreases with the number of users (Figure 7's trend, Lemma 5).
#[test]
fn error_decreases_with_users() {
    let base = generate_mx(64_000, 3).unwrap();
    let collector = Collector::new(
        Protocol::Sampling {
            numeric: NumericKind::Hybrid,
            oracle: OracleKind::Oue,
        },
        eps(1.0),
    );
    let mut prev = f64::INFINITY;
    for n in [4_000usize, 16_000, 64_000] {
        let ds = base.head(n).unwrap();
        let runs = 4;
        let mut total = 0.0;
        for r in 0..runs {
            let result = collector.run(&ds, 7 + r).unwrap();
            total += numeric_mse(&result, &ds).unwrap();
        }
        let mse = total / runs as f64;
        assert!(mse < prev, "n={n}: MSE {mse} should fall below {prev}");
        prev = mse;
    }
}

/// MSE decreases with the privacy budget (every figure's x-axis trend).
#[test]
fn error_decreases_with_budget() {
    let ds = numeric_dataset(20_000, 8, paper_power_law(), 9).unwrap();
    let mut prev = f64::INFINITY;
    for e_val in [0.25, 1.0, 4.0] {
        let collector = Collector::new(
            Protocol::Sampling {
                numeric: NumericKind::Hybrid,
                oracle: OracleKind::Oue,
            },
            eps(e_val),
        );
        let runs = 4;
        let mut total = 0.0;
        for r in 0..runs {
            let result = collector.run(&ds, 11 + r).unwrap();
            total += numeric_mse(&result, &ds).unwrap();
        }
        let mse = total / runs as f64;
        assert!(mse < prev, "eps={e_val}: {mse} should fall below {prev}");
        prev = mse;
    }
}

/// The full §VI-B loop: encode census → 3-fold CV → LDP logistic training →
/// better-than-chance held-out accuracy, and non-private at least as good.
#[test]
fn ldp_logistic_cross_validation_learns() {
    let ds = generate_br(12_000, 21).unwrap();
    let data = DesignMatrix::encode(&ds, "total_income", TargetKind::BinaryAtMean).unwrap();
    let config = SgdConfig::paper_defaults(LossKind::Logistic);

    let ldp_trainer = LdpSgd::new(
        config,
        eps(4.0),
        GradientMechanism::Sampling(NumericKind::Hybrid),
        200,
    )
    .unwrap();
    let ldp_err = cross_validate(
        &data,
        3,
        1,
        33,
        |rows, seed| ldp_trainer.train(&data, rows, seed),
        |beta, rows| misclassification_rate(beta, &data, rows),
    )
    .unwrap();

    let np_trainer = NonPrivateSgd::new(config, 2, 64).unwrap();
    let np_err = cross_validate(
        &data,
        3,
        1,
        33,
        |rows, seed| np_trainer.train(&data, rows, seed),
        |beta, rows| misclassification_rate(beta, &data, rows),
    )
    .unwrap();

    assert!(ldp_err < 0.48, "LDP CV error {ldp_err}");
    assert!(np_err < 0.35, "non-private CV error {np_err}");
    assert!(
        np_err <= ldp_err + 0.02,
        "non-private {np_err} vs LDP {ldp_err}"
    );
}

/// Linear regression under LDP produces finite, better-than-zero-model MSE.
#[test]
fn ldp_linear_regression_beats_zero_model() {
    let ds = generate_mx(12_000, 22).unwrap();
    let data = DesignMatrix::encode(&ds, "total_income", TargetKind::Regression).unwrap();
    let kfold = KFold::new(data.n(), 3, 5).unwrap();
    let split = kfold.split(0);
    let mut config = SgdConfig::paper_defaults(LossKind::LinearRegression);
    config.learning_rate = 0.1; // see erm.rs: unit rate overshoots at small n
    let trainer = LdpSgd::new(
        config,
        eps(4.0),
        GradientMechanism::Sampling(NumericKind::Piecewise),
        200,
    )
    .unwrap()
    .with_tail_averaging(true);
    let beta = trainer.train(&data, &split.train, 12).unwrap();
    let model_mse = regression_mse(&beta, &data, &split.test).unwrap();
    let zero_mse = regression_mse(&vec![0.0; data.dim()], &data, &split.test).unwrap();
    assert!(model_mse.is_finite());
    assert!(
        model_mse < zero_mse,
        "model {model_mse} vs zero-model {zero_mse}"
    );
}

/// Multi-threaded and single-threaded collection agree in expectation:
/// both land inside the analytic confidence band for the protocol's MSE.
#[test]
fn sharding_does_not_distort_estimates() {
    let (n, d) = (40_000usize, 4usize);
    let e_val = 2.0;
    let ds = numeric_dataset(n, d, gaussian(0.5), 13).unwrap();
    let single = Collector::new(
        Protocol::Sampling {
            numeric: NumericKind::Piecewise,
            oracle: OracleKind::Oue,
        },
        eps(e_val),
    )
    .with_shards(1);
    let multi = Collector::new(
        Protocol::Sampling {
            numeric: NumericKind::Piecewise,
            oracle: OracleKind::Oue,
        },
        eps(e_val),
    )
    .with_shards(8);
    // 16 runs × 4 attributes = 64 squared-error cells per collector, enough
    // for the chi-square band's lower edge to be strictly positive (at 16
    // cells the spread exceeds 1 and the lower bound degenerates to 0).
    let runs = 16;
    let cells = d * runs as usize;
    let (mut s, mut m) = (0.0, 0.0);
    for r in 0..runs {
        s += numeric_mse(&single.run(&ds, 40 + r).unwrap(), &ds).unwrap();
        m += numeric_mse(&multi.run(&ds, 80 + r).unwrap(), &ds).unwrap();
    }
    let (s, m) = (s / runs as f64, m / runs as f64);
    // Same estimator, same distribution of noise — only the RNG streams
    // differ. Equation 14 brackets the per-user report variance between its
    // t = 0 and |t| = 1 values, so both averaged MSEs must land inside the
    // chi-square confidence band around [var_min, var_max] / n (replaces
    // the old hand-tuned 5× ratio check; see ldp_core::testutil). The
    // strictly positive lower edge is what catches an under-noised sharded
    // path (e.g. a thread skipping perturbation).
    let k = optimal_k(eps(e_val), d);
    let mse_min = variance::pm_md_with_k(e_val, d, k, 0.0) / n as f64;
    let mse_max = variance::pm_md_with_k(e_val, d, k, 1.0) / n as f64;
    let (lo, hi) = mse_ci_bounds(mse_min, mse_max, cells);
    assert!(lo > 0.0, "lower CI edge degenerated; raise `runs`");
    assert!(
        (lo..=hi).contains(&s),
        "single-thread MSE {s} outside [{lo}, {hi}]"
    );
    assert!(
        (lo..=hi).contains(&m),
        "multi-thread MSE {m} outside [{lo}, {hi}]"
    );
    // And the two must agree with each other directly: s − m is a
    // difference of two independent χ²(cells)/cells-scaled MSEs, so its
    // standard deviation is at most √(2·2/cells)·mse_max.
    let agree = ldp::core::testutil::Z_CI * (4.0 / cells as f64).sqrt() * mse_max;
    assert!(
        (s - m).abs() <= agree,
        "single {s} vs multi {m}: differ by more than {agree}"
    );
}
