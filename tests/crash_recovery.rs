//! Kill–restart parity: a collection run killed repeatedly at seeded
//! crash points must recover, finish, and end bit-identical to a run
//! that never crashed.
//!
//! The harness is fully deterministic: report bytes come from per-user
//! seeded rngs and every kill from an explicit [`CrashSchedule`] injected
//! into the durability layer, so a failing `(seed, crash point)` pair
//! replays exactly. Each seed dies at least once at **every** crash point
//! — after a WAL append, after its fsync, after staging a checkpoint,
//! after committing it, and after rotating the log — which walks recovery
//! through every distinct on-disk state the lifecycle can be killed in.
//!
//! What must hold despite the kills:
//!
//! * the final recovered snapshot's `admitted`, `n`, and every mean and
//!   frequency are bit-identical (`f64::to_bits`) to the clean run's;
//! * conservation: after every restart, the admits the recovery report
//!   accounts for (`checkpointed + wal_replayed`) equal the ledger's own
//!   total — no report is lost, none is counted twice;
//! * at-most-once: retrying the submit that was in flight when the
//!   process died lands as a counted `DuplicateReport`, never a second
//!   budget spend.

use std::path::{Path, PathBuf};

use ldp::analytics::durable::{CrashPoint, CrashSchedule, DurableConfig, DurableService};
use ldp::analytics::pipeline::Protocol;
use ldp::analytics::service::{encode_report, EpochSnapshot, ReportService, WireMessage};
use ldp::analytics::{ClientEncoder, ServiceConfig};
use ldp::core::multidim::{AttrSpec, AttrValue};
use ldp::core::rng::seeded_rng;
use ldp::core::{Epsilon, LdpError, NumericKind, OracleKind};
use rand::Rng;

const SEEDS: [u64; 3] = [7, 21, 1337];
const USERS: u64 = 60;
const CHECKPOINT_EVERY: u64 = 7;

fn specs() -> Vec<AttrSpec> {
    vec![
        AttrSpec::Numeric,
        AttrSpec::Categorical { k: 5 },
        AttrSpec::Numeric,
    ]
}

fn protocol() -> Protocol {
    Protocol::Sampling {
        numeric: NumericKind::Hybrid,
        oracle: OracleKind::Oue,
    }
}

fn epsilon() -> Epsilon {
    Epsilon::new(1.2).unwrap()
}

fn hello() -> WireMessage {
    WireMessage::Hello {
        protocol: protocol(),
        epsilon: epsilon(),
        specs: specs(),
        epoch: 0,
    }
}

fn config(seed: u64) -> DurableConfig {
    DurableConfig {
        run_seed: seed,
        ..DurableConfig::default()
    }
}

/// One deterministic wire-ready submit per user. Both the clean and the
/// crash-ridden run feed exactly these messages.
fn encode_all(seed: u64) -> Vec<WireMessage> {
    let encoder = ClientEncoder::new(protocol(), epsilon(), specs()).unwrap();
    (0..USERS)
        .map(|user| {
            let mut rng = seeded_rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ user);
            let record = vec![
                AttrValue::Numeric(rng.random::<f64>() * 2.0 - 1.0),
                AttrValue::Categorical(rng.random::<u64>() as u32 % 5),
                AttrValue::Numeric(rng.random::<f64>() * 2.0 - 1.0),
            ];
            let report = encoder.encode(&record, &mut rng).unwrap();
            WireMessage::Submit {
                user,
                epoch: 0,
                block: user / 16,
                report: encode_report(&report, &specs()),
            }
        })
        .collect()
}

/// The reference: every report fed straight into one in-memory service.
fn clean_snapshot(submits: &[WireMessage]) -> EpochSnapshot {
    let mut service = ReportService::new(ServiceConfig::default());
    service.handle(&hello()).unwrap();
    for msg in submits {
        service.handle(msg).unwrap();
    }
    service.snapshot_epoch(0).unwrap()
}

/// Every crash point, each killed at a fixed occurrence — deep enough
/// into the run that real records are at stake, early enough that every
/// schedule is guaranteed to trip.
fn kill_schedule() -> Vec<CrashSchedule> {
    vec![
        CrashSchedule::new(CrashPoint::AfterAppend, 3),
        CrashSchedule::new(CrashPoint::AfterFsync, 2),
        CrashSchedule::new(CrashPoint::AfterCheckpointStage, 1),
        CrashSchedule::new(CrashPoint::AfterCheckpointCommit, 1),
        CrashSchedule::new(CrashPoint::AfterRotate, 1),
    ]
}

fn scratch(seed: u64) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("ldp-crash-recovery-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs the collection to completion on `dir`, dying once per schedule
/// entry; returns how many kills actually happened.
fn run_with_kills(dir: &Path, seed: u64, submits: &[WireMessage]) -> u64 {
    let mut schedules = kill_schedule().into_iter();
    let mut kills = 0u64;
    let mut next = 0usize;
    loop {
        let (mut service, report) =
            DurableService::open_with_crash(dir, config(seed), schedules.next()).unwrap();
        // Conservation after every restart: the recovery report and the
        // recovered ledger must account for exactly the same admits.
        let ledger_admits: u64 = {
            let ledger = service.service().ledger();
            let epochs: Vec<u64> = ledger.epochs().collect();
            epochs.iter().map(|&e| ledger.admitted(e)).sum()
        };
        assert_eq!(
            report.recovered_admits(),
            ledger_admits,
            "seed {seed}: recovery accounting disagrees with the ledger"
        );
        assert_eq!(report.wal_rejected, 0, "seed {seed}: corrupt replay record");
        if service.service().session_params().is_none() {
            service.handle(&hello()).unwrap();
        }
        let mut died = false;
        while next < submits.len() {
            match service.handle(&submits[next]) {
                Ok(_) => next += 1,
                // The previous attempt died *after* the append was
                // durable: the restart replayed it, and this retry must
                // cost nothing — at-most-once by the ledger, not by luck.
                Err(LdpError::DuplicateReport { .. }) => next += 1,
                Err(_) => {
                    assert!(service.crashed(), "seed {seed}: non-crash failure");
                    died = true;
                    break;
                }
            }
            if next as u64 % CHECKPOINT_EVERY == 0 && next > 0 && service.checkpoint().is_err() {
                assert!(service.crashed(), "seed {seed}: non-crash failure");
                died = true;
                break;
            }
        }
        if died {
            kills += 1;
            drop(service); // the "process" is dead: no flush, no shutdown
            continue;
        }
        service.flush().unwrap();
        return kills;
    }
}

#[test]
fn killed_runs_recover_bit_identical_snapshots() {
    for seed in SEEDS {
        let submits = encode_all(seed);
        let clean = clean_snapshot(&submits);
        let dir = scratch(seed);

        let kills = run_with_kills(&dir, seed, &submits);
        assert!(
            kills >= kill_schedule().len() as u64,
            "seed {seed}: only {kills} kills — a crash point never tripped"
        );

        // One final kill–restart: the snapshot under test comes from a
        // *recovered* service, not the one that happened to finish.
        let (recovered, report) = DurableService::open(&dir, config(seed)).unwrap();
        assert_eq!(
            report.recovered_admits(),
            USERS,
            "seed {seed}: conservation failed — admitted != checkpointed + replayed"
        );
        assert_eq!(report.wal_rejected, 0);
        assert_eq!(recovered.service().ledger().total_rejected(), 0);

        let snap = recovered.snapshot_epoch(0).unwrap();
        assert_eq!(snap.admitted, USERS, "seed {seed}");
        let a = clean.result.as_ref().unwrap();
        let b = snap.result.as_ref().unwrap();
        assert_eq!(a.n, b.n, "seed {seed}");
        assert_eq!(a.means.len(), b.means.len());
        for ((i, x), (j, y)) in a.means.iter().zip(b.means.iter()) {
            assert_eq!(i, j);
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "seed {seed}: mean {i} diverged after recovery"
            );
        }
        assert_eq!(a.frequencies.len(), b.frequencies.len());
        for ((i, xs), (j, ys)) in a.frequencies.iter().zip(b.frequencies.iter()) {
            assert_eq!(i, j);
            for (c, (x, y)) in xs.iter().zip(ys).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "seed {seed}: frequency {i}/{c} diverged after recovery"
                );
            }
        }

        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// The duplicate a kill forces (append durable, ack lost, client retries)
/// is counted in the live run but must never reach the log: a recovered
/// service sees each user exactly once.
#[test]
fn retried_submits_never_double_spend_across_restarts() {
    let seed = 99u64;
    let submits = encode_all(seed);
    let dir = scratch(seed);

    // Die right after the first record's fsync, then retry it.
    let (mut service, _) = DurableService::open_with_crash(
        &dir,
        config(seed),
        Some(CrashSchedule::new(CrashPoint::AfterFsync, 1)),
    )
    .unwrap();
    service.handle(&hello()).unwrap();
    assert!(service.handle(&submits[0]).is_err());
    assert!(service.crashed());
    drop(service);

    let (mut service, report) = DurableService::open(&dir, config(seed)).unwrap();
    assert_eq!(report.wal_replayed, 1, "the appended record must survive");
    assert!(matches!(
        service.handle(&submits[0]),
        Err(LdpError::DuplicateReport { .. })
    ));
    assert_eq!(service.wal_records(), 0, "duplicates must never be logged");
    for msg in &submits[1..] {
        service.handle(msg).unwrap();
    }
    service.flush().unwrap();
    drop(service);

    let (recovered, report) = DurableService::open(&dir, config(seed)).unwrap();
    assert_eq!(report.recovered_admits(), USERS);
    assert_eq!(recovered.service().ledger().total_rejected(), 0);
    assert_eq!(recovered.snapshot_epoch(0).unwrap().admitted, USERS);

    let _ = std::fs::remove_dir_all(&dir);
}
