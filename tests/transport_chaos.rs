//! Chaos parity: a multi-client collection run over a fault-ridden
//! transport must produce a merged snapshot *bit-identical* to a clean
//! run's, with every user's privacy budget spent at most once.
//!
//! The harness is fully deterministic: report bytes come from per-user
//! seeded rngs, the fault schedule from per-connection seeded
//! [`ChaosStream`]s, and backoff jitter from seeded [`Backoff`]s — a
//! failing `(SEED, …)` combination replays exactly.
//!
//! What chaos injects: mid-frame disconnects (both directions), short
//! reads/writes, single-bit corruption (caught by the frame checksum →
//! `Resend`), and stalls surfaced as timeouts. What must hold anyway:
//!
//! * every submit eventually lands (`admitted == users`, both runs);
//! * estimates are bit-identical to the clean run (ordinal-keyed merges
//!   make them independent of delivery order and client count);
//! * the ledger accounts for every resend: submits that reached the
//!   absorber = admitted + rejected duplicates, so lost acks never
//!   double-spend budget.

use std::thread;
use std::time::Duration;

use ldp::analytics::pipeline::{CollectionResult, Protocol};
use ldp::analytics::service::{encode_report, ReportService, ServiceConfig, WireMessage};
use ldp::analytics::transport::{
    duplex, ChaosConfig, ChaosStream, ClientConfig, ConnHandle, Connect, PipeStream, ReportClient,
    ReportServer, ServerConfig, SubmitOutcome,
};
use ldp::analytics::ClientEncoder;
use ldp::core::multidim::{AttrSpec, AttrValue};
use ldp::core::rng::seeded_rng;
use ldp::core::{Epsilon, NumericKind, OracleKind};
use rand::Rng;

const SEEDS: [u64; 3] = [7, 21, 1337];
const USERS: u64 = 300;
const CLIENTS: u64 = 3;
const FAULT_RATE: f64 = 0.04;

fn specs() -> Vec<AttrSpec> {
    vec![
        AttrSpec::Numeric,
        AttrSpec::Categorical { k: 5 },
        AttrSpec::Numeric,
    ]
}

fn protocol() -> Protocol {
    Protocol::Sampling {
        numeric: NumericKind::Hybrid,
        oracle: OracleKind::Oue,
    }
}

fn epsilon() -> Epsilon {
    Epsilon::new(1.2).unwrap()
}

fn hello() -> WireMessage {
    WireMessage::Hello {
        protocol: protocol(),
        epsilon: epsilon(),
        specs: specs(),
        epoch: 0,
    }
}

/// One deterministic wire-ready report per user: `(user, block, bytes)`.
/// Both the clean and the chaos run submit exactly these bytes.
fn encode_all(seed: u64) -> Vec<(u64, u64, Vec<u8>)> {
    let encoder = ClientEncoder::new(protocol(), epsilon(), specs()).unwrap();
    (0..USERS)
        .map(|user| {
            let mut rng = seeded_rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ user);
            let record = vec![
                AttrValue::Numeric(rng.random::<f64>() * 2.0 - 1.0),
                AttrValue::Categorical(rng.random::<u64>() as u32 % 5),
                AttrValue::Numeric(rng.random::<f64>() * 2.0 - 1.0),
            ];
            let report = encoder.encode(&record, &mut rng).unwrap();
            (user, user / 64, encode_report(&report, &specs()))
        })
        .collect()
}

/// The reference: every report fed straight into one service, no wire.
fn clean_snapshot(reports: &[(u64, u64, Vec<u8>)]) -> CollectionResult {
    let mut service = ReportService::new(ServiceConfig::default());
    service.handle(&hello()).unwrap();
    for (user, block, bytes) in reports {
        service
            .handle(&WireMessage::Submit {
                user: *user,
                epoch: 0,
                block: *block,
                report: bytes.clone(),
            })
            .unwrap();
    }
    let snap = service.snapshot_epoch(0).unwrap();
    assert_eq!(snap.admitted, USERS);
    snap.result.expect("clean run has estimates")
}

/// Each connect spawns a fresh in-process server connection and wraps the
/// client half in a seeded [`ChaosStream`] — a new fault schedule per
/// reconnect, all deterministic.
struct ChaosConnector {
    handle: ConnHandle,
    seed: u64,
    attempts: u64,
}

impl Connect for ChaosConnector {
    type Stream = ChaosStream<PipeStream>;

    fn connect(&mut self) -> ldp::core::Result<Self::Stream> {
        let (client_half, mut server_half) = duplex();
        // A flipped bit in a frame's length header can promise bytes that
        // never arrive; like a real socket's io_timeout, the server-side
        // read timeout turns that into a typed fault instead of a hang.
        server_half.set_read_timeout(Some(Duration::from_millis(200)));
        let conn = self.handle.clone();
        // The connection thread exits on EOF/fault when the chaos stream
        // dies or the client drops it; `ReportServer::finish` then sees
        // its handle released.
        thread::spawn(move || conn.serve_stream(&mut server_half));
        self.attempts += 1;
        let stream_seed = self
            .seed
            .wrapping_add(self.attempts.wrapping_mul(0xA076_1D64_78BD_642F));
        Ok(ChaosStream::new(
            client_half,
            ChaosConfig::balanced(FAULT_RATE),
            stream_seed,
        ))
    }
}

struct ChaosRun {
    result: CollectionResult,
    admitted: u64,
    rejected_duplicates: u64,
    submits_reaching_absorber: u64,
    client_faults: u64,
    client_duplicate_acks: u64,
    client_connects: u64,
}

/// The system under test: CLIENTS threads share one server, each driving
/// its user partition through its own chaos-ridden reconnecting client.
fn chaos_run(seed: u64, reports: &[(u64, u64, Vec<u8>)]) -> ChaosRun {
    let server = ReportServer::start(ServerConfig {
        service: ServiceConfig::default(),
        queue_capacity: 256,
    });
    let stats = server.stats();

    let workers: Vec<_> = (0..CLIENTS)
        .map(|client_idx| {
            let partition: Vec<_> = reports
                .iter()
                // Partition by *block*, not by user: within one block the
                // partial sums accumulate in absorb order, so a block must
                // be owned (and submitted in user order) by one client for
                // the snapshot to be bit-identical to the clean run's.
                .filter(|(_, block, _)| block % CLIENTS == client_idx)
                .cloned()
                .collect();
            let connector = ChaosConnector {
                handle: server.handle(),
                seed: seed ^ (client_idx + 1).wrapping_mul(0x2545_F491_4F6C_DD1D),
                attempts: 0,
            };
            thread::spawn(move || {
                let config = ClientConfig {
                    // Chaos at FAULT_RATE can fault several times in a
                    // row; the generous attempt budget keeps the run
                    // lossless while the zero-length backoff keeps it
                    // fast. Delays are still *drawn* (and asserted
                    // deterministic by the backoff proptests) — they are
                    // just zero-length here.
                    max_attempts: 512,
                    max_resends: 8,
                    backoff_base: Duration::ZERO,
                    backoff_cap: Duration::ZERO,
                    backoff_seed: seed ^ client_idx,
                };
                let mut client = ReportClient::new(connector, hello(), config).unwrap();
                for (user, block, bytes) in partition {
                    let outcome = client
                        .submit(user, 0, block, bytes)
                        .expect("submit must survive chaos");
                    // Either verdict is success; `AlreadyAdmitted` means a
                    // resend found the budget already spent.
                    assert!(matches!(
                        outcome,
                        SubmitOutcome::Admitted | SubmitOutcome::AlreadyAdmitted
                    ));
                }
                let receipt = client.flush_epoch(0).expect("flush must survive chaos");
                client.close();
                (client.stats(), receipt)
            })
        })
        .collect();

    let mut client_faults = 0;
    let mut client_duplicate_acks = 0;
    let mut client_connects = 0;
    for worker in workers {
        let (stats, receipt) = worker.join().expect("client thread panicked");
        client_faults += stats.faults + stats.resends + stats.overload_pauses;
        client_duplicate_acks += stats.duplicate_acks;
        client_connects += stats.connects;
        assert_eq!(receipt.epoch, 0);
    }

    let service = server.finish();
    let snap = service.snapshot_epoch(0).unwrap();
    ChaosRun {
        result: snap.result.expect("chaos run has estimates"),
        admitted: snap.admitted,
        rejected_duplicates: snap.rejected_duplicates,
        submits_reaching_absorber: stats.submits(),
        client_faults,
        client_duplicate_acks,
        client_connects,
    }
}

fn assert_bit_identical(a: &CollectionResult, b: &CollectionResult, label: &str) {
    assert_eq!(a.n, b.n, "{label}: population");
    assert_eq!(a.means.len(), b.means.len(), "{label}: mean arity");
    for ((ja, x), (jb, y)) in a.means.iter().zip(&b.means) {
        assert_eq!(ja, jb, "{label}: mean attribute order");
        assert_eq!(x.to_bits(), y.to_bits(), "{label}: mean[{ja}] {x} vs {y}");
    }
    assert_eq!(a.frequencies.len(), b.frequencies.len(), "{label}");
    for ((ja, fa), (jb, fb)) in a.frequencies.iter().zip(&b.frequencies) {
        assert_eq!(ja, jb, "{label}: frequency attribute order");
        for (v, (x, y)) in fa.iter().zip(fb).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{label}: freq[{ja}][{v}] {x} vs {y}"
            );
        }
    }
}

#[test]
fn chaos_run_is_bit_identical_to_clean_run_across_seeds() {
    for seed in SEEDS {
        let reports = encode_all(seed);
        let clean = clean_snapshot(&reports);
        let chaos = chaos_run(seed, &reports);

        // Parity: the fault-ridden run lost nothing and moved no bit.
        assert_eq!(chaos.admitted, USERS, "seed {seed}: lost reports");
        assert_bit_identical(&chaos.result, &clean, &format!("seed {seed}"));

        // At-most-once budget spend: every submit that reached the
        // absorber is accounted as exactly one admission or one counted
        // duplicate — resends never double-spend.
        assert_eq!(
            chaos.submits_reaching_absorber,
            chaos.admitted + chaos.rejected_duplicates,
            "seed {seed}: absorber accounting leak"
        );
        // A duplicate verdict can itself be lost to chaos (triggering yet
        // another counted resend), so the ledger may see more duplicates
        // than the clients got acks for — never fewer.
        assert!(
            chaos.rejected_duplicates >= chaos.client_duplicate_acks,
            "seed {seed}: ledger missed a duplicate ack"
        );

        // The run must actually have been chaotic: faults were injected
        // and survived, and at least one client had to reconnect.
        assert!(
            chaos.client_faults > 0,
            "seed {seed}: chaos injected no faults — the test proved nothing"
        );
        assert!(
            chaos.client_connects > CLIENTS,
            "seed {seed}: no reconnects happened"
        );
    }
}

/// Reconnect storms against a tiny queue: shedding (`Overloaded` acks)
/// may slow clients down but never loses or double-counts a report.
#[test]
fn tiny_queue_backpressure_is_lossless() {
    let seed = 99u64;
    let reports = encode_all(seed);
    let clean = clean_snapshot(&reports);

    let server = ReportServer::start(ServerConfig {
        service: ServiceConfig::default(),
        queue_capacity: 1,
    });
    let workers: Vec<_> = (0..CLIENTS)
        .map(|client_idx| {
            let partition: Vec<_> = reports
                .iter()
                // Partition by *block*, not by user: within one block the
                // partial sums accumulate in absorb order, so a block must
                // be owned (and submitted in user order) by one client for
                // the snapshot to be bit-identical to the clean run's.
                .filter(|(_, block, _)| block % CLIENTS == client_idx)
                .cloned()
                .collect();
            let connector = ChaosConnector {
                handle: server.handle(),
                seed: seed ^ client_idx,
                attempts: 0,
            };
            thread::spawn(move || {
                let config = ClientConfig {
                    max_attempts: 512,
                    max_resends: 8,
                    // Real (if tiny) backoff: against a capacity-1 queue,
                    // zero-delay retries could livelock three hammering
                    // clients; the jittered pause lets the absorber drain.
                    backoff_base: Duration::from_micros(50),
                    backoff_cap: Duration::from_millis(2),
                    backoff_seed: seed ^ client_idx,
                };
                let mut client = ReportClient::new(connector, hello(), config).unwrap();
                for (user, block, bytes) in partition {
                    client.submit(user, 0, block, bytes).unwrap();
                }
                client.close();
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("client thread panicked");
    }
    let service = server.finish();
    let snap = service.snapshot_epoch(0).unwrap();
    assert_eq!(snap.admitted, USERS);
    assert_bit_identical(&snap.result.expect("estimates"), &clean, "capacity-1 queue");
}
