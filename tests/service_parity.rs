//! Wire-service parity: three `ReportService` shards fed interleaved,
//! out-of-order client streams tree-merge to a snapshot bit-identical to
//! the single-process `Collector::run` on the same seed.
//!
//! This is the PR 4 merge contract pushed across a byte boundary: every
//! report is framed, serialized, checksummed, parsed back, ledger-checked
//! and only then absorbed — and none of that plumbing may move a single
//! bit of the estimates.

use ldp::analytics::service::{encode_report, ReportService, ServiceConfig, WireMessage};
use ldp::analytics::{
    block_partition, block_rng, BestEffortNumeric, ClientEncoder, CollectionResult, Collector,
    Protocol, DEFAULT_SHARDS,
};
use ldp::core::rng::RngBlock;
use ldp::core::{AttrValue, Epsilon, NumericKind, OracleKind};
use ldp::data::census::generate_br;
use ldp::data::Dataset;

const SHARDS: usize = 3;

fn assert_bit_identical(a: &CollectionResult, b: &CollectionResult, label: &str) {
    assert_eq!(a.n, b.n, "{label}: population");
    let (ma, mb) = (a.mean_vector(), b.mean_vector());
    assert_eq!(ma.len(), mb.len(), "{label}: mean arity");
    for (j, (x, y)) in ma.iter().zip(&mb).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{label}: mean[{j}] {x} vs {y}");
    }
    assert_eq!(a.frequencies.len(), b.frequencies.len(), "{label}");
    for ((ja, fa), (jb, fb)) in a.frequencies.iter().zip(&b.frequencies) {
        assert_eq!(ja, jb, "{label}: frequency attribute order");
        for (v, (x, y)) in fa.iter().zip(fb).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{label}: freq[{ja}][{v}] {x} vs {y}"
            );
        }
    }
}

/// Builds the per-shard wire streams for one collection: block `b`'s
/// reports go to shard `b % SHARDS` as framed `Submit`s carrying `b` as
/// their routing ordinal — and each shard receives its blocks in
/// *reverse* order, so nothing about arrival order is canonical.
fn client_streams(protocol: Protocol, eps: Epsilon, dataset: &Dataset, seed: u64) -> Vec<Vec<u8>> {
    let encoder = ClientEncoder::new(protocol, eps, dataset.schema().attr_specs()).unwrap();
    let specs = dataset.schema().attr_specs();
    let hello = WireMessage::Hello {
        protocol,
        epsilon: eps,
        specs: specs.clone(),
        epoch: 0,
    };
    let mut streams: Vec<Vec<u8>> = vec![Vec::new(); SHARDS];
    for s in &mut streams {
        hello.write_to(s).unwrap();
    }

    let blocks: Vec<_> = block_partition(dataset.n(), DEFAULT_SHARDS)
        .into_iter()
        .enumerate()
        .collect();
    for (b, range) in blocks.into_iter().rev() {
        let stream = &mut streams[b % SHARDS];
        let mut rng: RngBlock<rand::rngs::StdRng> = RngBlock::new(block_rng(seed, b));
        let mut report = encoder.empty_report();
        let mut scratch = encoder.scratch();
        let mut tuple: Vec<AttrValue> = Vec::new();
        for i in range {
            dataset.canonical_tuple_into(i, &mut tuple);
            encoder
                .encode_into(&tuple, &mut rng, &mut report, &mut scratch)
                .unwrap();
            WireMessage::Submit {
                user: i as u64,
                epoch: 0,
                block: b as u64,
                report: encode_report(&report, &specs),
            }
            .write_to(stream)
            .unwrap();
        }
    }
    streams
}

/// Serves each stream on its own shard, then tree-merges `(s0 + (s1 + s2))`.
fn serve_and_merge(streams: Vec<Vec<u8>>) -> ReportService {
    let mut shards: Vec<ReportService> = streams
        .iter()
        .map(|stream| {
            let mut shard = ReportService::new(ServiceConfig::default());
            let summary = shard.serve(&mut stream.as_slice()).unwrap();
            assert_eq!(summary.rejected_malformed, 0, "clean streams only");
            assert_eq!(summary.rejected_duplicates, 0, "clean streams only");
            shard
        })
        .collect();
    let s2 = shards.pop().unwrap();
    let mut s1 = shards.pop().unwrap();
    let mut s0 = shards.pop().unwrap();
    s1.merge(s2).unwrap();
    s0.merge(s1).unwrap();
    s0
}

fn parity_case(protocol: Protocol, label: &str) {
    let n = 6_000;
    let seed = 20_190_408;
    let dataset = generate_br(n, 5).unwrap();
    let eps = Epsilon::new(1.0).unwrap();

    let merged = serve_and_merge(client_streams(protocol, eps, &dataset, seed));
    let snapshot = merged.snapshot_epoch(0).unwrap();
    assert_eq!(snapshot.admitted, n as u64, "{label}: every user admitted");
    assert_eq!(snapshot.rejected_duplicates, 0, "{label}");

    let reference = Collector::new(protocol, eps).run(&dataset, seed).unwrap();
    assert_bit_identical(&reference, &snapshot.result.unwrap(), label);
}

#[test]
fn sampling_oue_service_matches_collector() {
    parity_case(
        Protocol::Sampling {
            numeric: NumericKind::Hybrid,
            oracle: OracleKind::Oue,
        },
        "HM+OUE",
    );
}

#[test]
fn sampling_grr_service_matches_collector() {
    parity_case(
        Protocol::Sampling {
            numeric: NumericKind::Piecewise,
            oracle: OracleKind::Grr,
        },
        "PM+GRR",
    );
}

#[test]
fn composition_service_matches_collector() {
    parity_case(
        Protocol::BestEffort {
            numeric: BestEffortNumeric::PerAttribute(NumericKind::Laplace),
            oracle: OracleKind::Oue,
        },
        "Laplace+OUE",
    );
}

/// The merge tree's shape is irrelevant: `((s0+s1)+s2)` and `(s0+(s1+s2))`
/// snapshot bit-identically.
#[test]
fn merge_tree_shape_does_not_matter() {
    let protocol = Protocol::Sampling {
        numeric: NumericKind::Hybrid,
        oracle: OracleKind::Oue,
    };
    let dataset = generate_br(3_000, 5).unwrap();
    let eps = Epsilon::new(2.0).unwrap();
    let streams = client_streams(protocol, eps, &dataset, 17);

    let left_assoc = {
        let mut shards: Vec<ReportService> = streams
            .iter()
            .map(|stream| {
                let mut shard = ReportService::new(ServiceConfig::default());
                shard.serve(&mut stream.as_slice()).unwrap();
                shard
            })
            .collect();
        let s2 = shards.pop().unwrap();
        let s1 = shards.pop().unwrap();
        let mut s0 = shards.pop().unwrap();
        s0.merge(s1).unwrap();
        s0.merge(s2).unwrap();
        s0.snapshot_epoch(0).unwrap().result.unwrap()
    };
    let right_assoc = serve_and_merge(streams)
        .snapshot_epoch(0)
        .unwrap()
        .result
        .unwrap();
    assert_bit_identical(&left_assoc, &right_assoc, "merge tree shape");
}

/// Duplicates injected into one shard's stream are rejected by the ledger,
/// surfaced in the snapshot, and the estimates still match a collector run
/// over the *deduplicated* population.
#[test]
fn duplicates_across_the_wire_do_not_bias_the_estimates() {
    let protocol = Protocol::Sampling {
        numeric: NumericKind::Hybrid,
        oracle: OracleKind::Oue,
    };
    let dataset = generate_br(3_000, 5).unwrap();
    let eps = Epsilon::new(1.0).unwrap();
    let seed = 31;
    let mut streams = client_streams(protocol, eps, &dataset, seed);

    // Replay shard 0's submit frames (everything after its hello) — every
    // one of them a duplicate user.
    let hello_len = {
        let hello = WireMessage::Hello {
            protocol,
            epsilon: eps,
            specs: dataset.schema().attr_specs(),
            epoch: 0,
        };
        hello.to_frame().unwrap().len()
    };
    let replay = streams[0][hello_len..].to_vec();
    let replayed_bytes = replay.len();
    streams[0].extend_from_slice(&replay);
    assert!(replayed_bytes > 0);

    let merged = serve_and_merge_allowing_duplicates(streams);
    let snapshot = merged.snapshot_epoch(0).unwrap();
    assert_eq!(snapshot.admitted, 3_000);
    assert!(snapshot.rejected_duplicates > 0);

    let reference = Collector::new(protocol, eps).run(&dataset, seed).unwrap();
    assert_bit_identical(
        &reference,
        &snapshot.result.unwrap(),
        "despite replayed submits",
    );
}

fn serve_and_merge_allowing_duplicates(streams: Vec<Vec<u8>>) -> ReportService {
    let mut shards: Vec<ReportService> = streams
        .iter()
        .map(|stream| {
            let mut shard = ReportService::new(ServiceConfig::default());
            shard.serve(&mut stream.as_slice()).unwrap();
            shard
        })
        .collect();
    let s2 = shards.pop().unwrap();
    let mut s1 = shards.pop().unwrap();
    let mut s0 = shards.pop().unwrap();
    s1.merge(s2).unwrap();
    s0.merge(s1).unwrap();
    s0
}
