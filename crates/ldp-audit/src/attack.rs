//! The likelihood-ratio attacker.
//!
//! Given a protocol, budget, and schema, [`Attacker`] mirrors exactly the
//! budget accounting the client performs — the `ε/k` split and `d/k`
//! scaling of Algorithm 4 for [`Protocol::Sampling`], the `ε/d` sequential
//! composition split for [`Protocol::BestEffort`] — and scores any
//! [`Report`] with the exact log likelihood ratio between the two
//! adversarial inputs of [`ldp_core::audit::worst_case_pair`].
//!
//! Soundness does not depend on the attacker being *right* about the
//! client's internals: any deterministic guessing rule yields a valid
//! high-confidence lower bound on the privacy loss (a wrong model only
//! weakens the attack). Being exact is what makes the 1-D oracle cells
//! *tight* — for GRR/OUE/SUE the induced acceptance region achieves the
//! likelihood-ratio bound `e^ε` with equality, so the certified ε
//! approaches the theoretical ε as trials grow.

use ldp_analytics::{BestEffortNumeric, CompositionReport, Protocol, Report};
use ldp_core::audit::worst_case_pair;
use ldp_core::multidim::{optimal_k, AttrReport, AttrSpec, AttrValue};
use ldp_core::{AnyNumeric, AnyOracle, Epsilon, LdpError, Result};

/// A likelihood-ratio distinguishing attacker for one (protocol, ε, schema)
/// cell.
#[derive(Debug, Clone)]
pub struct Attacker {
    specs: Vec<AttrSpec>,
    v1: Vec<AttrValue>,
    v2: Vec<AttrValue>,
    /// The numeric sub-mechanism at the per-attribute budget, if the schema
    /// has numeric attributes.
    numeric: Option<AnyNumeric>,
    /// Per categorical schema slot: the oracle at the per-attribute budget
    /// (`None` for numeric slots).
    oracles: Vec<Option<AnyOracle>>,
    /// Algorithm 4's `d/k` numeric scaling (1.0 for composition).
    scale: f64,
    /// The per-attribute budget actually spent by each sub-mechanism.
    per_attr: Epsilon,
}

impl Attacker {
    /// Builds the attacker for a cell, mirroring the client's own
    /// budget-split derivation from `(protocol, epsilon, specs)`.
    ///
    /// # Errors
    /// * Whatever the underlying mechanism constructors reject.
    /// * [`LdpError::InvalidParameter`] for
    ///   [`BestEffortNumeric::DuchiMultidim`], whose joint report has no
    ///   per-attribute likelihood factorization implemented here.
    pub fn new(protocol: Protocol, epsilon: Epsilon, specs: &[AttrSpec]) -> Result<Self> {
        let d = specs.len();
        let has_numeric = specs.iter().any(|s| matches!(s, AttrSpec::Numeric));
        let (numeric_kind, oracle_kind, per_attr, scale) = match protocol {
            Protocol::Sampling { numeric, oracle } => {
                let k = optimal_k(epsilon, d);
                (
                    Some(numeric),
                    oracle,
                    epsilon.split(k)?,
                    d as f64 / k as f64,
                )
            }
            Protocol::BestEffort {
                numeric: BestEffortNumeric::PerAttribute(kind),
                oracle,
            } => (Some(kind), oracle, epsilon.split(d)?, 1.0),
            Protocol::BestEffort {
                numeric: BestEffortNumeric::DuchiMultidim,
                oracle,
            } => {
                if has_numeric {
                    return Err(LdpError::InvalidParameter {
                        name: "protocol",
                        message: "DuchiMultidim joint reports are not auditable per-attribute"
                            .into(),
                    });
                }
                (None, oracle, epsilon.split(d)?, 1.0)
            }
        };
        let numeric = match numeric_kind {
            Some(kind) if has_numeric => Some(AnyNumeric::build(kind, per_attr)),
            _ => None,
        };
        let oracles = specs
            .iter()
            .map(|s| match s {
                AttrSpec::Numeric => Ok(None),
                AttrSpec::Categorical { k } => {
                    AnyOracle::build(oracle_kind, per_attr, *k).map(Some)
                }
            })
            .collect::<Result<Vec<_>>>()?;
        let (v1, v2) = worst_case_pair(specs);
        Ok(Attacker {
            specs: specs.to_vec(),
            v1,
            v2,
            numeric,
            oracles,
            scale,
            per_attr,
        })
    }

    /// The adversarial input pair `(v1, v2)` the attacker distinguishes.
    pub fn pair(&self) -> (&[AttrValue], &[AttrValue]) {
        (&self.v1, &self.v2)
    }

    /// The per-attribute budget each sub-mechanism spends (`ε/k` under
    /// sampling, `ε/d` under composition).
    pub fn per_attribute_epsilon(&self) -> Epsilon {
        self.per_attr
    }

    /// Log likelihood ratio `ln (Pr[report | v1] / Pr[report | v2])`.
    ///
    /// Attribute draws are independent given the sampled set, and the
    /// sampled-index distribution itself is input-independent, so the ratio
    /// factorizes over report entries; entries for attributes where `v1`
    /// and `v2` agree contribute zero and unsampled attributes contribute
    /// nothing. Numeric sampling entries arrive pre-scaled by `d/k` (line 6
    /// of Algorithm 4); the scaling is a fixed bijection, so it cancels in
    /// the ratio and is inverted here before density evaluation — with the
    /// two-point / mixed supports matched bitwise by recomputing
    /// `scale · (±magnitude)` exactly as the client multiplies.
    ///
    /// # Errors
    /// Shape mismatches between the report and the schema (wrong entry
    /// type, out-of-range attribute index or category).
    pub fn ln_likelihood_ratio(&self, report: &Report) -> Result<f64> {
        match report {
            Report::Sampling(sparse) => {
                let mut lnlr = 0.0;
                for (attr, entry) in &sparse.entries {
                    lnlr += self.entry_lnlr(*attr as usize, entry)?;
                }
                Ok(lnlr)
            }
            Report::Composition(comp) => self.composition_lnlr(comp),
        }
    }

    fn attr_values(&self, attr: usize) -> Result<(&AttrValue, &AttrValue)> {
        match (self.v1.get(attr), self.v2.get(attr)) {
            (Some(a), Some(b)) => Ok((a, b)),
            _ => Err(LdpError::DimensionMismatch {
                expected: self.specs.len(),
                actual: attr + 1,
            }),
        }
    }

    fn entry_lnlr(&self, attr: usize, entry: &AttrReport) -> Result<f64> {
        let (v1, v2) = self.attr_values(attr)?;
        match (entry, v1, v2) {
            (AttrReport::Numeric(y), AttrValue::Numeric(t1), AttrValue::Numeric(t2)) => {
                self.numeric_lnlr(*y, *t1, *t2)
            }
            (
                AttrReport::Categorical(rep),
                AttrValue::Categorical(c1),
                AttrValue::Categorical(c2),
            ) => {
                let oracle = self.oracles[attr]
                    .as_ref()
                    .ok_or(LdpError::InvalidParameter {
                        name: "report",
                        message: format!("categorical entry for numeric attribute {attr}"),
                    })?;
                Ok(oracle.log_likelihood(rep, *c1)? - oracle.log_likelihood(rep, *c2)?)
            }
            _ => Err(LdpError::InvalidParameter {
                name: "report",
                message: format!("entry type for attribute {attr} does not match the schema"),
            }),
        }
    }

    /// Ratio for one numeric draw `y = scale · t*`.
    fn numeric_lnlr(&self, y: f64, t1: f64, t2: f64) -> Result<f64> {
        let mech = self.numeric.as_ref().ok_or(LdpError::InvalidParameter {
            name: "report",
            message: "numeric entry under an all-categorical attacker".into(),
        })?;
        let x = self.unscale(mech, y);
        Ok(mech.log_density(x, t1)? - mech.log_density(x, t2)?)
    }

    /// Maps a (possibly `d/k`-scaled) report value back onto the
    /// mechanism's own output support. Atom-valued outputs (Duchi, the
    /// Duchi side of HM) must survive the round trip *bitwise*, so the atom
    /// is matched in scaled space by recomputing `scale · atom` — IEEE
    /// multiplication is deterministic, so the client's multiply and ours
    /// agree exactly — and only non-atom values take the `y / scale` path
    /// (where the densities are piecewise constant and rounding is
    /// harmless).
    fn unscale(&self, mech: &AnyNumeric, y: f64) -> f64 {
        if self.scale == 1.0 {
            return y;
        }
        let atom = match mech {
            AnyNumeric::Duchi(m) => Some(m.magnitude()),
            AnyNumeric::Hybrid(m) => Some(m.duchi().magnitude()),
            _ => None,
        };
        if let Some(mag) = atom {
            if y == self.scale * mag {
                return mag;
            }
            if y == self.scale * (-mag) {
                return -mag;
            }
        }
        y / self.scale
    }

    fn composition_lnlr(&self, comp: &CompositionReport) -> Result<f64> {
        let mut lnlr = 0.0;
        let mut num_i = 0usize;
        let mut cat_i = 0usize;
        for (attr, spec) in self.specs.iter().enumerate() {
            match spec {
                AttrSpec::Numeric => {
                    let y = *comp.numeric.get(num_i).ok_or(LdpError::DimensionMismatch {
                        expected: self.specs.len(),
                        actual: comp.numeric.len() + comp.categorical.len(),
                    })?;
                    num_i += 1;
                    let (v1, v2) = self.attr_values(attr)?;
                    let (AttrValue::Numeric(t1), AttrValue::Numeric(t2)) = (v1, v2) else {
                        unreachable!("worst_case_pair follows the schema");
                    };
                    lnlr += self.numeric_lnlr(y, *t1, *t2)?;
                }
                AttrSpec::Categorical { .. } => {
                    let rep = comp
                        .categorical
                        .get(cat_i)
                        .ok_or(LdpError::DimensionMismatch {
                            expected: self.specs.len(),
                            actual: comp.numeric.len() + comp.categorical.len(),
                        })?;
                    cat_i += 1;
                    let (v1, v2) = self.attr_values(attr)?;
                    let (AttrValue::Categorical(c1), AttrValue::Categorical(c2)) = (v1, v2) else {
                        unreachable!("worst_case_pair follows the schema");
                    };
                    let oracle = self.oracles[attr]
                        .as_ref()
                        .expect("categorical slot has an oracle");
                    lnlr += oracle.log_likelihood(rep, *c1)? - oracle.log_likelihood(rep, *c2)?;
                }
            }
        }
        Ok(lnlr)
    }

    /// The attacker's deterministic guess for a report: `true` = "input was
    /// `v1`", chosen iff the log likelihood ratio is strictly positive
    /// (ties go to `v2`, making the rule a fixed Neyman-Pearson threshold
    /// test).
    ///
    /// # Errors
    /// As [`Attacker::ln_likelihood_ratio`].
    pub fn guess_is_v1(&self, report: &Report) -> Result<bool> {
        Ok(self.ln_likelihood_ratio(report)? > 0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_analytics::ClientEncoder;
    use ldp_core::rng::seeded_rng;
    use ldp_core::{NumericKind, OracleKind};

    fn sampling_hm_oue() -> Protocol {
        Protocol::Sampling {
            numeric: NumericKind::Hybrid,
            oracle: OracleKind::Oue,
        }
    }

    #[test]
    fn honest_reports_always_score_finite_or_infinite_consistently() {
        // Every honest report must produce a non-NaN score: the two
        // log-likelihoods can individually be -inf only off the support,
        // where honest reports never land.
        let specs = vec![
            AttrSpec::Numeric,
            AttrSpec::Categorical { k: 16 },
            AttrSpec::Numeric,
            AttrSpec::Categorical { k: 16 },
        ];
        let eps = Epsilon::new(4.0).unwrap();
        let attacker = Attacker::new(sampling_hm_oue(), eps, &specs).unwrap();
        let encoder = ClientEncoder::new(sampling_hm_oue(), eps, specs).unwrap();
        let (v1, v2) = (attacker.v1.clone(), attacker.v2.clone());
        let mut rng = seeded_rng(99);
        for i in 0..500 {
            let input = if i % 2 == 0 { &v1 } else { &v2 };
            let report = encoder.encode(input, &mut rng).unwrap();
            let score = attacker.ln_likelihood_ratio(&report).unwrap();
            assert!(!score.is_nan(), "trial {i}");
        }
    }

    #[test]
    fn sampling_split_matches_client_derivation() {
        // ε = 6, d = 8 ⇒ Algorithm 4 samples k = 2 attributes at ε/2 each.
        let specs: Vec<AttrSpec> = (0..8).map(|_| AttrSpec::Numeric).collect();
        let eps = Epsilon::new(6.0).unwrap();
        let attacker = Attacker::new(sampling_hm_oue(), eps, &specs).unwrap();
        assert_eq!(attacker.per_attribute_epsilon().value(), 3.0);
        assert_eq!(attacker.scale, 4.0);
    }

    #[test]
    fn composition_split_is_eps_over_d() {
        let specs = vec![AttrSpec::Numeric, AttrSpec::Categorical { k: 8 }];
        let eps = Epsilon::new(1.0).unwrap();
        let attacker = Attacker::new(
            Protocol::BestEffort {
                numeric: BestEffortNumeric::PerAttribute(NumericKind::Laplace),
                oracle: OracleKind::Grr,
            },
            eps,
            &specs,
        )
        .unwrap();
        assert_eq!(attacker.per_attribute_epsilon().value(), 0.5);
        assert_eq!(attacker.scale, 1.0);
    }

    #[test]
    fn grr_ratio_is_symmetric_and_bounded_by_eps() {
        // 1-D GRR: the ratio for "reported v1" must be exactly +ε/1 of the
        // per-attribute budget, and -ε for "reported v2".
        let specs = vec![AttrSpec::Categorical { k: 16 }];
        let eps = Epsilon::new(1.0).unwrap();
        let attacker = Attacker::new(
            Protocol::Sampling {
                numeric: NumericKind::Hybrid,
                oracle: OracleKind::Grr,
            },
            eps,
            &specs,
        )
        .unwrap();
        use ldp_core::multidim::SparseReport;
        use ldp_core::CategoricalReport;
        let mk = |cat: u32| {
            Report::Sampling(SparseReport {
                d: 1,
                k: 1,
                entries: vec![(0, AttrReport::Categorical(CategoricalReport::Value(cat)))],
            })
        };
        let up = attacker.ln_likelihood_ratio(&mk(0)).unwrap();
        let down = attacker.ln_likelihood_ratio(&mk(15)).unwrap();
        let mid = attacker.ln_likelihood_ratio(&mk(7)).unwrap();
        assert!((up - 1.0).abs() < 1e-12, "{up}");
        assert!((down + 1.0).abs() < 1e-12, "{down}");
        assert_eq!(mid, 0.0);
        assert!(attacker.guess_is_v1(&mk(0)).unwrap());
        assert!(!attacker.guess_is_v1(&mk(7)).unwrap(), "ties go to v2");
        assert!(!attacker.guess_is_v1(&mk(15)).unwrap());
    }

    #[test]
    fn duchi_multidim_is_rejected_for_numeric_schemas() {
        let specs = vec![AttrSpec::Numeric];
        let eps = Epsilon::new(1.0).unwrap();
        let err = Attacker::new(
            Protocol::BestEffort {
                numeric: BestEffortNumeric::DuchiMultidim,
                oracle: OracleKind::Oue,
            },
            eps,
            &specs,
        );
        assert!(err.is_err());
    }
}
