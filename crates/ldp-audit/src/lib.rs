//! # ldp-audit — empirical privacy auditing for the LDP pipeline
//!
//! The rest of the workspace *claims* ε-LDP in closed form; this crate
//! tries to **break** that claim and reports how far it got. For every
//! grid cell (protocol × ε × d × k) it runs ~10⁶ distinguishing-attack
//! trials: an attacker who knows the mechanism picks two adversarial
//! inputs ([`ldp_core::audit::worst_case_pair`]), sees **one** report
//! drawn through the *real* client path
//! ([`ldp_analytics::ClientEncoder::encode_into`], or the GRR
//! direct-report fast path [`ldp_core::categorical::Grr::sample`]), and
//! guesses which input produced it with an exact likelihood-ratio test
//! ([`Attacker`]). Clopper-Pearson bounds on the attacker's true/false
//! positive rates ([`confidence`]) then certify, with confidence
//! `≥ 1 − 2α`, a **lower bound on the privacy loss actually spent**
//! ([`estimate_eps`]) — `eps_emp_upper` is the stronger of the two
//! certified attack directions, and CI hard-fails any cell where it
//! exceeds the theoretical ε.
//!
//! A sound implementation can only *under*-shoot ε (the attack may be
//! weak, the bound is conservative); an unsound one — a budget
//! mis-split, a wrong sampling scale, a biased coin — shows up as a
//! certificate *above* ε. The 1-D oracle cells are tight (the optimal
//! attack meets the `e^ε` bound with equality), so they also serve as
//! power checks: a certified value far below ε there would mean the
//! harness itself lost its teeth.
//!
//! Trials follow the workspace determinism contract —
//! [`ldp_analytics::block_partition`] / [`ldp_analytics::block_rng`] with
//! a work-stealing scheduler — so `BENCH_audit.json` is bit-identical at
//! any `--workers` count.
//!
//! ```
//! use ldp_audit::{audit_grr_direct_cell, estimate_eps, AuditConfig};
//! use ldp_core::Epsilon;
//!
//! let cfg = AuditConfig { trials: 20_000, ..AuditConfig::default() };
//! let counts = audit_grr_direct_cell(Epsilon::new(1.0)?, 2, &cfg)?;
//! let est = estimate_eps(&counts, cfg.alpha);
//! assert!(est.eps_emp_upper <= 1.0); // the privacy gate
//! # Ok::<(), ldp_core::LdpError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod attack;
pub mod auditor;
pub mod confidence;

pub use attack::Attacker;
pub use auditor::{
    audit_encode_cell, audit_grid, audit_grr_direct_cell, default_grid, estimate_eps, ArmResult,
    AuditConfig, AuditReport, CellResult, CellSpec, EpsEstimate, TrialCounts,
};
pub use confidence::{clopper_pearson_lower, clopper_pearson_upper, incomplete_beta};
