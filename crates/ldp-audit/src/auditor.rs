//! The distinguishing-attack trial engine and audit grid.
//!
//! One *trial*: draw a fresh report from the **real client path** for one
//! of the two adversarial inputs (alternating by trial parity, so both
//! sides get exactly half the trials of every block), let the
//! [`Attacker`] guess which, and record whether the guess was right.
//! Millions of trials later, Clopper-Pearson bounds on the attacker's
//! true-positive and false-positive rates become a *certified* lower bound
//! on the privacy loss the implementation actually spends — see
//! [`estimate_eps`].
//!
//! Trials are scheduled with the same contract as every estimate in this
//! workspace: [`block_partition`] fixes the block boundaries as a pure
//! function of `(trials, shards)`, [`block_rng`] derives each block's rng
//! from `(seed, block)` alone, and a work-stealing cursor hands blocks to
//! workers. Per-trial win/loss counts are integers summed over disjoint
//! blocks, so the audit artifact is bit-identical at any worker count.

use crate::attack::Attacker;
use crate::confidence::{clopper_pearson_lower, clopper_pearson_upper};
use ldp_analytics::{block_partition, block_rng, ClientEncoder, Protocol, DEFAULT_SHARDS};
use ldp_core::categorical::Grr;
use ldp_core::multidim::{optimal_k, AttrSpec};
use ldp_core::rng::RngBlock;
use ldp_core::{Epsilon, LdpError, NumericKind, OracleKind, Result};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Tuning knobs for one audit run, shared by every cell of a grid.
#[derive(Debug, Clone, Copy)]
pub struct AuditConfig {
    /// Distinguishing trials per cell and arm (split evenly between the
    /// two inputs by trial parity).
    pub trials: usize,
    /// One-sided error budget of *each* Clopper-Pearson bound; a cell's
    /// certificate holds with confidence ≥ 1 − 2α.
    pub alpha: f64,
    /// Root seed; block `b` draws from `block_rng(seed, b)`.
    pub seed: u64,
    /// Number of scheduling blocks (the determinism unit, not the
    /// parallelism degree).
    pub shards: usize,
    /// Worker threads (`None` = available parallelism). Never affects
    /// results, only wall-clock.
    pub workers: Option<usize>,
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            trials: 1_000_000,
            alpha: 1e-3,
            seed: 20_190_408,
            shards: DEFAULT_SHARDS,
            workers: None,
        }
    }
}

/// Win/loss tallies of one audited (cell, arm), split by true input.
///
/// "Win" means the attacker guessed the true input correctly. Trial-count
/// conservation (`trials_v1 + trials_v2 == trials`, wins ≤ trials per
/// side) is structural: every trial increments exactly one side's trial
/// count and at most that side's win count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrialCounts {
    /// Trials whose true input was `v1`.
    pub trials_v1: u64,
    /// Of those, trials the attacker correctly guessed `v1`.
    pub wins_v1: u64,
    /// Trials whose true input was `v2`.
    pub trials_v2: u64,
    /// Of those, trials the attacker correctly guessed `v2`.
    pub wins_v2: u64,
}

impl TrialCounts {
    /// Records one trial: `is_v1` is the true input, `guessed_v1` the
    /// attacker's call.
    #[inline]
    pub fn record(&mut self, is_v1: bool, guessed_v1: bool) {
        if is_v1 {
            self.trials_v1 += 1;
            self.wins_v1 += u64::from(guessed_v1);
        } else {
            self.trials_v2 += 1;
            self.wins_v2 += u64::from(!guessed_v1);
        }
    }

    /// Merges another block's tallies (commutative and associative, which
    /// is why worker count cannot change the artifact).
    pub fn merge(&mut self, other: &TrialCounts) {
        self.trials_v1 += other.trials_v1;
        self.wins_v1 += other.wins_v1;
        self.trials_v2 += other.trials_v2;
        self.wins_v2 += other.wins_v2;
    }

    /// Total trials on both sides.
    pub fn trials(&self) -> u64 {
        self.trials_v1 + self.trials_v2
    }

    /// Total correct guesses.
    pub fn wins(&self) -> u64 {
        self.wins_v1 + self.wins_v2
    }

    /// Total incorrect guesses; `wins() + losses() == trials()` always.
    pub fn losses(&self) -> u64 {
        self.trials() - self.wins()
    }
}

/// A certified empirical-ε estimate for one (cell, arm).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpsEstimate {
    /// The weaker of the two certified attack directions.
    pub eps_emp_lower: f64,
    /// The stronger certified claim: with confidence ≥ 1 − 2α the
    /// mechanism's true privacy loss is **at least** this. The CI gate
    /// checks `eps_emp_upper ≤ ε_theoretical`.
    pub eps_emp_upper: f64,
    /// Raw attack advantage `TPR − FPR` (Youden's J), uncertified.
    pub advantage: f64,
}

/// Turns trial tallies into certified privacy-loss lower bounds.
///
/// Let `S` be the attacker's acceptance region ("guess v1"). With
/// one-sided Clopper-Pearson bounds `L1 ≤ P[S|v1]` and `U0 ≥ P[S|v2]`
/// (each failing with probability ≤ α), ε-LDP's two hypothesis-testing
/// inequalities
///
/// * `P[S|v1] ≤ e^ε · P[S|v2]`  ⇒  `ε ≥ ln(L1 / U0)`
/// * `1 − P[S|v2] ≤ e^ε · (1 − P[S|v1])`  ⇒  `ε ≥ ln((1−U0)/(1−L1))`
///
/// each yield a certified lower bound on the true ε (clamped at 0; a weak
/// attack certifies nothing, never a negative loss). Both directions are
/// *simultaneously* implied by the same two CP events, so reporting their
/// min and max keeps the per-cell confidence at ≥ 1 − 2α. Fewer trials
/// widen the CP bounds and only ever *shrink* the certified values —
/// which is what lets CI re-audit with a reduced grid and still apply the
/// same `eps_emp_upper ≤ ε_theoretical` gate.
///
/// # Panics
/// Panics if either side has zero trials (audit at least 2 trials) or
/// `alpha ∉ (0, 1)`.
pub fn estimate_eps(counts: &TrialCounts, alpha: f64) -> EpsEstimate {
    let false_positives = counts.trials_v2 - counts.wins_v2;
    let l1 = clopper_pearson_lower(counts.wins_v1, counts.trials_v1, alpha);
    let u0 = clopper_pearson_upper(false_positives, counts.trials_v2, alpha);
    let dir1 = (l1.ln() - u0.ln()).max(0.0);
    let dir2 = ((1.0 - u0).ln() - (1.0 - l1).ln()).max(0.0);
    let tpr = counts.wins_v1 as f64 / counts.trials_v1 as f64;
    let fpr = false_positives as f64 / counts.trials_v2 as f64;
    EpsEstimate {
        eps_emp_lower: dir1.min(dir2),
        eps_emp_upper: dir1.max(dir2),
        advantage: tpr - fpr,
    }
}

/// Runs `trials` distinguishing trials under the workspace scheduling
/// contract and merges the per-block tallies in block order.
///
/// `run_block(block, range)` must tally exactly the trials of `range`,
/// deriving all randomness from `block_rng(seed, block)`.
fn run_blocks<F>(cfg: &AuditConfig, run_block: F) -> Result<TrialCounts>
where
    F: Fn(usize, std::ops::Range<usize>) -> Result<TrialCounts> + Sync,
{
    let blocks = block_partition(cfg.trials, cfg.shards);
    let workers = cfg
        .workers
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()))
        .clamp(1, blocks.len().max(1));
    let mut slots: Vec<Option<Result<TrialCounts>>> = (0..blocks.len()).map(|_| None).collect();
    if workers <= 1 {
        for (b, range) in blocks.iter().enumerate() {
            slots[b] = Some(run_block(b, range.clone()));
        }
    } else {
        let next = AtomicUsize::new(0);
        let per_worker: Vec<Vec<(usize, Result<TrialCounts>)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    let blocks = &blocks;
                    let next = &next;
                    let run_block = &run_block;
                    scope.spawn(move || {
                        let mut done = Vec::new();
                        loop {
                            let b = next.fetch_add(1, Ordering::Relaxed);
                            let Some(range) = blocks.get(b) else { break };
                            done.push((b, run_block(b, range.clone())));
                        }
                        done
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("audit worker panicked"))
                .collect()
        });
        for (b, res) in per_worker.into_iter().flatten() {
            slots[b] = Some(res);
        }
    }
    let mut total = TrialCounts::default();
    for slot in slots {
        let counts = slot.expect("every block is claimed by exactly one worker")?;
        total.merge(&counts);
    }
    Ok(total)
}

/// Audits one cell through the real client encoding path
/// ([`ClientEncoder::encode_into`]): the exact code a deployed client runs,
/// fast paths included.
///
/// # Errors
/// Construction or encoding failures from the underlying mechanisms.
pub fn audit_encode_cell(
    protocol: Protocol,
    epsilon: Epsilon,
    specs: &[AttrSpec],
    cfg: &AuditConfig,
) -> Result<TrialCounts> {
    let attacker = Attacker::new(protocol, epsilon, specs)?;
    let encoder = ClientEncoder::new(protocol, epsilon, specs.to_vec())?;
    let (v1, v2) = attacker.pair();
    let (v1, v2) = (v1.to_vec(), v2.to_vec());
    run_blocks(cfg, |block, range| {
        let mut rng: RngBlock<rand::rngs::StdRng> = RngBlock::new(block_rng(cfg.seed, block));
        let mut report = encoder.empty_report();
        let mut scratch = encoder.scratch();
        let mut counts = TrialCounts::default();
        for trial in range {
            let is_v1 = trial % 2 == 0;
            let input = if is_v1 { &v1 } else { &v2 };
            encoder.encode_into(input, &mut rng, &mut report, &mut scratch)?;
            counts.record(is_v1, attacker.guess_is_v1(&report)?);
        }
        Ok(counts)
    })
}

/// Audits the GRR direct-report fast path ([`Grr::sample`]) at full budget
/// on a 1-D categorical cell — the no-report-object path the fused
/// perturb-and-count engines use.
///
/// The attacker's Neyman-Pearson rule specializes to "guess `v1` iff the
/// reported category *is* `v1`'s category" (any other report has
/// likelihood ratio ≤ 1), which achieves GRR's `e^ε` bound with equality.
///
/// # Errors
/// As [`Grr::new`].
pub fn audit_grr_direct_cell(epsilon: Epsilon, k: u32, cfg: &AuditConfig) -> Result<TrialCounts> {
    let grr = Grr::new(epsilon, k)?;
    let (c1, c2) = (0u32, k - 1);
    run_blocks(cfg, |block, range| {
        let mut rng: RngBlock<rand::rngs::StdRng> = RngBlock::new(block_rng(cfg.seed, block));
        let mut counts = TrialCounts::default();
        for trial in range {
            let is_v1 = trial % 2 == 0;
            let reported = grr.sample(if is_v1 { c1 } else { c2 }, &mut rng)?;
            counts.record(is_v1, reported == c1);
        }
        Ok(counts)
    })
}

/// One audited grid cell: a protocol at a budget over a schema.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Stable display label, matching the throughput bench's conventions
    /// (`Sampling(HM+OUE)`, `Composition(Laplace+GRR)`, `Oracle(GRR)`, …).
    pub label: &'static str,
    /// The protocol under audit.
    pub protocol: Protocol,
    /// Total privacy budget — also the theoretical ε the gate compares
    /// against.
    pub eps: f64,
    /// Schema width.
    pub d: usize,
    /// Categorical domain size (of every categorical attribute).
    pub k: u32,
    /// Whether to additionally audit the GRR direct-report fast path
    /// (only meaningful for 1-D GRR cells).
    pub direct_arm: bool,
}

impl CellSpec {
    /// The audited schema: attributes alternating numeric / categorical
    /// (numeric first) for multi-attribute cells, a single categorical
    /// attribute for the 1-D oracle cells.
    pub fn specs(&self) -> Vec<AttrSpec> {
        if self.d == 1 {
            return vec![AttrSpec::Categorical { k: self.k }];
        }
        (0..self.d)
            .map(|i| {
                if i % 2 == 0 {
                    AttrSpec::Numeric
                } else {
                    AttrSpec::Categorical { k: self.k }
                }
            })
            .collect()
    }

    /// Algorithm 4's sampled-attribute count for this cell (`d` for the
    /// composition baseline, which reports every attribute).
    pub fn sampled_k(&self) -> usize {
        match self.protocol {
            Protocol::Sampling { .. } => {
                optimal_k(Epsilon::new(self.eps).expect("grid eps valid"), self.d)
            }
            Protocol::BestEffort { .. } => self.d,
        }
    }
}

/// The default audit grid: the paper's protocol (Sampling over HM + OUE)
/// across the ε range of §VI, the naive composition baseline, and the 1-D
/// frequency oracles — including an ε = 6 sampling cell where
/// `optimal_k = 2` exercises the multi-attribute `ε/k` split and `d/k`
/// scaling end to end.
pub fn default_grid() -> Vec<CellSpec> {
    let sampling = Protocol::Sampling {
        numeric: NumericKind::Hybrid,
        oracle: OracleKind::Oue,
    };
    let composition = Protocol::BestEffort {
        numeric: ldp_analytics::BestEffortNumeric::PerAttribute(NumericKind::Laplace),
        oracle: OracleKind::Grr,
    };
    let oracle = |kind: OracleKind| Protocol::Sampling {
        numeric: NumericKind::Hybrid,
        oracle: kind,
    };
    let mut grid = Vec::new();
    for eps in [1.0, 4.0, 6.0] {
        grid.push(CellSpec {
            label: "Sampling(HM+OUE)",
            protocol: sampling,
            eps,
            d: 8,
            k: 16,
            direct_arm: false,
        });
    }
    for (eps, d, k) in [(1.0, 4, 8), (4.0, 4, 8), (4.0, 8, 16)] {
        grid.push(CellSpec {
            label: "Composition(Laplace+GRR)",
            protocol: composition,
            eps,
            d,
            k,
            direct_arm: false,
        });
    }
    for (eps, k) in [(1.0, 2), (1.0, 16), (4.0, 16)] {
        grid.push(CellSpec {
            label: "Oracle(GRR)",
            protocol: oracle(OracleKind::Grr),
            eps,
            d: 1,
            k,
            direct_arm: true,
        });
    }
    for (eps, k) in [(1.0, 16), (4.0, 64)] {
        grid.push(CellSpec {
            label: "Oracle(OUE)",
            protocol: oracle(OracleKind::Oue),
            eps,
            d: 1,
            k,
            direct_arm: false,
        });
    }
    grid.push(CellSpec {
        label: "Oracle(SUE)",
        protocol: oracle(OracleKind::Sue),
        eps: 1.0,
        d: 1,
        k: 16,
        direct_arm: false,
    });
    grid
}

/// One arm's results within a cell.
#[derive(Debug, Clone)]
pub struct ArmResult {
    /// Arm name: `"encode"` (the real client path) or `"direct"` (the GRR
    /// fast path).
    pub arm: &'static str,
    /// Raw tallies.
    pub counts: TrialCounts,
    /// Certified estimate.
    pub estimate: EpsEstimate,
}

/// One audited cell with all its arms.
#[derive(Debug, Clone)]
pub struct CellResult {
    /// The cell that was audited.
    pub spec: CellSpec,
    /// Algorithm 4's sampled-attribute count (`d` for composition).
    pub sampled_k: usize,
    /// Results per arm, `"encode"` first.
    pub arms: Vec<ArmResult>,
}

/// A complete audit-grid run: the payload of `BENCH_audit.json`.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// Configuration the grid ran under.
    pub config: AuditConfig,
    /// `"default"` or `"quick"` — recorded so CI's reduced run is
    /// distinguishable from the committed artifact.
    pub mode: &'static str,
    /// Per-cell results in grid order.
    pub cells: Vec<CellResult>,
}

/// Audits every cell of `grid` under `cfg`.
///
/// # Errors
/// The first cell failure, if any (grid cells are all expected to audit
/// cleanly; a failure is a bug, not a data condition).
pub fn audit_grid(grid: &[CellSpec], cfg: &AuditConfig, mode: &'static str) -> Result<AuditReport> {
    if cfg.trials < 2 {
        return Err(LdpError::InvalidParameter {
            name: "trials",
            message: "auditing needs at least one trial per input".into(),
        });
    }
    let mut cells = Vec::with_capacity(grid.len());
    for spec in grid {
        let epsilon = Epsilon::new(spec.eps)?;
        let specs = spec.specs();
        let mut arms = Vec::new();
        let counts = audit_encode_cell(spec.protocol, epsilon, &specs, cfg)?;
        arms.push(ArmResult {
            arm: "encode",
            counts,
            estimate: estimate_eps(&counts, cfg.alpha),
        });
        if spec.direct_arm {
            let counts = audit_grr_direct_cell(epsilon, spec.k, cfg)?;
            arms.push(ArmResult {
                arm: "direct",
                counts,
                estimate: estimate_eps(&counts, cfg.alpha),
            });
        }
        cells.push(CellResult {
            spec: spec.clone(),
            sampled_k: spec.sampled_k(),
            arms,
        });
    }
    Ok(AuditReport {
        config: *cfg,
        mode,
        cells,
    })
}

impl AuditReport {
    /// Renders a human-readable table: one row per (cell, arm) with the
    /// certified bounds next to the theoretical ε and a pass/fail gate
    /// column (`ok` iff `eps_emp_upper ≤ ε`).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "audit: {} trials/arm, alpha={:?} (confidence ≥ {:.2}%), seed={}, mode={}\n",
            self.config.trials,
            self.config.alpha,
            100.0 * (1.0 - 2.0 * self.config.alpha),
            self.config.seed,
            self.mode
        ));
        out.push_str(&format!(
            "{:<26} {:>5} {:>3} {:>4} {:>6} {:>8} {:>9} {:>11} {:>11} {:>6}\n",
            "protocol",
            "eps",
            "d",
            "k",
            "samp_k",
            "arm",
            "advantage",
            "eps_emp_lo",
            "eps_emp_up",
            "gate"
        ));
        for cell in &self.cells {
            for arm in &cell.arms {
                let gate = if arm.estimate.eps_emp_upper <= cell.spec.eps {
                    "ok"
                } else {
                    "FAIL"
                };
                out.push_str(&format!(
                    "{:<26} {:>5} {:>3} {:>4} {:>6} {:>8} {:>9.4} {:>11.4} {:>11.4} {:>6}\n",
                    cell.spec.label,
                    cell.spec.eps,
                    cell.spec.d,
                    cell.spec.k,
                    cell.sampled_k,
                    arm.arm,
                    arm.estimate.advantage,
                    arm.estimate.eps_emp_lower,
                    arm.estimate.eps_emp_upper,
                    gate
                ));
            }
        }
        out
    }

    /// Renders the report as the `BENCH_audit.json` artifact — same shape
    /// conventions as `BENCH_throughput.json`: top-level run metadata, an
    /// `arms` list, and flat per-cell objects with `<arm>_<field>` keys.
    /// Hand-rolled (the serde shim has no serializer) and fully
    /// deterministic.
    pub fn to_json(&self) -> String {
        let mut arms_seen: Vec<&str> = Vec::new();
        for cell in &self.cells {
            for arm in &cell.arms {
                if !arms_seen.contains(&arm.arm) {
                    arms_seen.push(arm.arm);
                }
            }
        }
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"bench\": \"audit\",\n");
        out.push_str("  \"unit\": \"certified empirical epsilon (distinguishing attack, Clopper-Pearson)\",\n");
        out.push_str(&format!("  \"mode\": \"{}\",\n", self.mode));
        out.push_str(&format!("  \"seed\": {},\n", self.config.seed));
        out.push_str(&format!("  \"trials\": {},\n", self.config.trials));
        out.push_str(&format!("  \"alpha\": {:?},\n", self.config.alpha));
        out.push_str(&format!("  \"shards\": {},\n", self.config.shards));
        out.push_str(&format!(
            "  \"arms\": [{}],\n",
            arms_seen
                .iter()
                .map(|a| format!("\"{a}\""))
                .collect::<Vec<_>>()
                .join(", ")
        ));
        out.push_str("  \"cells\": [\n");
        for (i, cell) in self.cells.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"protocol\": \"{}\", ", cell.spec.label));
            out.push_str(&format!("\"eps\": {:?}, ", cell.spec.eps));
            out.push_str(&format!("\"d\": {}, ", cell.spec.d));
            out.push_str(&format!("\"k\": {}, ", cell.spec.k));
            out.push_str(&format!("\"sampled_k\": {}, ", cell.sampled_k));
            out.push_str(&format!("\"eps_theory\": {:?}", cell.spec.eps));
            for arm in &cell.arms {
                let a = arm.arm;
                out.push_str(&format!(", \"{a}_trials\": {}", arm.counts.trials()));
                out.push_str(&format!(", \"{a}_wins_v1\": {}", arm.counts.wins_v1));
                out.push_str(&format!(", \"{a}_wins_v2\": {}", arm.counts.wins_v2));
                out.push_str(&format!(
                    ", \"{a}_advantage\": {:?}",
                    arm.estimate.advantage
                ));
                out.push_str(&format!(
                    ", \"{a}_eps_emp_lower\": {:?}",
                    arm.estimate.eps_emp_lower
                ));
                out.push_str(&format!(
                    ", \"{a}_eps_emp_upper\": {:?}",
                    arm.estimate.eps_emp_upper
                ));
            }
            out.push_str(if i + 1 == self.cells.len() {
                "}\n"
            } else {
                "},\n"
            });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg(trials: usize, workers: Option<usize>) -> AuditConfig {
        AuditConfig {
            trials,
            alpha: 1e-2,
            seed: 7,
            shards: 8,
            workers,
        }
    }

    #[test]
    fn counts_conserve_trials() {
        let cfg = small_cfg(10_001, Some(2));
        let eps = Epsilon::new(1.0).unwrap();
        let counts = audit_grr_direct_cell(eps, 4, &cfg).unwrap();
        assert_eq!(counts.trials(), 10_001);
        assert_eq!(counts.wins() + counts.losses(), counts.trials());
        // Parity split: ceil/floor halves.
        assert_eq!(counts.trials_v1, 5_001);
        assert_eq!(counts.trials_v2, 5_000);
    }

    #[test]
    fn worker_count_never_changes_tallies() {
        let eps = Epsilon::new(1.0).unwrap();
        let specs = vec![AttrSpec::Numeric, AttrSpec::Categorical { k: 8 }];
        let protocol = Protocol::Sampling {
            numeric: NumericKind::Hybrid,
            oracle: OracleKind::Oue,
        };
        let baseline =
            audit_encode_cell(protocol, eps, &specs, &small_cfg(20_000, Some(1))).unwrap();
        for workers in [2, 3, 8] {
            let counts =
                audit_encode_cell(protocol, eps, &specs, &small_cfg(20_000, Some(workers)))
                    .unwrap();
            assert_eq!(counts, baseline, "workers={workers}");
        }
    }

    #[test]
    fn tight_grr_cell_certifies_close_to_eps_but_never_above() {
        // Binary randomized response at ε = 1 is the canonical tight cell:
        // the optimal attack's acceptance region achieves the e^ε ratio
        // with equality, so with 200k trials the certificate should land
        // within ~0.1 of ε — and, by construction, never above it except
        // with probability ≤ 2α.
        let cfg = AuditConfig {
            trials: 200_000,
            ..AuditConfig::default()
        };
        let eps = Epsilon::new(1.0).unwrap();
        let counts = audit_grr_direct_cell(eps, 2, &cfg).unwrap();
        let est = estimate_eps(&counts, cfg.alpha);
        assert!(
            est.eps_emp_upper <= 1.0,
            "certificate above theory: {}",
            est.eps_emp_upper
        );
        assert!(
            est.eps_emp_upper >= 0.85,
            "tight cell certified only {}",
            est.eps_emp_upper
        );
        assert!(est.eps_emp_lower <= est.eps_emp_upper);
    }

    #[test]
    fn encode_and_direct_arms_agree_on_1d_grr() {
        // Two different code paths, same mechanism: certified values must
        // land close to each other (they are different random draws, so
        // not identical).
        let cfg = small_cfg(60_000, None);
        let eps = Epsilon::new(1.0).unwrap();
        let specs = vec![AttrSpec::Categorical { k: 16 }];
        let protocol = Protocol::Sampling {
            numeric: NumericKind::Hybrid,
            oracle: OracleKind::Grr,
        };
        let via_encode = estimate_eps(
            &audit_encode_cell(protocol, eps, &specs, &cfg).unwrap(),
            cfg.alpha,
        );
        let via_direct = estimate_eps(&audit_grr_direct_cell(eps, 16, &cfg).unwrap(), cfg.alpha);
        assert!(
            (via_encode.advantage - via_direct.advantage).abs() < 0.02,
            "encode {} vs direct {}",
            via_encode.advantage,
            via_direct.advantage
        );
    }

    #[test]
    fn estimate_is_zero_for_powerless_attacker() {
        // A coin-flip attacker (half wins each side) certifies nothing.
        let counts = TrialCounts {
            trials_v1: 10_000,
            wins_v1: 5_000,
            trials_v2: 10_000,
            wins_v2: 5_000,
        };
        let est = estimate_eps(&counts, 1e-2);
        assert_eq!(est.eps_emp_lower, 0.0);
        assert_eq!(est.eps_emp_upper, 0.0);
        assert_eq!(est.advantage, 0.0);
    }

    #[test]
    fn json_shape_has_gate_fields() {
        let cfg = small_cfg(2_000, None);
        let grid = vec![CellSpec {
            label: "Oracle(GRR)",
            protocol: Protocol::Sampling {
                numeric: NumericKind::Hybrid,
                oracle: OracleKind::Grr,
            },
            eps: 1.0,
            d: 1,
            k: 2,
            direct_arm: true,
        }];
        let report = audit_grid(&grid, &cfg, "quick").unwrap();
        let json = report.to_json();
        for needle in [
            "\"bench\": \"audit\"",
            "\"arms\": [\"encode\", \"direct\"]",
            "\"eps_theory\": 1.0",
            "\"encode_eps_emp_upper\"",
            "\"direct_eps_emp_upper\"",
            "\"sampled_k\": 1",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
    }
}
