//! Exact binomial confidence bounds (Clopper-Pearson).
//!
//! The auditor observes `w` successes in `n` Bernoulli trials and needs
//! *certified* one-sided bounds on the unknown success probability: a lower
//! bound that holds with probability ≥ 1−α however adversarial the truth
//! is, and likewise an upper bound. Clopper-Pearson is the classic exact
//! construction — invert the binomial tail itself instead of a normal
//! approximation — and is what the LDP auditing literature uses
//! (Arcolezi et al., 2022).
//!
//! The bounds are quantiles of Beta distributions:
//!
//! * lower: `Beta(α; w, n−w+1)` quantile (0 when `w = 0`),
//! * upper: `Beta(1−α; w+1, n−w)` quantile (1 when `w = n`),
//!
//! computed here from scratch — Lanczos log-gamma, the regularized
//! incomplete beta via Lentz's continued fraction, and a bisection inverse —
//! because the workspace is offline and deliberately dependency-free. Every
//! step is deterministic, so audit artifacts are bit-reproducible.

/// Lanczos approximation (g = 7, 9 coefficients) to `ln Γ(x)` for `x > 0`.
///
/// Relative error is below 1e-13 over the range the beta functions use,
/// which is far below the bisection tolerance of the quantile inverse.
fn ln_gamma(x: f64) -> f64 {
    const G: f64 = 7.0;
    // Published Lanczos coefficients, kept at full printed precision.
    #[allow(clippy::excessive_precision)]
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    debug_assert!(x > 0.0);
    // Standard Lanczos evaluation; no reflection needed since x > 0 here
    // always comes from trial counts (≥ 1) or counts + 1.
    let z = x - 1.0;
    let mut sum = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        sum += c / (z + i as f64);
    }
    let t = z + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (z + 0.5) * t.ln() - t + sum.ln()
}

/// Lentz's continued fraction for the incomplete beta, valid (rapidly
/// convergent) when `x < (a+1)/(a+b+2)`.
fn beta_continued_fraction(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const TINY: f64 = 1e-300;
    const EPS: f64 = 1e-15;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

/// The regularized incomplete beta function `I_x(a, b)` for `a, b > 0`,
/// `x ∈ [0, 1]` — equivalently the CDF of a Beta(a, b) variable, and (with
/// integer parameters) the binomial tail `P[X ≥ a]` for
/// `X ~ Binomial(a+b−1, x)`.
pub fn incomplete_beta(a: f64, b: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0 && b > 0.0);
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (-x).ln_1p();
    let front = ln_front.exp();
    // Use the continued fraction on whichever side converges fast, and the
    // symmetry I_x(a,b) = 1 − I_{1−x}(b,a) on the other.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * beta_continued_fraction(a, b, x) / a
    } else {
        1.0 - front * beta_continued_fraction(b, a, 1.0 - x) / b
    }
}

/// Inverts `I_x(a, b) = target` by bisection. `I_x` is strictly increasing
/// in `x`, so plain bisection is unconditionally convergent; ~90 halvings
/// reach f64 resolution and the loop is branch-deterministic (bit-identical
/// across platforms with IEEE f64).
fn beta_quantile(target: f64, a: f64, b: f64) -> f64 {
    debug_assert!((0.0..=1.0).contains(&target));
    let mut lo = 0.0f64;
    let mut hi = 1.0f64;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if mid <= lo || mid >= hi {
            break; // interval below f64 resolution
        }
        if incomplete_beta(a, b, mid) < target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// One-sided Clopper-Pearson lower bound: the largest `L` such that
/// `P[X ≥ w | p = L] ≤ α` for `X ~ Binomial(n, p)`. The true `p` is above
/// `L` with probability ≥ 1−α.
///
/// # Panics
/// Panics if `wins > trials`, `trials == 0`, or `alpha ∉ (0, 1)`.
pub fn clopper_pearson_lower(wins: u64, trials: u64, alpha: f64) -> f64 {
    assert!(
        trials > 0 && wins <= trials,
        "need 0 ≤ wins ≤ trials, trials > 0"
    );
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
    if wins == 0 {
        return 0.0;
    }
    if wins == trials {
        // Closed form: solve p^n = α.
        return alpha.powf(1.0 / trials as f64);
    }
    beta_quantile(alpha, wins as f64, (trials - wins + 1) as f64)
}

/// One-sided Clopper-Pearson upper bound: the smallest `U` such that
/// `P[X ≤ w | p = U] ≤ α`. The true `p` is below `U` with probability
/// ≥ 1−α.
///
/// # Panics
/// As [`clopper_pearson_lower`].
pub fn clopper_pearson_upper(wins: u64, trials: u64, alpha: f64) -> f64 {
    assert!(
        trials > 0 && wins <= trials,
        "need 0 ≤ wins ≤ trials, trials > 0"
    );
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
    if wins == trials {
        return 1.0;
    }
    if wins == 0 {
        // Closed form: solve (1−p)^n = α.
        return 1.0 - alpha.powf(1.0 / trials as f64);
    }
    beta_quantile(1.0 - alpha, (wins + 1) as f64, (trials - wins) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n−1)!
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            if n > 1 {
                fact *= f64::from(n - 1);
            }
            assert!(
                close(ln_gamma(f64::from(n)), fact.ln(), 1e-10),
                "n={n}: {} vs {}",
                ln_gamma(f64::from(n)),
                fact.ln()
            );
        }
        // Γ(1/2) = √π.
        assert!(close(
            ln_gamma(0.5),
            std::f64::consts::PI.sqrt().ln(),
            1e-12
        ));
    }

    #[test]
    fn incomplete_beta_is_binomial_tail() {
        // I_p(a, b) with integer a = w, b = n−w+1 equals P[X ≥ w] for
        // X ~ Binomial(n, p); check against a direct sum.
        let n = 20u64;
        let p = 0.3f64;
        for w in 1..n {
            let direct: f64 = (w..=n)
                .map(|i| {
                    let ln_choose = ln_gamma((n + 1) as f64)
                        - ln_gamma((i + 1) as f64)
                        - ln_gamma((n - i + 1) as f64);
                    (ln_choose + i as f64 * p.ln() + (n - i) as f64 * (1.0 - p).ln()).exp()
                })
                .sum();
            let via_beta = incomplete_beta(w as f64, (n - w + 1) as f64, p);
            assert!(
                close(direct, via_beta, 1e-10),
                "w={w}: {direct} vs {via_beta}"
            );
        }
    }

    #[test]
    fn matches_tabulated_two_sided_95pct_interval() {
        // Classic tabulated Clopper-Pearson values (two-sided 95% ⇒ α/2 =
        // 0.025 per side). 5/10 → [0.18708603, 0.81291397].
        let lo = clopper_pearson_lower(5, 10, 0.025);
        let hi = clopper_pearson_upper(5, 10, 0.025);
        assert!(close(lo, 0.187_086_03, 1e-7), "{lo}");
        assert!(close(hi, 0.812_913_97, 1e-7), "{hi}");
        // 10/100 → [0.04900469, 0.17622260].
        let lo = clopper_pearson_lower(10, 100, 0.025);
        let hi = clopper_pearson_upper(10, 100, 0.025);
        assert!(close(lo, 0.049_004_69, 1e-7), "{lo}");
        assert!(close(hi, 0.176_222_60, 1e-7), "{hi}");
    }

    #[test]
    fn boundary_counts_use_closed_forms() {
        let n = 50u64;
        let alpha = 0.01f64;
        assert_eq!(clopper_pearson_lower(0, n, alpha), 0.0);
        assert_eq!(clopper_pearson_upper(n, n, alpha), 1.0);
        // w = 0 upper: 1 − α^{1/n}; w = n lower: α^{1/n}.
        assert!(close(
            clopper_pearson_upper(0, n, alpha),
            1.0 - alpha.powf(1.0 / 50.0),
            1e-12
        ));
        assert!(close(
            clopper_pearson_lower(n, n, alpha),
            alpha.powf(1.0 / 50.0),
            1e-12
        ));
    }

    #[test]
    fn bounds_bracket_the_point_estimate() {
        for (w, n) in [
            (1u64, 10u64),
            (250, 1000),
            (999, 1000),
            (500_000, 1_000_000),
        ] {
            let alpha = 1e-3;
            let lo = clopper_pearson_lower(w, n, alpha);
            let hi = clopper_pearson_upper(w, n, alpha);
            let point = w as f64 / n as f64;
            assert!(lo < point && point < hi, "w={w} n={n}: [{lo}, {hi}]");
        }
    }

    #[test]
    fn coverage_shrinks_with_trials() {
        // Same empirical rate, more trials ⇒ tighter interval.
        let narrow = clopper_pearson_upper(500_000, 1_000_000, 1e-2)
            - clopper_pearson_lower(500_000, 1_000_000, 1e-2);
        let wide =
            clopper_pearson_upper(500, 1_000, 1e-2) - clopper_pearson_lower(500, 1_000, 1e-2);
        assert!(narrow < wide / 10.0, "narrow={narrow} wide={wide}");
    }

    #[test]
    fn lower_bound_monotone_in_wins() {
        let n = 1000u64;
        let alpha = 1e-2;
        let mut prev = -1.0;
        for w in (0..=n).step_by(50) {
            let lo = clopper_pearson_lower(w, n, alpha);
            assert!(lo >= prev - 1e-12, "w={w}: {lo} < {prev}");
            prev = lo;
        }
    }

    #[test]
    #[should_panic(expected = "wins")]
    fn rejects_wins_above_trials() {
        clopper_pearson_lower(11, 10, 0.05);
    }
}
