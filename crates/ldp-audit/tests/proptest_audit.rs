//! Property tests for the audit estimator and trial engine.

use ldp_audit::{
    audit_grr_direct_cell, clopper_pearson_lower, clopper_pearson_upper, estimate_eps, AuditConfig,
    TrialCounts,
};
use ldp_core::Epsilon;
use proptest::prelude::*;

proptest! {
    /// Trial-count conservation through the whole engine: every scheduled
    /// trial lands in exactly one (side, win/loss) bucket, for any trial
    /// count, seed, and worker count.
    #[test]
    fn trial_count_conservation(
        trials in 2usize..2_000,
        seed in 0u64..1_000_000,
        workers in 1usize..5,
        k in 2u32..12,
    ) {
        let cfg = AuditConfig {
            trials,
            alpha: 1e-2,
            seed,
            shards: 8,
            workers: Some(workers),
        };
        let counts = audit_grr_direct_cell(Epsilon::new(1.0).unwrap(), k, &cfg).unwrap();
        prop_assert_eq!(counts.trials(), trials as u64);
        prop_assert_eq!(counts.wins() + counts.losses(), counts.trials());
        prop_assert_eq!(counts.trials_v1 + counts.trials_v2, trials as u64);
        prop_assert!(counts.wins_v1 <= counts.trials_v1);
        prop_assert!(counts.wins_v2 <= counts.trials_v2);
        // Parity split: v1 gets the ceiling half.
        prop_assert_eq!(counts.trials_v1, trials.div_ceil(2) as u64);
    }

    /// The certified ε is monotone in the attacker's advantage: more
    /// correct guesses on either side (trials fixed) can only strengthen
    /// the certificate.
    #[test]
    fn eps_emp_monotone_in_advantage(
        n1 in 50u64..2_000,
        n2 in 50u64..2_000,
        w1 in 0u64..2_000,
        w2 in 0u64..2_000,
    ) {
        let w1 = w1.min(n1);
        let w2 = w2.min(n2);
        let alpha = 1e-2;
        let base = TrialCounts { trials_v1: n1, wins_v1: w1, trials_v2: n2, wins_v2: w2 };
        let est = estimate_eps(&base, alpha);
        prop_assert!(est.eps_emp_lower >= 0.0);
        prop_assert!(est.eps_emp_lower <= est.eps_emp_upper);
        if w1 < n1 {
            let better = TrialCounts { wins_v1: w1 + 1, ..base };
            let est2 = estimate_eps(&better, alpha);
            prop_assert!(
                est2.eps_emp_upper >= est.eps_emp_upper - 1e-9,
                "w1+1 weakened the certificate: {} -> {}", est.eps_emp_upper, est2.eps_emp_upper
            );
            prop_assert!(est2.advantage > est.advantage);
        }
        if w2 < n2 {
            let better = TrialCounts { wins_v2: w2 + 1, ..base };
            let est2 = estimate_eps(&better, alpha);
            prop_assert!(
                est2.eps_emp_upper >= est.eps_emp_upper - 1e-9,
                "w2+1 weakened the certificate: {} -> {}", est.eps_emp_upper, est2.eps_emp_upper
            );
            prop_assert!(est2.advantage > est.advantage);
        }
    }

    /// Clopper-Pearson sanity over the whole count range: bounds bracket
    /// the point estimate and respect [0, 1].
    #[test]
    fn clopper_pearson_bounds_are_ordered(
        n in 1u64..5_000,
        w in 0u64..5_000,
    ) {
        let w = w.min(n);
        let alpha = 1e-2;
        let lo = clopper_pearson_lower(w, n, alpha);
        let hi = clopper_pearson_upper(w, n, alpha);
        let point = w as f64 / n as f64;
        prop_assert!((0.0..=1.0).contains(&lo));
        prop_assert!((0.0..=1.0).contains(&hi));
        prop_assert!(lo <= point + 1e-12);
        prop_assert!(point <= hi + 1e-12);
        prop_assert!(lo <= hi);
    }
}
