//! Property-based tests for the aggregator-side estimators.
//!
//! The statistical properties use `ldp_core::testutil`'s confidence-bounded
//! assertions instead of hand-tuned tolerances: the allowed error is
//! derived from the estimator's analytic variance at a ~1e-5 tail z-score,
//! and every RNG stream is seeded, so a failure means a wrong estimator,
//! not an unlucky draw.

use ldp_analytics::{FrequencyAccumulator, MeanAccumulator};
use ldp_core::categorical::Oue;
use ldp_core::numeric::Hybrid;
use ldp_core::rng::seeded_rng;
use ldp_core::{assert_within_ci, Epsilon, FrequencyOracle, NumericMechanism};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The mean estimate is exactly the arithmetic average of the absorbed
    /// dense reports (no hidden scaling).
    #[test]
    fn mean_accumulator_is_plain_average(
        rows in prop::collection::vec(prop::collection::vec(-10.0f64..10.0, 3), 1..50),
    ) {
        let mut acc = MeanAccumulator::new(3);
        for row in &rows {
            acc.add_dense(row).unwrap();
        }
        let est = acc.estimate().unwrap();
        for j in 0..3 {
            let expect: f64 = rows.iter().map(|r| r[j]).sum::<f64>() / rows.len() as f64;
            prop_assert!((est[j] - expect).abs() < 1e-9);
        }
        // Clamped estimates are the same values clipped to [-1, 1].
        for (c, e) in acc.estimate_clamped().unwrap().iter().zip(&est) {
            prop_assert_eq!(*c, e.clamp(-1.0, 1.0));
        }
    }

    /// Merging any 2-way split of the reports gives the same estimate as
    /// sequential accumulation (up to addition order).
    #[test]
    fn mean_merge_is_associative(
        rows in prop::collection::vec(prop::collection::vec(-1.0f64..1.0, 2), 2..60),
        cut in 1usize..59,
    ) {
        prop_assume!(cut < rows.len());
        let mut whole = MeanAccumulator::new(2);
        let mut left = MeanAccumulator::new(2);
        let mut right = MeanAccumulator::new(2);
        for (i, row) in rows.iter().enumerate() {
            whole.add_dense(row).unwrap();
            if i < cut { &mut left } else { &mut right }.add_dense(row).unwrap();
        }
        left.merge(&right).unwrap();
        prop_assert_eq!(left.n(), whole.n());
        for (a, b) in left.estimate().unwrap().iter().zip(whole.estimate().unwrap()) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    /// Frequency estimates are linear in the declared population: doubling
    /// n halves every estimate.
    #[test]
    fn frequency_population_scaling(seed in 0u64..200, k in 2u32..12) {
        let oracle = Oue::new(Epsilon::new(1.0).unwrap(), k).unwrap();
        let mut rng = seeded_rng(seed);
        let mut acc = FrequencyAccumulator::new(k, 1.0);
        for i in 0..20u32 {
            let rep = oracle.perturb(i % k, &mut rng).unwrap();
            acc.add(&oracle, &rep);
        }
        acc.set_population(100);
        let at_100 = acc.estimate().unwrap();
        acc.set_population(200);
        let at_200 = acc.estimate().unwrap();
        for (a, b) in at_100.iter().zip(&at_200) {
            prop_assert!((a - 2.0 * b).abs() < 1e-12);
        }
    }

    /// Debiased OUE frequency estimates concentrate around the truth at
    /// the CLT rate for every (seed, k, ε): the error stays inside the
    /// confidence bound derived from the oracle's support variance.
    #[test]
    fn oue_estimates_within_analytic_ci(seed in 0u64..1000, k in 2u32..10, eps in 0.4f64..4.0) {
        let oracle = Oue::new(Epsilon::new(eps).unwrap(), k).unwrap();
        let mut rng = seeded_rng(seed);
        let n = 20_000usize;
        let mut acc = FrequencyAccumulator::new(k, 1.0);
        // Deterministic round-robin values: the true frequency of each
        // category is known exactly, so only response noise remains.
        for i in 0..n as u32 {
            let rep = oracle.perturb(i % k, &mut rng).unwrap();
            acc.add(&oracle, &rep);
        }
        let est = acc.estimate().unwrap();
        for target in 0..k {
            let truth =
                (0..n as u32).filter(|i| i % k == target).count() as f64 / n as f64;
            // With values fixed, `support_variance(truth)` upper-bounds the
            // per-report variance (Jensen: x(1−x) is concave), so the CLT
            // interval is conservative.
            assert_within_ci!(
                est[target as usize],
                truth,
                oracle.support_variance(truth),
                n,
                "k={k} eps={eps} target={target}"
            );
        }
    }

    /// Mean estimation from HM reports lands inside the CLT interval built
    /// from the mechanism's own `variance(t)` for every (seed, t, ε).
    #[test]
    fn hm_mean_estimates_within_analytic_ci(
        seed in 0u64..1000,
        t in -1.0f64..=1.0,
        eps in 0.4f64..6.0,
    ) {
        let hm = Hybrid::new(Epsilon::new(eps).unwrap());
        let mut rng = seeded_rng(seed);
        let n = 20_000usize;
        let mut acc = MeanAccumulator::new(1);
        for _ in 0..n {
            acc.add_dense(&[hm.perturb(t, &mut rng).unwrap()]).unwrap();
        }
        let est = acc.estimate().unwrap();
        assert_within_ci!(est[0], t, hm.variance(t), n, "eps={eps} t={t}");
    }

    /// Normalized frequency estimates always form a probability vector.
    #[test]
    fn normalized_estimates_on_simplex(seed in 0u64..200, k in 2u32..12, n in 1usize..40) {
        let oracle = Oue::new(Epsilon::new(0.5).unwrap(), k).unwrap();
        let mut rng = seeded_rng(seed);
        let mut acc = FrequencyAccumulator::new(k, 1.0);
        for i in 0..n as u32 {
            let rep = oracle.perturb(i % k, &mut rng).unwrap();
            acc.add(&oracle, &rep);
        }
        let est = acc.estimate_normalized().unwrap();
        prop_assert!((est.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(est.iter().all(|&f| (0.0..=1.0).contains(&f)));
    }
}
