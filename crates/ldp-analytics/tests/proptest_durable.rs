//! Durability-layer property tests.
//!
//! Two families of contracts:
//!
//! 1. **State codecs roundtrip bit-exactly.** The partial-state payloads
//!    behind epoch checkpoints — [`MeanAccumulator`], [`FrequencyAccumulator`],
//!    [`BudgetLedger`], and whole-[`Aggregator`] partials — decode back to
//!    state whose every future estimate matches the original to the bit,
//!    and re-encoding reproduces the original bytes. Exact-length framing
//!    means a payload one byte short or long is rejected, never guessed at.
//! 2. **Recovery is total and at-most-once.** [`Recovery::replay`] over a
//!    valid log mutilated by arbitrary truncation or a single bit flip
//!    never panics and never double-spends budget: it either recovers
//!    exactly the records untouched by the fault (a torn tail), or returns
//!    a typed [`LdpError::WalCorrupt`] for mid-log damage.

use ldp_analytics::durable::{DurableConfig, DurableService, Recovery, WAL_FILE};
use ldp_analytics::pipeline::Protocol;
use ldp_analytics::service::{encode_report, WireMessage};
use ldp_analytics::session::{Aggregator, ClientEncoder};
use ldp_analytics::{BudgetLedger, FrequencyAccumulator, MeanAccumulator};
use ldp_core::frame::FRAME_HEADER_BYTES;
use ldp_core::multidim::wire::{BitReader, BitWriter};
use ldp_core::multidim::{AttrSpec, AttrValue};
use ldp_core::rng::seeded_rng;
use ldp_core::DebiasParams;
use ldp_core::{Epsilon, LdpError, NumericKind, OracleKind};
use proptest::prelude::*;
use std::path::{Path, PathBuf};

fn specs() -> Vec<AttrSpec> {
    vec![AttrSpec::Numeric, AttrSpec::Categorical { k: 4 }]
}

fn protocol() -> Protocol {
    Protocol::Sampling {
        numeric: NumericKind::Hybrid,
        oracle: OracleKind::Oue,
    }
}

fn epsilon() -> Epsilon {
    Epsilon::new(1.0).unwrap()
}

fn hello() -> WireMessage {
    WireMessage::Hello {
        protocol: protocol(),
        epsilon: epsilon(),
        specs: specs(),
        epoch: 0,
    }
}

fn submit(user: u64, seed: u64) -> WireMessage {
    let encoder = ClientEncoder::new(protocol(), epsilon(), specs()).unwrap();
    let mut rng = seeded_rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ user);
    let record = vec![
        AttrValue::Numeric(((user % 5) as f64) / 2.5 - 1.0),
        AttrValue::Categorical((user % 4) as u32),
    ];
    let report = encoder.encode(&record, &mut rng).unwrap();
    WireMessage::Submit {
        user,
        epoch: 0,
        block: user % 3,
        report: encode_report(&report, &specs()),
    }
}

/// A per-case scratch directory, recreated from empty on every use so
/// shrinking reruns never see stale files.
fn scratch(tag: &str, a: u64, b: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "ldp-proptest-durable-{}-{tag}-{a}-{b}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Writes a valid WAL of `users` admitted submits and returns its bytes.
fn build_wal(dir: &Path, config: &DurableConfig, users: u64, seed: u64) -> Vec<u8> {
    let (mut service, report) = DurableService::open(dir, config.clone()).unwrap();
    assert_eq!(report.recovered_admits(), 0);
    service.handle(&hello()).unwrap();
    for user in 0..users {
        service.handle(&submit(user, seed)).unwrap();
    }
    drop(service.into_service());
    std::fs::read(dir.join(WAL_FILE)).unwrap()
}

/// Independent frame walk (straight off the length fields, no checksum
/// logic shared with `durable::scan`): byte ranges of every complete
/// frame in `image`, header record included.
fn frame_bounds(image: &[u8]) -> Vec<(usize, usize)> {
    let mut bounds = Vec::new();
    let mut off = 0usize;
    while off + FRAME_HEADER_BYTES <= image.len() {
        let len = u32::from_be_bytes(image[off..off + 4].try_into().unwrap()) as usize;
        let end = off + FRAME_HEADER_BYTES + len;
        if end > image.len() {
            break;
        }
        bounds.push((off, end));
        off = end;
    }
    bounds
}

/// Submit records (frames after the header record) ending at or before
/// `cut` — the exact prefix a fault at byte `cut` must leave recoverable.
fn submits_before(image: &[u8], cut: usize) -> u64 {
    frame_bounds(image)
        .iter()
        .skip(1)
        .filter(|(_, end)| *end <= cut)
        .count() as u64
}

/// Asserts the recovered service double-spent nothing: every replayed
/// admit is a distinct (user, epoch) and no rejection was ever counted.
fn assert_no_double_spend(service: &ldp_analytics::ReportService, recovered: u64) {
    assert_eq!(service.ledger().total_rejected(), 0, "budget double-spend");
    let epochs: Vec<u64> = service.ledger().epochs().collect();
    let admitted: u64 = epochs.iter().map(|&e| service.ledger().admitted(e)).sum();
    assert_eq!(admitted, recovered, "ledger admits disagree with report");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Mean-accumulator state roundtrips bit-exactly through an
    /// exact-length payload, for every dimensionality and report count.
    #[test]
    fn mean_state_roundtrips_bit_exact(
        d in 1usize..6,
        vals in prop::collection::vec(-1.0f64..=1.0, 0..60),
    ) {
        let mut acc = MeanAccumulator::new(d);
        for row in vals.chunks_exact(d) {
            acc.add_dense(row).unwrap();
        }
        let mut w = BitWriter::new();
        acc.encode_state(&mut w);
        let bytes = w.finish();
        prop_assert_eq!(bytes.len(), MeanAccumulator::state_bits(d).div_ceil(8));

        let mut back = MeanAccumulator::new(d);
        back.decode_state(&mut BitReader::new(&bytes)).unwrap();
        prop_assert_eq!(back.n(), acc.n());
        if acc.n() > 0 {
            for (x, y) in acc.estimate().unwrap().iter().zip(back.estimate().unwrap()) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        let mut w2 = BitWriter::new();
        back.encode_state(&mut w2);
        prop_assert_eq!(w2.finish(), bytes, "re-encode must be byte-identical");
    }

    /// Frequency-accumulator state roundtrips bit-exactly; a truncated
    /// payload is a typed error, never a panic or a partial decode.
    #[test]
    fn frequency_state_roundtrips_bit_exact(
        k in 1u32..12,
        reports in 0usize..40,
        hits in prop::collection::vec(0u32..12, 0..40),
    ) {
        let debias = DebiasParams { p: 0.75, q: 0.25 };
        let mut acc = FrequencyAccumulator::with_debias(k, 1.25, debias);
        for _ in 0..reports {
            acc.note_report();
        }
        for &h in &hits {
            acc.note_hit(h % k);
        }
        let mut w = BitWriter::new();
        acc.encode_state(&mut w);
        let bytes = w.finish();
        prop_assert_eq!(bytes.len(), FrequencyAccumulator::state_bits(k).div_ceil(8));

        let mut back = FrequencyAccumulator::with_debias(k, 1.25, debias);
        back.decode_state(&mut BitReader::new(&bytes)).unwrap();
        prop_assert_eq!(back.reports(), acc.reports());
        prop_assert_eq!(back.counts(), acc.counts());

        if bytes.len() > 1 {
            let mut fresh = FrequencyAccumulator::with_debias(k, 1.25, debias);
            prop_assert!(fresh
                .decode_state(&mut BitReader::new(&bytes[..bytes.len() - 8]))
                .is_err());
        }
    }

    /// Ledger state roundtrips exactly — same admits, same rejections,
    /// same membership answers — and rejects length-mismatched payloads.
    #[test]
    fn ledger_state_roundtrips_and_rejects_bad_lengths(
        key in 0u64..u64::MAX,
        pairs in prop::collection::vec((0u64..40, 0u64..4), 0..64),
    ) {
        let mut ledger = BudgetLedger::with_key(key);
        for &(user, epoch) in &pairs {
            let _ = ledger.admit(user, epoch);
        }
        let bytes = ledger.encode_state();
        let back = BudgetLedger::decode_state(&bytes).unwrap();
        prop_assert_eq!(back.encode_state(), bytes.clone(), "re-encode must match");
        for epoch in 0..4 {
            prop_assert_eq!(back.admitted(epoch), ledger.admitted(epoch));
            prop_assert_eq!(back.rejected(epoch), ledger.rejected(epoch));
        }
        for &(user, epoch) in &pairs {
            prop_assert!(back.contains(user, epoch));
        }
        prop_assert!(!back.contains(99, 0), "unadmitted user must stay absent");

        let mut longer = bytes.clone();
        longer.push(0);
        prop_assert!(BudgetLedger::decode_state(&longer).is_err());
        if !bytes.is_empty() {
            prop_assert!(BudgetLedger::decode_state(&bytes[..bytes.len() - 1]).is_err());
        }
    }

    /// Whole-aggregator partials roundtrip: a fresh same-session
    /// aggregator fed the encoded partials snapshots bit-identically.
    #[test]
    fn aggregator_partials_roundtrip_bit_identical(
        seed in 0u64..1_000_000,
        users in 1u64..12,
    ) {
        let encoder = ClientEncoder::new(protocol(), epsilon(), specs()).unwrap();
        let mut agg = Aggregator::new(protocol(), epsilon(), specs()).unwrap();
        for user in 0..users {
            let mut rng = seeded_rng(seed ^ user.wrapping_mul(0x0C4A));
            let record = vec![
                AttrValue::Numeric(((user % 7) as f64) / 3.5 - 1.0),
                AttrValue::Categorical((user % 4) as u32),
            ];
            agg.set_ordinal(user % 3);
            agg.absorb(&encoder.encode(&record, &mut rng).unwrap()).unwrap();
        }
        let bytes = agg.encode_partials();
        let mut back = Aggregator::new(protocol(), epsilon(), specs()).unwrap();
        back.decode_partials(&bytes).unwrap();
        prop_assert_eq!(back.encode_partials(), bytes, "re-encode must match");

        let a = agg.snapshot().unwrap();
        let b = back.snapshot().unwrap();
        prop_assert_eq!(a.n, b.n);
        for ((i, x), (j, y)) in a.means.iter().zip(b.means.iter()) {
            prop_assert_eq!(i, j);
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
        for ((i, xs), (j, ys)) in a.frequencies.iter().zip(b.frequencies.iter()) {
            prop_assert_eq!(i, j);
            for (x, y) in xs.iter().zip(ys) {
                prop_assert_eq!(x.to_bits(), y.to_bits());
            }
        }

        let mut fresh = Aggregator::new(protocol(), epsilon(), specs()).unwrap();
        let mut longer = bytes.clone();
        longer.push(0xFF);
        prop_assert!(fresh.decode_partials(&longer).is_err(), "trailing junk");
    }
}

proptest! {
    // Each case builds a real WAL through the durable service, so keep
    // the case count modest; the interesting space is the fault position.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Truncating a valid log at ANY byte is a torn tail: replay succeeds,
    /// recovers exactly the complete records before the cut, and spends
    /// each budget unit at most once.
    #[test]
    fn replay_of_any_truncation_recovers_the_exact_prefix(
        seed in 0u64..1_000_000,
        users in 3u64..10,
        cut_frac in 0.0f64..1.0,
    ) {
        let dir = scratch("trunc", seed, users);
        let config = DurableConfig::default();
        let image = build_wal(&dir, &config, users, seed);
        let cut = ((image.len() as f64) * cut_frac) as usize;

        std::fs::write(dir.join(WAL_FILE), &image[..cut]).unwrap();
        let (service, _, report) = Recovery::replay(&dir, &config).unwrap();
        prop_assert!(!report.had_checkpoint);
        prop_assert_eq!(report.checkpointed, 0);
        prop_assert_eq!(report.wal_rejected, 0);
        prop_assert_eq!(report.wal_replayed, submits_before(&image, cut));
        assert_no_double_spend(&service, report.recovered_admits());

        // Replay truncated the torn bytes off; a second replay is clean
        // and recovers the identical prefix (recovery is idempotent).
        let (service2, _, report2) = Recovery::replay(&dir, &config).unwrap();
        prop_assert_eq!(report2.wal_replayed, report.wal_replayed);
        prop_assert_eq!(report2.truncated_bytes, 0);
        assert_no_double_spend(&service2, report2.recovered_admits());

        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Flipping ANY single bit of a valid log never panics and never
    /// double-spends: replay either returns a typed `WalCorrupt` (damage
    /// with durable records after it) or recovers exactly the records
    /// before the damaged one (damage in the tail → torn-tail truncation).
    #[test]
    fn replay_of_any_single_bit_flip_is_total_and_at_most_once(
        seed in 0u64..1_000_000,
        users in 3u64..10,
        flip_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let dir = scratch("flip", seed, users);
        let config = DurableConfig::default();
        let image = build_wal(&dir, &config, users, seed);
        let byte = (((image.len() - 1) as f64) * flip_frac) as usize;

        let mut damaged = image.clone();
        damaged[byte] ^= 1 << bit;
        std::fs::write(dir.join(WAL_FILE), &damaged).unwrap();

        match Recovery::replay(&dir, &config) {
            Ok((service, _, report)) => {
                prop_assert_eq!(report.wal_rejected, 0);
                prop_assert!(
                    report.wal_replayed <= submits_before(&image, byte),
                    "recovered a record at or after the flipped byte"
                );
                assert_no_double_spend(&service, report.recovered_admits());
            }
            Err(LdpError::WalCorrupt { offset, .. }) => {
                prop_assert!(
                    (offset as usize) <= byte,
                    "corruption reported at {offset}, but the flip was at {byte}"
                );
            }
            Err(other) => prop_assert!(false, "unexpected error kind: {other:?}"),
        }

        let _ = std::fs::remove_dir_all(&dir);
    }
}
