//! Transport-layer property tests.
//!
//! Three contracts:
//!
//! 1. The [`Backoff`] schedule is a pure function of its seed — same
//!    seed, same jittered delays, on every platform and every run.
//! 2. Every delay is bounded by the deterministic envelope and the cap,
//!    and the envelope is monotone until it saturates at the cap.
//! 3. Retrying an already-admitted submit through the full transport
//!    stack never increments `admitted` — the ledger answers `Duplicate`,
//!    the client reports [`SubmitOutcome::AlreadyAdmitted`], and the
//!    epoch's budget is spent at most once.

use std::thread;
use std::time::Duration;

use ldp_analytics::pipeline::Protocol;
use ldp_analytics::service::{encode_report, WireMessage};
use ldp_analytics::session::ClientEncoder;
use ldp_analytics::transport::{
    duplex, Backoff, ClientConfig, Connect, PipeStream, ReportClient, ReportServer, ServerConfig,
    SubmitOutcome,
};
use ldp_core::multidim::{AttrSpec, AttrValue};
use ldp_core::rng::seeded_rng;
use ldp_core::{Epsilon, IoFault, LdpError, NumericKind, OracleKind};
use proptest::prelude::*;

fn specs() -> Vec<AttrSpec> {
    vec![AttrSpec::Numeric, AttrSpec::Categorical { k: 3 }]
}

fn protocol() -> Protocol {
    Protocol::Sampling {
        numeric: NumericKind::Hybrid,
        oracle: OracleKind::Oue,
    }
}

fn hello() -> WireMessage {
    WireMessage::Hello {
        protocol: protocol(),
        epsilon: Epsilon::new(1.0).unwrap(),
        specs: specs(),
        epoch: 0,
    }
}

fn report_bytes(user: u64, seed: u64) -> Vec<u8> {
    let encoder = ClientEncoder::new(protocol(), Epsilon::new(1.0).unwrap(), specs()).unwrap();
    let mut rng = seeded_rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ user);
    let record = vec![AttrValue::Numeric(-0.5), AttrValue::Categorical(2)];
    let report = encoder.encode(&record, &mut rng).unwrap();
    encode_report(&report, &specs())
}

/// Hands out pre-wired duplex halves, one per connect.
struct QueueConnector {
    streams: Vec<PipeStream>,
}

impl Connect for QueueConnector {
    type Stream = PipeStream;
    fn connect(&mut self) -> ldp_core::Result<Self::Stream> {
        self.streams.pop().ok_or(LdpError::ConnectionLost {
            op: "connect",
            cause: IoFault {
                kind: std::io::ErrorKind::ConnectionRefused,
                message: "no more test streams".into(),
            },
        })
    }
}

fn no_sleep_config() -> ClientConfig {
    ClientConfig {
        max_attempts: 8,
        max_resends: 8,
        backoff_base: Duration::ZERO,
        backoff_cap: Duration::ZERO,
        backoff_seed: 3,
    }
}

proptest! {
    /// Contract 1: the jittered schedule is deterministic per seed.
    #[test]
    fn backoff_schedule_is_deterministic_per_seed(
        seed in 0u64..1_000_000,
        base_ms in 0u64..200,
        cap_ms in 1u64..2_000,
        draws in 1usize..64,
    ) {
        let base = Duration::from_millis(base_ms);
        let cap = Duration::from_millis(cap_ms);
        let mut a = Backoff::new(seed, base, cap);
        let mut b = Backoff::new(seed, base, cap);
        for i in 0..draws {
            prop_assert_eq!(a.next_delay(), b.next_delay(), "diverged at draw {}", i);
        }
    }

    /// Contract 2: delays live inside the envelope, the envelope is
    /// monotone, and nothing ever exceeds the cap — even after resets and
    /// attempt counts far past the doubling range.
    #[test]
    fn backoff_delays_are_bounded_by_the_monotone_envelope(
        seed in 0u64..1_000_000,
        base_ms in 0u64..200,
        cap_ms in 1u64..2_000,
        draws in 1u32..64,
        reset_at in 0u32..64,
    ) {
        let base = Duration::from_millis(base_ms);
        let cap = Duration::from_millis(cap_ms);
        let mut bo = Backoff::new(seed, base, cap);
        let mut prev_env = Duration::ZERO;
        for attempt in 0..draws {
            let env = bo.envelope(bo.attempt());
            let delay = bo.next_delay();
            prop_assert!(env <= cap, "envelope {env:?} above cap {cap:?}");
            prop_assert!(delay <= env, "delay {delay:?} above envelope {env:?}");
            if attempt == reset_at {
                bo.reset();
                prev_env = Duration::ZERO;
            } else {
                prop_assert!(env >= prev_env, "envelope shrank at attempt {attempt}");
                prev_env = env;
            }
        }
        prop_assert!(bo.envelope(u32::MAX) <= cap);
    }

    /// Contract 3: resending admitted reports through the full
    /// client/server stack never double-spends budget. `admitted` stays
    /// at the distinct-user count, every resend lands as a counted
    /// duplicate, and the client sees each as `AlreadyAdmitted`.
    #[test]
    fn duplicate_retries_never_increment_admitted(
        seed in 0u64..1_000_000,
        users in 1u64..12,
        resend_mask in 0u64..4096,
    ) {
        let server = ReportServer::start(ServerConfig::default());
        let (client_half, mut server_half) = duplex();
        let handle = server.handle();
        let conn_thread = thread::spawn(move || handle.serve_stream(&mut server_half));

        let connector = QueueConnector { streams: vec![client_half] };
        let mut client = ReportClient::new(connector, hello(), no_sleep_config()).unwrap();
        for user in 0..users {
            let outcome = client
                .submit(user, 0, user % 4, report_bytes(user, seed))
                .unwrap();
            prop_assert_eq!(outcome, SubmitOutcome::Admitted);
        }
        let mut resends = 0u64;
        for user in 0..users {
            if resend_mask >> user & 1 == 1 {
                let outcome = client
                    .submit(user, 0, user % 4, report_bytes(user, seed))
                    .unwrap();
                prop_assert_eq!(outcome, SubmitOutcome::AlreadyAdmitted);
                resends += 1;
            }
        }
        prop_assert_eq!(client.stats().duplicate_acks, resends);

        let receipt = client.flush_epoch(0).unwrap();
        prop_assert_eq!(receipt.admitted, users, "resends must never admit");
        prop_assert_eq!(receipt.rejected_duplicates, resends);
        prop_assert_eq!(receipt.users, users);

        client.close();
        let summary = conn_thread.join().unwrap();
        prop_assert!(summary.shutdown && summary.fault.is_none());

        let service = server.finish();
        let snap = service.snapshot_epoch(0).unwrap();
        prop_assert_eq!(snap.admitted, users);
        prop_assert_eq!(snap.rejected_duplicates, resends);
        prop_assert_eq!(snap.result.map(|r| r.n as u64), Some(users));
    }
}
