//! Property-based equivalence tests for the word-histogram aggregation
//! plane.
//!
//! The contract under test is *exactness*: absorbing unary reports by
//! 64-bit words into the bit-sliced [`WordHistogram`] — across any domain
//! size (word-multiple or not), any plane depth / flush boundary, any
//! split of the stream into merged shards, and any oracle — must leave
//! counts and estimates **bit-identical** to the per-set-bit scatter it
//! replaced. No tolerance anywhere: these are integer counters and a
//! shared one-shot debias.

use ldp_analytics::{FrequencyAccumulator, WordHistogram};
use ldp_core::rng::seeded_rng;
use ldp_core::{BitVec, CategoricalReport, Epsilon, OracleKind};
use proptest::prelude::*;
use rand::RngCore;

/// A random well-formed k-bit vector with roughly `density` of its bits
/// set (word-RNG masked down, tail bits cleared).
fn random_bits(k: u32, density: u32, rng: &mut impl RngCore) -> BitVec {
    let words = (k as usize).div_ceil(64);
    let mut ws: Vec<u64> = (0..words)
        .map(|_| {
            // AND of `density` random words: P[bit set] = 2^-density.
            let mut w = rng.next_u64();
            for _ in 1..density {
                w &= rng.next_u64();
            }
            w
        })
        .collect();
    let tail = k % 64;
    if tail != 0 {
        ws[words - 1] &= (1u64 << tail) - 1;
    }
    BitVec::from_words(k, ws).expect("masked to well-formed")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Raw kernel equivalence: `WordHistogram::add_words` counts exactly
    /// like a per-set-bit walk, for any k in 1..=300 (including
    /// non-word-multiple domains), any plane depth (so the stream crosses
    /// plane flushes every ≲ 2^planes reports), and with partially-filled
    /// batches and pending planes at read time.
    #[test]
    fn word_histogram_matches_scatter_for_any_domain_and_flush_boundary(
        k in 1u32..=300,
        planes in 4u32..=6,
        density in 1u32..=3,
        reports in 1usize..200,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = seeded_rng(seed);
        let mut hist = WordHistogram::with_planes(k, planes);
        let mut reference = vec![0u64; k as usize];
        for _ in 0..reports {
            let bits = random_bits(k, density, &mut rng);
            for v in bits.iter_ones() {
                reference[v as usize] += 1;
            }
            hist.add_bits(&bits);
        }
        prop_assert_eq!(hist.counts(), reference);
    }

    /// Accumulator-level equivalence across every oracle kind: absorbing a
    /// report stream via `count_report`, via `add`, and via the streamed
    /// `note_report`/`note_hit` path leaves three accumulators with
    /// identical counts and bit-identical estimates — and so does chopping
    /// the stream into shards and merging them in a rotated (out-of-order)
    /// order.
    #[test]
    fn absorb_paths_and_merge_orders_are_bit_identical(
        oracle_pick in 0usize..3,
        k in 2u32..=300,
        eps in 0.4f64..6.0,
        reports in 1usize..150,
        shards in 1usize..6,
        rotate in 0usize..6,
        seed in 0u64..1_000_000,
    ) {
        let oracle_kind = [OracleKind::Oue, OracleKind::Sue, OracleKind::Grr][oracle_pick];
        let eps = Epsilon::new(eps).unwrap();
        let oracle = oracle_kind.build(eps, k).unwrap();
        let debias = oracle.debias_params();
        let scale = 1.75; // arbitrary protocol scale, shared by all sides
        let mut rng = seeded_rng(seed);

        let mut by_count = FrequencyAccumulator::with_debias(k, scale, debias);
        let mut by_add = FrequencyAccumulator::with_debias(k, scale, debias);
        let mut by_note = FrequencyAccumulator::with_debias(k, scale, debias);
        let mut parts: Vec<FrequencyAccumulator> = (0..shards)
            .map(|_| FrequencyAccumulator::with_debias(k, scale, debias))
            .collect();

        for i in 0..reports {
            let rep = oracle.perturb(i as u32 % k, &mut rng).unwrap();
            by_count.count_report(&rep);
            by_add.add(oracle.as_ref(), &rep);
            by_note.note_report();
            match &rep {
                CategoricalReport::Bits(bits) => {
                    // The streamed per-hit path the word plane replaced —
                    // kept as the semantic reference.
                    for v in bits.iter_ones() {
                        by_note.note_hit(v);
                    }
                }
                CategoricalReport::Value(x) => by_note.note_hit(*x),
            }
            parts[i % shards].count_report(&rep);
        }

        let reference = by_count.counts();
        prop_assert_eq!(&by_add.counts(), &reference);
        prop_assert_eq!(&by_note.counts(), &reference);

        // Merge the shards starting from an arbitrary rotation: integer
        // counts make any merge order exact.
        let mut merged = FrequencyAccumulator::with_debias(k, scale, debias);
        for s in 0..shards {
            merged.merge(&parts[(s + rotate) % shards]).unwrap();
        }
        prop_assert_eq!(merged.reports(), reports);
        prop_assert_eq!(&merged.counts(), &reference);

        // And the one-shot debias sees identical integers, so estimates are
        // bit-identical (not merely close).
        for acc in [&by_add, &by_note, &merged] {
            prop_assert_eq!(acc.estimate().unwrap(), by_count.estimate().unwrap());
        }
    }
}
