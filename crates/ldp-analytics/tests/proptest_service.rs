//! Adversarial properties of the wire boundary.
//!
//! Three contracts, every one a regression gate rather than a claim:
//!
//! 1. **Round trip** — every `Report` variant survives the framed codec
//!    (report bytes → `Submit` frame → frame reader → report) bit-exactly.
//! 2. **Rejection safety** — truncated, bit-flipped, oversized-length and
//!    garbage-payload frames produce typed errors (never a panic) and
//!    leave the aggregate snapshot bit-identical to before the bytes
//!    arrived.
//! 3. **Ledger soundness** — the privacy-budget ledger matches a reference
//!    set model under arbitrary submit sequences, and sharding + merge is
//!    indistinguishable from serial processing.

use ldp_analytics::pipeline::block_rng;
use ldp_analytics::service::{
    decode_report, encode_report, ReportService, ServiceConfig, WireMessage,
};
use ldp_analytics::{
    BestEffortNumeric, BudgetLedger, ClientEncoder, CollectionResult, Protocol, Report,
};
use ldp_core::frame;
use ldp_core::rng::RngBlock;
use ldp_core::{AttrSpec, AttrValue, Epsilon, LdpError, NumericKind, OracleKind};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// The protocol grid the adversarial suite sweeps: both families, every
/// oracle payload shape (unary bit vectors, direct values), both numeric
/// treatments.
fn protocol_pick(pick: u8) -> Protocol {
    match pick % 6 {
        0 => Protocol::Sampling {
            numeric: NumericKind::Hybrid,
            oracle: OracleKind::Oue,
        },
        1 => Protocol::Sampling {
            numeric: NumericKind::Piecewise,
            oracle: OracleKind::Grr,
        },
        2 => Protocol::Sampling {
            numeric: NumericKind::Hybrid,
            oracle: OracleKind::Sue,
        },
        3 => Protocol::BestEffort {
            numeric: BestEffortNumeric::PerAttribute(NumericKind::Laplace),
            oracle: OracleKind::Oue,
        },
        4 => Protocol::BestEffort {
            numeric: BestEffortNumeric::PerAttribute(NumericKind::Laplace),
            oracle: OracleKind::Grr,
        },
        _ => Protocol::BestEffort {
            numeric: BestEffortNumeric::DuchiMultidim,
            oracle: OracleKind::Oue,
        },
    }
}

fn needs_numeric(protocol: Protocol) -> bool {
    matches!(
        protocol,
        Protocol::BestEffort {
            numeric: BestEffortNumeric::DuchiMultidim,
            ..
        }
    )
}

fn schema(d_num: usize, doms: &[u32]) -> Vec<AttrSpec> {
    let mut specs = vec![AttrSpec::Numeric; d_num];
    specs.extend(doms.iter().map(|&k| AttrSpec::Categorical { k }));
    specs
}

fn tuple_for(specs: &[AttrSpec], user: u64) -> Vec<AttrValue> {
    specs
        .iter()
        .enumerate()
        .map(|(j, spec)| match spec {
            AttrSpec::Numeric => AttrValue::Numeric(((user + j as u64) % 21) as f64 / 10.0 - 1.0),
            AttrSpec::Categorical { k } => {
                AttrValue::Categorical(((user + j as u64) % u64::from(*k)) as u32)
            }
        })
        .collect()
}

fn encode_user(encoder: &ClientEncoder, user: u64, seed: u64) -> Report {
    let mut rng: RngBlock<rand::rngs::StdRng> = RngBlock::new(block_rng(seed, user as usize));
    let mut report = encoder.empty_report();
    let mut scratch = encoder.scratch();
    encoder
        .encode_into(
            &tuple_for(encoder.specs(), user),
            &mut rng,
            &mut report,
            &mut scratch,
        )
        .unwrap();
    report
}

fn assert_bit_identical(a: &CollectionResult, b: &CollectionResult, label: &str) {
    assert_eq!(a.n, b.n, "{label}: population");
    let (ma, mb) = (a.mean_vector(), b.mean_vector());
    assert_eq!(ma.len(), mb.len(), "{label}: mean arity");
    for (j, (x, y)) in ma.iter().zip(&mb).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{label}: mean[{j}] {x} vs {y}");
    }
    assert_eq!(a.frequencies.len(), b.frequencies.len(), "{label}");
    for ((ja, fa), (jb, fb)) in a.frequencies.iter().zip(&b.frequencies) {
        assert_eq!(ja, jb, "{label}: frequency attribute order");
        for (v, (x, y)) in fa.iter().zip(fb).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{label}: freq[{ja}][{v}] {x} vs {y}"
            );
        }
    }
}

/// A service that has already admitted `warm` reports, plus the snapshot
/// of its state — the baseline an adversarial stream must not disturb.
fn warmed_service(
    protocol: Protocol,
    specs: &[AttrSpec],
    warm: u64,
    seed: u64,
) -> (ReportService, ClientEncoder, ldp_analytics::EpochSnapshot) {
    let eps = Epsilon::new(1.0).unwrap();
    let encoder = ClientEncoder::new(protocol, eps, specs.to_vec()).unwrap();
    let mut service = ReportService::new(ServiceConfig::default());
    service
        .handle(&WireMessage::Hello {
            protocol,
            epsilon: eps,
            specs: specs.to_vec(),
            epoch: 0,
        })
        .unwrap();
    for user in 0..warm {
        service
            .handle(&WireMessage::Submit {
                user,
                epoch: 0,
                block: user % 4,
                report: encode_report(&encode_user(&encoder, user, seed), specs),
            })
            .unwrap();
    }
    let baseline = service.snapshot_epoch(0).unwrap();
    (service, encoder, baseline)
}

fn assert_snapshot_unchanged(service: &ReportService, baseline: &ldp_analytics::EpochSnapshot) {
    let now = service.snapshot_epoch(0).unwrap();
    assert_eq!(now.admitted, baseline.admitted, "admitted count moved");
    assert_eq!(
        now.rejected_duplicates, baseline.rejected_duplicates,
        "duplicate count moved"
    );
    match (&baseline.result, &now.result) {
        (None, None) => {}
        (Some(a), Some(b)) => assert_bit_identical(a, b, "after rejected frame"),
        _ => panic!("snapshot presence changed after a rejected frame"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Contract 1: every report variant round-trips through the framed
    /// codec bit-exactly — via the raw codec and via a full `Submit`
    /// frame read back from a byte stream.
    #[test]
    fn every_report_variant_round_trips(
        pick in 0u8..6,
        seed in 0u64..1_000_000,
        d_num in 0usize..3,
        doms in prop::collection::vec(2u32..70, 0..3),
        user in 0u64..500,
    ) {
        let protocol = protocol_pick(pick);
        prop_assume!(d_num + doms.len() > 0);
        prop_assume!(!needs_numeric(protocol) || d_num > 0);
        let specs = schema(d_num, &doms);
        let eps = Epsilon::new(1.25).unwrap();
        let encoder = ClientEncoder::new(protocol, eps, specs.clone()).unwrap();
        let report = encode_user(&encoder, user, seed);

        // Raw codec round trip.
        let bytes = encode_report(&report, &specs);
        let back = decode_report(protocol, &specs, &bytes).unwrap();
        prop_assert_eq!(&back, &report);

        // Full framed round trip.
        let msg = WireMessage::Submit { user, epoch: 3, block: user % 7, report: bytes };
        let mut stream = Vec::new();
        msg.write_to(&mut stream).unwrap();
        let mut scratch = Vec::new();
        let decoded = WireMessage::read_from(&mut stream.as_slice(), &mut scratch)
            .unwrap()
            .expect("one frame on the stream");
        prop_assert_eq!(&decoded, &msg);
        let WireMessage::Submit { report: wire_bytes, .. } = decoded else { unreachable!() };
        let back = decode_report(protocol, &specs, &wire_bytes).unwrap();
        prop_assert_eq!(&back, &report);
    }

    /// Contract 2a: a frame truncated at any point surfaces a typed
    /// [`StreamFault`] whose offset names the frame's first byte, and the
    /// snapshot does not move.
    #[test]
    fn truncated_frames_are_typed_errors_and_state_is_unchanged(
        pick in 0u8..6,
        seed in 0u64..1_000_000,
        cut_pick in 0usize..10_000,
        warm in 1u64..30,
    ) {
        let protocol = protocol_pick(pick);
        let specs = schema(2, &[5]);
        let (mut service, encoder, baseline) = warmed_service(protocol, &specs, warm, seed);

        let frame_bytes = WireMessage::Submit {
            user: 10_000,
            epoch: 0,
            block: 0,
            report: encode_report(&encode_user(&encoder, 10_000, seed), &specs),
        }
        .to_frame()
        .unwrap();
        let cut = 1 + cut_pick % (frame_bytes.len() - 1);
        let truncated = &frame_bytes[..cut];

        let summary = service.serve(&mut &truncated[..]).unwrap();
        prop_assert_eq!(summary.admitted, 0, "truncated frame was admitted");
        let fault = summary.desync.expect("truncation must surface as a fault");
        prop_assert_eq!(fault.offset, 0, "fault must name the frame's first byte");
        prop_assert!(
            matches!(&fault.error, LdpError::MalformedFrame { .. }),
            "{}",
            fault.error
        );
        assert_snapshot_unchanged(&service, &baseline);
    }

    /// Contract 2b: flipping any single bit of a framed submit is never
    /// absorbed — it is either a counted malformed frame (reader kept
    /// sync) or a typed stream abort — and the snapshot does not move.
    #[test]
    fn bit_flipped_frames_never_corrupt_state(
        pick in 0u8..6,
        seed in 0u64..1_000_000,
        bit_pick in 0usize..100_000,
        warm in 1u64..30,
    ) {
        let protocol = protocol_pick(pick);
        let specs = schema(2, &[5]);
        let (mut service, encoder, baseline) = warmed_service(protocol, &specs, warm, seed);

        let mut frame_bytes = WireMessage::Submit {
            user: 10_000,
            epoch: 0,
            block: 0,
            report: encode_report(&encode_user(&encoder, 10_000, seed), &specs),
        }
        .to_frame()
        .unwrap();
        let bit = bit_pick % (frame_bytes.len() * 8);
        frame_bytes[bit / 8] ^= 1 << (bit % 8);

        let summary = service.serve(&mut frame_bytes.as_slice()).unwrap();
        prop_assert_eq!(summary.admitted, 0, "corrupted frame was admitted");
        match summary.desync {
            None => {
                prop_assert!(
                    summary.rejected_malformed > 0,
                    "corruption neither rejected nor fatal"
                );
            }
            Some(fault) => {
                prop_assert_eq!(fault.offset, 0, "fault must name the frame's first byte");
                prop_assert!(
                    matches!(&fault.error, LdpError::MalformedFrame { .. }),
                    "{}",
                    fault.error
                );
            }
        }
        assert_snapshot_unchanged(&service, &baseline);
    }

    /// Contract 2c: random garbage inside a *well-formed* frame (valid
    /// checksum, valid submit envelope) is rejected at the message gate,
    /// serving continues, and the snapshot does not move.
    #[test]
    fn garbage_report_payloads_are_rejected_in_stride(
        pick in 0u8..6,
        seed in 0u64..1_000_000,
        garbage in prop::collection::vec(0u8..=255, 0..60),
        warm in 1u64..30,
    ) {
        let protocol = protocol_pick(pick);
        let specs = schema(2, &[5]);
        let (mut service, encoder, baseline) = warmed_service(protocol, &specs, warm, seed);

        let mut stream = Vec::new();
        WireMessage::Submit { user: 10_000, epoch: 0, block: 0, report: garbage }
            .write_to(&mut stream)
            .unwrap();
        // A healthy submit after the garbage: the service must still be
        // serving.
        WireMessage::Submit {
            user: 10_001,
            epoch: 0,
            block: 0,
            report: encode_report(&encode_user(&encoder, 10_001, seed), &specs),
        }
        .write_to(&mut stream)
        .unwrap();

        let summary = service.serve(&mut stream.as_slice()).unwrap();
        prop_assert!(summary.admitted >= 1, "healthy submit after garbage was lost");
        // `rejected_malformed == 0` would mean the garbage parsed as a
        // canonical, schema-valid report (astronomically unlikely) and was
        // legitimately admitted; otherwise the rejection left exactly the
        // healthy report's worth of state change.
        if summary.rejected_malformed > 0 {
            prop_assert_eq!(summary.rejected_malformed, 1);
            prop_assert_eq!(summary.admitted, 1);
            let now = service.snapshot_epoch(0).unwrap();
            prop_assert_eq!(now.admitted, baseline.admitted + 1);
        }
    }

    /// Contract 3a: the ledger matches a reference set model over
    /// arbitrary (user, epoch) sequences.
    #[test]
    fn ledger_matches_reference_model(
        key in 0u64..1_000_000,
        // Each draw packs (user, epoch): user = v % 40, epoch = v / 40.
        packed in prop::collection::vec(0u64..160, 1..120),
    ) {
        let submits: Vec<(u64, u64)> = packed.iter().map(|v| (v % 40, v / 40)).collect();
        let mut ledger = BudgetLedger::with_key(key);
        let mut model: BTreeSet<(u64, u64)> = BTreeSet::new();
        let mut model_rejected = 0u64;
        for &(user, epoch) in &submits {
            let admitted = model.insert((epoch, user));
            if !admitted {
                model_rejected += 1;
            }
            match ledger.admit(user, epoch) {
                Ok(()) => prop_assert!(admitted, "ledger admitted a duplicate"),
                Err(LdpError::DuplicateReport { epoch: e, .. }) => {
                    prop_assert!(!admitted, "ledger rejected a first report");
                    prop_assert_eq!(e, epoch);
                }
                Err(other) => prop_assert!(false, "unexpected error {}", other),
            }
        }
        let total_admitted: u64 = (0..4).map(|e| ledger.admitted(e)).sum();
        prop_assert_eq!(total_admitted, model.len() as u64);
        prop_assert_eq!(ledger.total_rejected(), model_rejected);
    }

    /// Contract 3b: splitting a stream across shards and merging the
    /// ledgers is indistinguishable from one ledger processing the whole
    /// stream — duplicates never double-admit, whether they collide
    /// within a shard or only across shards.
    #[test]
    fn sharded_ledger_merge_matches_serial(
        key in 0u64..1_000_000,
        shard_count in 2usize..4,
        // Each draw packs (user, epoch): user = v % 40, epoch = v / 40.
        packed in prop::collection::vec(0u64..160, 1..120),
    ) {
        let submits: Vec<(u64, u64)> = packed.iter().map(|v| (v % 40, v / 40)).collect();
        let mut serial = BudgetLedger::with_key(key);
        for &(user, epoch) in &submits {
            let _ = serial.admit(user, epoch);
        }

        let mut shards: Vec<BudgetLedger> =
            (0..shard_count).map(|_| BudgetLedger::with_key(key)).collect();
        for (i, &(user, epoch)) in submits.iter().enumerate() {
            let _ = shards[i % shard_count].admit(user, epoch);
        }
        let mut merged = shards.remove(0);
        for shard in shards {
            merged.merge(shard).unwrap();
        }

        for epoch in 0..4 {
            prop_assert_eq!(merged.admitted(epoch), serial.admitted(epoch));
            prop_assert_eq!(merged.rejected(epoch), serial.rejected(epoch));
        }
    }
}

/// An oversized declared length aborts before buffering: typed error,
/// message names the cap, snapshot unchanged.
#[test]
fn oversized_length_aborts_with_typed_error() {
    let protocol = protocol_pick(0);
    let specs = schema(2, &[5]);
    let (mut service, _, baseline) = warmed_service(protocol, &specs, 10, 7);

    let mut stream = Vec::new();
    stream.extend_from_slice(&((frame::MAX_FRAME_PAYLOAD as u32) + 1).to_be_bytes());
    stream.push(2);
    stream.extend_from_slice(&0u64.to_be_bytes());

    let summary = service.serve(&mut stream.as_slice()).unwrap();
    let fault = summary
        .desync
        .expect("oversized length must surface as a fault");
    assert_eq!(fault.offset, 0);
    let msg = fault.error.to_string();
    assert!(msg.contains("oversized"), "{msg}");
    assert_snapshot_unchanged(&service, &baseline);
}

/// A checksum-corrupt frame between two healthy ones: counted, skipped,
/// both healthy frames absorbed — the count-and-continue path end to end.
#[test]
fn corrupt_frame_between_healthy_frames_is_skipped() {
    let protocol = protocol_pick(0);
    let specs = schema(2, &[5]);
    let (mut service, encoder, baseline) = warmed_service(protocol, &specs, 5, 11);

    let mut stream = Vec::new();
    for user in [100u64, 101, 102] {
        WireMessage::Submit {
            user,
            epoch: 0,
            block: 0,
            report: encode_report(&encode_user(&encoder, user, 11), &specs),
        }
        .write_to(&mut stream)
        .unwrap();
    }
    // Corrupt the middle frame's payload (first frame's length tells us
    // where it starts).
    let first_len = u32::from_be_bytes(stream[0..4].try_into().unwrap()) as usize;
    let second_start = frame::FRAME_HEADER_BYTES + first_len;
    stream[second_start + frame::FRAME_HEADER_BYTES + 2] ^= 0x10;

    let summary = service.serve(&mut stream.as_slice()).unwrap();
    assert_eq!(summary.admitted, 2);
    assert_eq!(summary.rejected_malformed, 1);
    let now = service.snapshot_epoch(0).unwrap();
    assert_eq!(now.admitted, baseline.admitted + 2);
}
