//! Property tests for the client/aggregator session split.
//!
//! The contract under test: driving the public [`ClientEncoder`] /
//! [`Aggregator`] API over the public block plan ([`block_partition`] +
//! [`block_rng`]) reproduces [`Collector::run`] **bit for bit** — for both
//! protocol families, every oracle, across ε, d, k and shard counts — and
//! the per-block partials may be merged in any order (the ordinal-keyed
//! fold makes out-of-order merges exact, not approximate).

use ldp_analytics::{
    block_partition, block_rng, Aggregator, BestEffortNumeric, ClientEncoder, CollectionResult,
    Collector, Protocol, BLOCK_USERS,
};
use ldp_core::rng::{seeded_rng, RngBlock};
use ldp_core::{AttrValue, Epsilon, NumericKind, OracleKind};
use ldp_data::{Attribute, Column, Dataset, Schema};
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::Rng;

/// A mixed dataset: `d_num` numeric attributes in `[-1, 1]` and one
/// categorical attribute per entry of `doms`.
fn mixed_dataset(n: usize, d_num: usize, doms: &[u32], seed: u64) -> Dataset {
    let mut rng = seeded_rng(seed);
    let mut attrs = Vec::new();
    let mut columns = Vec::new();
    for a in 0..d_num {
        attrs.push(Attribute::numeric(&format!("x{a}"), -1.0, 1.0).unwrap());
        columns.push(Column::Numeric(
            (0..n).map(|_| rng.random_range(-1.0..=1.0)).collect(),
        ));
    }
    for (a, &k) in doms.iter().enumerate() {
        attrs.push(Attribute::categorical(&format!("c{a}"), k).unwrap());
        columns.push(Column::Categorical(
            (0..n).map(|_| rng.random_range(0..k)).collect(),
        ));
    }
    Dataset::new(Schema::new(attrs).unwrap(), columns).unwrap()
}

/// Reproduces one `Collector::run` through the public session API alone:
/// per block of the public partition, a fresh `RngBlock` over the public
/// per-block seed, a `ClientEncoder` producing a materialized [`Report`]
/// per user (`encode_into`), and an [`Aggregator`] partial keyed by the
/// block ordinal (`absorb`). The partials are then merged in the order
/// given by `merge_order_seed` — deliberately *not* block order.
fn session_run(
    protocol: Protocol,
    eps: Epsilon,
    dataset: &Dataset,
    seed: u64,
    shards: usize,
    merge_order_seed: u64,
) -> CollectionResult {
    let encoder = ClientEncoder::new(protocol, eps, dataset.schema().attr_specs()).unwrap();
    let blocks = block_partition(dataset.n(), shards);
    let mut partials: Vec<Aggregator> = blocks
        .iter()
        .enumerate()
        .map(|(b, range)| {
            let mut rng: RngBlock<rand::rngs::StdRng> = RngBlock::new(block_rng(seed, b));
            let mut agg = encoder.aggregator().unwrap().with_ordinal(b as u64);
            let mut report = encoder.empty_report();
            let mut scratch = encoder.scratch();
            let mut tuple: Vec<AttrValue> = Vec::new();
            for i in range.clone() {
                dataset.canonical_tuple_into(i, &mut tuple);
                encoder
                    .encode_into(&tuple, &mut rng, &mut report, &mut scratch)
                    .unwrap();
                agg.absorb(&report).unwrap();
            }
            agg
        })
        .collect();
    partials.shuffle(&mut seeded_rng(merge_order_seed));
    let mut total = encoder.aggregator().unwrap();
    for p in partials {
        total.merge(p).unwrap();
    }
    total.snapshot().unwrap()
}

fn assert_bit_identical(a: &CollectionResult, b: &CollectionResult, label: &str) {
    assert_eq!(a.n, b.n, "{label}: population");
    let (ma, mb) = (a.mean_vector(), b.mean_vector());
    assert_eq!(ma.len(), mb.len(), "{label}: mean arity");
    for (j, (x, y)) in ma.iter().zip(&mb).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{label}: mean[{j}] {x} vs {y}");
    }
    assert_eq!(a.frequencies.len(), b.frequencies.len(), "{label}");
    for ((ja, fa), (jb, fb)) in a.frequencies.iter().zip(&b.frequencies) {
        assert_eq!(ja, jb, "{label}: frequency attribute order");
        for (v, (x, y)) in fa.iter().zip(fb).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{label}: freq[{ja}][{v}] {x} vs {y}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Sampling (HM + every oracle): the session split reproduces the
    /// collector bit-identically across ε, d, k, shard counts and merge
    /// orders.
    #[test]
    fn sampling_session_reproduces_collector(
        seed in 0u64..1_000_000,
        merge_order_seed in 0u64..1_000_000,
        eps in 0.5f64..6.0,
        n in 200usize..900,
        d_num in 0usize..3,
        doms in prop::collection::vec(2u32..40, 0..3),
        shards in 1usize..5,
        oracle_pick in 0u8..3,
    ) {
        prop_assume!(d_num + doms.len() > 0);
        let oracle = [OracleKind::Oue, OracleKind::Sue, OracleKind::Grr][oracle_pick as usize];
        let protocol = Protocol::Sampling { numeric: NumericKind::Hybrid, oracle };
        let eps = Epsilon::new(eps).unwrap();
        let dataset = mixed_dataset(n, d_num, &doms, seed ^ 0xDA7A);
        let reference = Collector::new(protocol, eps)
            .with_shards(shards)
            .run(&dataset, seed)
            .unwrap();
        let session = session_run(protocol, eps, &dataset, seed, shards, merge_order_seed);
        assert_bit_identical(&reference, &session, &format!("{oracle:?}"));
    }

    /// Composition (Laplace + OUE, the §VI-A budget-splitting baseline):
    /// same bit-exact reproduction through the dense report path.
    #[test]
    fn composition_session_reproduces_collector(
        seed in 0u64..1_000_000,
        merge_order_seed in 0u64..1_000_000,
        eps in 0.5f64..6.0,
        n in 200usize..900,
        d_num in 0usize..3,
        doms in prop::collection::vec(2u32..40, 0..3),
        shards in 1usize..5,
        duchi in prop::bool::ANY,
    ) {
        prop_assume!(d_num + doms.len() > 0);
        // Duchi's joint mechanism needs a numeric block to act on.
        prop_assume!(!duchi || d_num > 0);
        let numeric = if duchi {
            BestEffortNumeric::DuchiMultidim
        } else {
            BestEffortNumeric::PerAttribute(NumericKind::Laplace)
        };
        let protocol = Protocol::BestEffort { numeric, oracle: OracleKind::Oue };
        let eps = Epsilon::new(eps).unwrap();
        let dataset = mixed_dataset(n, d_num, &doms, seed ^ 0xC0DE);
        let reference = Collector::new(protocol, eps)
            .with_shards(shards)
            .run(&dataset, seed)
            .unwrap();
        let session = session_run(protocol, eps, &dataset, seed, shards, merge_order_seed);
        assert_bit_identical(&reference, &session, if duchi { "Duchi" } else { "Laplace" });
    }
}

/// Out-of-order partial merges at *block* granularity: force shard ranges
/// larger than [`BLOCK_USERS`] so shards split into several seeded blocks,
/// then merge the per-block partials in reversed and shuffled orders.
#[test]
fn multi_block_out_of_order_merge_is_bit_identical() {
    let n = 2 * BLOCK_USERS + 777;
    let doms = [7u32];
    let dataset = mixed_dataset(n, 1, &doms, 99);
    let protocol = Protocol::Sampling {
        numeric: NumericKind::Hybrid,
        oracle: OracleKind::Oue,
    };
    let eps = Epsilon::new(4.0).unwrap();
    let shards = 2; // 2 shards → 2–3 blocks each
    assert!(
        block_partition(n, shards).len() > shards,
        "test must exercise multiple blocks per shard"
    );
    let reference = Collector::new(protocol, eps)
        .with_shards(shards)
        .run(&dataset, 21)
        .unwrap();
    for merge_order_seed in [1u64, 2, 3] {
        let session = session_run(protocol, eps, &dataset, 21, shards, merge_order_seed);
        assert_bit_identical(&reference, &session, "multi-block");
    }
}

/// Tree reduction: merging partials pairwise up a reduction tree gives the
/// same bits as a flat fold — the property a sharded or federated deployment
/// relies on.
#[test]
fn tree_reduction_matches_flat_merge() {
    let dataset = mixed_dataset(1_000, 1, &[5, 3], 7);
    let protocol = Protocol::Sampling {
        numeric: NumericKind::Hybrid,
        oracle: OracleKind::Oue,
    };
    let eps = Epsilon::new(2.0).unwrap();
    let encoder = ClientEncoder::new(protocol, eps, dataset.schema().attr_specs()).unwrap();
    let blocks = block_partition(dataset.n(), 4);
    let partials: Vec<Aggregator> = blocks
        .iter()
        .enumerate()
        .map(|(b, range)| {
            let mut rng: RngBlock<rand::rngs::StdRng> = RngBlock::new(block_rng(7, b));
            let mut agg = encoder.aggregator().unwrap().with_ordinal(b as u64);
            let mut scratch = encoder.scratch();
            let mut tuple = Vec::new();
            for i in range.clone() {
                dataset.canonical_tuple_into(i, &mut tuple);
                agg.absorb_with(&encoder, &tuple, &mut rng, &mut scratch)
                    .unwrap();
            }
            agg
        })
        .collect();
    // Flat fold, in block order.
    let mut flat = encoder.aggregator().unwrap();
    for p in partials.iter().cloned() {
        flat.merge(p).unwrap();
    }
    // Tree: (0 ⊕ 2) ⊕ (3 ⊕ 1).
    let mut left = partials[0].clone();
    left.merge(partials[2].clone()).unwrap();
    let mut right = partials[3].clone();
    right.merge(partials[1].clone()).unwrap();
    left.merge(right).unwrap();
    assert_bit_identical(
        &flat.snapshot().unwrap(),
        &left.snapshot().unwrap(),
        "tree reduction",
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The `Report::Composition` wire codec round-trips genuine encoder
    /// output — unary and direct payloads, word-straddling domains,
    /// numeric-only and categorical-only schemas alike — and its encoded
    /// size is exactly the canonical `composition_report_bits` accounting.
    #[test]
    fn composition_wire_codec_round_trips(
        seed in 0u64..1_000_000,
        eps in 0.4f64..8.0,
        d_num in 0usize..3,
        doms in prop::collection::vec(2u32..200, 0..4),
        grr in prop::bool::ANY,
    ) {
        use ldp_analytics::{CompositionReport, Report};
        use ldp_core::multidim::wire;
        use ldp_core::AttrSpec;
        prop_assume!(d_num + doms.len() > 0);
        let mut specs: Vec<AttrSpec> = (0..d_num).map(|_| AttrSpec::Numeric).collect();
        specs.extend(doms.iter().map(|&k| AttrSpec::Categorical { k }));
        let oracle = if grr { OracleKind::Grr } else { OracleKind::Oue };
        let encoder = ClientEncoder::new(
            Protocol::BestEffort {
                numeric: BestEffortNumeric::PerAttribute(NumericKind::Laplace),
                oracle,
            },
            Epsilon::new(eps).unwrap(),
            specs.clone(),
        )
        .unwrap();
        let mut rng = seeded_rng(seed);
        let tuple: Vec<AttrValue> = specs
            .iter()
            .map(|s| match s {
                AttrSpec::Numeric => AttrValue::Numeric(0.4),
                AttrSpec::Categorical { k } => AttrValue::Categorical(k - 1),
            })
            .collect();
        for _ in 0..4 {
            let Report::Composition(report) = encoder.encode(&tuple, &mut rng).unwrap() else {
                unreachable!("composition protocol");
            };
            let bytes = report.encode_wire(&specs);
            prop_assert_eq!(
                bytes.len(),
                wire::composition_report_bits(&specs, !grr).div_ceil(8),
                "encoded size must equal the canonical accounting"
            );
            let back = CompositionReport::decode_wire(&specs, &bytes, !grr).unwrap();
            prop_assert_eq!(&back, &report, "codec round trip diverged");
        }
    }
}
