//! The client half of the transport: reconnect, replay, and idempotent
//! retry around a [`ReportServer`](super::server::ReportServer).
//!
//! The client's safety argument is the privacy-budget ledger's: a submit
//! whose ack is lost (timeout, disconnect, garbled response) is in an
//! unknown state, and the only safe move is to *resend it* — the server's
//! per-user-per-epoch ledger turns the resend into an
//! [`AckOutcome::Duplicate`] verdict if the original landed, so the
//! report's budget is spent at most once no matter how many times the
//! wire eats an ack. The client therefore treats `Duplicate` after a
//! fault as success ([`SubmitOutcome::AlreadyAdmitted`]), never as an
//! error.
//!
//! Reconnects replay the session [`WireMessage::Hello`] before anything
//! else — `Hello` is idempotent server-side, so the replay either
//! re-asserts the session or fails loudly against a different one.

use std::io::{Read, Write};
use std::thread;
use std::time::Duration;

use ldp_core::{IoFault, LdpError, Result};

use crate::service::{AckOutcome, ResponseMessage, WireMessage};
use crate::transport::backoff::Backoff;

/// A factory for transport streams — the client's reconnect hook.
///
/// Implementations should classify connection failures through
/// [`ldp_core::frame::io_error`] with op `"connect"` so the retry loop
/// sees typed transient errors.
pub trait Connect {
    /// The stream type produced.
    type Stream: Read + Write;
    /// Establishes a fresh stream to the server.
    fn connect(&mut self) -> Result<Self::Stream>;
}

/// Retry policy for a [`ReportClient`].
#[derive(Debug, Clone)]
pub struct ClientConfig {
    /// Attempts per operation (connect + exchange counts as one) before
    /// the last transient error is returned. Clamped to at least 1.
    pub max_attempts: u32,
    /// In-connection resend bounces per exchange before the connection is
    /// declared hostile and rebuilt.
    pub max_resends: u32,
    /// First backoff delay.
    pub backoff_base: Duration,
    /// Backoff ceiling.
    pub backoff_cap: Duration,
    /// Seed for the jittered backoff schedule (see [`Backoff`]).
    pub backoff_seed: u64,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            max_attempts: 8,
            max_resends: 8,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_secs(1),
            backoff_seed: 0x1cde_2019,
        }
    }
}

/// Client-side transport counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClientStats {
    /// Successful connections established (including reconnects).
    pub connects: u64,
    /// Requests re-written after a [`ResponseMessage::Resend`].
    pub resends: u64,
    /// Submits acknowledged `Duplicate` — proof a retried report's budget
    /// was *not* spent twice.
    pub duplicate_acks: u64,
    /// Backoff pauses taken after an `Overloaded` verdict.
    pub overload_pauses: u64,
    /// Transient faults survived (reconnect-and-retry cycles).
    pub faults: u64,
}

/// How a [`ReportClient::submit`] succeeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitOutcome {
    /// The report was admitted by this exchange.
    Admitted,
    /// The server's ledger had already admitted this `(user, epoch)` — an
    /// earlier attempt landed but its ack was lost. The budget was spent
    /// exactly once.
    AlreadyAdmitted,
}

/// Counters returned by [`ReportClient::flush_epoch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlushReceipt {
    /// Epoch snapshotted.
    pub epoch: u64,
    /// Distinct users admitted in that epoch.
    pub admitted: u64,
    /// Duplicate reports the ledger rejected in that epoch.
    pub rejected_duplicates: u64,
    /// Service-lifetime malformed rejections at snapshot time.
    pub rejected_malformed: u64,
    /// Reports folded into the snapshot's estimates.
    pub users: u64,
}

/// A reconnecting, retrying client for the report-stream protocol.
///
/// Wraps a [`Connect`] factory; on any transient fault (timeout, lost
/// connection, garbled response, server overload) it tears the stream
/// down, backs off on the seeded [`Backoff`] schedule, reconnects,
/// replays the session `Hello`, and retries the operation — relying on
/// the server's ledger for at-most-once semantics.
pub struct ReportClient<C: Connect> {
    connector: C,
    hello: WireMessage,
    config: ClientConfig,
    backoff: Backoff,
    conn: Option<C::Stream>,
    scratch: Vec<u8>,
    stats: ClientStats,
    sleeper: Box<dyn FnMut(Duration) + Send>,
}

impl<C: Connect> std::fmt::Debug for ReportClient<C> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReportClient")
            .field("connected", &self.conn.is_some())
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl<C: Connect> ReportClient<C> {
    /// A client that will open sessions with `hello` (which must be a
    /// [`WireMessage::Hello`]) through `connector`.
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] if `hello` is any other message.
    pub fn new(connector: C, hello: WireMessage, config: ClientConfig) -> Result<Self> {
        if !matches!(hello, WireMessage::Hello { .. }) {
            return Err(LdpError::InvalidParameter {
                name: "hello",
                message: "session opener must be a Hello message".into(),
            });
        }
        let backoff = Backoff::new(config.backoff_seed, config.backoff_base, config.backoff_cap);
        Ok(ReportClient {
            connector,
            hello,
            config,
            backoff,
            conn: None,
            scratch: Vec::new(),
            stats: ClientStats::default(),
            sleeper: Box::new(thread::sleep),
        })
    }

    /// Replaces the backoff sleeper — tests substitute a recorder so
    /// chaos suites never wall-clock sleep.
    pub fn with_sleeper(mut self, sleeper: Box<dyn FnMut(Duration) + Send>) -> Self {
        self.sleeper = sleeper;
        self
    }

    /// Client-side transport counters.
    pub fn stats(&self) -> ClientStats {
        self.stats
    }

    /// True while a stream is established.
    pub fn is_connected(&self) -> bool {
        self.conn.is_some()
    }

    /// Submits one report, retrying through faults until a verdict.
    ///
    /// Returns [`SubmitOutcome::Admitted`] on first admission and
    /// [`SubmitOutcome::AlreadyAdmitted`] when a resend found the budget
    /// already spent — both are success.
    ///
    /// # Errors
    /// The server's `Rejected` verdict is permanent
    /// ([`LdpError::MalformedFrame`]); transient faults are returned only
    /// after `max_attempts` consecutive failures.
    pub fn submit(
        &mut self,
        user: u64,
        epoch: u64,
        block: u64,
        report: Vec<u8>,
    ) -> Result<SubmitOutcome> {
        let msg = WireMessage::Submit {
            user,
            epoch,
            block,
            report,
        };
        let mut last = None;
        for _ in 0..self.config.max_attempts.max(1) {
            match self.roundtrip(&msg) {
                Ok(ResponseMessage::Ack {
                    user: u,
                    epoch: e,
                    outcome,
                }) if u == user && e == epoch => match outcome {
                    AckOutcome::Admitted => {
                        self.backoff.reset();
                        return Ok(SubmitOutcome::Admitted);
                    }
                    AckOutcome::Duplicate => {
                        self.stats.duplicate_acks += 1;
                        self.backoff.reset();
                        return Ok(SubmitOutcome::AlreadyAdmitted);
                    }
                    AckOutcome::Overloaded => {
                        // Shed before touching state: same connection,
                        // just slower.
                        self.stats.overload_pauses += 1;
                        last = Some(LdpError::Overloaded { capacity: 0 });
                        self.pause();
                    }
                    AckOutcome::Rejected => {
                        return Err(LdpError::MalformedFrame {
                            message: format!(
                                "server rejected submit for user {user:#x} epoch {epoch}"
                            ),
                        })
                    }
                },
                // Any other response is a protocol desync: the ack stream
                // no longer lines up with the request stream.
                Ok(other) => {
                    last = Some(desync_error(&other));
                    self.fault_pause();
                }
                Err(e) if is_transient(&e) => {
                    last = Some(e);
                    self.fault_pause();
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.expect("at least one attempt ran"))
    }

    /// Requests an epoch snapshot, retrying through faults.
    ///
    /// Snapshots are non-destructive server-side, so the retry is
    /// trivially idempotent.
    ///
    /// # Errors
    /// As [`ReportClient::submit`].
    pub fn flush_epoch(&mut self, epoch: u64) -> Result<FlushReceipt> {
        let msg = WireMessage::FlushEpoch { epoch };
        let mut last = None;
        for _ in 0..self.config.max_attempts.max(1) {
            match self.roundtrip(&msg) {
                Ok(ResponseMessage::SnapshotAck {
                    epoch: e,
                    admitted,
                    rejected_duplicates,
                    rejected_malformed,
                    users,
                }) if e == epoch => {
                    self.backoff.reset();
                    return Ok(FlushReceipt {
                        epoch: e,
                        admitted,
                        rejected_duplicates,
                        rejected_malformed,
                        users,
                    });
                }
                Ok(ResponseMessage::Ack {
                    outcome: AckOutcome::Overloaded,
                    ..
                }) => {
                    self.stats.overload_pauses += 1;
                    last = Some(LdpError::Overloaded { capacity: 0 });
                    self.pause();
                }
                Ok(ResponseMessage::Ack {
                    outcome: AckOutcome::Rejected,
                    ..
                }) => {
                    return Err(LdpError::MalformedFrame {
                        message: format!("server rejected flush of epoch {epoch}"),
                    })
                }
                Ok(other) => {
                    last = Some(desync_error(&other));
                    self.fault_pause();
                }
                Err(e) if is_transient(&e) => {
                    last = Some(e);
                    self.fault_pause();
                }
                Err(e) => return Err(e),
            }
        }
        Err(last.expect("at least one attempt ran"))
    }

    /// Best-effort goodbye: sends [`WireMessage::Shutdown`] (no response
    /// expected) and drops the stream. Errors are swallowed — the server
    /// treats EOF identically.
    pub fn close(&mut self) {
        if let Some(mut conn) = self.conn.take() {
            let _ = WireMessage::Shutdown.write_to(&mut conn);
            let _ = conn.flush();
        }
    }

    /// One request/response exchange, connecting (with `Hello` replay)
    /// first if needed. Any error leaves `self.conn` for the caller's
    /// fault path; protocol-level `Resend` bounces are absorbed here.
    fn roundtrip(&mut self, msg: &WireMessage) -> Result<ResponseMessage> {
        self.ensure_connected()?;
        let conn = self.conn.as_mut().expect("just connected");
        exchange(
            conn,
            msg,
            &mut self.scratch,
            &mut self.stats,
            self.config.max_resends,
        )
    }

    /// Connects and replays the session `Hello`, expecting `HelloAck`.
    fn ensure_connected(&mut self) -> Result<()> {
        if self.conn.is_some() {
            return Ok(());
        }
        let mut stream = self.connector.connect()?;
        self.stats.connects += 1;
        let hello = self.hello.clone();
        match exchange(
            &mut stream,
            &hello,
            &mut self.scratch,
            &mut self.stats,
            self.config.max_resends,
        )? {
            ResponseMessage::HelloAck => {
                self.conn = Some(stream);
                Ok(())
            }
            ResponseMessage::Ack {
                outcome: AckOutcome::Rejected,
                ..
            } => Err(LdpError::MalformedFrame {
                message: "server rejected session hello (parameters disagree \
                          with the established session)"
                    .into(),
            }),
            ResponseMessage::Ack {
                outcome: AckOutcome::Overloaded,
                ..
            } => Err(LdpError::Overloaded { capacity: 0 }),
            other => Err(desync_error(&other)),
        }
    }

    /// Drops the (possibly poisoned) connection and backs off.
    fn fault_pause(&mut self) {
        self.conn = None;
        self.stats.faults += 1;
        self.pause();
    }

    fn pause(&mut self) {
        let delay = self.backoff.next_delay();
        (self.sleeper)(delay);
    }
}

/// Writes `msg` and reads its response, absorbing up to `max_resends`
/// [`ResponseMessage::Resend`] bounces (outbound frame corrupted in
/// flight but the server kept sync).
fn exchange<S: Read + Write>(
    stream: &mut S,
    msg: &WireMessage,
    scratch: &mut Vec<u8>,
    stats: &mut ClientStats,
    max_resends: u32,
) -> Result<ResponseMessage> {
    msg.write_to(stream)?;
    stream.flush().map_err(|e| frame_io("flush", &e))?;
    let mut resends = 0;
    loop {
        match ResponseMessage::read_from(stream, scratch)? {
            Some(ResponseMessage::Resend) => {
                resends += 1;
                stats.resends += 1;
                if resends > max_resends {
                    return Err(LdpError::MalformedFrame {
                        message: format!(
                            "server requested {resends} resends of one frame; \
                             abandoning the connection"
                        ),
                    });
                }
                msg.write_to(stream)?;
                stream.flush().map_err(|e| frame_io("flush", &e))?;
            }
            Some(response) => return Ok(response),
            // EOF where a response was owed: the exchange is in an
            // unknown state — reconnect and retry idempotently.
            None => {
                return Err(LdpError::ConnectionLost {
                    op: "read",
                    cause: IoFault {
                        kind: std::io::ErrorKind::UnexpectedEof,
                        message: "stream ended while awaiting a response".into(),
                    },
                })
            }
        }
    }
}

fn frame_io(op: &'static str, e: &std::io::Error) -> LdpError {
    ldp_core::frame::io_error(op, e)
}

/// Faults worth a reconnect-and-retry; everything else is permanent.
///
/// `MalformedFrame` is transient *here* because on the client's read path
/// it means a response frame was garbled in flight — the verdict is
/// unknown, and an idempotent resend over a fresh connection resolves it.
fn is_transient(e: &LdpError) -> bool {
    matches!(
        e,
        LdpError::Timeout { .. }
            | LdpError::ConnectionLost { .. }
            | LdpError::Overloaded { .. }
            | LdpError::MalformedFrame { .. }
    )
}

/// A response that cannot answer the outstanding request.
fn desync_error(got: &ResponseMessage) -> LdpError {
    LdpError::MalformedFrame {
        message: format!("response desync: unexpected {got:?} for the outstanding request"),
    }
}
