//! The server half of the transport: connection threads feeding one
//! [`ReportService`] through a bounded queue.
//!
//! ## Architecture
//!
//! One *absorber* thread owns the [`ReportService`] outright — no locks,
//! no shared mutable aggregate state. Every connection runs
//! [`ConnHandle::serve_stream`] on its own thread, decoding frames and
//! pushing [`WireMessage`]s into a bounded `sync_channel`. The bound is
//! the backpressure contract: when the absorber falls behind, `try_send`
//! fails immediately and the connection *sheds* the message with an
//! [`AckOutcome::Overloaded`] verdict instead of queueing unboundedly —
//! the client backs off and retries, and the privacy-budget ledger makes
//! that retry idempotent.
//!
//! ## Fault isolation
//!
//! A desynced, hostile, or vanished client kills only its own connection:
//! the fault is recorded in that connection's [`ConnSummary`] and counted
//! in [`TransportStats`], while the absorber — and every other connection
//! — keeps running. Checksum-corrupt frames keep the reader synchronized
//! (see [`ldp_core::frame::read_frame`]), so they earn a
//! [`ResponseMessage::Resend`] rather than a disconnect.
//!
//! ## Shutdown
//!
//! [`ReportServer::finish`] drops the server's own queue handle and joins
//! the absorber, which drains every message already queued before
//! returning the service — drain-then-stop, never drop-on-stop. The
//! absorber exits when the last [`ConnHandle`] clone is gone, so join
//! connection threads (or drop their handles) first.

use std::io::{Read, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::thread::{self, JoinHandle};

use ldp_core::frame::{self, FrameRead, FRAME_HEADER_BYTES};
use ldp_core::Result;

use crate::durable::{self, DurableConfig, DurableService, RecoveryReport};
use crate::service::{
    AckOutcome, EpochSnapshot, ReportService, ResponseMessage, ServiceConfig, StreamFault,
    WireMessage,
};

/// Construction parameters for a [`ReportServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Configuration for the owned [`ReportService`].
    pub service: ServiceConfig,
    /// Bound of the connection→absorber queue. Messages arriving while
    /// the queue is full are shed with [`AckOutcome::Overloaded`]; they
    /// never wait unboundedly and never touch service state.
    pub queue_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            service: ServiceConfig::default(),
            queue_capacity: 1024,
        }
    }
}

/// Shared transport counters, updated by connection threads and the
/// absorber. All loads are `Relaxed`: the counters are monotone telemetry,
/// not synchronization.
#[derive(Debug, Default)]
pub struct TransportStats {
    connections: AtomicU64,
    faulted_connections: AtomicU64,
    corrupt_frames: AtomicU64,
    malformed_messages: AtomicU64,
    shed: AtomicU64,
    submits: AtomicU64,
    storage_sheds: AtomicU64,
    injected_crashes: AtomicU64,
}

impl TransportStats {
    /// Connections served to completion or fault.
    pub fn connections(&self) -> u64 {
        self.connections.load(Ordering::Relaxed)
    }

    /// Connections that ended in a transport fault (desync, disconnect,
    /// timeout) rather than clean EOF or `Shutdown`.
    pub fn faulted_connections(&self) -> u64 {
        self.faulted_connections.load(Ordering::Relaxed)
    }

    /// Checksum-corrupt frames answered with [`ResponseMessage::Resend`].
    pub fn corrupt_frames(&self) -> u64 {
        self.corrupt_frames.load(Ordering::Relaxed)
    }

    /// Frames that verified but failed to decode as a [`WireMessage`].
    pub fn malformed_messages(&self) -> u64 {
        self.malformed_messages.load(Ordering::Relaxed)
    }

    /// Messages shed because the bounded queue was full.
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Submit messages that reached the absorber (each earns exactly one
    /// admitted / duplicate / rejected verdict from the service).
    pub fn submits(&self) -> u64 {
        self.submits.load(Ordering::Relaxed)
    }

    /// Messages answered `Overloaded` because the durability layer could
    /// not make them durable (WAL/checkpoint I/O failure or injected
    /// crash) — the ack-after-durable contract refusing to lie rather
    /// than acking volatile state.
    pub fn storage_sheds(&self) -> u64 {
        self.storage_sheds.load(Ordering::Relaxed)
    }

    /// Crashes injected by a [`crate::durable::CrashSchedule`] that the
    /// absorber observed (the transport-side mirror of
    /// [`crate::transport::FaultCounts::crashes`]).
    pub fn injected_crashes(&self) -> u64 {
        self.injected_crashes.load(Ordering::Relaxed)
    }
}

/// What the absorber should do with one queued message.
enum JobKind {
    /// A decoded message for [`ReportService::handle`].
    Msg(WireMessage),
    /// A frame that verified its checksum but failed message decoding —
    /// counted by the service (not just the transport) so snapshot
    /// counters match a direct [`ReportService::serve`] run.
    Malformed,
}

/// One unit of absorber work plus the channel its verdict returns on.
pub(crate) struct Job {
    kind: JobKind,
    reply: mpsc::Sender<ResponseMessage>,
}

/// How one connection's [`ConnHandle::serve_stream`] call ended.
#[derive(Debug, Default)]
pub struct ConnSummary {
    /// Frames consumed from this connection (valid or corrupt).
    pub frames: u64,
    /// Checksum-corrupt frames answered with a resend request.
    pub corrupt_frames: u64,
    /// Responses successfully written back to the client.
    pub responded: u64,
    /// True when the client sent [`WireMessage::Shutdown`] (connection
    /// scoped: the server itself keeps running).
    pub shutdown: bool,
    /// The transport fault that ended the connection, if any, with the
    /// byte offset of the offending inbound frame. `None` for clean EOF
    /// or `Shutdown`.
    pub fault: Option<StreamFault>,
}

/// A cloneable per-connection handle into a running [`ReportServer`].
///
/// Cheap to clone (a queue sender and a stats handle); the absorber stays
/// alive as long as any clone exists.
#[derive(Debug, Clone)]
pub struct ConnHandle {
    tx: mpsc::SyncSender<Job>,
    stats: Arc<TransportStats>,
    queue_capacity: usize,
}

impl ConnHandle {
    /// Serves one client stream to completion: reads frames, queues
    /// messages, writes one response frame per request, in order.
    ///
    /// Every exit path is accounted: clean EOF, client `Shutdown`, a
    /// transport fault (recorded in the summary, counted in the stats),
    /// or server shutdown (queue closed). Never panics on hostile input.
    pub fn serve_stream<S: Read + Write + ?Sized>(&self, stream: &mut S) -> ConnSummary {
        self.stats.connections.fetch_add(1, Ordering::Relaxed);
        let mut summary = ConnSummary::default();
        let mut payload = Vec::new();
        let mut offset = 0u64;
        loop {
            let frame_start = offset;
            let read = match frame::read_frame(stream, &mut payload) {
                Ok(read) => read,
                Err(error) => {
                    summary.fault = Some(StreamFault {
                        offset: frame_start,
                        error,
                    });
                    break;
                }
            };
            let kind = match read {
                None => break,
                Some(FrameRead::Corrupt { .. }) => {
                    offset += (FRAME_HEADER_BYTES + payload.len()) as u64;
                    summary.frames += 1;
                    summary.corrupt_frames += 1;
                    self.stats.corrupt_frames.fetch_add(1, Ordering::Relaxed);
                    // Reader is still synchronized: ask for the frame
                    // again instead of dropping the connection.
                    if let Err(error) = ResponseMessage::Resend.write_to(stream) {
                        summary.fault = Some(StreamFault {
                            offset: frame_start,
                            error,
                        });
                        break;
                    }
                    summary.responded += 1;
                    continue;
                }
                Some(FrameRead::Valid { kind }) => kind,
            };
            offset += (FRAME_HEADER_BYTES + payload.len()) as u64;
            summary.frames += 1;
            let job_kind = match WireMessage::decode(kind, &payload) {
                Ok(WireMessage::Shutdown) => {
                    // Connection-scoped: this client is done, the server
                    // and every other connection keep running.
                    summary.shutdown = true;
                    break;
                }
                Ok(msg) => JobKind::Msg(msg),
                Err(_) => {
                    self.stats
                        .malformed_messages
                        .fetch_add(1, Ordering::Relaxed);
                    JobKind::Malformed
                }
            };
            let echo = match &job_kind {
                JobKind::Msg(WireMessage::Submit { user, epoch, .. }) => (*user, *epoch),
                _ => (0, 0),
            };
            let (reply_tx, reply_rx) = mpsc::channel();
            let response = match self.tx.try_send(Job {
                kind: job_kind,
                reply: reply_tx,
            }) {
                Ok(()) => match reply_rx.recv() {
                    Ok(response) => response,
                    // Absorber gone mid-job: server is shutting down.
                    Err(mpsc::RecvError) => break,
                },
                Err(mpsc::TrySendError::Full(_)) => {
                    // Backpressure: shed before any state is touched and
                    // tell the client to back off. The ledger makes the
                    // eventual retry idempotent.
                    self.stats.shed.fetch_add(1, Ordering::Relaxed);
                    ResponseMessage::Ack {
                        user: echo.0,
                        epoch: echo.1,
                        outcome: AckOutcome::Overloaded,
                    }
                }
                Err(mpsc::TrySendError::Disconnected(_)) => break,
            };
            if let Err(error) = response.write_to(stream) {
                // The verdict may already be applied server-side; the
                // client will resend on reconnect and the ledger will
                // answer `Duplicate` — at-most-once either way.
                summary.fault = Some(StreamFault {
                    offset: frame_start,
                    error,
                });
                break;
            }
            summary.responded += 1;
        }
        if summary.fault.is_some() {
            self.stats
                .faulted_connections
                .fetch_add(1, Ordering::Relaxed);
        }
        summary
    }

    /// The queue bound this handle sheds against.
    pub fn queue_capacity(&self) -> usize {
        self.queue_capacity
    }
}

/// The state the absorber owns: a bare service, or one behind the
/// write-ahead log when the server was started durable.
#[derive(Debug)]
enum Backend {
    Plain(Box<ReportService>),
    Durable(Box<DurableService>),
}

impl Backend {
    fn handle(&mut self, msg: &WireMessage) -> Result<Option<EpochSnapshot>> {
        match self {
            Backend::Plain(service) => service.handle(msg),
            Backend::Durable(durable) => durable.handle(msg),
        }
    }

    fn note_malformed(&mut self) {
        match self {
            Backend::Plain(service) => service.note_malformed(),
            Backend::Durable(durable) => durable.note_malformed(),
        }
    }

    /// Checkpoints durable state after a flushed epoch; a no-op for the
    /// plain backend.
    fn checkpoint(&mut self) -> Result<()> {
        match self {
            Backend::Plain(_) => Ok(()),
            Backend::Durable(durable) => durable.checkpoint(),
        }
    }

    fn into_service(self) -> ReportService {
        match self {
            Backend::Plain(service) => *service,
            Backend::Durable(durable) => durable.into_service(),
        }
    }
}

/// A running report server: one absorber thread owning a
/// [`ReportService`], fed by any number of [`ConnHandle`]s.
#[derive(Debug)]
pub struct ReportServer {
    handle: ConnHandle,
    absorber: JoinHandle<Backend>,
}

impl ReportServer {
    /// Starts the absorber thread around a fresh service.
    pub fn start(config: ServerConfig) -> Self {
        let service = ReportService::new(config.service.clone());
        Self::start_backend(&config, Backend::Plain(Box::new(service)))
    }

    /// Starts the absorber around a [`DurableService`] on `dir`: recovery
    /// runs first (the returned [`RecoveryReport`] says what it rebuilt),
    /// and from then on every `Admitted` ack is sent only after the
    /// submit's WAL record is as durable as `durable.fsync` promises. A
    /// report the durability layer cannot log is answered `Overloaded` —
    /// retryable, and the ledger keeps the eventual retry at-most-once.
    ///
    /// `durable.service` is overridden by `config.service` so the two
    /// configs cannot disagree about the ledger key.
    ///
    /// # Errors
    /// Recovery failures — see [`crate::durable::Recovery::replay`].
    pub fn start_durable(
        config: ServerConfig,
        dir: &Path,
        mut durable: DurableConfig,
    ) -> Result<(Self, RecoveryReport)> {
        durable.service = config.service.clone();
        let (service, report) = DurableService::open(dir, durable)?;
        Ok((
            Self::start_backend(&config, Backend::Durable(Box::new(service))),
            report,
        ))
    }

    fn start_backend(config: &ServerConfig, backend: Backend) -> Self {
        let capacity = config.queue_capacity.max(1);
        let (tx, rx) = mpsc::sync_channel::<Job>(capacity);
        let stats = Arc::new(TransportStats::default());
        let absorber_stats = Arc::clone(&stats);
        let absorber = thread::spawn(move || absorb(rx, backend, &absorber_stats));
        ReportServer {
            handle: ConnHandle {
                tx,
                stats,
                queue_capacity: capacity,
            },
            absorber,
        }
    }

    /// A new connection handle; give one clone to each connection thread.
    pub fn handle(&self) -> ConnHandle {
        self.handle.clone()
    }

    /// The server's shared transport counters.
    pub fn stats(&self) -> Arc<TransportStats> {
        Arc::clone(&self.handle.stats)
    }

    /// Graceful drain-then-stop: waits for every outstanding
    /// [`ConnHandle`] to drop, lets the absorber drain the queue, and
    /// returns the service with all absorbed state.
    ///
    /// Blocks until all connection handles are gone — join connection
    /// threads before calling.
    pub fn finish(self) -> ReportService {
        let ReportServer { handle, absorber } = self;
        drop(handle);
        absorber
            .join()
            .expect("absorber thread panicked")
            .into_service()
    }
}

/// Counts a storage-layer failure and renders the retryable verdict. The
/// durability layer refused (or failed) to make the message durable, so
/// the honest answer is `Overloaded`: the client backs off and retries,
/// and the ledger keeps the eventual retry at-most-once.
fn storage_shed(stats: &TransportStats, error: &ldp_core::LdpError) {
    stats.storage_sheds.fetch_add(1, Ordering::Relaxed);
    if durable::is_injected_crash(error) {
        stats.injected_crashes.fetch_add(1, Ordering::Relaxed);
    }
}

/// The absorber loop: single-threaded ownership of the backend, one
/// verdict per job, exits when every sender is gone.
fn absorb(rx: mpsc::Receiver<Job>, mut backend: Backend, stats: &TransportStats) -> Backend {
    while let Ok(job) = rx.recv() {
        let response = match job.kind {
            JobKind::Malformed => {
                backend.note_malformed();
                ResponseMessage::Ack {
                    user: 0,
                    epoch: 0,
                    outcome: AckOutcome::Rejected,
                }
            }
            JobKind::Msg(msg) => verdict(&mut backend, stats, &msg),
        };
        // A vanished connection cannot receive its verdict; the state
        // change (if any) stands and the ledger covers the client's retry.
        let _ = job.reply.send(response);
    }
    backend
}

/// Applies one message to the backend and renders the wire verdict.
fn verdict(backend: &mut Backend, stats: &TransportStats, msg: &WireMessage) -> ResponseMessage {
    match msg {
        WireMessage::Hello { .. } => match backend.handle(msg) {
            Ok(_) => ResponseMessage::HelloAck,
            Err(ref e) if durable::is_storage_error(e) => {
                storage_shed(stats, e);
                ResponseMessage::Ack {
                    user: 0,
                    epoch: 0,
                    outcome: AckOutcome::Overloaded,
                }
            }
            Err(_) => {
                backend.note_malformed();
                ResponseMessage::Ack {
                    user: 0,
                    epoch: 0,
                    outcome: AckOutcome::Rejected,
                }
            }
        },
        WireMessage::Submit { user, epoch, .. } => {
            stats.submits.fetch_add(1, Ordering::Relaxed);
            // In durable mode `Ok` means the WAL record reached the disk
            // under the configured fsync policy: ack-after-durable.
            let outcome = match backend.handle(msg) {
                Ok(_) => AckOutcome::Admitted,
                Err(ldp_core::LdpError::DuplicateReport { .. }) => AckOutcome::Duplicate,
                Err(ref e) if durable::is_storage_error(e) => {
                    storage_shed(stats, e);
                    AckOutcome::Overloaded
                }
                Err(_) => {
                    backend.note_malformed();
                    AckOutcome::Rejected
                }
            };
            ResponseMessage::Ack {
                user: *user,
                epoch: *epoch,
                outcome,
            }
        }
        WireMessage::FlushEpoch { epoch } => match backend.handle(msg) {
            Ok(Some(snap)) => {
                // An epoch boundary is the compaction point: checkpoint
                // the durable state and rotate the log. A failure here
                // loses no data — the log still covers everything — so it
                // only counts as a storage shed, the snapshot ack stands.
                if let Err(ref e) = backend.checkpoint() {
                    storage_shed(stats, e);
                }
                ResponseMessage::SnapshotAck {
                    epoch: snap.epoch,
                    admitted: snap.admitted,
                    rejected_duplicates: snap.rejected_duplicates,
                    rejected_malformed: snap.rejected_malformed,
                    users: snap.result.map_or(0, |r| r.n as u64),
                }
            }
            Ok(None) | Err(_) => {
                backend.note_malformed();
                ResponseMessage::Ack {
                    user: 0,
                    epoch: *epoch,
                    outcome: AckOutcome::Rejected,
                }
            }
        },
        // Shutdown is handled connection-side and never queued.
        WireMessage::Shutdown => ResponseMessage::Ack {
            user: 0,
            epoch: 0,
            outcome: AckOutcome::Rejected,
        },
    }
}

/// Test-only plumbing: handles over wedged queues, for exercising the
/// shedding path without racing a live absorber.
#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    /// A [`ConnHandle`] whose queue has no absorber; the returned
    /// receiver must stay alive for `try_send` to report `Full` (rather
    /// than `Disconnected`).
    pub(crate) fn wedged_handle(capacity: usize) -> (ConnHandle, mpsc::Receiver<Job>) {
        let (tx, rx) = mpsc::sync_channel(capacity);
        (
            ConnHandle {
                tx,
                stats: Arc::new(TransportStats::default()),
                queue_capacity: capacity,
            },
            rx,
        )
    }

    /// Occupies one queue slot with a job nobody will answer.
    pub(crate) fn fill(handle: &ConnHandle) {
        let (reply, _discarded) = mpsc::channel();
        handle
            .tx
            .try_send(Job {
                kind: JobKind::Msg(WireMessage::FlushEpoch { epoch: 0 }),
                reply,
            })
            .expect("queue must have a free slot to fill");
    }
}
