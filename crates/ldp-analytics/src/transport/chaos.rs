//! Deterministic fault injection for transport tests.
//!
//! [`ChaosStream`] wraps any `Read + Write` stream and, following a seeded
//! schedule, injects the faults a real network serves up: mid-frame
//! disconnects, short reads/writes, single-bit corruption, and stalls.
//! Because the schedule is a pure function of the seed, a failing chaos
//! run replays exactly — `(seed, fault trace)` is a complete bug report.
//!
//! [`duplex`] builds the in-process socket pair the chaos suite runs over:
//! two [`PipeStream`] halves connected by byte channels, with genuine
//! EOF-on-drop and broken-pipe semantics but no OS socket dependency.

use std::io::{self, Read, Write};
use std::sync::mpsc;

use ldp_core::rng::{sample_weighted, seeded_rng, uniform};
use rand::rngs::StdRng;
use rand::Rng;

/// Relative likelihoods of each fault kind, applied when a fault fires.
///
/// Weights are relative (they need not sum to 1); a zero weight disables
/// that fault kind entirely.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Probability in `[0, 1]` that any single `read`/`write` call faults.
    pub fault_rate: f64,
    /// Weight of mid-operation disconnects (the stream dies permanently,
    /// possibly after delivering a partial chunk — a mid-frame cut).
    pub disconnect: f64,
    /// Weight of single-bit corruption in the bytes that do pass.
    pub bit_flip: f64,
    /// Weight of short operations (1-byte reads/writes that exercise the
    /// frame layer's partial-I/O loops).
    pub short_op: f64,
    /// Weight of stalls surfaced as `io::ErrorKind::TimedOut`.
    pub stall: f64,
}

impl ChaosConfig {
    /// All four fault kinds, equally weighted, at `fault_rate`.
    pub fn balanced(fault_rate: f64) -> Self {
        ChaosConfig {
            fault_rate,
            disconnect: 1.0,
            bit_flip: 1.0,
            short_op: 1.0,
            stall: 1.0,
        }
    }

    /// Disconnects only — the reconnect-and-replay stress profile.
    pub fn disconnect_only(fault_rate: f64) -> Self {
        ChaosConfig {
            fault_rate,
            disconnect: 1.0,
            bit_flip: 0.0,
            short_op: 0.0,
            stall: 0.0,
        }
    }

    fn weights(&self) -> [f64; 4] {
        [self.disconnect, self.bit_flip, self.short_op, self.stall]
    }
}

/// How many faults of each kind a [`ChaosStream`] injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Permanent disconnects injected (at most one per stream).
    pub disconnects: u64,
    /// Single-bit corruptions injected.
    pub bit_flips: u64,
    /// Short reads/writes injected.
    pub short_ops: u64,
    /// Timed-out operations injected.
    pub stalls: u64,
}

impl FaultCounts {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.disconnects + self.bit_flips + self.short_ops + self.stalls
    }
}

/// A `Read + Write` wrapper that injects a seeded schedule of faults.
///
/// After an injected disconnect the stream is dead: every further
/// operation fails with `io::ErrorKind::ConnectionReset` (reads) or
/// `BrokenPipe` (writes), exactly like an OS socket whose peer vanished.
#[derive(Debug)]
pub struct ChaosStream<S> {
    inner: S,
    config: ChaosConfig,
    rng: StdRng,
    dead: bool,
    counts: FaultCounts,
}

impl<S> ChaosStream<S> {
    /// Wraps `inner`, drawing the fault schedule from `seed`.
    pub fn new(inner: S, config: ChaosConfig, seed: u64) -> Self {
        ChaosStream {
            inner,
            config,
            rng: seeded_rng(seed),
            dead: false,
            counts: FaultCounts::default(),
        }
    }

    /// Faults injected so far.
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }

    /// True once an injected disconnect has killed the stream.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Draws whether this operation faults, and which kind if so.
    fn draw_fault(&mut self) -> Option<usize> {
        if uniform(&mut self.rng, 0.0, 1.0) >= self.config.fault_rate {
            return None;
        }
        let weights = self.config.weights();
        if weights.iter().all(|&w| w <= 0.0) {
            return None;
        }
        Some(sample_weighted(&mut self.rng, &weights))
    }

    fn dead_read_error() -> io::Error {
        io::Error::new(io::ErrorKind::ConnectionReset, "chaos: connection dropped")
    }

    fn dead_write_error() -> io::Error {
        io::Error::new(io::ErrorKind::BrokenPipe, "chaos: connection dropped")
    }

    fn stall_error() -> io::Error {
        io::Error::new(io::ErrorKind::TimedOut, "chaos: operation stalled")
    }
}

impl<S: Read> Read for ChaosStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.dead {
            return Err(Self::dead_read_error());
        }
        if buf.is_empty() {
            return self.inner.read(buf);
        }
        match self.draw_fault() {
            Some(0) => {
                // Mid-frame disconnect: half the time one byte still
                // arrives before the cut, so readers die *inside* a frame,
                // not conveniently at its boundary.
                self.counts.disconnects += 1;
                self.dead = true;
                if self.rng.random::<bool>() {
                    let n = self.inner.read(&mut buf[..1])?;
                    if n > 0 {
                        return Ok(n);
                    }
                }
                Err(Self::dead_read_error())
            }
            Some(1) => {
                let n = self.inner.read(buf)?;
                if n > 0 {
                    self.counts.bit_flips += 1;
                    let bit = self.rng.random::<u64>() as usize % (n * 8);
                    buf[bit / 8] ^= 1 << (bit % 8);
                }
                Ok(n)
            }
            Some(2) => {
                self.counts.short_ops += 1;
                self.inner.read(&mut buf[..1])
            }
            Some(3) => {
                self.counts.stalls += 1;
                Err(Self::stall_error())
            }
            _ => self.inner.read(buf),
        }
    }
}

impl<S: Write> Write for ChaosStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.dead {
            return Err(Self::dead_write_error());
        }
        if buf.is_empty() {
            return self.inner.write(buf);
        }
        match self.draw_fault() {
            Some(0) => {
                // Mid-frame disconnect on the write side: the peer may
                // have received a partial frame it can never complete.
                self.counts.disconnects += 1;
                self.dead = true;
                if self.rng.random::<bool>() {
                    let n = self.inner.write(&buf[..1])?;
                    if n > 0 {
                        return Ok(n);
                    }
                }
                Err(Self::dead_write_error())
            }
            Some(1) => {
                self.counts.bit_flips += 1;
                let mut corrupted = buf.to_vec();
                let bit = self.rng.random::<u64>() as usize % (corrupted.len() * 8);
                corrupted[bit / 8] ^= 1 << (bit % 8);
                let n = self.inner.write(&corrupted)?;
                Ok(n)
            }
            Some(2) => {
                self.counts.short_ops += 1;
                self.inner.write(&buf[..1])
            }
            Some(3) => {
                self.counts.stalls += 1;
                Err(Self::stall_error())
            }
            _ => self.inner.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.dead {
            return Err(Self::dead_write_error());
        }
        self.inner.flush()
    }
}

/// One half of an in-process byte-stream pair — see [`duplex`].
#[derive(Debug)]
pub struct PipeStream {
    tx: mpsc::Sender<Vec<u8>>,
    rx: mpsc::Receiver<Vec<u8>>,
    pending: Vec<u8>,
    pos: usize,
    read_timeout: Option<std::time::Duration>,
}

impl PipeStream {
    /// Bounds how long a read blocks for new bytes, mirroring
    /// `TcpStream::set_read_timeout`: an expired wait fails with
    /// `io::ErrorKind::TimedOut`.
    ///
    /// Chaos harnesses must set this on the *server* half: a corrupted
    /// length header can promise megabytes that never arrive, and with
    /// both ends blocking (reader on the phantom payload, peer on the
    /// response) only a timeout — exactly like a socket's — breaks the
    /// deadlock.
    pub fn set_read_timeout(&mut self, timeout: Option<std::time::Duration>) {
        self.read_timeout = timeout;
    }
}

/// Builds a connected pair of in-process streams.
///
/// Bytes written to one half are read from the other. Dropping a half
/// gives the peer's reads end-of-stream (after drained bytes) and its
/// writes `io::ErrorKind::BrokenPipe` — the semantics transport code must
/// survive, without touching OS sockets.
pub fn duplex() -> (PipeStream, PipeStream) {
    let (a_tx, b_rx) = mpsc::channel();
    let (b_tx, a_rx) = mpsc::channel();
    let a = PipeStream {
        tx: a_tx,
        rx: a_rx,
        pending: Vec::new(),
        pos: 0,
        read_timeout: None,
    };
    let b = PipeStream {
        tx: b_tx,
        rx: b_rx,
        pending: Vec::new(),
        pos: 0,
        read_timeout: None,
    };
    (a, b)
}

impl Read for PipeStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        while self.pos >= self.pending.len() {
            let chunk = match self.read_timeout {
                None => self.rx.recv().map_err(|_| ()),
                Some(timeout) => match self.rx.recv_timeout(timeout) {
                    Ok(chunk) => Ok(chunk),
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "pipe read timed out",
                        ));
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => Err(()),
                },
            };
            match chunk {
                Ok(chunk) => {
                    self.pending = chunk;
                    self.pos = 0;
                }
                // Writer gone and buffer drained: clean end of stream.
                Err(()) => return Ok(0),
            }
        }
        let n = (self.pending.len() - self.pos).min(buf.len());
        buf[..n].copy_from_slice(&self.pending[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

impl Write for PipeStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        self.tx
            .send(buf.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer closed"))?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn duplex_round_trips_and_signals_eof_and_broken_pipe() {
        let (mut a, mut b) = duplex();
        a.write_all(b"hello transport").unwrap();
        let mut buf = [0u8; 15];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello transport");

        // Partial reads drain the buffered chunk across calls.
        a.write_all(&[1, 2, 3, 4]).unwrap();
        let mut two = [0u8; 2];
        b.read_exact(&mut two).unwrap();
        assert_eq!(two, [1, 2]);

        drop(a);
        // Drained bytes still arrive, then clean EOF.
        b.read_exact(&mut two).unwrap();
        assert_eq!(two, [3, 4]);
        assert_eq!(b.read(&mut two).unwrap(), 0, "EOF after peer drop");
        assert_eq!(b.write(&[9]).unwrap_err().kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn chaos_schedule_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let data = vec![0xABu8; 4096];
            let mut stream = ChaosStream::new(&data[..], ChaosConfig::balanced(0.3), seed);
            let mut out = Vec::new();
            let mut buf = [0u8; 64];
            let mut errors = Vec::new();
            loop {
                match stream.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => out.extend_from_slice(&buf[..n]),
                    Err(e) => {
                        errors.push(e.kind());
                        if stream.is_dead() {
                            break;
                        }
                    }
                }
            }
            (out, errors, stream.counts())
        };
        assert_eq!(run(42), run(42), "same seed must replay identically");
        assert_ne!(run(42), run(43), "different seeds must differ");
    }

    #[test]
    fn dead_stream_stays_dead() {
        let data = vec![0u8; 1 << 16];
        let mut stream =
            ChaosStream::new(io::Cursor::new(data), ChaosConfig::disconnect_only(1.0), 7);
        let mut buf = [0u8; 8];
        // fault_rate 1.0, disconnect-only: dies within the first reads.
        let mut saw_error = false;
        for _ in 0..4 {
            if stream.read(&mut buf).is_err() {
                saw_error = true;
                break;
            }
        }
        assert!(saw_error && stream.is_dead());
        assert_eq!(
            stream.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::ConnectionReset
        );
        assert_eq!(
            stream.write(&[1]).unwrap_err().kind(),
            io::ErrorKind::BrokenPipe
        );
        assert_eq!(stream.counts().disconnects, 1, "one disconnect, then dead");
    }

    #[test]
    fn zero_fault_rate_is_a_transparent_wrapper() {
        let (a, mut b) = duplex();
        let mut chaotic = ChaosStream::new(a, ChaosConfig::balanced(0.0), 99);
        chaotic.write_all(b"untouched").unwrap();
        drop(chaotic);
        let mut out = Vec::new();
        b.read_to_end(&mut out).unwrap();
        assert_eq!(out, b"untouched");
    }

    #[test]
    fn bit_flips_corrupt_exactly_one_bit() {
        let data = vec![0u8; 256];
        let cfg = ChaosConfig {
            fault_rate: 1.0,
            disconnect: 0.0,
            bit_flip: 1.0,
            short_op: 0.0,
            stall: 0.0,
        };
        let mut stream = ChaosStream::new(&data[..], cfg, 5);
        let mut buf = [0u8; 256];
        let n = stream.read(&mut buf).unwrap();
        let flipped: u32 = buf[..n].iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit flipped per faulted read");
        assert_eq!(stream.counts().bit_flips, 1);
    }
}
