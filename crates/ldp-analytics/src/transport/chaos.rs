//! Deterministic fault injection for transport tests.
//!
//! [`ChaosStream`] wraps any `Read + Write` stream and, following a seeded
//! schedule, injects the faults a real network serves up: mid-frame
//! disconnects, short reads/writes, single-bit corruption, and stalls.
//! Because the schedule is a pure function of the seed, a failing chaos
//! run replays exactly — `(seed, fault trace)` is a complete bug report.
//!
//! [`duplex`] builds the in-process socket pair the chaos suite runs over:
//! two [`PipeStream`] halves connected by byte channels, with genuine
//! EOF-on-drop and broken-pipe semantics but no OS socket dependency.

use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};

use ldp_core::rng::{sample_weighted, seeded_rng, uniform, uniform_index};
use rand::rngs::StdRng;
use rand::Rng;

/// Relative likelihoods of each fault kind, applied when a fault fires.
///
/// Weights are relative (they need not sum to 1); a zero weight disables
/// that fault kind entirely.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Probability in `[0, 1]` that any single `read`/`write` call faults.
    pub fault_rate: f64,
    /// Weight of mid-operation disconnects (the stream dies permanently,
    /// possibly after delivering a partial chunk — a mid-frame cut).
    pub disconnect: f64,
    /// Weight of single-bit corruption in the bytes that do pass.
    pub bit_flip: f64,
    /// Weight of short operations (1-byte reads/writes that exercise the
    /// frame layer's partial-I/O loops).
    pub short_op: f64,
    /// Weight of stalls surfaced as `io::ErrorKind::TimedOut`.
    pub stall: f64,
}

impl ChaosConfig {
    /// All four fault kinds, equally weighted, at `fault_rate`.
    pub fn balanced(fault_rate: f64) -> Self {
        ChaosConfig {
            fault_rate,
            disconnect: 1.0,
            bit_flip: 1.0,
            short_op: 1.0,
            stall: 1.0,
        }
    }

    /// Disconnects only — the reconnect-and-replay stress profile.
    pub fn disconnect_only(fault_rate: f64) -> Self {
        ChaosConfig {
            fault_rate,
            disconnect: 1.0,
            bit_flip: 0.0,
            short_op: 0.0,
            stall: 0.0,
        }
    }

    fn weights(&self) -> [f64; 4] {
        [self.disconnect, self.bit_flip, self.short_op, self.stall]
    }
}

/// How many faults of each kind a [`ChaosStream`] injected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// Permanent disconnects injected (at most one per stream).
    pub disconnects: u64,
    /// Single-bit corruptions injected.
    pub bit_flips: u64,
    /// Short reads/writes injected.
    pub short_ops: u64,
    /// Timed-out operations injected.
    pub stalls: u64,
    /// Process-level kills injected by a shared [`CrashSwitch`] (at most
    /// one per stream — a killed process's streams all die together).
    pub crashes: u64,
}

impl FaultCounts {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.disconnects + self.bit_flips + self.short_ops + self.stalls + self.crashes
    }
}

/// A process-level kill switch shared by every stream of one simulated
/// process.
///
/// Unlike the per-stream fault schedule, a crash is *correlated*: when a
/// process dies, all of its connections die at the same instant. Each
/// sharing [`ChaosStream`] counts one switch op per I/O call; at the
/// seeded kill op the switch trips, and from then on every sharing stream
/// fails exactly like one whose process was `kill -9`ed — reads
/// `ConnectionReset`, writes `BrokenPipe`, no further bytes in either
/// direction.
///
/// Cloning shares the switch (it is the identity of the simulated
/// process); the seeded constructor makes kill placement a pure function
/// of the seed, so a crash run replays bit-for-bit.
#[derive(Debug, Clone)]
pub struct CrashSwitch {
    inner: Arc<CrashSwitchInner>,
}

#[derive(Debug)]
struct CrashSwitchInner {
    kill_at: u64,
    ops: AtomicU64,
    tripped: AtomicBool,
}

impl CrashSwitch {
    /// Kill at exactly the `kill_at`-th (1-based) I/O op across all
    /// sharing streams.
    pub fn at_op(kill_at: u64) -> Self {
        CrashSwitch {
            inner: Arc::new(CrashSwitchInner {
                kill_at: kill_at.max(1),
                ops: AtomicU64::new(0),
                tripped: AtomicBool::new(false),
            }),
        }
    }

    /// A seed-derived switch killing within the first `max_ops` ops —
    /// same seed, same kill op.
    pub fn seeded(seed: u64, max_ops: u64) -> Self {
        let mut rng = seeded_rng(seed ^ 0x0c4a_5f1e_dead_5107);
        let bound = max_ops.clamp(1, u64::from(u32::MAX)) as u32;
        Self::at_op(u64::from(uniform_index(&mut rng, bound)) + 1)
    }

    /// The 1-based op index this switch kills at.
    pub fn kill_at(&self) -> u64 {
        self.inner.kill_at
    }

    /// Counts one I/O op; true once the kill point is reached (this op
    /// and every later one must fail).
    pub fn note_op(&self) -> bool {
        if self.inner.tripped.load(Ordering::Relaxed) {
            return true;
        }
        let op = self.inner.ops.fetch_add(1, Ordering::Relaxed) + 1;
        if op >= self.inner.kill_at {
            self.inner.tripped.store(true, Ordering::Relaxed);
            return true;
        }
        false
    }

    /// True once the kill has fired.
    pub fn tripped(&self) -> bool {
        self.inner.tripped.load(Ordering::Relaxed)
    }
}

/// A `Read + Write` wrapper that injects a seeded schedule of faults.
///
/// After an injected disconnect the stream is dead: every further
/// operation fails with `io::ErrorKind::ConnectionReset` (reads) or
/// `BrokenPipe` (writes), exactly like an OS socket whose peer vanished.
#[derive(Debug)]
pub struct ChaosStream<S> {
    inner: S,
    config: ChaosConfig,
    rng: StdRng,
    dead: bool,
    counts: FaultCounts,
    crash: Option<CrashSwitch>,
}

impl<S> ChaosStream<S> {
    /// Wraps `inner`, drawing the fault schedule from `seed`.
    pub fn new(inner: S, config: ChaosConfig, seed: u64) -> Self {
        ChaosStream {
            inner,
            config,
            rng: seeded_rng(seed),
            dead: false,
            counts: FaultCounts::default(),
            crash: None,
        }
    }

    /// Attaches a shared process-level [`CrashSwitch`]: every I/O call on
    /// this stream counts one switch op, and once the switch trips this
    /// stream (and every other sharing it) dies permanently.
    pub fn with_crash_switch(mut self, switch: CrashSwitch) -> Self {
        self.crash = Some(switch);
        self
    }

    /// Faults injected so far.
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }

    /// True once an injected disconnect has killed the stream.
    pub fn is_dead(&self) -> bool {
        self.dead
    }

    /// Checks the shared crash switch (if any); kills this stream at the
    /// switch's op and counts the injected crash exactly once per stream.
    fn crash_due(&mut self) -> bool {
        match &self.crash {
            Some(switch) if switch.note_op() => {
                if !self.dead {
                    self.dead = true;
                    self.counts.crashes += 1;
                }
                true
            }
            _ => false,
        }
    }

    /// Draws whether this operation faults, and which kind if so.
    fn draw_fault(&mut self) -> Option<usize> {
        if uniform(&mut self.rng, 0.0, 1.0) >= self.config.fault_rate {
            return None;
        }
        let weights = self.config.weights();
        if weights.iter().all(|&w| w <= 0.0) {
            return None;
        }
        Some(sample_weighted(&mut self.rng, &weights))
    }

    fn dead_read_error() -> io::Error {
        io::Error::new(io::ErrorKind::ConnectionReset, "chaos: connection dropped")
    }

    fn dead_write_error() -> io::Error {
        io::Error::new(io::ErrorKind::BrokenPipe, "chaos: connection dropped")
    }

    fn stall_error() -> io::Error {
        io::Error::new(io::ErrorKind::TimedOut, "chaos: operation stalled")
    }
}

impl<S: Read> Read for ChaosStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.dead {
            return Err(Self::dead_read_error());
        }
        if buf.is_empty() {
            return self.inner.read(buf);
        }
        if self.crash_due() {
            return Err(Self::dead_read_error());
        }
        match self.draw_fault() {
            Some(0) => {
                // Mid-frame disconnect: half the time one byte still
                // arrives before the cut, so readers die *inside* a frame,
                // not conveniently at its boundary.
                self.counts.disconnects += 1;
                self.dead = true;
                if self.rng.random::<bool>() {
                    let n = self.inner.read(&mut buf[..1])?;
                    if n > 0 {
                        return Ok(n);
                    }
                }
                Err(Self::dead_read_error())
            }
            Some(1) => {
                let n = self.inner.read(buf)?;
                if n > 0 {
                    self.counts.bit_flips += 1;
                    let bit = self.rng.random::<u64>() as usize % (n * 8);
                    buf[bit / 8] ^= 1 << (bit % 8);
                }
                Ok(n)
            }
            Some(2) => {
                self.counts.short_ops += 1;
                self.inner.read(&mut buf[..1])
            }
            Some(3) => {
                self.counts.stalls += 1;
                Err(Self::stall_error())
            }
            _ => self.inner.read(buf),
        }
    }
}

impl<S: Write> Write for ChaosStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.dead {
            return Err(Self::dead_write_error());
        }
        if buf.is_empty() {
            return self.inner.write(buf);
        }
        if self.crash_due() {
            return Err(Self::dead_write_error());
        }
        match self.draw_fault() {
            Some(0) => {
                // Mid-frame disconnect on the write side: the peer may
                // have received a partial frame it can never complete.
                self.counts.disconnects += 1;
                self.dead = true;
                if self.rng.random::<bool>() {
                    let n = self.inner.write(&buf[..1])?;
                    if n > 0 {
                        return Ok(n);
                    }
                }
                Err(Self::dead_write_error())
            }
            Some(1) => {
                self.counts.bit_flips += 1;
                let mut corrupted = buf.to_vec();
                let bit = self.rng.random::<u64>() as usize % (corrupted.len() * 8);
                corrupted[bit / 8] ^= 1 << (bit % 8);
                let n = self.inner.write(&corrupted)?;
                Ok(n)
            }
            Some(2) => {
                self.counts.short_ops += 1;
                self.inner.write(&buf[..1])
            }
            Some(3) => {
                self.counts.stalls += 1;
                Err(Self::stall_error())
            }
            _ => self.inner.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        if self.dead {
            return Err(Self::dead_write_error());
        }
        self.inner.flush()
    }
}

/// One half of an in-process byte-stream pair — see [`duplex`].
#[derive(Debug)]
pub struct PipeStream {
    tx: mpsc::Sender<Vec<u8>>,
    rx: mpsc::Receiver<Vec<u8>>,
    pending: Vec<u8>,
    pos: usize,
    read_timeout: Option<std::time::Duration>,
}

impl PipeStream {
    /// Bounds how long a read blocks for new bytes, mirroring
    /// `TcpStream::set_read_timeout`: an expired wait fails with
    /// `io::ErrorKind::TimedOut`.
    ///
    /// Chaos harnesses must set this on the *server* half: a corrupted
    /// length header can promise megabytes that never arrive, and with
    /// both ends blocking (reader on the phantom payload, peer on the
    /// response) only a timeout — exactly like a socket's — breaks the
    /// deadlock.
    pub fn set_read_timeout(&mut self, timeout: Option<std::time::Duration>) {
        self.read_timeout = timeout;
    }
}

/// Builds a connected pair of in-process streams.
///
/// Bytes written to one half are read from the other. Dropping a half
/// gives the peer's reads end-of-stream (after drained bytes) and its
/// writes `io::ErrorKind::BrokenPipe` — the semantics transport code must
/// survive, without touching OS sockets.
pub fn duplex() -> (PipeStream, PipeStream) {
    let (a_tx, b_rx) = mpsc::channel();
    let (b_tx, a_rx) = mpsc::channel();
    let a = PipeStream {
        tx: a_tx,
        rx: a_rx,
        pending: Vec::new(),
        pos: 0,
        read_timeout: None,
    };
    let b = PipeStream {
        tx: b_tx,
        rx: b_rx,
        pending: Vec::new(),
        pos: 0,
        read_timeout: None,
    };
    (a, b)
}

impl Read for PipeStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        while self.pos >= self.pending.len() {
            let chunk = match self.read_timeout {
                None => self.rx.recv().map_err(|_| ()),
                Some(timeout) => match self.rx.recv_timeout(timeout) {
                    Ok(chunk) => Ok(chunk),
                    Err(mpsc::RecvTimeoutError::Timeout) => {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "pipe read timed out",
                        ));
                    }
                    Err(mpsc::RecvTimeoutError::Disconnected) => Err(()),
                },
            };
            match chunk {
                Ok(chunk) => {
                    self.pending = chunk;
                    self.pos = 0;
                }
                // Writer gone and buffer drained: clean end of stream.
                Err(()) => return Ok(0),
            }
        }
        let n = (self.pending.len() - self.pos).min(buf.len());
        buf[..n].copy_from_slice(&self.pending[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

impl Write for PipeStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        self.tx
            .send(buf.to_vec())
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "peer closed"))?;
        Ok(buf.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};

    #[test]
    fn duplex_round_trips_and_signals_eof_and_broken_pipe() {
        let (mut a, mut b) = duplex();
        a.write_all(b"hello transport").unwrap();
        let mut buf = [0u8; 15];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello transport");

        // Partial reads drain the buffered chunk across calls.
        a.write_all(&[1, 2, 3, 4]).unwrap();
        let mut two = [0u8; 2];
        b.read_exact(&mut two).unwrap();
        assert_eq!(two, [1, 2]);

        drop(a);
        // Drained bytes still arrive, then clean EOF.
        b.read_exact(&mut two).unwrap();
        assert_eq!(two, [3, 4]);
        assert_eq!(b.read(&mut two).unwrap(), 0, "EOF after peer drop");
        assert_eq!(b.write(&[9]).unwrap_err().kind(), io::ErrorKind::BrokenPipe);
    }

    #[test]
    fn chaos_schedule_is_deterministic_per_seed() {
        let run = |seed: u64| {
            let data = vec![0xABu8; 4096];
            let mut stream = ChaosStream::new(&data[..], ChaosConfig::balanced(0.3), seed);
            let mut out = Vec::new();
            let mut buf = [0u8; 64];
            let mut errors = Vec::new();
            loop {
                match stream.read(&mut buf) {
                    Ok(0) => break,
                    Ok(n) => out.extend_from_slice(&buf[..n]),
                    Err(e) => {
                        errors.push(e.kind());
                        if stream.is_dead() {
                            break;
                        }
                    }
                }
            }
            (out, errors, stream.counts())
        };
        assert_eq!(run(42), run(42), "same seed must replay identically");
        assert_ne!(run(42), run(43), "different seeds must differ");
    }

    #[test]
    fn dead_stream_stays_dead() {
        let data = vec![0u8; 1 << 16];
        let mut stream =
            ChaosStream::new(io::Cursor::new(data), ChaosConfig::disconnect_only(1.0), 7);
        let mut buf = [0u8; 8];
        // fault_rate 1.0, disconnect-only: dies within the first reads.
        let mut saw_error = false;
        for _ in 0..4 {
            if stream.read(&mut buf).is_err() {
                saw_error = true;
                break;
            }
        }
        assert!(saw_error && stream.is_dead());
        assert_eq!(
            stream.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::ConnectionReset
        );
        assert_eq!(
            stream.write(&[1]).unwrap_err().kind(),
            io::ErrorKind::BrokenPipe
        );
        assert_eq!(stream.counts().disconnects, 1, "one disconnect, then dead");
    }

    #[test]
    fn zero_fault_rate_is_a_transparent_wrapper() {
        let (a, mut b) = duplex();
        let mut chaotic = ChaosStream::new(a, ChaosConfig::balanced(0.0), 99);
        chaotic.write_all(b"untouched").unwrap();
        drop(chaotic);
        let mut out = Vec::new();
        b.read_to_end(&mut out).unwrap();
        assert_eq!(out, b"untouched");
    }

    #[test]
    fn crash_switch_kills_all_sharing_streams_at_the_seeded_op() {
        let switch = CrashSwitch::at_op(3);
        let data_a = [0u8; 64];
        let data_b = [0u8; 64];
        let mut a = ChaosStream::new(&data_a[..], ChaosConfig::balanced(0.0), 1)
            .with_crash_switch(switch.clone());
        let mut b = ChaosStream::new(&data_b[..], ChaosConfig::balanced(0.0), 2)
            .with_crash_switch(switch.clone());
        let mut buf = [0u8; 8];
        assert!(a.read(&mut buf).is_ok()); // op 1
        assert!(b.read(&mut buf).is_ok()); // op 2
        assert!(!switch.tripped());
        // Op 3 trips the switch: both streams die, like one killed process.
        assert_eq!(
            a.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::ConnectionReset
        );
        assert!(switch.tripped());
        assert_eq!(
            b.read(&mut buf).unwrap_err().kind(),
            io::ErrorKind::ConnectionReset
        );
        assert!(a.is_dead() && b.is_dead());
        assert_eq!(a.counts().crashes, 1);
        assert_eq!(b.counts().crashes, 1);
        assert_eq!(a.counts().total(), 1, "crashes count as faults");

        // Seeded placement is deterministic.
        assert_eq!(
            CrashSwitch::seeded(11, 100).kill_at(),
            CrashSwitch::seeded(11, 100).kill_at()
        );
        assert_ne!(
            CrashSwitch::seeded(11, 1 << 20).kill_at(),
            CrashSwitch::seeded(12, 1 << 20).kill_at()
        );
    }

    #[test]
    fn bit_flips_corrupt_exactly_one_bit() {
        let data = vec![0u8; 256];
        let cfg = ChaosConfig {
            fault_rate: 1.0,
            disconnect: 0.0,
            bit_flip: 1.0,
            short_op: 0.0,
            stall: 0.0,
        };
        let mut stream = ChaosStream::new(&data[..], cfg, 5);
        let mut buf = [0u8; 256];
        let n = stream.read(&mut buf).unwrap();
        let flipped: u32 = buf[..n].iter().map(|b| b.count_ones()).sum();
        assert_eq!(flipped, 1, "exactly one bit flipped per faulted read");
        assert_eq!(stream.counts().bit_flips, 1);
    }
}
