//! OS-socket bindings for the transport: TCP (and, on Unix, domain
//! sockets) around [`ReportServer`] /
//! [`ReportClient`](crate::transport::ReportClient).
//!
//! Everything here is a thin shell: accept loops spawn one
//! [`ConnHandle::serve_stream`] thread per connection, and connectors
//! implement [`Connect`] with timeouts classified through
//! [`ldp_core::frame::io_error`], so all retry/backoff/idempotency logic
//! lives in the socket-agnostic layers this module wraps.

use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use ldp_core::frame::io_error;
use ldp_core::Result;

use crate::service::ReportService;
use crate::transport::client::Connect;
use crate::transport::server::{
    ConnHandle, ConnSummary, ReportServer, ServerConfig, TransportStats,
};

/// Socket-level knobs for [`TcpReportServer`].
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Read/write timeout applied to every accepted connection. Doubles
    /// as the shutdown drain bound: a connection idle longer than this
    /// exits with a typed [`ldp_core::LdpError::Timeout`] fault instead
    /// of blocking [`TcpReportServer::finish`] forever. `None` disables
    /// timeouts (then clients *must* close for `finish` to return).
    pub io_timeout: Option<Duration>,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            io_timeout: Some(Duration::from_secs(5)),
        }
    }
}

/// A [`ReportServer`] listening on a TCP socket.
#[derive(Debug)]
pub struct TcpReportServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: JoinHandle<Vec<ConnSummary>>,
    server: ReportServer,
}

impl TcpReportServer {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts
    /// accepting connections.
    ///
    /// # Errors
    /// Bind failures, classified through [`io_error`].
    pub fn bind<A: ToSocketAddrs>(addr: A, config: ServerConfig, net: NetConfig) -> Result<Self> {
        let listener = TcpListener::bind(addr).map_err(|e| io_error("bind", &e))?;
        let local_addr = listener.local_addr().map_err(|e| io_error("bind", &e))?;
        let server = ReportServer::start(config);
        let stop = Arc::new(AtomicBool::new(false));
        let accept_thread = spawn_accept_loop(listener, server.handle(), Arc::clone(&stop), net);
        Ok(TcpReportServer {
            local_addr,
            stop,
            accept_thread,
            server,
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The underlying server's transport counters.
    pub fn stats(&self) -> Arc<TransportStats> {
        self.server.stats()
    }

    /// Stops accepting, joins every connection thread, drains the queue,
    /// and returns the absorbed service with all per-connection
    /// summaries.
    ///
    /// In-flight connections are served to completion (EOF, `Shutdown`,
    /// or the [`NetConfig::io_timeout`] drain bound), never cut off.
    pub fn finish(self) -> (ReportService, Vec<ConnSummary>) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept() call with a throwaway connection.
        let _ = TcpStream::connect(self.local_addr);
        let summaries = self
            .accept_thread
            .join()
            .expect("tcp accept thread panicked");
        (self.server.finish(), summaries)
    }
}

/// Accept loop: one `serve_stream` thread per connection, all joined
/// before the loop returns its summaries.
fn spawn_accept_loop(
    listener: TcpListener,
    handle: ConnHandle,
    stop: Arc<AtomicBool>,
    net: NetConfig,
) -> JoinHandle<Vec<ConnSummary>> {
    thread::spawn(move || {
        let mut workers: Vec<JoinHandle<ConnSummary>> = Vec::new();
        loop {
            let accepted = listener.accept();
            if stop.load(Ordering::SeqCst) {
                break;
            }
            let Ok((mut stream, _)) = accepted else {
                // Transient accept errors (per-connection resets) do not
                // stop the server.
                continue;
            };
            let _ = stream.set_nodelay(true);
            let _ = stream.set_read_timeout(net.io_timeout);
            let _ = stream.set_write_timeout(net.io_timeout);
            let conn = handle.clone();
            workers.push(thread::spawn(move || conn.serve_stream(&mut stream)));
        }
        // Drop our handle before joining so only live connections keep
        // the absorber running.
        drop(handle);
        workers
            .into_iter()
            .map(|w| w.join().expect("connection thread panicked"))
            .collect()
    })
}

/// A [`Connect`] implementation dialing one TCP address.
#[derive(Debug, Clone)]
pub struct TcpConnector {
    addr: SocketAddr,
    /// Timeout for establishing the connection.
    pub connect_timeout: Duration,
    /// Read/write timeout on the established stream (`None` = blocking).
    pub io_timeout: Option<Duration>,
}

impl TcpConnector {
    /// A connector for `addr` with the given connect timeout and a
    /// matching I/O timeout.
    pub fn new(addr: SocketAddr, connect_timeout: Duration) -> Self {
        TcpConnector {
            addr,
            connect_timeout,
            io_timeout: Some(connect_timeout),
        }
    }
}

impl Connect for TcpConnector {
    type Stream = TcpStream;

    fn connect(&mut self) -> Result<Self::Stream> {
        let stream = TcpStream::connect_timeout(&self.addr, self.connect_timeout)
            .map_err(|e| io_error("connect", &e))?;
        let _ = stream.set_nodelay(true);
        stream
            .set_read_timeout(self.io_timeout)
            .and_then(|()| stream.set_write_timeout(self.io_timeout))
            .map_err(|e| io_error("connect", &e))?;
        Ok(stream)
    }
}

/// Unix-domain-socket twins of the TCP types.
#[cfg(unix)]
pub mod unix {
    use std::os::unix::net::{UnixListener, UnixStream};
    use std::path::{Path, PathBuf};

    use super::*;

    /// A [`ReportServer`] listening on a Unix domain socket.
    #[derive(Debug)]
    pub struct UnixReportServer {
        path: PathBuf,
        stop: Arc<AtomicBool>,
        accept_thread: JoinHandle<Vec<ConnSummary>>,
        server: ReportServer,
    }

    impl UnixReportServer {
        /// Binds `path` (removing any stale socket file first) and starts
        /// accepting connections.
        ///
        /// # Errors
        /// Bind failures, classified through [`io_error`].
        pub fn bind<P: AsRef<Path>>(path: P, config: ServerConfig, net: NetConfig) -> Result<Self> {
            let path = path.as_ref().to_path_buf();
            let _ = std::fs::remove_file(&path);
            let listener = UnixListener::bind(&path).map_err(|e| io_error("bind", &e))?;
            let server = ReportServer::start(config);
            let stop = Arc::new(AtomicBool::new(false));
            let accept_thread =
                spawn_unix_accept_loop(listener, server.handle(), Arc::clone(&stop), net);
            Ok(UnixReportServer {
                path,
                stop,
                accept_thread,
                server,
            })
        }

        /// The socket path this server listens on.
        pub fn path(&self) -> &Path {
            &self.path
        }

        /// As [`TcpReportServer::finish`], plus removal of the socket
        /// file.
        pub fn finish(self) -> (ReportService, Vec<ConnSummary>) {
            self.stop.store(true, Ordering::SeqCst);
            let _ = UnixStream::connect(&self.path);
            let summaries = self
                .accept_thread
                .join()
                .expect("unix accept thread panicked");
            let _ = std::fs::remove_file(&self.path);
            (self.server.finish(), summaries)
        }
    }

    fn spawn_unix_accept_loop(
        listener: UnixListener,
        handle: ConnHandle,
        stop: Arc<AtomicBool>,
        net: NetConfig,
    ) -> JoinHandle<Vec<ConnSummary>> {
        thread::spawn(move || {
            let mut workers: Vec<JoinHandle<ConnSummary>> = Vec::new();
            loop {
                let accepted = listener.accept();
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok((mut stream, _)) = accepted else {
                    continue;
                };
                let _ = stream.set_read_timeout(net.io_timeout);
                let _ = stream.set_write_timeout(net.io_timeout);
                let conn = handle.clone();
                workers.push(thread::spawn(move || conn.serve_stream(&mut stream)));
            }
            drop(handle);
            workers
                .into_iter()
                .map(|w| w.join().expect("connection thread panicked"))
                .collect()
        })
    }

    /// A [`Connect`] implementation dialing one Unix socket path.
    #[derive(Debug, Clone)]
    pub struct UnixConnector {
        path: PathBuf,
        /// Read/write timeout on the established stream.
        pub io_timeout: Option<Duration>,
    }

    impl UnixConnector {
        /// A connector for the socket at `path`.
        pub fn new<P: AsRef<Path>>(path: P) -> Self {
            UnixConnector {
                path: path.as_ref().to_path_buf(),
                io_timeout: Some(Duration::from_secs(5)),
            }
        }
    }

    impl Connect for UnixConnector {
        type Stream = UnixStream;

        fn connect(&mut self) -> Result<Self::Stream> {
            let stream = UnixStream::connect(&self.path).map_err(|e| io_error("connect", &e))?;
            stream
                .set_read_timeout(self.io_timeout)
                .and_then(|()| stream.set_write_timeout(self.io_timeout))
                .map_err(|e| io_error("connect", &e))?;
            Ok(stream)
        }
    }
}
