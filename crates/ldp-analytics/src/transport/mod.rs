//! Fault-tolerant transport for the report-stream protocol.
//!
//! The [`service`](crate::service) module defines *what* travels (framed
//! [`WireMessage`](crate::service::WireMessage)s in, framed
//! [`ResponseMessage`](crate::service::ResponseMessage)s out); this
//! module defines *how it survives a real network*:
//!
//! * [`server`] — a [`ReportServer`]: per-connection reader threads
//!   feeding one service-owning absorber through a **bounded** queue.
//!   Backpressure is explicit (full queue ⇒ typed `Overloaded` shed, not
//!   unbounded buffering), faults are connection-scoped (a hostile or
//!   desynced client is dropped and counted, never poisons shared
//!   state), and shutdown drains before it stops.
//! * [`client`] — a [`ReportClient`]: connect timeouts, seeded
//!   exponential [`backoff`] with jitter, reconnect-with-`Hello`-replay,
//!   and resend of unacknowledged submits. The server's privacy-budget
//!   ledger answers a resent-but-already-admitted report with a
//!   `Duplicate` verdict, so retries are **idempotent by construction**
//!   — at-most-once budget spend without client-side bookkeeping.
//! * [`chaos`] — a deterministic fault injector ([`ChaosStream`]) and an
//!   in-process socket pair ([`duplex`]), so the integration suite can
//!   prove the property that matters: a chaos-ridden run's merged
//!   snapshot is *bit-identical* to a clean run's.
//! * [`net`] (feature `net`, on by default) — `std::net` TCP and Unix
//!   domain socket shells over the stream-agnostic core.
//!
//! ## Verdicts and the retry contract
//!
//! Three signals cover everything that can go wrong short of a dead
//! wire, and each prescribes exactly one client reaction:
//!
//! * [`AckOutcome::Overloaded`](crate::service::AckOutcome::Overloaded)
//!   — the server's bounded queue shed the submit **before** any
//!   validation or ledger state was touched. Nothing was spent; the
//!   client pauses on its [`Backoff`] schedule and resends on the *same*
//!   connection.
//! * [`ResponseMessage::Resend`](crate::service::ResponseMessage::Resend)
//!   — a frame arrived checksum-corrupt but well-delimited. The stream
//!   is still in sync, so the client rewrites the same frame in place;
//!   after [`ClientConfig::max_resends`] bounces the connection is
//!   declared hostile and rebuilt.
//! * [`StreamFault`](crate::service::StreamFault) — desynchronizing
//!   damage (truncation, an oversized length, an I/O error), recorded
//!   with the exact byte offset. The server ends *that connection only*;
//!   the client reconnects, replays its `Hello`, and retries.
//!
//! Whenever an ack is lost the submit's fate is unknown, and the only
//! safe move is to resend. That is safe because the server's
//! [`BudgetLedger`](crate::ledger::BudgetLedger) answers a resend of an
//! already-admitted `(user, epoch)` with a
//! [`Duplicate`](crate::service::AckOutcome::Duplicate) verdict, which
//! [`ReportClient`] surfaces as the *success*
//! [`SubmitOutcome::AlreadyAdmitted`]: **at-most-once budget spend, no
//! client-side bookkeeping** — retries can only ever be counted, never
//! double-spent.
//!
//! ## Example: a client/server round trip
//!
//! An in-process connection (a deployment would use
//! [`TcpConnector`]/[`TcpReportServer`]; the contract is identical):
//!
//! ```
//! use ldp_analytics::service::{encode_report, WireMessage};
//! use ldp_analytics::transport::{
//!     duplex, ClientConfig, Connect, PipeStream, ReportClient, ReportServer, ServerConfig,
//!     SubmitOutcome,
//! };
//! use ldp_analytics::{ClientEncoder, Protocol};
//! use ldp_core::multidim::{AttrSpec, AttrValue};
//! use ldp_core::rng::seeded_rng;
//! use ldp_core::{Epsilon, IoFault, LdpError, NumericKind, OracleKind};
//!
//! // A connector over one pre-wired duplex half.
//! struct OneShot(Option<PipeStream>);
//! impl Connect for OneShot {
//!     type Stream = PipeStream;
//!     fn connect(&mut self) -> ldp_core::Result<PipeStream> {
//!         self.0.take().ok_or(LdpError::ConnectionLost {
//!             op: "connect",
//!             cause: IoFault {
//!                 kind: std::io::ErrorKind::ConnectionRefused,
//!                 message: "single test stream already used".into(),
//!             },
//!         })
//!     }
//! }
//!
//! let protocol = Protocol::Sampling {
//!     numeric: NumericKind::Hybrid,
//!     oracle: OracleKind::Oue,
//! };
//! let epsilon = Epsilon::new(1.0)?;
//! let specs = vec![AttrSpec::Numeric, AttrSpec::Categorical { k: 4 }];
//!
//! // Server: reader threads feed one service-owning absorber; here a
//! // single in-process connection is served on a spawned thread.
//! let server = ReportServer::start(ServerConfig::default());
//! let (client_half, mut server_half) = duplex();
//! let handle = server.handle();
//! let conn = std::thread::spawn(move || handle.serve_stream(&mut server_half));
//!
//! // Client: reconnect + retry around the framed protocol.
//! let hello = WireMessage::Hello {
//!     protocol,
//!     epsilon,
//!     specs: specs.clone(),
//!     epoch: 0,
//! };
//! let mut client = ReportClient::new(OneShot(Some(client_half)), hello, ClientConfig::default())?;
//!
//! let encoder = ClientEncoder::new(protocol, epsilon, specs.clone())?;
//! let record = vec![AttrValue::Numeric(0.25), AttrValue::Categorical(1)];
//! let mut rng = seeded_rng(7);
//! for user in 0..10u64 {
//!     let report = encoder.encode(&record, &mut rng)?;
//!     let outcome = client.submit(user, 0, 0, encode_report(&report, &specs))?;
//!     assert_eq!(outcome, SubmitOutcome::Admitted);
//! }
//!
//! // Retrying an already-admitted user is success, not a double spend.
//! let report = encoder.encode(&record, &mut rng)?;
//! let outcome = client.submit(3, 0, 0, encode_report(&report, &specs))?;
//! assert_eq!(outcome, SubmitOutcome::AlreadyAdmitted);
//!
//! let receipt = client.flush_epoch(0)?;
//! assert_eq!(receipt.admitted, 10);
//! assert_eq!(receipt.rejected_duplicates, 1);
//!
//! client.close();
//! conn.join().expect("connection thread");
//! let service = server.finish(); // drains the queue, returns the service
//! assert_eq!(service.snapshot_epoch(0)?.admitted, 10);
//! # Ok::<(), LdpError>(())
//! ```

pub mod backoff;
pub mod chaos;
pub mod client;
#[cfg(feature = "net")]
pub mod net;
pub mod server;

pub use backoff::Backoff;
pub use chaos::{duplex, ChaosConfig, ChaosStream, CrashSwitch, FaultCounts, PipeStream};
pub use client::{ClientConfig, ClientStats, Connect, FlushReceipt, ReportClient, SubmitOutcome};
#[cfg(feature = "net")]
pub use net::{NetConfig, TcpConnector, TcpReportServer};
pub use server::{ConnHandle, ConnSummary, ReportServer, ServerConfig, TransportStats};

#[cfg(test)]
mod tests {
    use std::io::Write;
    use std::time::Duration;

    use ldp_core::{Epsilon, LdpError};

    use super::chaos::duplex;
    use super::client::{ClientConfig, Connect, ReportClient, SubmitOutcome};
    use super::server::{ReportServer, ServerConfig};
    use crate::pipeline::Protocol;
    use crate::service::{encode_report, AckOutcome, ResponseMessage, ServiceConfig, WireMessage};
    use crate::session::ClientEncoder;
    use ldp_core::multidim::{AttrSpec, AttrValue};
    use ldp_core::rng::seeded_rng;
    use ldp_core::{NumericKind, OracleKind};

    fn specs() -> Vec<AttrSpec> {
        vec![AttrSpec::Numeric, AttrSpec::Categorical { k: 4 }]
    }

    fn protocol() -> Protocol {
        Protocol::Sampling {
            numeric: NumericKind::Hybrid,
            oracle: OracleKind::Oue,
        }
    }

    fn hello() -> WireMessage {
        WireMessage::Hello {
            protocol: protocol(),
            epsilon: Epsilon::new(1.0).unwrap(),
            specs: specs(),
            epoch: 0,
        }
    }

    fn report_bytes(user: u64) -> Vec<u8> {
        let encoder = ClientEncoder::new(protocol(), Epsilon::new(1.0).unwrap(), specs()).unwrap();
        let mut rng = seeded_rng(user ^ 0xD1CE);
        let record = vec![AttrValue::Numeric(0.25), AttrValue::Categorical(1)];
        let report = encoder.encode(&record, &mut rng).unwrap();
        encode_report(&report, &specs())
    }

    /// A connector yielding pre-built duplex halves (each one wired to a
    /// live server thread by the test).
    struct QueueConnector {
        streams: Vec<super::chaos::PipeStream>,
    }

    impl Connect for QueueConnector {
        type Stream = super::chaos::PipeStream;
        fn connect(&mut self) -> ldp_core::Result<Self::Stream> {
            self.streams.pop().ok_or(LdpError::ConnectionLost {
                op: "connect",
                cause: ldp_core::IoFault {
                    kind: std::io::ErrorKind::ConnectionRefused,
                    message: "no more test streams".into(),
                },
            })
        }
    }

    fn no_sleep_config() -> ClientConfig {
        ClientConfig {
            max_attempts: 8,
            max_resends: 8,
            backoff_base: Duration::ZERO,
            backoff_cap: Duration::ZERO,
            backoff_seed: 1,
        }
    }

    #[test]
    fn end_to_end_submit_flush_over_duplex() {
        let server = ReportServer::start(ServerConfig::default());
        let (client_half, mut server_half) = duplex();
        let handle = server.handle();
        let conn_thread = std::thread::spawn(move || handle.serve_stream(&mut server_half));

        let connector = QueueConnector {
            streams: vec![client_half],
        };
        let mut client = ReportClient::new(connector, hello(), no_sleep_config()).unwrap();
        for user in 0..20u64 {
            let outcome = client
                .submit(user, 0, user / 8, report_bytes(user))
                .unwrap();
            assert_eq!(outcome, SubmitOutcome::Admitted);
        }
        // Resubmitting a user is answered Duplicate and surfaces as
        // AlreadyAdmitted — the idempotency contract.
        let outcome = client.submit(3, 0, 0, report_bytes(3)).unwrap();
        assert_eq!(outcome, SubmitOutcome::AlreadyAdmitted);
        assert_eq!(client.stats().duplicate_acks, 1);

        let receipt = client.flush_epoch(0).unwrap();
        assert_eq!(receipt.admitted, 20);
        assert_eq!(receipt.rejected_duplicates, 1);
        assert_eq!(receipt.users, 20);

        client.close();
        let summary = conn_thread.join().unwrap();
        assert!(summary.shutdown, "close() must send Shutdown");
        assert!(summary.fault.is_none());

        let service = server.finish();
        let snap = service.snapshot_epoch(0).unwrap();
        assert_eq!(snap.admitted, 20);
        assert_eq!(snap.rejected_duplicates, 1);
    }

    #[test]
    fn full_queue_sheds_with_overloaded_ack() {
        // A capacity-1 server whose absorber is wedged behind a slow job
        // is hard to arrange deterministically; instead, drive
        // serve_stream against a handle whose queue is pre-filled and
        // whose absorber never runs (receiver held alive but unread).
        let (handle, _wedged_rx) = super::server::testutil::wedged_handle(1);
        super::server::testutil::fill(&handle);

        let (mut client_half, mut server_half) = duplex();
        let conn_thread = std::thread::spawn(move || handle.serve_stream(&mut server_half));

        WireMessage::Submit {
            user: 9,
            epoch: 0,
            block: 0,
            report: vec![1, 2, 3],
        }
        .write_to(&mut client_half)
        .unwrap();
        let mut scratch = Vec::new();
        let resp = ResponseMessage::read_from(&mut client_half, &mut scratch)
            .unwrap()
            .expect("shed verdict");
        assert_eq!(
            resp,
            ResponseMessage::Ack {
                user: 9,
                epoch: 0,
                outcome: AckOutcome::Overloaded
            },
            "full queue must shed with an Overloaded ack, not block"
        );
        drop(client_half);
        let summary = conn_thread.join().unwrap();
        assert!(summary.fault.is_none(), "shedding is not a fault");
    }

    #[test]
    fn hostile_connection_is_isolated_from_healthy_ones() {
        let server = ReportServer::start(ServerConfig {
            service: ServiceConfig::default(),
            queue_capacity: 64,
        });

        // Hostile client: valid hello, then a stream that dies mid-frame.
        let (mut hostile_half, mut hostile_server) = duplex();
        let handle = server.handle();
        let hostile_thread = std::thread::spawn(move || handle.serve_stream(&mut hostile_server));
        hello().write_to(&mut hostile_half).unwrap();
        let mut scratch = Vec::new();
        ResponseMessage::read_from(&mut hostile_half, &mut scratch)
            .unwrap()
            .expect("hello ack");
        let frame = WireMessage::Submit {
            user: 50,
            epoch: 0,
            block: 0,
            report: report_bytes(50),
        }
        .to_frame()
        .unwrap();
        hostile_half.write_all(&frame[..frame.len() / 2]).unwrap();
        drop(hostile_half); // mid-frame disconnect
        let hostile_summary = hostile_thread.join().unwrap();
        let fault = hostile_summary.fault.expect("mid-frame cut is a fault");
        assert!(matches!(fault.error, LdpError::MalformedFrame { .. }));

        // A healthy client on the same server still works end to end.
        let (healthy_half, mut healthy_server) = duplex();
        let handle = server.handle();
        let healthy_thread = std::thread::spawn(move || handle.serve_stream(&mut healthy_server));
        let connector = QueueConnector {
            streams: vec![healthy_half],
        };
        let mut client = ReportClient::new(connector, hello(), no_sleep_config()).unwrap();
        assert_eq!(
            client.submit(1, 0, 0, report_bytes(1)).unwrap(),
            SubmitOutcome::Admitted
        );
        client.close();
        healthy_thread.join().unwrap();

        let stats = server.stats();
        assert_eq!(stats.faulted_connections(), 1);
        assert_eq!(stats.connections(), 2);
        let service = server.finish();
        // The hostile client's half-submit never reached state; the
        // healthy submit did.
        assert_eq!(service.snapshot_epoch(0).unwrap().admitted, 1);
    }

    #[test]
    fn corrupt_request_frame_earns_a_resend_not_a_disconnect() {
        let server = ReportServer::start(ServerConfig::default());
        let (mut client_half, mut server_half) = duplex();
        let handle = server.handle();
        let conn_thread = std::thread::spawn(move || handle.serve_stream(&mut server_half));

        let mut frame = hello().to_frame().unwrap();
        let last = frame.len() - 1;
        frame[last] ^= 0x40; // corrupt the payload, checksum now disagrees
        client_half.write_all(&frame).unwrap();
        let mut scratch = Vec::new();
        let resp = ResponseMessage::read_from(&mut client_half, &mut scratch)
            .unwrap()
            .expect("resend request");
        assert_eq!(resp, ResponseMessage::Resend);

        // The connection is still alive: the clean frame now succeeds.
        hello().write_to(&mut client_half).unwrap();
        let resp = ResponseMessage::read_from(&mut client_half, &mut scratch)
            .unwrap()
            .expect("hello ack");
        assert_eq!(resp, ResponseMessage::HelloAck);

        drop(client_half);
        let summary = conn_thread.join().unwrap();
        assert_eq!(summary.corrupt_frames, 1);
        assert!(summary.fault.is_none());
        assert_eq!(server.stats().corrupt_frames(), 1);
        server.finish();
    }
}
