//! Seeded exponential backoff with bounded jitter.
//!
//! Every retry loop in the transport paces itself through one [`Backoff`]:
//! delays grow geometrically from a base, saturate at a cap, and carry a
//! multiplicative jitter drawn from a *seeded* generator — so a chaos test
//! replays the exact same retry schedule on every run, while production
//! clients still de-correlate their reconnect storms.

use std::time::Duration;

use ldp_core::rng::{seeded_rng, uniform};
use rand::rngs::StdRng;

/// Exponent after which the envelope stops doubling (the cap has long been
/// reached for any sane base/cap pair; this just prevents shift overflow).
const MAX_EXPONENT: u32 = 20;

/// Jitter range: each delay is the envelope scaled by a uniform draw from
/// `[JITTER_LO, 1.0]`. Full-range jitter (`lo = 0`) can collapse a delay
/// to nothing, defeating the pacing; half-range keeps delays meaningful
/// while still spreading synchronized clients apart.
const JITTER_LO: f64 = 0.5;

/// A deterministic, capped, jittered exponential backoff schedule.
///
/// [`next_delay`](Backoff::next_delay) yields
/// `envelope(attempt) * U(0.5, 1.0)` where
/// `envelope(a) = min(cap, base * 2^a)`, then advances the attempt
/// counter. [`reset`](Backoff::reset) rewinds the counter after a success
/// but deliberately *not* the jitter stream — the schedule stays a pure
/// function of the seed and the sequence of calls, never of wall-clock
/// time.
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    attempt: u32,
    rng: StdRng,
}

impl Backoff {
    /// A schedule starting at `base`, doubling per attempt, never
    /// exceeding `cap`, with jitter drawn from `seed`.
    ///
    /// A `base` longer than `cap` is clamped to `cap`; a zero `base`
    /// yields all-zero delays (useful for tests that must not sleep).
    pub fn new(seed: u64, base: Duration, cap: Duration) -> Self {
        Backoff {
            base: base.min(cap),
            cap,
            attempt: 0,
            rng: seeded_rng(seed),
        }
    }

    /// The deterministic (jitter-free) upper bound for one attempt:
    /// `min(cap, base * 2^min(attempt, 20))`.
    pub fn envelope(&self, attempt: u32) -> Duration {
        self.base
            .saturating_mul(1u32 << attempt.min(MAX_EXPONENT))
            .min(self.cap)
    }

    /// Attempts since construction or the last [`reset`](Backoff::reset).
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Draws the next delay and advances the attempt counter.
    pub fn next_delay(&mut self) -> Duration {
        let envelope = self.envelope(self.attempt);
        self.attempt = self.attempt.saturating_add(1);
        envelope.mul_f64(uniform(&mut self.rng, JITTER_LO, 1.0))
    }

    /// Rewinds the attempt counter after a success.
    ///
    /// The jitter stream is *not* rewound: two `Backoff`s with one seed
    /// stay in lockstep only if they see the same call sequence, which is
    /// exactly the reproducibility the chaos harness needs.
    pub fn reset(&mut self) {
        self.attempt = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_secs(1);
        let mut a = Backoff::new(7, base, cap);
        let mut b = Backoff::new(7, base, cap);
        let sa: Vec<_> = (0..32).map(|_| a.next_delay()).collect();
        let sb: Vec<_> = (0..32).map(|_| b.next_delay()).collect();
        assert_eq!(sa, sb);
        let mut c = Backoff::new(8, base, cap);
        let sc: Vec<_> = (0..32).map(|_| c.next_delay()).collect();
        assert_ne!(sa, sc, "different seeds must jitter differently");
    }

    #[test]
    fn delays_are_jittered_within_the_envelope_and_capped() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_millis(640);
        let mut b = Backoff::new(3, base, cap);
        for attempt in 0..40 {
            let env = b.envelope(attempt);
            let d = b.next_delay();
            assert!(d <= env, "attempt {attempt}: {d:?} > envelope {env:?}");
            assert!(
                d >= env.mul_f64(JITTER_LO),
                "attempt {attempt}: {d:?} below jitter floor"
            );
            assert!(d <= cap, "attempt {attempt}: {d:?} above cap");
        }
    }

    #[test]
    fn envelope_is_monotone_then_flat_at_cap() {
        let b = Backoff::new(0, Duration::from_millis(10), Duration::from_millis(500));
        let mut prev = Duration::ZERO;
        for attempt in 0..64 {
            let env = b.envelope(attempt);
            assert!(env >= prev, "envelope shrank at attempt {attempt}");
            prev = env;
        }
        assert_eq!(prev, Duration::from_millis(500));
        // Far beyond MAX_EXPONENT: no shift overflow, still the cap.
        assert_eq!(b.envelope(u32::MAX), Duration::from_millis(500));
    }

    #[test]
    fn reset_rewinds_attempts_but_not_the_jitter_stream() {
        let base = Duration::from_millis(10);
        let cap = Duration::from_secs(1);
        let mut b = Backoff::new(11, base, cap);
        let first = b.next_delay();
        b.next_delay();
        b.reset();
        assert_eq!(b.attempt(), 0);
        let after_reset = b.next_delay();
        // Same envelope as the very first draw, but the jitter stream has
        // advanced, so equality would be a (vanishingly unlikely) fluke.
        assert!(after_reset <= b.envelope(0));
        assert_ne!(first, after_reset);
    }

    #[test]
    fn degenerate_bases_are_safe() {
        let mut zero = Backoff::new(1, Duration::ZERO, Duration::from_secs(1));
        assert_eq!(zero.next_delay(), Duration::ZERO);
        let mut clamped = Backoff::new(1, Duration::from_secs(5), Duration::from_secs(1));
        assert!(clamped.next_delay() <= Duration::from_secs(1));
    }
}
