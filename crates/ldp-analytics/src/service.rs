//! The wire boundary: a long-running report-stream aggregation service.
//!
//! [`pipeline::Collector`] and the session API assume reports arrive as
//! in-process values. A deployment looks different: millions of untrusted
//! clients serialize reports onto sockets, and an aggregator loop absorbs
//! whatever bytes actually show up — duplicated, truncated, corrupted, or
//! adversarial. This module is that loop.
//!
//! ## Wire protocol
//!
//! Every message travels in one [`ldp_core::frame`] frame (length, kind
//! byte, FNV-1a checksum, payload). Payloads are bit-packed with the same
//! [`BitWriter`]/[`BitReader`] primitives as the report codecs:
//!
//! | kind | message | payload |
//! |---|---|---|
//! | 1 | [`WireMessage::Hello`] | protocol/ε/schema/epoch — the session parameters |
//! | 2 | [`WireMessage::Submit`] | user id, epoch, block ordinal, report bytes |
//! | 3 | [`WireMessage::FlushEpoch`] | epoch to snapshot |
//! | 4 | [`WireMessage::Shutdown`] | empty |
//!
//! Report bytes inside `Submit` use the canonical codecs:
//! [`WireFormat::encode_sparse`] for Algorithm 4 reports and
//! [`CompositionReport::encode_wire`] for the best-effort baselines.
//!
//! ## Validation discipline
//!
//! Nothing touches aggregate state until it has fully cleared three gates,
//! in order: the **frame** gate (length sane, checksum matches), the
//! **message** gate (payload parses as its kind, exact encoded length, the
//! report validates against the session's schema and protocol), and the
//! **ledger** gate (the user has not already spent this epoch's budget).
//! A failure at any gate is a typed [`LdpError`] — never a panic — and
//! leaves the aggregate bit-identical to before the frame arrived; the
//! `proptest_service` suite drives truncated, bit-flipped and oversized
//! frames through the service to pin exactly that. Failed frames and
//! duplicates are counted, and the counts surface in every
//! [`EpochSnapshot`].
//!
//! ## Determinism across the wire
//!
//! `Submit` carries the block ordinal assigned by the distribution tier
//! (the [`pipeline::block_partition`] index in simulations). The service
//! routes each report into the partial keyed by its ordinal, so N service
//! shards fed arbitrary interleavings of the same reports tree-merge —
//! in any order — to a snapshot bit-identical to a single-process
//! [`pipeline::Collector::run`]. The CI determinism diff covers this path.
//!
//! ## Example: serving a framed byte stream
//!
//! [`ReportService::serve`] consumes any `Read`-able stream until
//! `Shutdown` or EOF; here the "wire" is an in-memory buffer. (For live
//! connections with acks, backpressure and reconnects, put the
//! [`transport`](crate::transport) layer in front — its
//! `ReportServer`/`ReportClient` pair speaks this protocol over real
//! streams.)
//!
//! ```
//! use ldp_analytics::service::{encode_report, ReportService, ServiceConfig, WireMessage};
//! use ldp_analytics::{ClientEncoder, Protocol};
//! use ldp_core::multidim::{AttrSpec, AttrValue};
//! use ldp_core::rng::seeded_rng;
//! use ldp_core::{Epsilon, LdpError, NumericKind, OracleKind};
//!
//! let protocol = Protocol::Sampling {
//!     numeric: NumericKind::Hybrid,
//!     oracle: OracleKind::Oue,
//! };
//! let epsilon = Epsilon::new(1.0)?;
//! let specs = vec![AttrSpec::Numeric, AttrSpec::Categorical { k: 4 }];
//!
//! // Clients frame Hello + one Submit each onto the wire.
//! let mut wire = Vec::new();
//! WireMessage::Hello {
//!     protocol,
//!     epsilon,
//!     specs: specs.clone(),
//!     epoch: 0,
//! }
//! .write_to(&mut wire)?;
//! let encoder = ClientEncoder::new(protocol, epsilon, specs.clone())?;
//! let mut rng = seeded_rng(7);
//! for user in 0..100u64 {
//!     let report = encoder.encode(
//!         &[AttrValue::Numeric(0.5), AttrValue::Categorical(1)],
//!         &mut rng,
//!     )?;
//!     WireMessage::Submit {
//!         user,
//!         epoch: 0,
//!         block: user / 32, // merge ordinal from the distribution tier
//!         report: encode_report(&report, &specs),
//!     }
//!     .write_to(&mut wire)?;
//! }
//! // A duplicate submit: the ledger rejects it without touching state.
//! let report = encoder.encode(
//!     &[AttrValue::Numeric(0.5), AttrValue::Categorical(1)],
//!     &mut rng,
//! )?;
//! WireMessage::Submit {
//!     user: 42,
//!     epoch: 0,
//!     block: 1,
//!     report: encode_report(&report, &specs),
//! }
//! .write_to(&mut wire)?;
//! WireMessage::Shutdown.write_to(&mut wire)?;
//!
//! // The aggregator side: one loop over the bytes.
//! let mut service = ReportService::new(ServiceConfig::default());
//! let summary = service.serve(&mut wire.as_slice())?;
//! assert!(summary.shutdown);
//! let snapshot = service.snapshot_epoch(0)?;
//! assert_eq!(snapshot.admitted, 100);
//! assert_eq!(snapshot.rejected_duplicates, 1);
//! let estimates = &snapshot.result; // debiased means + frequencies
//! # let _ = estimates;
//! # Ok::<(), LdpError>(())
//! ```

use crate::ledger::BudgetLedger;
use crate::pipeline::{self, CollectionResult, Protocol};
use crate::session::{Aggregator, CompositionReport, Report};
use ldp_core::frame::{self, FrameRead};
use ldp_core::multidim::wire::{self, BitReader, BitWriter, WireFormat};
use ldp_core::multidim::AttrSpec;
use ldp_core::{Epsilon, LdpError, NumericKind, OracleKind, Result};
use std::collections::BTreeMap;
use std::fmt;
use std::io::{Read, Write};

/// Frame kind of [`WireMessage::Hello`].
pub const KIND_HELLO: u8 = 1;
/// Frame kind of [`WireMessage::Submit`].
pub const KIND_SUBMIT: u8 = 2;
/// Frame kind of [`WireMessage::FlushEpoch`].
pub const KIND_FLUSH_EPOCH: u8 = 3;
/// Frame kind of [`WireMessage::Shutdown`].
pub const KIND_SHUTDOWN: u8 = 4;
/// Frame kind of [`ResponseMessage::Ack`] (server → client).
pub const KIND_ACK: u8 = 5;
/// Frame kind of [`ResponseMessage::HelloAck`] (server → client).
pub const KIND_HELLO_ACK: u8 = 6;
/// Frame kind of [`ResponseMessage::SnapshotAck`] (server → client).
pub const KIND_SNAPSHOT_ACK: u8 = 7;
/// Frame kind of [`ResponseMessage::Resend`] (server → client).
pub const KIND_RESEND: u8 = 8;

/// Byte length of the `Submit` envelope before the report bytes:
/// user id, epoch, block ordinal — three 64-bit fields.
const SUBMIT_ENVELOPE_BYTES: usize = 24;

fn malformed(message: String) -> LdpError {
    LdpError::MalformedFrame { message }
}

/// True when `oracle` emits unary bit vectors (OUE/SUE) rather than GRR's
/// direct `⌈log₂ k⌉`-bit values — the flag every report codec needs.
fn oracle_is_unary(oracle: OracleKind) -> bool {
    !matches!(oracle, OracleKind::Grr)
}

fn protocol_unary(protocol: Protocol) -> bool {
    let (Protocol::Sampling { oracle, .. } | Protocol::BestEffort { oracle, .. }) = protocol;
    oracle_is_unary(oracle)
}

/// Stable wire codes for [`Protocol`]: family, numeric kind, oracle kind.
fn protocol_codes(protocol: Protocol) -> (u64, u64, u64) {
    let numeric_code = |kind: NumericKind| {
        NumericKind::ALL
            .iter()
            .position(|k| *k == kind)
            .expect("ALL is exhaustive") as u64
    };
    let oracle_code = |kind: OracleKind| {
        OracleKind::ALL
            .iter()
            .position(|k| *k == kind)
            .expect("ALL is exhaustive") as u64
    };
    match protocol {
        Protocol::Sampling { numeric, oracle } => (0, numeric_code(numeric), oracle_code(oracle)),
        Protocol::BestEffort {
            numeric: pipeline::BestEffortNumeric::PerAttribute(kind),
            oracle,
        } => (1, numeric_code(kind), oracle_code(oracle)),
        Protocol::BestEffort {
            numeric: pipeline::BestEffortNumeric::DuchiMultidim,
            oracle,
        } => (2, 0, oracle_code(oracle)),
    }
}

fn protocol_from_codes(family: u64, numeric: u64, oracle: u64) -> Result<Protocol> {
    let numeric_kind = |code: u64| {
        NumericKind::ALL
            .get(code as usize)
            .copied()
            .ok_or_else(|| malformed(format!("unknown numeric-kind code {code}")))
    };
    let oracle = OracleKind::ALL
        .get(oracle as usize)
        .copied()
        .ok_or_else(|| malformed(format!("unknown oracle code {oracle}")))?;
    match family {
        0 => Ok(Protocol::Sampling {
            numeric: numeric_kind(numeric)?,
            oracle,
        }),
        1 => Ok(Protocol::BestEffort {
            numeric: pipeline::BestEffortNumeric::PerAttribute(numeric_kind(numeric)?),
            oracle,
        }),
        2 => Ok(Protocol::BestEffort {
            numeric: pipeline::BestEffortNumeric::DuchiMultidim,
            oracle,
        }),
        other => Err(malformed(format!("unknown protocol family code {other}"))),
    }
}

/// One message of the report-stream protocol.
///
/// The client-side counterpart of [`ReportService`]: build a message,
/// [`write_to`](WireMessage::write_to) any byte sink, and the service on
/// the other end will absorb it.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMessage {
    /// Opens (or re-asserts) a session: the public knowledge both sides
    /// must agree on before any report can be interpreted. Idempotent —
    /// every client on a shared stream may send its own identical `Hello`
    /// — but a `Hello` disagreeing with the established session is
    /// rejected.
    Hello {
        /// The collection protocol reports will follow.
        protocol: Protocol,
        /// Per-user privacy budget (exact bits travel on the wire, so both
        /// sides derive identical debias parameters).
        epsilon: Epsilon,
        /// The public schema, in attribute order.
        specs: Vec<AttrSpec>,
        /// First epoch this session collects; submits for earlier epochs
        /// are rejected as stale.
        epoch: u64,
    },
    /// One user's perturbed report for one epoch.
    Submit {
        /// The submitting user's id. Only a keyed hash of it ever enters
        /// ledger state.
        user: u64,
        /// Epoch the report spends its budget in.
        epoch: u64,
        /// Block ordinal assigned by the distribution tier — the report's
        /// position key in the canonical merge fold (see the module docs).
        block: u64,
        /// The report, encoded with [`encode_report`].
        report: Vec<u8>,
    },
    /// Requests an [`EpochSnapshot`] of one epoch.
    FlushEpoch {
        /// Epoch to snapshot.
        epoch: u64,
    },
    /// Ends the stream; [`ReportService::serve`] returns after seeing it.
    Shutdown,
}

impl WireMessage {
    /// This message's frame kind byte.
    pub fn kind(&self) -> u8 {
        match self {
            WireMessage::Hello { .. } => KIND_HELLO,
            WireMessage::Submit { .. } => KIND_SUBMIT,
            WireMessage::FlushEpoch { .. } => KIND_FLUSH_EPOCH,
            WireMessage::Shutdown => KIND_SHUTDOWN,
        }
    }

    // `pub(crate)` so the durable WAL can log the byte-identical payload a
    // `Submit` travels the wire as (replay then reuses `decode` unchanged).
    pub(crate) fn payload(&self) -> Vec<u8> {
        let mut w = BitWriter::new();
        match self {
            WireMessage::Hello {
                protocol,
                epsilon,
                specs,
                epoch,
            } => {
                let (family, numeric, oracle) = protocol_codes(*protocol);
                w.write_bits(family, 8);
                w.write_bits(numeric, 8);
                w.write_bits(oracle, 8);
                w.write_bits(epsilon.value().to_bits(), 64);
                w.write_bits(*epoch, 64);
                w.write_bits(specs.len() as u64, 16);
                for spec in specs {
                    match spec {
                        AttrSpec::Numeric => w.write_bits(0, 1),
                        AttrSpec::Categorical { k } => {
                            w.write_bits(1, 1);
                            w.write_bits(u64::from(*k), 32);
                        }
                    }
                }
                w.finish()
            }
            WireMessage::Submit {
                user,
                epoch,
                block,
                report,
            } => {
                w.write_bits(*user, 64);
                w.write_bits(*epoch, 64);
                w.write_bits(*block, 64);
                let mut payload = w.finish();
                payload.extend_from_slice(report);
                payload
            }
            WireMessage::FlushEpoch { epoch } => {
                w.write_bits(*epoch, 64);
                w.finish()
            }
            WireMessage::Shutdown => Vec::new(),
        }
    }

    /// Encodes this message as one complete frame.
    pub fn to_frame(&self) -> Result<Vec<u8>> {
        frame::frame_to_vec(self.kind(), &self.payload())
    }

    /// Writes this message as one frame to `w`.
    pub fn write_to<W: Write + ?Sized>(&self, w: &mut W) -> Result<()> {
        frame::write_frame(w, self.kind(), &self.payload())
    }

    /// Decodes a verified frame payload back into a message.
    ///
    /// # Errors
    /// [`LdpError::MalformedFrame`] on unknown kinds, truncated payloads,
    /// out-of-range codes, an invalid ε, or trailing bytes. Decoding never
    /// panics, whatever the payload.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<WireMessage> {
        let bit_err = |what: &str, e: LdpError| malformed(format!("bad {what} message: {e}"));
        match kind {
            KIND_HELLO => {
                let mut r = BitReader::new(payload);
                let read = |r: &mut BitReader<'_>, width| {
                    r.read_bits(width).map_err(|e| bit_err("hello", e))
                };
                let family = read(&mut r, 8)?;
                let numeric = read(&mut r, 8)?;
                let oracle = read(&mut r, 8)?;
                let protocol = protocol_from_codes(family, numeric, oracle)?;
                let eps_bits = read(&mut r, 64)?;
                let epsilon =
                    Epsilon::new(f64::from_bits(eps_bits)).map_err(|e| bit_err("hello", e))?;
                let epoch = read(&mut r, 64)?;
                let d = read(&mut r, 16)? as usize;
                let mut specs = Vec::with_capacity(d);
                let mut bits: usize = 8 + 8 + 8 + 64 + 64 + 16;
                for _ in 0..d {
                    if read(&mut r, 1)? == 0 {
                        specs.push(AttrSpec::Numeric);
                        bits += 1;
                    } else {
                        let k = read(&mut r, 32)? as u32;
                        specs.push(AttrSpec::Categorical { k });
                        bits += 1 + 32;
                    }
                }
                if payload.len() != bits.div_ceil(8) {
                    return Err(malformed(format!(
                        "hello message has {} bytes, expected {}",
                        payload.len(),
                        bits.div_ceil(8)
                    )));
                }
                Ok(WireMessage::Hello {
                    protocol,
                    epsilon,
                    specs,
                    epoch,
                })
            }
            KIND_SUBMIT => {
                if payload.len() < SUBMIT_ENVELOPE_BYTES {
                    return Err(malformed(format!(
                        "submit envelope needs {SUBMIT_ENVELOPE_BYTES} bytes, got {}",
                        payload.len()
                    )));
                }
                let mut r = BitReader::new(payload);
                let read =
                    |r: &mut BitReader<'_>| r.read_bits(64).map_err(|e| bit_err("submit", e));
                Ok(WireMessage::Submit {
                    user: read(&mut r)?,
                    epoch: read(&mut r)?,
                    block: read(&mut r)?,
                    report: payload[SUBMIT_ENVELOPE_BYTES..].to_vec(),
                })
            }
            KIND_FLUSH_EPOCH => {
                if payload.len() != 8 {
                    return Err(malformed(format!(
                        "flush-epoch message has {} bytes, expected 8",
                        payload.len()
                    )));
                }
                let mut r = BitReader::new(payload);
                let epoch = r.read_bits(64).map_err(|e| bit_err("flush-epoch", e))?;
                Ok(WireMessage::FlushEpoch { epoch })
            }
            KIND_SHUTDOWN => {
                if !payload.is_empty() {
                    return Err(malformed(format!(
                        "shutdown message carries {} unexpected bytes",
                        payload.len()
                    )));
                }
                Ok(WireMessage::Shutdown)
            }
            other => Err(malformed(format!("unknown message kind {other}"))),
        }
    }

    /// Reads and decodes the next message from `r`.
    ///
    /// `Ok(None)` on clean end of stream. A checksum-corrupt frame is
    /// reported as a [`LdpError::MalformedFrame`] here — callers that want
    /// to count-and-continue (as [`ReportService::serve`] does) should use
    /// [`ldp_core::frame::read_frame`] directly to keep the distinction.
    pub fn read_from<R: Read + ?Sized>(
        r: &mut R,
        scratch: &mut Vec<u8>,
    ) -> Result<Option<WireMessage>> {
        match frame::read_frame(r, scratch)? {
            None => Ok(None),
            Some(FrameRead::Valid { kind }) => WireMessage::decode(kind, scratch).map(Some),
            Some(FrameRead::Corrupt { declared, computed }) => Err(malformed(format!(
                "frame checksum mismatch: declared {declared:#018x}, computed {computed:#018x}"
            ))),
        }
    }
}

/// Verdict a server attaches to one client message — the payload of
/// [`ResponseMessage::Ack`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AckOutcome {
    /// The report cleared every gate and was absorbed.
    Admitted,
    /// The user's per-epoch budget was already spent. For a retrying
    /// client this is a *success*: some earlier attempt landed, and the
    /// ledger made the resend a no-op instead of a double spend.
    Duplicate,
    /// The message failed validation and will fail identically if resent
    /// unchanged — a permanent rejection.
    Rejected,
    /// The server's bounded queue shed the message before it touched any
    /// state; retry after backoff.
    Overloaded,
}

impl AckOutcome {
    fn code(self) -> u64 {
        match self {
            AckOutcome::Admitted => 0,
            AckOutcome::Duplicate => 1,
            AckOutcome::Rejected => 2,
            AckOutcome::Overloaded => 3,
        }
    }

    fn from_code(code: u64) -> Result<Self> {
        Ok(match code {
            0 => AckOutcome::Admitted,
            1 => AckOutcome::Duplicate,
            2 => AckOutcome::Rejected,
            3 => AckOutcome::Overloaded,
            other => return Err(malformed(format!("unknown ack outcome code {other}"))),
        })
    }
}

/// One server→client message of the transport protocol.
///
/// The transport layer answers every inbound frame with exactly one
/// response frame, in order, so a client matches responses to requests
/// positionally; `Ack` additionally echoes the submit's user and epoch so
/// a desynchronized client fails loudly instead of mis-crediting an ack.
/// Kinds `5..=8` are disjoint from the client-side kinds `1..=4`, so a
/// frame can never be mistaken for traffic of the wrong direction.
#[derive(Debug, Clone, PartialEq)]
pub enum ResponseMessage {
    /// Verdict on one `Submit` (or, with `user`/`epoch` zero, an overload
    /// or rejection verdict on a non-submit message).
    Ack {
        /// User id echoed from the submit (`0` when the request carried
        /// none).
        user: u64,
        /// Epoch echoed from the request (`0` when it carried none).
        epoch: u64,
        /// The verdict.
        outcome: AckOutcome,
    },
    /// The session `Hello` was accepted (first or idempotent replay).
    HelloAck,
    /// Answer to `FlushEpoch`: the snapshot's admission counters. The
    /// estimates themselves stay server-side; `users` is the snapshot's
    /// report count (`0` for an epoch no report has reached).
    SnapshotAck {
        /// Epoch snapshotted.
        epoch: u64,
        /// Distinct users admitted in that epoch.
        admitted: u64,
        /// Duplicate reports rejected in that epoch.
        rejected_duplicates: u64,
        /// Service-lifetime malformed rejections at snapshot time.
        rejected_malformed: u64,
        /// Reports folded into the snapshot's estimates.
        users: u64,
    },
    /// The inbound frame failed its checksum. The reader is still
    /// synchronized, the request was never interpreted — resend it.
    Resend,
}

impl ResponseMessage {
    /// This message's frame kind byte.
    pub fn kind(&self) -> u8 {
        match self {
            ResponseMessage::Ack { .. } => KIND_ACK,
            ResponseMessage::HelloAck => KIND_HELLO_ACK,
            ResponseMessage::SnapshotAck { .. } => KIND_SNAPSHOT_ACK,
            ResponseMessage::Resend => KIND_RESEND,
        }
    }

    fn payload(&self) -> Vec<u8> {
        let mut w = BitWriter::new();
        match self {
            ResponseMessage::Ack {
                user,
                epoch,
                outcome,
            } => {
                w.write_bits(*user, 64);
                w.write_bits(*epoch, 64);
                w.write_bits(outcome.code(), 8);
                w.finish()
            }
            ResponseMessage::HelloAck | ResponseMessage::Resend => Vec::new(),
            ResponseMessage::SnapshotAck {
                epoch,
                admitted,
                rejected_duplicates,
                rejected_malformed,
                users,
            } => {
                for field in [
                    epoch,
                    admitted,
                    rejected_duplicates,
                    rejected_malformed,
                    users,
                ] {
                    w.write_bits(*field, 64);
                }
                w.finish()
            }
        }
    }

    /// Encodes this message as one complete frame.
    pub fn to_frame(&self) -> Result<Vec<u8>> {
        frame::frame_to_vec(self.kind(), &self.payload())
    }

    /// Writes this message as one frame to `w`.
    pub fn write_to<W: Write + ?Sized>(&self, w: &mut W) -> Result<()> {
        frame::write_frame(w, self.kind(), &self.payload())
    }

    /// Decodes a verified frame payload back into a response.
    ///
    /// # Errors
    /// [`LdpError::MalformedFrame`] on unknown kinds, wrong payload
    /// lengths, or out-of-range outcome codes; never panics.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<ResponseMessage> {
        let exact_len = |what: &str, expected: usize| {
            if payload.len() == expected {
                Ok(())
            } else {
                Err(malformed(format!(
                    "{what} response has {} bytes, expected {expected}",
                    payload.len()
                )))
            }
        };
        match kind {
            KIND_ACK => {
                exact_len("ack", 17)?;
                let mut r = BitReader::new(payload);
                let mut read = |width| {
                    r.read_bits(width)
                        .map_err(|e| malformed(format!("bad ack response: {e}")))
                };
                Ok(ResponseMessage::Ack {
                    user: read(64)?,
                    epoch: read(64)?,
                    outcome: AckOutcome::from_code(read(8)?)?,
                })
            }
            KIND_HELLO_ACK => {
                exact_len("hello-ack", 0)?;
                Ok(ResponseMessage::HelloAck)
            }
            KIND_SNAPSHOT_ACK => {
                exact_len("snapshot-ack", 40)?;
                let mut r = BitReader::new(payload);
                let mut read = || {
                    r.read_bits(64)
                        .map_err(|e| malformed(format!("bad snapshot-ack response: {e}")))
                };
                Ok(ResponseMessage::SnapshotAck {
                    epoch: read()?,
                    admitted: read()?,
                    rejected_duplicates: read()?,
                    rejected_malformed: read()?,
                    users: read()?,
                })
            }
            KIND_RESEND => {
                exact_len("resend", 0)?;
                Ok(ResponseMessage::Resend)
            }
            other => Err(malformed(format!("unknown response kind {other}"))),
        }
    }

    /// Reads and decodes the next response from `r`.
    ///
    /// `Ok(None)` on clean end of stream; a checksum-corrupt frame is a
    /// [`LdpError::MalformedFrame`] — the client cannot know what verdict
    /// the garbled frame carried, so its only safe move is an idempotent
    /// resend over a fresh connection.
    pub fn read_from<R: Read + ?Sized>(
        r: &mut R,
        scratch: &mut Vec<u8>,
    ) -> Result<Option<ResponseMessage>> {
        match frame::read_frame(r, scratch)? {
            None => Ok(None),
            Some(FrameRead::Valid { kind }) => ResponseMessage::decode(kind, scratch).map(Some),
            Some(FrameRead::Corrupt { declared, computed }) => Err(malformed(format!(
                "response frame checksum mismatch: declared {declared:#018x}, \
                 computed {computed:#018x}"
            ))),
        }
    }
}

/// Encodes a session report into its canonical wire bytes — the inverse of
/// what the service performs on every `Submit`.
///
/// Convenience form that builds a throwaway [`WireFormat`]; hot encode
/// loops (the wire bench) should hold one `WireFormat` and call
/// [`WireFormat::encode_sparse`] / [`CompositionReport::encode_wire`]
/// directly.
///
/// # Panics
/// Panics if the report disagrees with `specs` (reports produced by a
/// [`crate::ClientEncoder`] on the same schema always agree).
pub fn encode_report(report: &Report, specs: &[AttrSpec]) -> Vec<u8> {
    match report {
        Report::Sampling(sparse) => WireFormat::new(specs.to_vec()).encode_sparse(sparse),
        Report::Composition(comp) => comp.encode_wire(specs),
    }
}

/// Decodes canonical report bytes for `protocol` over `specs`.
///
/// # Errors
/// Typed [`LdpError`]s on truncated or out-of-domain payloads; never
/// panics.
pub fn decode_report(protocol: Protocol, specs: &[AttrSpec], bytes: &[u8]) -> Result<Report> {
    let unary = protocol_unary(protocol);
    match protocol {
        Protocol::Sampling { .. } => WireFormat::new(specs.to_vec())
            .decode_sparse(bytes, unary)
            .map(Report::Sampling),
        Protocol::BestEffort { .. } => {
            CompositionReport::decode_wire(specs, bytes, unary).map(Report::Composition)
        }
    }
}

/// Service construction parameters.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Key for the ledger's user-id hashing; every shard of one logical
    /// service must share it (see [`BudgetLedger::with_key`]).
    pub ledger_key: u64,
    /// Timer-tick snapshots: after every `n` admitted reports, the serve
    /// loop snapshots the epoch the `n`-th report landed in — the
    /// streaming analogue of a periodic flush. `None` snapshots only on
    /// explicit [`WireMessage::FlushEpoch`].
    pub snapshot_every: Option<u64>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            ledger_key: 0x1cde_2019,
            snapshot_every: None,
        }
    }
}

/// Session state established by the first `Hello`.
#[derive(Debug, Clone)]
struct Session {
    protocol: Protocol,
    epsilon: Epsilon,
    specs: Vec<AttrSpec>,
    wire: WireFormat,
    unary: bool,
    base_epoch: u64,
    /// Validated blank aggregator, cloned for each new epoch.
    template: Aggregator,
}

/// One epoch's estimates plus the admission counters behind them.
///
/// `result` is `None` for an epoch no report has reached (the counters may
/// still be nonzero — e.g. an epoch that saw only duplicates).
#[derive(Debug, Clone)]
pub struct EpochSnapshot {
    /// The epoch snapshotted.
    pub epoch: u64,
    /// Distinct users whose reports were admitted this epoch.
    pub admitted: u64,
    /// Reports rejected this epoch because their user's budget was already
    /// spent.
    pub rejected_duplicates: u64,
    /// Stream-level malformed-frame/message rejections up to the moment of
    /// this snapshot (malformed input often names no parseable epoch, so
    /// the count is per service, not per epoch).
    pub rejected_malformed: u64,
    /// The epoch's estimates, absent before the first admitted report.
    pub result: Option<CollectionResult>,
}

/// Where and how a stream lost framing — see [`ServeSummary::desync`].
#[derive(Debug, Clone, PartialEq)]
pub struct StreamFault {
    /// Byte offset (from the start of this `serve` call's stream) of the
    /// first byte of the frame that destroyed framing. A transport log can
    /// hexdump the captured stream at exactly this offset to see the
    /// corruption instead of bisecting for it.
    pub offset: u64,
    /// The typed error that ended the stream: [`LdpError::MalformedFrame`]
    /// for desync (truncation, oversized length, unclassified I/O),
    /// [`LdpError::Timeout`] / [`LdpError::ConnectionLost`] for transport
    /// faults.
    pub error: LdpError,
}

impl fmt::Display for StreamFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stream fault at byte offset {}: {}",
            self.offset, self.error
        )
    }
}

/// What one [`ReportService::serve`] call processed.
#[derive(Debug, Clone, Default)]
pub struct ServeSummary {
    /// Frames consumed from the stream (valid or corrupt).
    pub frames: u64,
    /// Reports admitted into aggregate state.
    pub admitted: u64,
    /// Reports rejected by the privacy-budget ledger.
    pub rejected_duplicates: u64,
    /// Frames or messages rejected as malformed.
    pub rejected_malformed: u64,
    /// Snapshots taken during this call (explicit flushes and timer
    /// ticks), in stream order.
    pub snapshots: Vec<EpochSnapshot>,
    /// True when the stream ended with [`WireMessage::Shutdown`] rather
    /// than EOF.
    pub shutdown: bool,
    /// Why serving stopped early, if framing was lost: the first desync
    /// (or transport fault) with the byte offset of the offending frame.
    /// `None` means the stream ended cleanly (EOF or `Shutdown`). State is
    /// never touched by the faulting frame either way.
    pub desync: Option<StreamFault>,
}

/// A long-running aggregation endpoint absorbing framed report streams.
///
/// One instance per shard; shards [`merge`](ReportService::merge) into the
/// global view. See the module docs for the protocol and the validation
/// discipline.
///
/// ```
/// use ldp_analytics::service::{encode_report, ReportService, ServiceConfig, WireMessage};
/// use ldp_analytics::{block_rng, ClientEncoder, Protocol};
/// use ldp_core::rng::RngBlock;
/// use ldp_core::{AttrSpec, AttrValue, Epsilon, NumericKind, OracleKind};
///
/// let protocol = Protocol::Sampling {
///     numeric: NumericKind::Hybrid,
///     oracle: OracleKind::Oue,
/// };
/// let eps = Epsilon::new(1.0)?;
/// let specs = vec![AttrSpec::Numeric, AttrSpec::Categorical { k: 4 }];
/// let encoder = ClientEncoder::new(protocol, eps, specs.clone())?;
///
/// // Clients frame messages into any byte sink…
/// let mut stream: Vec<u8> = Vec::new();
/// WireMessage::Hello { protocol, epsilon: eps, specs: specs.clone(), epoch: 0 }
///     .write_to(&mut stream)?;
/// let mut rng: RngBlock<rand::rngs::StdRng> = RngBlock::new(block_rng(7, 0));
/// let mut report = encoder.empty_report();
/// let mut scratch = encoder.scratch();
/// for user in 0..100u64 {
///     let tuple = [AttrValue::Numeric(0.5), AttrValue::Categorical((user % 4) as u32)];
///     encoder.encode_into(&tuple, &mut rng, &mut report, &mut scratch)?;
///     WireMessage::Submit {
///         user,
///         epoch: 0,
///         block: 0,
///         report: encode_report(&report, &specs),
///     }
///     .write_to(&mut stream)?;
/// }
/// WireMessage::FlushEpoch { epoch: 0 }.write_to(&mut stream)?;
///
/// // …and the service absorbs them from any `Read`.
/// let mut service = ReportService::new(ServiceConfig::default());
/// let summary = service.serve(&mut stream.as_slice())?;
/// assert_eq!(summary.admitted, 100);
/// let snapshot = &summary.snapshots[0];
/// assert_eq!(snapshot.admitted, 100);
/// assert_eq!(snapshot.rejected_duplicates, 0);
/// assert!(snapshot.result.is_some());
/// # Ok::<(), ldp_core::LdpError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ReportService {
    config: ServiceConfig,
    session: Option<Session>,
    /// Epoch → that epoch's aggregate, partials keyed by block ordinal.
    epochs: BTreeMap<u64, Aggregator>,
    ledger: BudgetLedger,
    frames: u64,
    rejected_malformed: u64,
    admitted_since_tick: u64,
}

impl ReportService {
    /// A fresh, unconfigured service; the first `Hello` establishes the
    /// session.
    pub fn new(config: ServiceConfig) -> Self {
        let ledger = BudgetLedger::with_key(config.ledger_key);
        ReportService {
            config,
            session: None,
            epochs: BTreeMap::new(),
            ledger,
            frames: 0,
            rejected_malformed: 0,
            admitted_since_tick: 0,
        }
    }

    /// True once a `Hello` has established the session.
    pub fn is_configured(&self) -> bool {
        self.session.is_some()
    }

    /// The privacy-budget ledger (admission counts per epoch).
    pub fn ledger(&self) -> &BudgetLedger {
        &self.ledger
    }

    /// Frames consumed over this service's lifetime.
    pub fn frames(&self) -> u64 {
        self.frames
    }

    /// Lifetime count of frames/messages rejected as malformed.
    pub fn rejected_malformed(&self) -> u64 {
        self.rejected_malformed
    }

    /// Counts one malformed rejection that happened *outside*
    /// [`ReportService::serve`] — e.g. a transport absorber driving
    /// [`ReportService::handle`] directly — so snapshots keep accounting
    /// for every rejection regardless of which loop observed it.
    pub fn note_malformed(&mut self) {
        self.rejected_malformed += 1;
    }

    /// Epochs holding aggregate state, ascending.
    pub fn epochs(&self) -> impl Iterator<Item = u64> + '_ {
        self.epochs.keys().copied()
    }

    /// Processes one already-decoded message.
    ///
    /// `FlushEpoch` returns `Some` snapshot; everything else `None`.
    /// Errors are typed and leave aggregate state untouched:
    /// [`LdpError::DuplicateReport`] for ledger rejections (already
    /// counted), [`LdpError::MalformedFrame`] and the validation variants
    /// for everything else (the caller counts them —
    /// [`ReportService::serve`] does both).
    pub fn handle(&mut self, msg: &WireMessage) -> Result<Option<EpochSnapshot>> {
        match msg {
            WireMessage::Hello {
                protocol,
                epsilon,
                specs,
                epoch,
            } => {
                self.handle_hello(*protocol, *epsilon, specs, *epoch)?;
                Ok(None)
            }
            WireMessage::Submit {
                user,
                epoch,
                block,
                report,
            } => {
                self.handle_submit(*user, *epoch, *block, report)?;
                Ok(None)
            }
            WireMessage::FlushEpoch { epoch } => self.snapshot_epoch(*epoch).map(Some),
            WireMessage::Shutdown => Ok(None),
        }
    }

    fn handle_hello(
        &mut self,
        protocol: Protocol,
        epsilon: Epsilon,
        specs: &[AttrSpec],
        epoch: u64,
    ) -> Result<()> {
        if let Some(sess) = &self.session {
            // Idempotent for identical parameters (many clients, one
            // stream); anything else is a different session and would
            // corrupt the estimates if absorbed.
            if sess.protocol == protocol
                && sess.epsilon.value().to_bits() == epsilon.value().to_bits()
                && sess.specs == specs
                && sess.base_epoch == epoch
            {
                return Ok(());
            }
            return Err(malformed(
                "hello disagrees with the established session".into(),
            ));
        }
        // Template construction performs full schema validation.
        let template = Aggregator::new(protocol, epsilon, specs.to_vec())?;
        self.session = Some(Session {
            protocol,
            epsilon,
            specs: specs.to_vec(),
            wire: WireFormat::new(specs.to_vec()),
            unary: protocol_unary(protocol),
            base_epoch: epoch,
            template,
        });
        Ok(())
    }

    fn handle_submit(&mut self, user: u64, epoch: u64, block: u64, bytes: &[u8]) -> Result<()> {
        let sess = self
            .session
            .as_ref()
            .ok_or_else(|| malformed("submit before hello".into()))?;
        if epoch < sess.base_epoch {
            return Err(malformed(format!(
                "stale submit: epoch {epoch} precedes the session's base epoch {}",
                sess.base_epoch
            )));
        }
        // Gate 2a: the report bytes must decode, at their exact canonical
        // length (trailing bytes would let a client smuggle stream junk).
        let report = decode_submit_report(sess, bytes)?;
        // Gate 2b: the decoded report must validate against the session —
        // before the ledger runs, so a malformed report does not burn its
        // user's budget.
        let template = &sess.template;
        self.epochs
            .get(&epoch)
            .unwrap_or(template)
            .validate_report(&report)?;
        // Gate 3: one report per user per epoch.
        self.ledger.admit(user, epoch)?;
        // All gates cleared: route into the block's partial.
        let agg = self.epochs.entry(epoch).or_insert_with(|| template.clone());
        agg.set_ordinal(block);
        agg.absorb(&report)
            .expect("validated above; absorb re-checks the same invariants");
        self.admitted_since_tick += 1;
        Ok(())
    }

    /// Snapshots one epoch: the ordinal-ordered fold of its partials plus
    /// the admission counters. Non-destructive.
    ///
    /// # Errors
    /// Only if the underlying fold fails, which validated state rules out;
    /// epochs without reports yield `result: None` rather than an error.
    pub fn snapshot_epoch(&self, epoch: u64) -> Result<EpochSnapshot> {
        let result = match self.epochs.get(&epoch) {
            Some(agg) if agg.users() > 0 => Some(agg.snapshot()?),
            _ => None,
        };
        Ok(EpochSnapshot {
            epoch,
            admitted: self.ledger.admitted(epoch),
            rejected_duplicates: self.ledger.rejected(epoch),
            rejected_malformed: self.rejected_malformed,
            result,
        })
    }

    /// Absorbs `r` until EOF, `Shutdown`, or loss of framing.
    ///
    /// Per-message failures are counted and skipped — a hostile client
    /// must not be able to wedge the collection round. Stream-level
    /// failures (framing lost: truncation, oversize, I/O) stop serving
    /// after zero state damage; the summary comes back `Ok` with
    /// [`ServeSummary::desync`] carrying the typed error *and the byte
    /// offset of the offending frame*, so a transport log can pinpoint the
    /// corruption. Checksum-corrupt frames keep the reader synchronized
    /// (see [`ldp_core::frame::read_frame`]), so they count as malformed
    /// and serving continues.
    pub fn serve<R: Read + ?Sized>(&mut self, r: &mut R) -> Result<ServeSummary> {
        let mut r = CountingReader {
            inner: r,
            consumed: 0,
        };
        let mut summary = ServeSummary::default();
        let mut payload = Vec::new();
        loop {
            let frame_start = r.consumed;
            let read = match frame::read_frame(&mut r, &mut payload) {
                Ok(read) => read,
                Err(error) => {
                    summary.desync = Some(StreamFault {
                        offset: frame_start,
                        error,
                    });
                    break;
                }
            };
            let kind = match read {
                None => break,
                Some(FrameRead::Corrupt { .. }) => {
                    self.frames += 1;
                    summary.frames += 1;
                    self.rejected_malformed += 1;
                    summary.rejected_malformed += 1;
                    continue;
                }
                Some(FrameRead::Valid { kind }) => kind,
            };
            self.frames += 1;
            summary.frames += 1;
            let msg = match WireMessage::decode(kind, &payload) {
                Ok(msg) => msg,
                Err(_) => {
                    self.rejected_malformed += 1;
                    summary.rejected_malformed += 1;
                    continue;
                }
            };
            if matches!(msg, WireMessage::Shutdown) {
                summary.shutdown = true;
                break;
            }
            let is_submit = matches!(msg, WireMessage::Submit { .. });
            let submit_epoch = match &msg {
                WireMessage::Submit { epoch, .. } => *epoch,
                _ => 0,
            };
            match self.handle(&msg) {
                Ok(Some(snapshot)) => summary.snapshots.push(snapshot),
                Ok(None) => {
                    if is_submit {
                        summary.admitted += 1;
                        if let Some(every) = self.config.snapshot_every {
                            if self.admitted_since_tick >= every {
                                self.admitted_since_tick = 0;
                                summary.snapshots.push(self.snapshot_epoch(submit_epoch)?);
                            }
                        }
                    }
                }
                Err(LdpError::DuplicateReport { .. }) => {
                    // The ledger already counted it against the epoch.
                    summary.rejected_duplicates += 1;
                }
                Err(_) => {
                    self.rejected_malformed += 1;
                    summary.rejected_malformed += 1;
                }
            }
        }
        Ok(summary)
    }

    /// Folds another shard into this one: aggregates merge by epoch (and,
    /// within an epoch, by block ordinal — the snapshot stays invariant to
    /// the merge tree's shape), ledgers union without double-admitting,
    /// malformed counts add.
    ///
    /// A user admitted by two shards in one epoch is counted as a
    /// duplicate by the merged ledger. Their report bytes were already
    /// absorbed shard-locally — cross-shard dedup can only *detect* after
    /// the fact — so route each user to one shard (as
    /// [`pipeline::block_partition`] does) and read the counter as an
    /// integrity alarm.
    ///
    /// # Errors
    /// Mismatched ledger keys or session parameters.
    pub fn merge(&mut self, other: ReportService) -> Result<()> {
        match (&self.session, &other.session) {
            (Some(a), Some(b))
                if a.protocol != b.protocol
                    || a.epsilon.value().to_bits() != b.epsilon.value().to_bits()
                    || a.specs != b.specs
                    || a.base_epoch != b.base_epoch =>
            {
                return Err(LdpError::InvalidParameter {
                    name: "service",
                    message: "cannot merge services from different sessions".into(),
                });
            }
            (None, Some(_)) => self.session = other.session.clone(),
            _ => {}
        }
        self.ledger.merge(other.ledger)?;
        self.frames += other.frames;
        self.rejected_malformed += other.rejected_malformed;
        for (epoch, agg) in other.epochs {
            match self.epochs.entry(epoch) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(agg);
                }
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    slot.get_mut().merge(agg)?;
                }
            }
        }
        Ok(())
    }

    // ---- durability hooks (see `crate::durable`) -----------------------

    /// The construction parameters (the durable layer binds
    /// `config.ledger_key` into its log header so a checkpoint can never be
    /// replayed into a service hashing users under a different key).
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The established session's parameters
    /// `(protocol, epsilon, specs, base_epoch)`, or `None` before the
    /// first `Hello`. The durable log header is exactly these four values
    /// (plus the ledger key), so recovery can re-issue the `Hello` itself.
    pub fn session_params(&self) -> Option<(Protocol, Epsilon, &[AttrSpec], u64)> {
        self.session
            .as_ref()
            .map(|s| (s.protocol, s.epsilon, s.specs.as_slice(), s.base_epoch))
    }

    /// Exact-length partial-state encoding of one epoch's aggregator (see
    /// [`Aggregator::encode_partials`]); `None` for an epoch no report has
    /// reached.
    pub fn encode_epoch_partials(&self, epoch: u64) -> Option<Vec<u8>> {
        self.epochs.get(&epoch).map(Aggregator::encode_partials)
    }

    /// Reinstates one epoch's aggregator from
    /// [`encode_epoch_partials`](ReportService::encode_epoch_partials)
    /// bytes, cloning the session template so the schema/protocol context
    /// is identical to the one the state was captured under.
    ///
    /// # Errors
    /// [`LdpError::MalformedFrame`] before a session is established;
    /// [`LdpError::InvalidParameter`] if the epoch already holds state
    /// (checkpoints restore into a fresh service, never over live data) or
    /// the bytes fail the exact-length partial codec.
    pub fn restore_epoch_partials(&mut self, epoch: u64, bytes: &[u8]) -> Result<()> {
        let sess = self
            .session
            .as_ref()
            .ok_or_else(|| malformed("restore before hello".into()))?;
        let mut agg = sess.template.clone();
        agg.decode_partials(bytes)?;
        if self.epochs.contains_key(&epoch) {
            return Err(LdpError::InvalidParameter {
                name: "epoch",
                message: format!("epoch {epoch} already holds aggregate state"),
            });
        }
        self.epochs.insert(epoch, agg);
        Ok(())
    }

    /// Replaces the privacy-budget ledger with recovered state, so replayed
    /// `Submit`s for already-checkpointed users dedup instead of
    /// double-spending.
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] if the recovered ledger was hashed
    /// under a different key than this service's — its user hashes would
    /// silently never match.
    pub fn restore_ledger(&mut self, ledger: BudgetLedger) -> Result<()> {
        if ledger.key() != self.config.ledger_key {
            return Err(LdpError::InvalidParameter {
                name: "ledger_key",
                message: format!(
                    "recovered ledger key {:#x} does not match service key {:#x}",
                    ledger.key(),
                    self.config.ledger_key
                ),
            });
        }
        self.ledger = ledger;
        Ok(())
    }

    /// Restores the lifetime stream counters captured in a checkpoint, so
    /// a recovered snapshot's `rejected_malformed` matches the clean run's.
    pub fn restore_counters(&mut self, frames: u64, rejected_malformed: u64) {
        self.frames = frames;
        self.rejected_malformed = rejected_malformed;
    }
}

/// Counts bytes as they pass to the framer, so a desync can be reported
/// with the exact stream offset of the offending frame.
struct CountingReader<'a, R: Read + ?Sized> {
    inner: &'a mut R,
    consumed: u64,
}

impl<R: Read + ?Sized> Read for CountingReader<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.consumed += n as u64;
        Ok(n)
    }
}

/// Decodes submit report bytes under the session, enforcing the exact
/// canonical length — the service-side hot path (no codec allocation).
fn decode_submit_report(sess: &Session, bytes: &[u8]) -> Result<Report> {
    match sess.protocol {
        Protocol::Sampling { .. } => {
            let sparse = sess.wire.decode_sparse(bytes, sess.unary)?;
            // Entries conform to the schema by construction of the decoder,
            // so the schema-aware size never panics here.
            let expected =
                (16 + wire::sparse_report_bits_with_schema(&sparse, &sess.specs)).div_ceil(8);
            if bytes.len() != expected {
                return Err(malformed(format!(
                    "sampling report has {} bytes, canonical encoding is {expected}",
                    bytes.len()
                )));
            }
            Ok(Report::Sampling(sparse))
        }
        Protocol::BestEffort { .. } => {
            let expected = wire::composition_report_bits(&sess.specs, sess.unary).div_ceil(8);
            if bytes.len() != expected {
                return Err(malformed(format!(
                    "composition report has {} bytes, canonical encoding is {expected}",
                    bytes.len()
                )));
            }
            CompositionReport::decode_wire(&sess.specs, bytes, sess.unary).map(Report::Composition)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::ClientEncoder;
    use ldp_core::multidim::AttrValue;
    use ldp_core::rng::RngBlock;

    fn test_protocol() -> Protocol {
        Protocol::Sampling {
            numeric: NumericKind::Hybrid,
            oracle: OracleKind::Oue,
        }
    }

    fn test_specs() -> Vec<AttrSpec> {
        vec![
            AttrSpec::Numeric,
            AttrSpec::Categorical { k: 4 },
            AttrSpec::Numeric,
        ]
    }

    fn hello() -> WireMessage {
        WireMessage::Hello {
            protocol: test_protocol(),
            epsilon: Epsilon::new(1.0).unwrap(),
            specs: test_specs(),
            epoch: 0,
        }
    }

    fn tuple_for(user: u64) -> Vec<AttrValue> {
        vec![
            AttrValue::Numeric((user % 10) as f64 / 10.0),
            AttrValue::Categorical((user % 4) as u32),
            AttrValue::Numeric(-0.25),
        ]
    }

    fn submit_for(encoder: &ClientEncoder, user: u64, epoch: u64) -> WireMessage {
        let mut rng: RngBlock<rand::rngs::StdRng> =
            RngBlock::new(pipeline::block_rng(99 ^ user, 0));
        let mut report = encoder.empty_report();
        let mut scratch = encoder.scratch();
        encoder
            .encode_into(&tuple_for(user), &mut rng, &mut report, &mut scratch)
            .unwrap();
        WireMessage::Submit {
            user,
            epoch,
            block: user % 3,
            report: encode_report(&report, encoder.specs()),
        }
    }

    fn encoder() -> ClientEncoder {
        ClientEncoder::new(test_protocol(), Epsilon::new(1.0).unwrap(), test_specs()).unwrap()
    }

    #[test]
    fn response_messages_round_trip() {
        let messages = [
            ResponseMessage::Ack {
                user: 42,
                epoch: 7,
                outcome: AckOutcome::Admitted,
            },
            ResponseMessage::Ack {
                user: u64::MAX,
                epoch: 0,
                outcome: AckOutcome::Duplicate,
            },
            ResponseMessage::Ack {
                user: 0,
                epoch: 3,
                outcome: AckOutcome::Rejected,
            },
            ResponseMessage::Ack {
                user: 1,
                epoch: 1,
                outcome: AckOutcome::Overloaded,
            },
            ResponseMessage::HelloAck,
            ResponseMessage::SnapshotAck {
                epoch: 9,
                admitted: 1_000_000,
                rejected_duplicates: 17,
                rejected_malformed: 3,
                users: 999_983,
            },
            ResponseMessage::Resend,
        ];
        for msg in &messages {
            let frame_bytes = msg.to_frame().unwrap();
            let mut reader = frame_bytes.as_slice();
            let mut scratch = Vec::new();
            let back = ResponseMessage::read_from(&mut reader, &mut scratch)
                .unwrap()
                .expect("one response in the stream");
            assert_eq!(&back, msg);
        }
    }

    #[test]
    fn response_decode_rejects_wrong_lengths_and_codes() {
        // Wrong payload lengths for every response kind.
        for (kind, bad_len) in [
            (KIND_ACK, 16usize),
            (KIND_ACK, 18),
            (KIND_HELLO_ACK, 1),
            (KIND_SNAPSHOT_ACK, 39),
            (KIND_RESEND, 4),
        ] {
            let err = ResponseMessage::decode(kind, &vec![0u8; bad_len]).unwrap_err();
            assert!(
                matches!(err, LdpError::MalformedFrame { .. }),
                "kind {kind} len {bad_len}: {err:?}"
            );
        }
        // Out-of-range outcome code in an otherwise valid ack.
        let mut payload = [0u8; 17];
        payload[16] = 200;
        let err = ResponseMessage::decode(KIND_ACK, &payload).unwrap_err();
        assert!(err.to_string().contains("outcome"), "{err}");
        // Unknown response kind.
        assert!(ResponseMessage::decode(99, &[]).is_err());
    }

    #[test]
    fn desync_offset_pinpoints_the_offending_frame() {
        let enc = encoder();
        let mut stream = Vec::new();
        hello().write_to(&mut stream).unwrap();
        submit_for(&enc, 1, 0).write_to(&mut stream).unwrap();
        let healthy = stream.len() as u64;
        // A third frame, truncated mid-payload: framing is unrecoverable.
        let tail = submit_for(&enc, 2, 0).to_frame().unwrap();
        stream.extend_from_slice(&tail[..tail.len() - 3]);

        let mut service = ReportService::new(ServiceConfig::default());
        let summary = service.serve(&mut stream.as_slice()).unwrap();
        assert_eq!(summary.admitted, 1, "healthy prefix fully absorbed");
        let fault = summary.desync.expect("truncated tail must surface");
        assert_eq!(
            fault.offset, healthy,
            "offset must name the offending frame's first byte"
        );
        assert!(matches!(fault.error, LdpError::MalformedFrame { .. }));
        assert!(fault.to_string().contains(&healthy.to_string()), "{fault}");
    }

    #[test]
    fn connection_loss_mid_stream_is_a_typed_fault_not_a_panic() {
        struct DyingReader {
            data: Vec<u8>,
            pos: usize,
        }
        impl Read for DyingReader {
            fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
                if self.pos < self.data.len() {
                    let n = (self.data.len() - self.pos).min(out.len());
                    out[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
                    self.pos += n;
                    return Ok(n);
                }
                Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionReset,
                    "peer reset",
                ))
            }
        }
        let enc = encoder();
        let mut data = Vec::new();
        hello().write_to(&mut data).unwrap();
        submit_for(&enc, 1, 0).write_to(&mut data).unwrap();
        let healthy = data.len() as u64;

        let mut service = ReportService::new(ServiceConfig::default());
        let summary = service.serve(&mut DyingReader { data, pos: 0 }).unwrap();
        assert_eq!(summary.admitted, 1);
        let fault = summary.desync.expect("reset must surface");
        assert_eq!(fault.offset, healthy);
        assert!(
            matches!(fault.error, LdpError::ConnectionLost { .. }),
            "{:?}",
            fault.error
        );
    }

    #[test]
    fn wire_messages_round_trip() {
        let enc = encoder();
        let messages = [
            hello(),
            submit_for(&enc, 42, 1),
            WireMessage::FlushEpoch { epoch: 7 },
            WireMessage::Shutdown,
        ];
        for msg in &messages {
            let frame_bytes = msg.to_frame().unwrap();
            let mut reader = frame_bytes.as_slice();
            let mut scratch = Vec::new();
            let back = WireMessage::read_from(&mut reader, &mut scratch)
                .unwrap()
                .expect("one message in the stream");
            assert_eq!(&back, msg);
        }
    }

    #[test]
    fn hello_submit_flush_end_to_end() {
        let enc = encoder();
        let mut stream = Vec::new();
        hello().write_to(&mut stream).unwrap();
        for user in 0..50 {
            submit_for(&enc, user, 0).write_to(&mut stream).unwrap();
        }
        WireMessage::FlushEpoch { epoch: 0 }
            .write_to(&mut stream)
            .unwrap();
        WireMessage::Shutdown.write_to(&mut stream).unwrap();

        let mut service = ReportService::new(ServiceConfig::default());
        let summary = service.serve(&mut stream.as_slice()).unwrap();
        assert!(summary.shutdown);
        assert_eq!(summary.admitted, 50);
        assert_eq!(summary.rejected_malformed, 0);
        let snap = &summary.snapshots[0];
        assert_eq!(snap.admitted, 50);
        assert_eq!(snap.rejected_duplicates, 0);
        let result = snap.result.as_ref().unwrap();
        assert_eq!(result.n, 50);
        assert_eq!(result.means.len(), 2);
        assert_eq!(result.frequencies.len(), 1);
    }

    #[test]
    fn duplicate_submits_are_rejected_and_surface_in_the_snapshot() {
        let enc = encoder();
        let mut stream = Vec::new();
        hello().write_to(&mut stream).unwrap();
        for user in [1u64, 2, 1, 3, 2, 1] {
            submit_for(&enc, user, 0).write_to(&mut stream).unwrap();
        }
        let mut service = ReportService::new(ServiceConfig::default());
        let summary = service.serve(&mut stream.as_slice()).unwrap();
        assert_eq!(summary.admitted, 3);
        assert_eq!(summary.rejected_duplicates, 3);
        let snap = service.snapshot_epoch(0).unwrap();
        assert_eq!(snap.admitted, 3);
        assert_eq!(snap.rejected_duplicates, 3);
        assert_eq!(snap.result.unwrap().n, 3);
    }

    #[test]
    fn same_user_different_epochs_is_admitted() {
        let enc = encoder();
        let mut service = ReportService::new(ServiceConfig::default());
        service.handle(&hello()).unwrap();
        service.handle(&submit_for(&enc, 5, 0)).unwrap();
        service.handle(&submit_for(&enc, 5, 1)).unwrap();
        assert_eq!(service.snapshot_epoch(0).unwrap().admitted, 1);
        assert_eq!(service.snapshot_epoch(1).unwrap().admitted, 1);
    }

    #[test]
    fn submit_before_hello_is_malformed_not_fatal() {
        let enc = encoder();
        let mut stream = Vec::new();
        submit_for(&enc, 1, 0).write_to(&mut stream).unwrap();
        hello().write_to(&mut stream).unwrap();
        submit_for(&enc, 1, 0).write_to(&mut stream).unwrap();
        let mut service = ReportService::new(ServiceConfig::default());
        let summary = service.serve(&mut stream.as_slice()).unwrap();
        assert_eq!(summary.rejected_malformed, 1);
        assert_eq!(summary.admitted, 1);
    }

    #[test]
    fn stale_epoch_submits_are_rejected() {
        let enc = encoder();
        let mut service = ReportService::new(ServiceConfig::default());
        service
            .handle(&WireMessage::Hello {
                protocol: test_protocol(),
                epsilon: Epsilon::new(1.0).unwrap(),
                specs: test_specs(),
                epoch: 5,
            })
            .unwrap();
        let err = service.handle(&submit_for(&enc, 1, 4)).unwrap_err();
        assert!(matches!(err, LdpError::MalformedFrame { .. }));
        assert!(service.handle(&submit_for(&enc, 1, 5)).is_ok());
    }

    #[test]
    fn conflicting_hello_is_rejected_idempotent_hello_accepted() {
        let mut service = ReportService::new(ServiceConfig::default());
        service.handle(&hello()).unwrap();
        service.handle(&hello()).unwrap();
        let err = service
            .handle(&WireMessage::Hello {
                protocol: test_protocol(),
                epsilon: Epsilon::new(2.0).unwrap(),
                specs: test_specs(),
                epoch: 0,
            })
            .unwrap_err();
        assert!(matches!(err, LdpError::MalformedFrame { .. }));
    }

    #[test]
    fn unknown_kind_and_garbage_payloads_are_counted_not_fatal() {
        let enc = encoder();
        let mut stream = Vec::new();
        hello().write_to(&mut stream).unwrap();
        // Unknown kind byte, valid frame.
        frame::write_frame(&mut stream, 200, b"mystery").unwrap();
        // Valid submit kind, garbage payload.
        frame::write_frame(&mut stream, KIND_SUBMIT, b"short").unwrap();
        submit_for(&enc, 9, 0).write_to(&mut stream).unwrap();
        let mut service = ReportService::new(ServiceConfig::default());
        let summary = service.serve(&mut stream.as_slice()).unwrap();
        assert_eq!(summary.rejected_malformed, 2);
        assert_eq!(summary.admitted, 1);
    }

    #[test]
    fn timer_tick_snapshots_fire_every_n_reports() {
        let enc = encoder();
        let mut stream = Vec::new();
        hello().write_to(&mut stream).unwrap();
        for user in 0..25 {
            submit_for(&enc, user, 0).write_to(&mut stream).unwrap();
        }
        let mut service = ReportService::new(ServiceConfig {
            snapshot_every: Some(10),
            ..ServiceConfig::default()
        });
        let summary = service.serve(&mut stream.as_slice()).unwrap();
        assert_eq!(summary.snapshots.len(), 2);
        assert_eq!(summary.snapshots[0].admitted, 10);
        assert_eq!(summary.snapshots[1].admitted, 20);
    }

    #[test]
    fn merged_shards_match_one_service_fed_everything() {
        let enc = encoder();
        // Interleave 60 users across 3 shard streams, blocks 0..3.
        let mut streams: Vec<Vec<u8>> = vec![Vec::new(); 3];
        for s in &mut streams {
            hello().write_to(s).unwrap();
        }
        let mut single_stream = Vec::new();
        hello().write_to(&mut single_stream).unwrap();
        for user in 0..60u64 {
            let msg = submit_for(&enc, user, 0);
            msg.write_to(&mut streams[(user % 3) as usize]).unwrap();
            msg.write_to(&mut single_stream).unwrap();
        }

        let mut shards: Vec<ReportService> = streams
            .iter()
            .map(|s| {
                let mut shard = ReportService::new(ServiceConfig::default());
                shard.serve(&mut s.as_slice()).unwrap();
                shard
            })
            .collect();
        // Tree merge in a scrambled order.
        let c = shards.pop().unwrap();
        let b = shards.pop().unwrap();
        let mut a = shards.pop().unwrap();
        let mut bc = b;
        bc.merge(c).unwrap();
        a.merge(bc).unwrap();

        let mut single = ReportService::new(ServiceConfig::default());
        single.serve(&mut single_stream.as_slice()).unwrap();

        let merged = a.snapshot_epoch(0).unwrap();
        let reference = single.snapshot_epoch(0).unwrap();
        assert_eq!(merged.admitted, 60);
        let merged = merged.result.unwrap();
        let reference = reference.result.unwrap();
        assert_eq!(merged.mean_vector(), reference.mean_vector());
        assert_eq!(merged.frequencies, reference.frequencies);
    }

    #[test]
    fn composition_reports_flow_through_the_service() {
        let protocol = Protocol::BestEffort {
            numeric: pipeline::BestEffortNumeric::PerAttribute(NumericKind::Laplace),
            oracle: OracleKind::Grr,
        };
        let specs = test_specs();
        let eps = Epsilon::new(1.0).unwrap();
        let enc = ClientEncoder::new(protocol, eps, specs.clone()).unwrap();
        let mut stream = Vec::new();
        WireMessage::Hello {
            protocol,
            epsilon: eps,
            specs: specs.clone(),
            epoch: 0,
        }
        .write_to(&mut stream)
        .unwrap();
        let mut rng: RngBlock<rand::rngs::StdRng> = RngBlock::new(pipeline::block_rng(3, 0));
        let mut report = enc.empty_report();
        let mut scratch = enc.scratch();
        for user in 0..20u64 {
            enc.encode_into(&tuple_for(user), &mut rng, &mut report, &mut scratch)
                .unwrap();
            WireMessage::Submit {
                user,
                epoch: 0,
                block: 0,
                report: encode_report(&report, &specs),
            }
            .write_to(&mut stream)
            .unwrap();
        }
        let mut service = ReportService::new(ServiceConfig::default());
        let summary = service.serve(&mut stream.as_slice()).unwrap();
        assert_eq!(summary.admitted, 20);
        assert_eq!(service.snapshot_epoch(0).unwrap().result.unwrap().n, 20);
    }

    #[test]
    fn trailing_junk_on_report_bytes_is_rejected() {
        let enc = encoder();
        let WireMessage::Submit {
            user,
            epoch,
            block,
            mut report,
        } = submit_for(&enc, 4, 0)
        else {
            unreachable!()
        };
        report.push(0xFF);
        let mut service = ReportService::new(ServiceConfig::default());
        service.handle(&hello()).unwrap();
        let err = service
            .handle(&WireMessage::Submit {
                user,
                epoch,
                block,
                report,
            })
            .unwrap_err();
        assert!(matches!(err, LdpError::MalformedFrame { .. }), "{err}");
        // The rejected report did not burn the user's budget.
        assert!(service.handle(&submit_for(&enc, 4, 0)).is_ok());
    }

    #[test]
    fn cross_protocol_report_bytes_are_rejected() {
        // Bytes encoded for a composition session fed to a sampling
        // session: must be a typed rejection, not a panic or absorption.
        let comp_protocol = Protocol::BestEffort {
            numeric: pipeline::BestEffortNumeric::PerAttribute(NumericKind::Laplace),
            oracle: OracleKind::Oue,
        };
        let specs = test_specs();
        let eps = Epsilon::new(1.0).unwrap();
        let comp_enc = ClientEncoder::new(comp_protocol, eps, specs.clone()).unwrap();
        let mut rng: RngBlock<rand::rngs::StdRng> = RngBlock::new(pipeline::block_rng(1, 0));
        let mut report = comp_enc.empty_report();
        let mut scratch = comp_enc.scratch();
        comp_enc
            .encode_into(&tuple_for(0), &mut rng, &mut report, &mut scratch)
            .unwrap();
        let bytes = encode_report(&report, &specs);

        let mut service = ReportService::new(ServiceConfig::default());
        service.handle(&hello()).unwrap();
        let err = service
            .handle(&WireMessage::Submit {
                user: 0,
                epoch: 0,
                block: 0,
                report: bytes,
            })
            .unwrap_err();
        // Either the decode or the validation gate fires; both are typed.
        assert!(service.snapshot_epoch(0).unwrap().result.is_none());
        drop(err);
    }
}
