//! High-probability error bounds in the shape of Lemmas 2 and 5.
//!
//! The paper states the accuracy guarantees asymptotically
//! (`O(√(d·log(d/β)) / (ε√n))`); for a usable bound we instantiate the
//! Bernstein inequality the proofs rely on, using each mechanism's concrete
//! variance and output bounds.

/// Bernstein bound: with probability at least `1 − β`, the average of `n`
/// i.i.d. zero-mean reports with per-report variance ≤ `var_bound` and
/// magnitude ≤ `range_bound` deviates from its mean by at most
/// `√(2·σ²·ln(2/β)/n) + 2b·ln(2/β)/(3n)`.
pub fn bernstein_mean_bound(var_bound: f64, range_bound: f64, n: usize, beta: f64) -> f64 {
    assert!(n > 0, "need at least one report");
    assert!(
        (0.0..1.0).contains(&beta) && beta > 0.0,
        "β must be in (0,1)"
    );
    let log_term = (2.0 / beta).ln();
    (2.0 * var_bound * log_term / n as f64).sqrt() + 2.0 * range_bound * log_term / (3.0 * n as f64)
}

/// Lemma 5's simultaneous bound over `d` attributes: a union bound over the
/// per-attribute Bernstein bound at confidence `β/d`.
pub fn lemma5_max_error_bound(
    var_bound: f64,
    range_bound: f64,
    n: usize,
    d: usize,
    beta: f64,
) -> f64 {
    assert!(d > 0, "need at least one attribute");
    bernstein_mean_bound(var_bound, range_bound, n, beta / d as f64)
}

/// The concrete Lemma 5 instantiation for the paper's Algorithm 4 with PM
/// or HM: a `1 − β` simultaneous bound on `max_j |Z[A_j] − X[A_j]|` after
/// collecting `n` users over `d` numeric attributes at budget `ε`.
///
/// Uses each mechanism's closed-form worst-case per-coordinate variance
/// (Equations 14/15) and the per-entry magnitude bound `(d/k)·C_{ε/k}`.
pub fn sampling_max_error_bound(
    numeric: ldp_core::NumericKind,
    epsilon: ldp_core::Epsilon,
    d: usize,
    n: usize,
    beta: f64,
) -> f64 {
    use ldp_core::{multidim::optimal_k, variance};
    let eps = epsilon.value();
    let var = match numeric {
        ldp_core::NumericKind::Piecewise => variance::pm_md_worst(eps, d),
        ldp_core::NumericKind::Hybrid => variance::hm_md_worst(eps, d),
        ldp_core::NumericKind::Duchi => variance::duchi_md_worst(eps, d),
        // The splitting baselines perturb every attribute at ε/d.
        ldp_core::NumericKind::Laplace
        | ldp_core::NumericKind::Scdf
        | ldp_core::NumericKind::Staircase => variance::laplace(eps / d as f64),
    };
    let k = optimal_k(epsilon, d) as f64;
    let eh = (eps / (2.0 * k)).exp();
    let c = (eh + 1.0) / (eh - 1.0);
    let range = d as f64 / k * c + 1.0;
    lemma5_max_error_bound(var, range, n, d, beta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_core::rng::seeded_rng;
    use ldp_core::{numeric::Piecewise, Epsilon, NumericMechanism};

    #[test]
    fn bound_shrinks_with_n_and_grows_with_confidence() {
        let b1 = bernstein_mean_bound(1.0, 2.0, 1_000, 0.05);
        let b2 = bernstein_mean_bound(1.0, 2.0, 100_000, 0.05);
        assert!(b2 < b1);
        let tight = bernstein_mean_bound(1.0, 2.0, 1_000, 0.2);
        let loose = bernstein_mean_bound(1.0, 2.0, 1_000, 0.001);
        assert!(tight < loose);
    }

    #[test]
    fn lemma5_is_looser_than_single_attribute() {
        let single = bernstein_mean_bound(1.0, 2.0, 1_000, 0.05);
        let multi = lemma5_max_error_bound(1.0, 2.0, 1_000, 16, 0.05);
        assert!(multi > single);
    }

    #[test]
    fn empirical_errors_respect_the_bound() {
        // 200 repetitions of a 2 000-user PM mean estimation; at β = 0.05 at
        // most ~10 violations are expected, and Bernstein is conservative
        // enough that we should see none.
        let eps = Epsilon::new(1.0).unwrap();
        let pm = Piecewise::new(eps);
        let t = 0.3;
        let n = 2_000;
        let beta = 0.05;
        let bound = bernstein_mean_bound(
            pm.worst_case_variance(),
            pm.output_bound().unwrap() + 1.0, // |report − mean| ≤ C + |t|
            n,
            beta,
        );
        let mut rng = seeded_rng(320);
        let mut violations = 0;
        for _ in 0..200 {
            let mean: f64 = (0..n)
                .map(|_| pm.perturb(t, &mut rng).unwrap())
                .sum::<f64>()
                / n as f64;
            if (mean - t).abs() > bound {
                violations += 1;
            }
        }
        assert!(violations <= 10, "{violations} violations of the 95% bound");
    }

    #[test]
    fn sampling_bound_holds_empirically() {
        // Collect 16-dim tuples through Algorithm 4 + HM and verify the
        // simultaneous max-error bound across repetitions.
        use crate::pipeline::{Collector, Protocol};
        use ldp_core::{NumericKind, OracleKind};
        use ldp_data::synthetic::{gaussian, numeric_dataset};
        let d = 16usize;
        let n = 20_000usize;
        let eps = Epsilon::new(2.0).unwrap();
        let ds = numeric_dataset(n, d, gaussian(0.3), 60).unwrap();
        let truth: Vec<f64> = (0..d).map(|j| ds.true_mean(j).unwrap()).collect();
        let bound = sampling_max_error_bound(NumericKind::Hybrid, eps, d, n, 0.05);
        let collector = Collector::new(
            Protocol::Sampling {
                numeric: NumericKind::Hybrid,
                oracle: OracleKind::Oue,
            },
            eps,
        );
        let mut violations = 0usize;
        let reps = 20;
        for r in 0..reps {
            let result = collector.run(&ds, 500 + r).unwrap();
            let max_err = result
                .means
                .iter()
                .map(|(j, m)| (m - truth[*j]).abs())
                .fold(0.0f64, f64::max);
            if max_err > bound {
                violations += 1;
            }
        }
        // 95% bound over 20 reps: ~1 expected; Bernstein is conservative.
        assert!(
            violations <= 2,
            "{violations} violations of the Lemma 5 bound {bound}"
        );
    }

    #[test]
    fn sampling_bound_orders_mechanisms() {
        // HM's bound should be the tightest of the proposed mechanisms, and
        // the splitting Laplace baseline by far the loosest.
        use ldp_core::NumericKind;
        let eps = Epsilon::new(1.0).unwrap();
        let (d, n, beta) = (16usize, 100_000usize, 0.05);
        let hm = sampling_max_error_bound(NumericKind::Hybrid, eps, d, n, beta);
        let pm = sampling_max_error_bound(NumericKind::Piecewise, eps, d, n, beta);
        let du = sampling_max_error_bound(NumericKind::Duchi, eps, d, n, beta);
        let lap = sampling_max_error_bound(NumericKind::Laplace, eps, d, n, beta);
        assert!(hm <= pm + 1e-12);
        assert!(pm < du);
        assert!(du < lap);
    }

    #[test]
    #[should_panic(expected = "β must be in (0,1)")]
    fn rejects_bad_beta() {
        bernstein_mean_bound(1.0, 1.0, 10, 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one report")]
    fn rejects_zero_n() {
        bernstein_mean_bound(1.0, 1.0, 0, 0.05);
    }
}
