//! Aggregator-side mean estimation.
//!
//! All mechanisms in this library produce *unbiased* per-user reports, so
//! the aggregator's estimator is a plain average (§III: `1/n Σ t*_i`;
//! Algorithm 4's `d/k` scaling already happened user-side). The accumulator
//! is mergeable so the pipeline can shard users across threads.

use ldp_core::multidim::wire::{BitReader, BitWriter};
use ldp_core::multidim::SparseReport;
use ldp_core::{AttrReport, LdpError, Result};

/// Streaming accumulator for per-attribute means of numeric reports.
#[derive(Debug, Clone)]
pub struct MeanAccumulator {
    sums: Vec<f64>,
    n: usize,
}

impl MeanAccumulator {
    /// An empty accumulator over `d` attributes.
    pub fn new(d: usize) -> Self {
        MeanAccumulator {
            sums: vec![0.0; d],
            n: 0,
        }
    }

    /// Number of attributes tracked.
    pub fn d(&self) -> usize {
        self.sums.len()
    }

    /// Number of reports absorbed.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Absorbs a dense report (one value per attribute).
    ///
    /// # Errors
    /// [`LdpError::DimensionMismatch`] on wrong arity.
    pub fn add_dense(&mut self, report: &[f64]) -> Result<()> {
        if report.len() != self.sums.len() {
            return Err(LdpError::DimensionMismatch {
                expected: self.sums.len(),
                actual: report.len(),
            });
        }
        for (s, x) in self.sums.iter_mut().zip(report) {
            *s += x;
        }
        self.n += 1;
        Ok(())
    }

    /// Absorbs the numeric entries of an Algorithm 4 sparse report.
    /// Unsampled attributes contribute zero, exactly as in the dense view;
    /// categorical entries are ignored (they flow to the frequency
    /// accumulators).
    ///
    /// # Errors
    /// [`LdpError::DimensionMismatch`] if the report's `d` differs.
    pub fn add_sparse(&mut self, report: &SparseReport) -> Result<()> {
        if report.d != self.sums.len() {
            return Err(LdpError::DimensionMismatch {
                expected: self.sums.len(),
                actual: report.d,
            });
        }
        for (j, rep) in &report.entries {
            if let AttrReport::Numeric(x) = rep {
                self.sums[*j as usize] += x;
            }
        }
        self.n += 1;
        Ok(())
    }

    /// Merges another accumulator (for sharded aggregation).
    ///
    /// # Errors
    /// [`LdpError::DimensionMismatch`] if the dimensionalities differ.
    pub fn merge(&mut self, other: &MeanAccumulator) -> Result<()> {
        if other.sums.len() != self.sums.len() {
            return Err(LdpError::DimensionMismatch {
                expected: self.sums.len(),
                actual: other.sums.len(),
            });
        }
        for (s, o) in self.sums.iter_mut().zip(&other.sums) {
            *s += o;
        }
        self.n += other.n;
        Ok(())
    }

    /// The per-attribute mean estimates `1/n Σ t*_i`.
    ///
    /// # Errors
    /// [`LdpError::EmptyInput`] before any report arrives.
    pub fn estimate(&self) -> Result<Vec<f64>> {
        if self.n == 0 {
            return Err(LdpError::EmptyInput("reports"));
        }
        Ok(self.sums.iter().map(|s| s / self.n as f64).collect())
    }

    /// Estimates clamped into the attribute domain `[-1, 1]` — a standard
    /// aggregator-side post-processing step (post-processing preserves LDP)
    /// that can only reduce error since the true mean lies in `[-1, 1]`.
    ///
    /// # Errors
    /// As [`MeanAccumulator::estimate`].
    pub fn estimate_clamped(&self) -> Result<Vec<f64>> {
        Ok(self
            .estimate()?
            .into_iter()
            .map(|x| x.clamp(-1.0, 1.0))
            .collect())
    }

    /// Exact serialized size of [`MeanAccumulator::encode_state`] in bits:
    /// the report count plus one IEEE-754 word per attribute. `d` is *not*
    /// on the wire — both sides derive it from the shared schema — which is
    /// what lets checkpoint decoding reject any length mismatch outright.
    pub fn state_bits(d: usize) -> usize {
        64 + 64 * d
    }

    /// Appends the accumulator state — `n`, then each running sum as its
    /// raw `f64::to_bits` word — to `w`. Bit-exact: decoding on a
    /// same-shape accumulator reproduces every future estimate to the bit,
    /// which is the property epoch checkpoints are gated on.
    pub fn encode_state(&self, w: &mut BitWriter) {
        w.write_bits(self.n as u64, 64);
        for s in &self.sums {
            w.write_bits(s.to_bits(), 64);
        }
    }

    /// Overwrites this accumulator with state read from `r` (inverse of
    /// [`MeanAccumulator::encode_state`]); the dimensionality stays the one
    /// this accumulator was constructed with.
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] on a truncated buffer.
    pub fn decode_state(&mut self, r: &mut BitReader<'_>) -> Result<()> {
        self.n = r.read_bits(64)? as usize;
        for s in &mut self.sums {
            *s = f64::from_bits(r.read_bits(64)?);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_core::assert_within_ci;
    use ldp_core::multidim::SamplingPerturber;
    use ldp_core::testutil::fixture_rng;
    use ldp_core::{AttrSpec, Epsilon, NumericKind, OracleKind};

    #[test]
    fn dense_average() {
        let mut acc = MeanAccumulator::new(2);
        acc.add_dense(&[1.0, -1.0]).unwrap();
        acc.add_dense(&[0.0, 1.0]).unwrap();
        assert_eq!(acc.estimate().unwrap(), vec![0.5, 0.0]);
        assert_eq!(acc.n(), 2);
        assert!(acc.add_dense(&[0.0]).is_err());
    }

    #[test]
    fn empty_estimate_fails() {
        let acc = MeanAccumulator::new(3);
        assert!(matches!(acc.estimate(), Err(LdpError::EmptyInput(_))));
    }

    #[test]
    fn merge_equals_sequential() {
        let mut a = MeanAccumulator::new(2);
        let mut b = MeanAccumulator::new(2);
        let mut whole = MeanAccumulator::new(2);
        for i in 0..10 {
            let row = [i as f64 / 10.0, -(i as f64) / 20.0];
            whole.add_dense(&row).unwrap();
            if i % 2 == 0 {
                a.add_dense(&row).unwrap();
            } else {
                b.add_dense(&row).unwrap();
            }
        }
        a.merge(&b).unwrap();
        assert_eq!(a.estimate().unwrap(), whole.estimate().unwrap());
        let bad = MeanAccumulator::new(3);
        assert!(a.merge(&bad).is_err());
    }

    #[test]
    fn clamped_estimate_stays_in_domain() {
        let mut acc = MeanAccumulator::new(1);
        acc.add_dense(&[5.0]).unwrap();
        assert_eq!(acc.estimate().unwrap(), vec![5.0]);
        assert_eq!(acc.estimate_clamped().unwrap(), vec![1.0]);
    }

    #[test]
    fn sparse_reports_estimate_means_end_to_end() {
        // Algorithm 4 (k < d) through the accumulator: the estimate should
        // converge to the true per-attribute means.
        let d = 4;
        let n = 120_000;
        let eps = Epsilon::new(6.0).unwrap(); // k = 2
        let p = SamplingPerturber::new(
            eps,
            vec![AttrSpec::Numeric; d],
            NumericKind::Hybrid,
            OracleKind::Oue,
        )
        .unwrap();
        assert_eq!(p.k(), 2);
        let mut rng = fixture_rng("mean::sparse_reports_estimate_means_end_to_end");
        let t = [0.8, -0.2, 0.0, 0.4];
        let tuple: Vec<_> = t.iter().map(|&x| ldp_core::AttrValue::Numeric(x)).collect();
        let mut acc = MeanAccumulator::new(d);
        for _ in 0..n {
            acc.add_sparse(&p.perturb(&tuple, &mut rng).unwrap())
                .unwrap();
        }
        let est = acc.estimate().unwrap();
        for j in 0..d {
            // Equation 15 gives the per-user variance of the d/k-scaled
            // sparse estimate; the CI bound replaces the old `< 0.05`.
            assert_within_ci!(
                est[j],
                t[j],
                ldp_core::variance::hm_md_with_k(eps.value(), d, p.k(), t[j]),
                n,
                "j={j}"
            );
        }
    }

    #[test]
    fn sparse_dimension_mismatch() {
        let mut acc = MeanAccumulator::new(2);
        let report = SparseReport {
            d: 3,
            k: 1,
            entries: vec![],
        };
        assert!(acc.add_sparse(&report).is_err());
    }
}
