//! Accuracy metrics used throughout the evaluation (§VI reports MSE for
//! estimation tasks and misclassification rates for ERM).

use ldp_core::{LdpError, Result};

/// Mean squared error between an estimate vector and the ground truth.
///
/// # Errors
/// Rejects length mismatches and empty inputs.
pub fn mse(estimate: &[f64], truth: &[f64]) -> Result<f64> {
    if estimate.len() != truth.len() {
        return Err(LdpError::DimensionMismatch {
            expected: truth.len(),
            actual: estimate.len(),
        });
    }
    if estimate.is_empty() {
        return Err(LdpError::EmptyInput("values"));
    }
    Ok(estimate
        .iter()
        .zip(truth)
        .map(|(e, t)| (e - t) * (e - t))
        .sum::<f64>()
        / estimate.len() as f64)
}

/// Maximum absolute error, the `max_j |Z[A_j] − X[A_j]|` of Lemma 5.
///
/// # Errors
/// As [`mse`].
pub fn max_abs_error(estimate: &[f64], truth: &[f64]) -> Result<f64> {
    if estimate.len() != truth.len() {
        return Err(LdpError::DimensionMismatch {
            expected: truth.len(),
            actual: estimate.len(),
        });
    }
    if estimate.is_empty() {
        return Err(LdpError::EmptyInput("values"));
    }
    Ok(estimate
        .iter()
        .zip(truth)
        .map(|(e, t)| (e - t).abs())
        .fold(f64::NEG_INFINITY, f64::max))
}

/// Sample mean of a slice.
///
/// # Errors
/// [`LdpError::EmptyInput`] on an empty slice.
pub fn sample_mean(values: &[f64]) -> Result<f64> {
    if values.is_empty() {
        return Err(LdpError::EmptyInput("values"));
    }
    Ok(values.iter().sum::<f64>() / values.len() as f64)
}

/// Population-style sample variance (divides by `n`, matching the variance
/// formulas the mechanisms are tested against).
///
/// # Errors
/// [`LdpError::EmptyInput`] on an empty slice.
pub fn sample_variance(values: &[f64]) -> Result<f64> {
    let m = sample_mean(values)?;
    Ok(values.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / values.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_basic() {
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 2.0]).unwrap(), 0.0);
        assert_eq!(mse(&[1.0, 3.0], &[0.0, 1.0]).unwrap(), 2.5);
        assert!(mse(&[1.0], &[1.0, 2.0]).is_err());
        assert!(mse(&[], &[]).is_err());
    }

    #[test]
    fn max_abs_basic() {
        assert_eq!(max_abs_error(&[1.0, -2.0], &[0.5, 1.0]).unwrap(), 3.0);
        assert!(max_abs_error(&[], &[]).is_err());
    }

    #[test]
    fn mean_and_variance() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(sample_mean(&v).unwrap(), 2.5);
        assert_eq!(sample_variance(&v).unwrap(), 1.25);
        assert!(sample_mean(&[]).is_err());
        assert!(sample_variance(&[]).is_err());
    }
}
