//! Crash-safe durability under [`ReportService`]: a write-ahead log, epoch
//! checkpoints, and deterministic kill–restart recovery.
//!
//! ## The contract
//!
//! [`DurableService`] wraps a [`ReportService`] so that an `Admitted` ack
//! is only ever sent for a report whose WAL record is as durable as the
//! configured [`FsyncPolicy`] promises. A process kill at *any* instant
//! then loses at most unacked work: on restart, [`Recovery::replay`]
//! installs the newest checkpoint, replays the log's admitted records
//! through the untouched production path
//! ([`crate::service::WireMessage::decode`] +
//! [`ReportService::handle`]), truncates the torn tail a mid-append crash
//! leaves, and the recovered epoch snapshots are **bit-identical** —
//! every mean and frequency compared via `to_bits()` — to a run that never
//! crashed. The crash-recovery suite gates on exactly that, plus the
//! conservation invariant `admitted == wal_replayed + checkpointed`.
//!
//! ## The pieces
//!
//! - `wal`: the log — a binding header record (protocol, ε, schema,
//!   base epoch, ledger key, run seed) followed by one frame per admitted
//!   `Submit`, byte-identical to its wire payload. Torn tails truncate
//!   silently; corruption *before* the tail is a typed
//!   [`ldp_core::LdpError::WalCorrupt`] with the byte offset, mirroring
//!   [`crate::service::StreamFault`] semantics.
//! - `checkpoint`: full-state snapshots (aggregator partials keyed by
//!   ordinal, the budget ledger as keyed hashes, the stream counters)
//!   written with [`ldp_core::fsio`]'s fsync-hardened tmp+rename. After a
//!   checkpoint commits, the log rotates down to its header — the
//!   checkpoint has made the old records redundant.
//! - `recovery`: checkpoint install + ordered replay, deduplicating
//!   through the ledger so a crash between checkpoint-commit and rotation
//!   cannot double-spend anyone's budget.
//! - [`CrashSchedule`]: a seeded kill switch consulted between every
//!   append / fsync / checkpoint-stage / checkpoint-commit / rotate step,
//!   so the integration suite can drop the process at a reproducible
//!   instant and prove recovery from whatever the disk held.

mod checkpoint;
mod recovery;
mod wal;

pub use checkpoint::{
    Checkpoint, CHECKPOINT_FILE, KIND_CHECKPOINT_EPOCH, KIND_CHECKPOINT_LEDGER,
    KIND_CHECKPOINT_META,
};
pub use recovery::{Recovery, RecoveryReport};
pub use wal::{scan, WalHeader, WalScan, WalWriter, KIND_WAL_HEADER, KIND_WAL_SUBMIT, WAL_FILE};

use crate::service::{EpochSnapshot, ReportService, ServiceConfig, WireMessage};
use ldp_core::rng::{seeded_rng, uniform_index};
use ldp_core::{fsio, IoFault, LdpError, Result};
use std::path::{Path, PathBuf};

/// When appended WAL records are forced onto stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every record: the ack-after-durable contract holds
    /// for each individual report. The safest and slowest policy.
    EveryRecord,
    /// Group commit: `fsync` once per `n` appended records. A crash can
    /// lose up to `n - 1` acked-but-unsynced records; throughput scales
    /// accordingly. `EveryN(1)` behaves like [`FsyncPolicy::EveryRecord`].
    EveryN(u64),
    /// `fsync` only at explicit flush boundaries (`FlushEpoch`,
    /// `Shutdown`, [`DurableService::flush`]). Fastest; the durability
    /// boundary is the flush, not the record.
    OnFlush,
}

/// The instants a [`CrashSchedule`] can kill the process at — each sits
/// between two steps of the durable write paths, where a real power cut
/// could land.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// A WAL record reached the OS but no fsync has run: the record may
    /// or may not survive; recovery sees a torn or missing tail.
    AfterAppend,
    /// A WAL fsync completed: everything appended so far is durable.
    AfterFsync,
    /// The checkpoint temp file is written and synced, but not renamed:
    /// recovery must ignore the stray `.tmp` and use the old state.
    AfterCheckpointStage,
    /// The checkpoint rename is durable but the log has not rotated:
    /// recovery replays a log whose records the checkpoint already
    /// covers — the ledger must deduplicate every one.
    AfterCheckpointCommit,
    /// The rotated (header-only) log replaced the old one.
    AfterRotate,
}

impl CrashPoint {
    /// Every injectable point, in write-path order.
    pub const ALL: [CrashPoint; 5] = [
        CrashPoint::AfterAppend,
        CrashPoint::AfterFsync,
        CrashPoint::AfterCheckpointStage,
        CrashPoint::AfterCheckpointCommit,
        CrashPoint::AfterRotate,
    ];
}

/// A deterministic kill: trips the `occurrence`-th time execution passes
/// `point`, and every durable operation from then on fails with the
/// injected-crash error — the process is to be treated as dead and
/// reopened via [`Recovery::replay`].
#[derive(Debug, Clone)]
pub struct CrashSchedule {
    point: CrashPoint,
    occurrence: u64,
    seen: u64,
    tripped: bool,
}

impl CrashSchedule {
    /// Kill at the `occurrence`-th (1-based) pass of `point`.
    pub fn new(point: CrashPoint, occurrence: u64) -> Self {
        CrashSchedule {
            point,
            occurrence: occurrence.max(1),
            seen: 0,
            tripped: false,
        }
    }

    /// A seed-derived schedule: uniform point, occurrence in `1..=8`.
    /// Same seed, same kill — the property the kill–restart suite's fixed
    /// seeds rely on.
    pub fn seeded(seed: u64) -> Self {
        let mut rng = seeded_rng(seed ^ 0xdead_0c4a_5af3_57a7);
        let point = CrashPoint::ALL[uniform_index(&mut rng, CrashPoint::ALL.len() as u32) as usize];
        let occurrence = u64::from(uniform_index(&mut rng, 8)) + 1;
        CrashSchedule::new(point, occurrence)
    }

    /// The point this schedule kills at.
    pub fn point(&self) -> CrashPoint {
        self.point
    }

    /// Which pass of the point kills (1-based).
    pub fn occurrence(&self) -> u64 {
        self.occurrence
    }

    /// True once the kill has fired.
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    /// Consulted by the durable write paths at each [`CrashPoint`].
    ///
    /// # Errors
    /// The injected-crash error (see [`is_injected_crash`]) when this
    /// pass trips the schedule, and on every call after.
    pub fn note(&mut self, point: CrashPoint) -> Result<()> {
        if self.tripped {
            return Err(injected_crash());
        }
        if point == self.point {
            self.seen += 1;
            if self.seen >= self.occurrence {
                self.tripped = true;
                return Err(injected_crash());
            }
        }
        Ok(())
    }
}

fn injected_crash() -> LdpError {
    LdpError::InvalidParameter {
        name: "injected_crash",
        message: "simulated process kill from the crash schedule".into(),
    }
}

/// True for the error a tripped [`CrashSchedule`] injects — the harness's
/// cue to drop the instance and recover, as distinguishable from a real
/// I/O failure as a kill signal is.
pub fn is_injected_crash(e: &LdpError) -> bool {
    matches!(
        e,
        LdpError::InvalidParameter {
            name: "injected_crash",
            ..
        }
    )
}

/// True for errors raised by the durability layer itself — disk failures
/// on the log or checkpoint paths, or an injected crash — rather than by
/// request validation. The transport maps these to a retryable
/// `Overloaded` shed: nothing about the *message* was wrong, the server
/// just could not make it durable right now.
pub fn is_storage_error(e: &LdpError) -> bool {
    matches!(
        e,
        LdpError::InvalidParameter { name, .. }
            if *name == "injected_crash"
                || name.starts_with("wal")
                || name.starts_with("checkpoint")
                || name.starts_with("durable")
    )
}

fn note(crash: &mut Option<CrashSchedule>, point: CrashPoint) -> Result<()> {
    match crash {
        Some(schedule) => schedule.note(point),
        None => Ok(()),
    }
}

fn disk_err(op: &'static str, e: &std::io::Error) -> LdpError {
    LdpError::InvalidParameter {
        name: op,
        message: format!("durable i/o failed: {}", IoFault::from_io(e)),
    }
}

/// Construction parameters for a [`DurableService`].
#[derive(Debug, Clone)]
pub struct DurableConfig {
    /// The wrapped service's parameters.
    pub service: ServiceConfig,
    /// When WAL appends are forced to stable storage.
    pub fsync: FsyncPolicy,
    /// The collection run's seed, bound into the log header so recovered
    /// state can never be mixed into a different run.
    pub run_seed: u64,
}

impl Default for DurableConfig {
    fn default() -> Self {
        DurableConfig {
            service: ServiceConfig::default(),
            fsync: FsyncPolicy::EveryRecord,
            run_seed: 0,
        }
    }
}

/// A [`ReportService`] behind a write-ahead log and epoch checkpoints.
///
/// Every admitted `Submit` is appended to the log *before* the caller gets
/// its `Ok` (and hence before any transport ack); [`Self::checkpoint`] captures
/// the full state atomically and rotates the log. Opening a directory
/// always runs recovery first, so a kill–restart cycle is just `drop` +
/// [`DurableService::open`].
#[derive(Debug)]
pub struct DurableService {
    service: ReportService,
    config: DurableConfig,
    dir: PathBuf,
    /// `None` until a `Hello` establishes the session (there is nothing to
    /// bind a log header to before that).
    wal: Option<WalWriter>,
    header: Option<WalHeader>,
    crash: Option<CrashSchedule>,
    checkpoints: u64,
}

impl DurableService {
    /// Opens (and first recovers) the durable directory.
    ///
    /// # Errors
    /// Recovery failures — see [`Recovery::replay`].
    pub fn open(dir: &Path, config: DurableConfig) -> Result<(Self, RecoveryReport)> {
        Self::open_with_crash(dir, config, None)
    }

    /// [`DurableService::open`] with a crash schedule armed; the harness
    /// entry point.
    ///
    /// # Errors
    /// As [`DurableService::open`].
    pub fn open_with_crash(
        dir: &Path,
        config: DurableConfig,
        crash: Option<CrashSchedule>,
    ) -> Result<(Self, RecoveryReport)> {
        std::fs::create_dir_all(dir).map_err(|e| disk_err("durable_dir", &e))?;
        let (service, header, report) = Recovery::replay(dir, &config)?;
        let wal_path = dir.join(WAL_FILE);
        let wal = match &header {
            // A crash can land after the checkpoint rename with the log
            // missing or rotated away mid-swap; recreate it from the
            // binding either way.
            Some(h) if !wal_path.exists() => Some(WalWriter::create(&wal_path, h, config.fsync)?),
            Some(_) => Some(WalWriter::open_end(&wal_path, config.fsync)?),
            None => None,
        };
        Ok((
            DurableService {
                service,
                config,
                dir: dir.to_path_buf(),
                wal,
                header,
                crash,
                checkpoints: 0,
            },
            report,
        ))
    }

    /// The wrapped service (read-only; all mutation goes through
    /// [`DurableService::handle`] so it cannot bypass the log).
    pub fn service(&self) -> &ReportService {
        &self.service
    }

    /// Checkpoints taken by this instance.
    pub fn checkpoints(&self) -> u64 {
        self.checkpoints
    }

    /// Submit records appended by this instance (recovered records are a
    /// previous incarnation's).
    pub fn wal_records(&self) -> u64 {
        self.wal.as_ref().map_or(0, WalWriter::records)
    }

    /// True once an armed crash schedule has fired; the instance is
    /// "dead" and every further durable operation returns the injected
    /// crash.
    pub fn crashed(&self) -> bool {
        self.crash.as_ref().is_some_and(CrashSchedule::tripped)
    }

    /// Non-destructive snapshot of one epoch (delegates to the service).
    ///
    /// # Errors
    /// As [`ReportService::snapshot_epoch`].
    pub fn snapshot_epoch(&self, epoch: u64) -> Result<EpochSnapshot> {
        self.service.snapshot_epoch(epoch)
    }

    /// Processes one message with durability interposed:
    ///
    /// - `Hello`: establishes the session, then durably creates the log
    ///   with its binding header (idempotent re-hellos reuse it);
    /// - `Submit`: admitted by the service first (all three validation
    ///   gates), then appended; the `Ok` — and any ack built from it —
    ///   happens strictly after the append returns per the fsync policy;
    /// - `FlushEpoch`: flushes the log (the `OnFlush` durability
    ///   boundary), then snapshots;
    /// - `Shutdown`: flushes the log.
    ///
    /// # Errors
    /// Service rejections pass through unchanged (a duplicate is still
    /// [`LdpError::DuplicateReport`] and is *not* logged). A WAL append
    /// failure after an in-memory admit is surfaced as-is: the transport
    /// maps it to a retryable `Overloaded`, and since the admit kept the
    /// in-memory ledger entry, the client's idempotent retry resolves to
    /// a duplicate ack rather than a double-count.
    pub fn handle(&mut self, msg: &WireMessage) -> Result<Option<EpochSnapshot>> {
        match msg {
            WireMessage::Hello { .. } => {
                self.service.handle(msg)?;
                if self.wal.is_none() {
                    let (protocol, epsilon, specs, base_epoch) = self
                        .service
                        .session_params()
                        .expect("hello just established the session");
                    let header = WalHeader {
                        protocol,
                        epsilon,
                        specs: specs.to_vec(),
                        base_epoch,
                        ledger_key: self.service.config().ledger_key,
                        run_seed: self.config.run_seed,
                    };
                    let wal =
                        WalWriter::create(&self.dir.join(WAL_FILE), &header, self.config.fsync)?;
                    self.header = Some(header);
                    self.wal = Some(wal);
                }
                Ok(None)
            }
            WireMessage::Submit { .. } => {
                self.service.handle(msg)?;
                let wal = self
                    .wal
                    .as_mut()
                    .expect("service admitted a submit, so a hello created the log");
                wal.append(msg, &mut self.crash)?;
                Ok(None)
            }
            WireMessage::FlushEpoch { .. } => {
                self.flush()?;
                self.service.handle(msg)
            }
            WireMessage::Shutdown => {
                self.flush()?;
                Ok(None)
            }
        }
    }

    /// Counts one malformed rejection observed outside the service's own
    /// loops (see [`ReportService::note_malformed`]) — the transport
    /// absorber's passthrough.
    pub fn note_malformed(&mut self) {
        self.service.note_malformed();
    }

    /// Tears down the wrapper and returns the wrapped service — the
    /// drain-then-stop tail of the transport server. The final flush is
    /// best-effort: at this point the process is exiting, and a dead disk
    /// or tripped crash schedule has no one left to retry.
    pub fn into_service(mut self) -> ReportService {
        let _ = self.flush();
        self.service
    }

    /// Forces every appended record onto stable storage.
    ///
    /// # Errors
    /// I/O failures or the injected crash.
    pub fn flush(&mut self) -> Result<()> {
        match self.wal.as_mut() {
            Some(wal) => wal.sync(&mut self.crash),
            None => Ok(()),
        }
    }

    /// Takes an epoch checkpoint and rotates the log:
    ///
    /// 1. capture the full service state and stage it to
    ///    `checkpoint.bin.tmp` (written + fsynced, not yet visible);
    /// 2. commit: atomic rename + parent-directory fsync — from this
    ///    instant recovery uses the new checkpoint;
    /// 3. rotate: swap in a header-only log the same way — the records
    ///    the checkpoint covers are compacted away.
    ///
    /// A crash between 2 and 3 leaves a log whose records the checkpoint
    /// already holds; recovery deduplicates them through the ledger.
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] before any session exists; I/O
    /// failures; the injected crash at any armed point.
    pub fn checkpoint(&mut self) -> Result<()> {
        let header = self
            .header
            .clone()
            .ok_or_else(|| LdpError::InvalidParameter {
                name: "checkpoint",
                message: "no session established; nothing to checkpoint".into(),
            })?;
        let image = Checkpoint::capture(&self.service, &header).encode()?;
        let checkpoint_path = self.dir.join(CHECKPOINT_FILE);
        let staged =
            fsio::stage(&checkpoint_path, &image).map_err(|e| disk_err("checkpoint_stage", &e))?;
        note(&mut self.crash, CrashPoint::AfterCheckpointStage)?;
        fsio::commit(&checkpoint_path, &staged).map_err(|e| disk_err("checkpoint_commit", &e))?;
        note(&mut self.crash, CrashPoint::AfterCheckpointCommit)?;

        // Rotate: drop the open handle, then atomically swap in a fresh
        // header-only log and reopen it for appending.
        self.wal = None;
        let wal_path = self.dir.join(WAL_FILE);
        let fresh = wal::header_only_log(&header)?;
        let staged = fsio::stage(&wal_path, &fresh).map_err(|e| disk_err("wal_rotate", &e))?;
        fsio::commit(&wal_path, &staged).map_err(|e| disk_err("wal_rotate", &e))?;
        note(&mut self.crash, CrashPoint::AfterRotate)?;
        self.wal = Some(WalWriter::open_end(&wal_path, self.config.fsync)?);
        self.checkpoints += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Protocol;
    use crate::service::encode_report;
    use crate::ClientEncoder;
    use ldp_core::rng::seeded_rng;
    use ldp_core::{AttrSpec, AttrValue, Epsilon, NumericKind, OracleKind};

    fn temp_dir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ldp_durable_{}_{name}", std::process::id()));
        p
    }

    fn test_protocol() -> Protocol {
        Protocol::Sampling {
            numeric: NumericKind::Hybrid,
            oracle: OracleKind::Oue,
        }
    }

    fn test_specs() -> Vec<AttrSpec> {
        vec![AttrSpec::Numeric, AttrSpec::Categorical { k: 4 }]
    }

    fn hello() -> WireMessage {
        WireMessage::Hello {
            protocol: test_protocol(),
            epsilon: Epsilon::new(1.0).unwrap(),
            specs: test_specs(),
            epoch: 0,
        }
    }

    fn submits(n: u64) -> Vec<WireMessage> {
        let specs = test_specs();
        let encoder =
            ClientEncoder::new(test_protocol(), Epsilon::new(1.0).unwrap(), specs.clone()).unwrap();
        let mut rng = seeded_rng(41);
        (0..n)
            .map(|user| {
                let report = encoder
                    .encode(
                        &[
                            AttrValue::Numeric(0.25),
                            AttrValue::Categorical((user % 4) as u32),
                        ],
                        &mut rng,
                    )
                    .unwrap();
                WireMessage::Submit {
                    user,
                    epoch: 0,
                    block: user % 3,
                    report: encode_report(&report, &specs),
                }
            })
            .collect()
    }

    #[test]
    fn wal_header_round_trips_and_binds() {
        let header = WalHeader {
            protocol: test_protocol(),
            epsilon: Epsilon::new(0.5).unwrap(),
            specs: test_specs(),
            base_epoch: 3,
            ledger_key: 0xfeed,
            run_seed: 99,
        };
        let decoded = WalHeader::decode(&header.encode()).unwrap();
        assert!(header.matches(&decoded));
        let mut other = decoded.clone();
        other.run_seed = 100;
        assert!(!header.matches(&other));
        assert!(WalHeader::decode(&[0u8; 8]).is_err());
    }

    #[test]
    fn open_append_recover_round_trip() {
        let dir = temp_dir("round_trip");
        let _ = std::fs::remove_dir_all(&dir);
        let (mut durable, report) = DurableService::open(&dir, DurableConfig::default()).unwrap();
        assert_eq!(report, RecoveryReport::default());
        durable.handle(&hello()).unwrap();
        for msg in submits(20) {
            durable.handle(&msg).unwrap();
        }
        let before = durable.snapshot_epoch(0).unwrap();
        drop(durable);

        let (recovered, report) = DurableService::open(&dir, DurableConfig::default()).unwrap();
        assert_eq!(report.wal_replayed, 20);
        assert_eq!(report.checkpointed, 0);
        assert_eq!(report.recovered_admits(), 20);
        let after = recovered.snapshot_epoch(0).unwrap();
        assert_eq!(after.admitted, before.admitted);
        let (a, b) = (before.result.unwrap(), after.result.unwrap());
        assert_eq!(a.means.len(), b.means.len());
        for ((i, x), (j, y)) in a.means.iter().zip(b.means.iter()) {
            assert_eq!(i, j);
            assert_eq!(x.to_bits(), y.to_bits());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_rotates_and_recovery_splits_sources() {
        let dir = temp_dir("checkpoint");
        let _ = std::fs::remove_dir_all(&dir);
        let (mut durable, _) = DurableService::open(&dir, DurableConfig::default()).unwrap();
        durable.handle(&hello()).unwrap();
        let all = submits(30);
        for msg in &all[..18] {
            durable.handle(msg).unwrap();
        }
        durable.checkpoint().unwrap();
        assert_eq!(durable.checkpoints(), 1);
        for msg in &all[18..] {
            durable.handle(msg).unwrap();
        }
        drop(durable);

        let (recovered, report) = DurableService::open(&dir, DurableConfig::default()).unwrap();
        assert_eq!(report.checkpointed, 18);
        assert_eq!(report.wal_replayed, 12);
        assert_eq!(report.wal_skipped, 0);
        assert_eq!(report.recovered_admits(), 30);
        assert_eq!(recovered.snapshot_epoch(0).unwrap().admitted, 30);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn crash_schedule_is_deterministic_and_trips_once() {
        let a = CrashSchedule::seeded(7);
        let b = CrashSchedule::seeded(7);
        assert_eq!(a.point(), b.point());
        assert_eq!(a.occurrence(), b.occurrence());

        let mut s = CrashSchedule::new(CrashPoint::AfterAppend, 2);
        assert!(s.note(CrashPoint::AfterFsync).is_ok());
        assert!(s.note(CrashPoint::AfterAppend).is_ok());
        let err = s.note(CrashPoint::AfterAppend).unwrap_err();
        assert!(is_injected_crash(&err));
        assert!(s.tripped());
        // Dead stays dead, whatever the point.
        let err = s.note(CrashPoint::AfterRotate).unwrap_err();
        assert!(is_injected_crash(&err));
    }

    #[test]
    fn duplicate_submits_are_rejected_not_logged() {
        let dir = temp_dir("dup");
        let _ = std::fs::remove_dir_all(&dir);
        let (mut durable, _) = DurableService::open(&dir, DurableConfig::default()).unwrap();
        durable.handle(&hello()).unwrap();
        let msgs = submits(2);
        durable.handle(&msgs[0]).unwrap();
        assert!(matches!(
            durable.handle(&msgs[0]),
            Err(LdpError::DuplicateReport { .. })
        ));
        assert_eq!(durable.wal_records(), 1);
        drop(durable);
        let (_, report) = DurableService::open(&dir, DurableConfig::default()).unwrap();
        assert_eq!(report.wal_records, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
