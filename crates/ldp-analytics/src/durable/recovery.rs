//! Crash recovery: checkpoint install + ordered log replay, with the torn
//! tail truncated and every already-checkpointed record deduplicated
//! through the budget ledger.

use super::checkpoint::{Checkpoint, CHECKPOINT_FILE};
use super::wal::{self, WalHeader, WAL_FILE};
use super::{disk_err, DurableConfig};
use crate::service::{ReportService, WireMessage};
use ldp_core::{LdpError, Result};
use std::fs::OpenOptions;
use std::path::Path;

/// What one [`Recovery::replay`] reconstructed, in numbers. The
/// conservation invariant the crash suite gates on is
/// `admitted == checkpointed + wal_replayed`: every admit visible in the
/// recovered service came from exactly one of the two sources.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// A checkpoint file existed and was installed.
    pub had_checkpoint: bool,
    /// A log file existed and was scanned.
    pub had_wal: bool,
    /// Admits restored from the checkpoint.
    pub checkpointed: u64,
    /// Submit records scanned from the log.
    pub wal_records: u64,
    /// Log records applied into the recovered service.
    pub wal_replayed: u64,
    /// Log records skipped because the checkpoint already covered them
    /// (a crash landed between the checkpoint commit and the log
    /// rotation). Skipping goes through [`crate::BudgetLedger::contains`],
    /// not `admit`, so no rejection is counted and recovered snapshots
    /// stay bit-identical to the clean run's.
    pub wal_skipped: u64,
    /// Log records that failed to apply (admitted-only logging makes this
    /// zero in any uncorrupted log; nonzero is an integrity alarm).
    pub wal_rejected: u64,
    /// Torn-tail bytes truncated off the log.
    pub truncated_bytes: u64,
}

impl RecoveryReport {
    /// Total admits the recovered service accounts for; by conservation
    /// this must equal the recovered ledger's own admit total.
    pub fn recovered_admits(&self) -> u64 {
        self.checkpointed + self.wal_replayed
    }
}

/// Reopens a durable directory into a live service.
#[derive(Debug)]
pub struct Recovery;

impl Recovery {
    /// Rebuilds a [`ReportService`] from `dir`'s checkpoint and log.
    ///
    /// Order matters: the checkpoint installs first (it is strictly newer
    /// than the records the rotation it belongs to compacted away), then
    /// the log replays on top, oldest record first. The log's header must
    /// match the checkpoint's binding; records the checkpoint already
    /// covers are skipped without counting. A torn tail is truncated off
    /// the file on disk so subsequent appends resume from the last valid
    /// record.
    ///
    /// Returns the recovered service (unconfigured when neither file has
    /// a session yet), the binding header if one was found, and the
    /// replay accounting.
    ///
    /// # Errors
    /// [`LdpError::WalCorrupt`] for mid-log or checkpoint corruption and
    /// for a log/checkpoint binding mismatch; [`LdpError::InvalidParameter`]
    /// when the on-disk ledger key differs from the configured one; I/O
    /// failures reading or truncating.
    pub fn replay(
        dir: &Path,
        config: &DurableConfig,
    ) -> Result<(ReportService, Option<WalHeader>, RecoveryReport)> {
        let mut report = RecoveryReport::default();
        let checkpoint_path = dir.join(CHECKPOINT_FILE);
        let wal_path = dir.join(WAL_FILE);

        let (mut service, mut header) = if checkpoint_path.exists() {
            let bytes =
                std::fs::read(&checkpoint_path).map_err(|e| disk_err("checkpoint_read", &e))?;
            let checkpoint = Checkpoint::decode(&bytes)?;
            check_key(checkpoint.header.ledger_key, config)?;
            let binding = checkpoint.header.clone();
            let (service, checkpointed) = checkpoint.install(config.service.snapshot_every)?;
            report.had_checkpoint = true;
            report.checkpointed = checkpointed;
            (service, Some(binding))
        } else {
            (ReportService::new(config.service.clone()), None)
        };

        if wal_path.exists() {
            report.had_wal = true;
            let image = std::fs::read(&wal_path).map_err(|e| disk_err("wal_read", &e))?;
            let scan = wal::scan(&image)?;
            report.truncated_bytes = scan.truncated_bytes;
            if let Some(wal_header) = scan.header {
                match &header {
                    Some(binding) if !binding.matches(&wal_header) => {
                        return Err(LdpError::WalCorrupt {
                            offset: 0,
                            message: "log header does not match the checkpoint binding".into(),
                        });
                    }
                    Some(_) => {}
                    None => {
                        check_key(wal_header.ledger_key, config)?;
                        service.handle(&wal_header.hello())?;
                        header = Some(wal_header);
                    }
                }
                for msg in &scan.submits {
                    report.wal_records += 1;
                    let WireMessage::Submit { user, epoch, .. } = msg else {
                        unreachable!("wal::scan yields only submits");
                    };
                    if service.ledger().contains(*user, *epoch) {
                        report.wal_skipped += 1;
                        continue;
                    }
                    match service.handle(msg) {
                        Ok(_) => report.wal_replayed += 1,
                        Err(_) => report.wal_rejected += 1,
                    }
                }
            }
            if scan.truncated_bytes > 0 {
                let file = OpenOptions::new()
                    .write(true)
                    .open(&wal_path)
                    .map_err(|e| disk_err("wal_truncate", &e))?;
                file.set_len(scan.valid_bytes)
                    .map_err(|e| disk_err("wal_truncate", &e))?;
                file.sync_all().map_err(|e| disk_err("wal_truncate", &e))?;
            }
        }
        Ok((service, header, report))
    }
}

fn check_key(on_disk: u64, config: &DurableConfig) -> Result<()> {
    if on_disk != config.service.ledger_key {
        return Err(LdpError::InvalidParameter {
            name: "ledger_key",
            message: format!(
                "durable state was written under ledger key {on_disk:#x}, service configured with {:#x}",
                config.service.ledger_key
            ),
        });
    }
    Ok(())
}
