//! Epoch checkpoints: the full service state — ordinal-keyed aggregator
//! partials, the budget ledger (keyed hashes, never raw ids), and the
//! stream counters — as a sequence of checksummed frames behind one
//! atomic tmp+rename.
//!
//! A checkpoint file can never be torn (the rename is atomic and the
//! [`ldp_core::fsio`] sequence makes it durable), so *any* integrity
//! failure while decoding one is [`LdpError::WalCorrupt`] — there is no
//! torn-tail tolerance here, unlike the log.

use super::wal::{WalHeader, KIND_WAL_HEADER};
use crate::ledger::BudgetLedger;
use crate::service::{ReportService, ServiceConfig};
use ldp_core::frame::{self, FrameRead};
use ldp_core::multidim::wire::{BitReader, BitWriter};
use ldp_core::{LdpError, Result};

/// File name of the checkpoint inside a durable directory.
pub const CHECKPOINT_FILE: &str = "checkpoint.bin";

/// Frame kind of the checkpoint's counters record.
pub const KIND_CHECKPOINT_META: u8 = 11;
/// Frame kind of one epoch's aggregator partial state.
pub const KIND_CHECKPOINT_EPOCH: u8 = 12;
/// Frame kind of the serialized budget ledger (always the final record).
pub const KIND_CHECKPOINT_LEDGER: u8 = 13;

/// One captured service state, ready to encode or install.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// The session binding, identical to the log's header record.
    pub header: WalHeader,
    /// Lifetime frame counter at capture time.
    pub frames: u64,
    /// Lifetime malformed-rejection counter at capture time.
    pub rejected_malformed: u64,
    /// Per-epoch [`crate::session::Aggregator::encode_partials`] bytes,
    /// ascending by epoch.
    pub epochs: Vec<(u64, Vec<u8>)>,
    /// [`BudgetLedger::encode_state`] bytes.
    pub ledger: Vec<u8>,
}

impl Checkpoint {
    /// Captures `service`'s complete durable state under `header`.
    pub fn capture(service: &ReportService, header: &WalHeader) -> Checkpoint {
        let epochs = service
            .epochs()
            .filter_map(|e| service.encode_epoch_partials(e).map(|bytes| (e, bytes)))
            .collect();
        Checkpoint {
            header: header.clone(),
            frames: service.frames(),
            rejected_malformed: service.rejected_malformed(),
            epochs,
            ledger: service.ledger().encode_state(),
        }
    }

    /// Serializes the checkpoint as framed records: header, meta, one
    /// record per epoch, ledger. Every record carries the frame layer's
    /// FNV-1a checksum, which is the file's integrity check.
    ///
    /// # Errors
    /// Only if a record exceeds the frame payload cap, which bounded
    /// epochs rule out.
    pub fn encode(&self) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        frame::write_frame(&mut out, KIND_WAL_HEADER, &self.header.encode())?;
        let mut w = BitWriter::new();
        w.write_bits(self.frames, 64);
        w.write_bits(self.rejected_malformed, 64);
        w.write_bits(self.epochs.len() as u64, 32);
        frame::write_frame(&mut out, KIND_CHECKPOINT_META, &w.finish())?;
        for (epoch, partials) in &self.epochs {
            let mut w = BitWriter::new();
            w.write_bits(*epoch, 64);
            let mut payload = w.finish();
            payload.extend_from_slice(partials);
            frame::write_frame(&mut out, KIND_CHECKPOINT_EPOCH, &payload)?;
        }
        frame::write_frame(&mut out, KIND_CHECKPOINT_LEDGER, &self.ledger)?;
        Ok(out)
    }

    /// Inverse of [`Checkpoint::encode`], rejecting any deviation from the
    /// declared record sequence.
    ///
    /// # Errors
    /// [`LdpError::WalCorrupt`] with the offending record's byte offset on
    /// checksum mismatch, truncation, out-of-order records, or trailing
    /// data.
    pub fn decode(buf: &[u8]) -> Result<Checkpoint> {
        let corrupt = |offset: u64, message: String| LdpError::WalCorrupt { offset, message };
        let mut cursor: &[u8] = buf;
        let mut payload = Vec::new();
        let mut header: Option<WalHeader> = None;
        let mut meta: Option<(u64, u64, usize)> = None;
        let mut epochs: Vec<(u64, Vec<u8>)> = Vec::new();
        let mut ledger: Option<Vec<u8>> = None;
        loop {
            let offset = (buf.len() - cursor.len()) as u64;
            let kind = match frame::read_frame(&mut cursor, &mut payload) {
                Ok(None) => break,
                Ok(Some(FrameRead::Valid { kind })) => kind,
                Ok(Some(FrameRead::Corrupt { declared, computed })) => {
                    return Err(corrupt(
                        offset,
                        format!(
                            "checkpoint record checksum mismatch: declared {declared:#018x}, computed {computed:#018x}"
                        ),
                    ));
                }
                Err(e) => return Err(corrupt(offset, format!("checkpoint unreadable: {e}"))),
            };
            if ledger.is_some() {
                return Err(corrupt(offset, "record after the ledger record".into()));
            }
            match kind {
                KIND_WAL_HEADER if header.is_none() && offset == 0 => {
                    header = Some(WalHeader::decode(&payload).map_err(|e| {
                        corrupt(offset, format!("header record failed to decode: {e}"))
                    })?);
                }
                KIND_CHECKPOINT_META if header.is_some() && meta.is_none() => {
                    let mut r = BitReader::new(&payload);
                    let frames = r
                        .read_bits(64)
                        .map_err(|e| corrupt(offset, format!("meta record truncated: {e}")))?;
                    let rejected = r
                        .read_bits(64)
                        .map_err(|e| corrupt(offset, format!("meta record truncated: {e}")))?;
                    let count = r
                        .read_bits(32)
                        .map_err(|e| corrupt(offset, format!("meta record truncated: {e}")))?;
                    meta = Some((frames, rejected, count as usize));
                }
                KIND_CHECKPOINT_EPOCH if meta.is_some() => {
                    if payload.len() < 8 {
                        return Err(corrupt(offset, "epoch record shorter than its key".into()));
                    }
                    let epoch = u64::from_be_bytes(payload[..8].try_into().expect("checked len"));
                    epochs.push((epoch, payload[8..].to_vec()));
                }
                KIND_CHECKPOINT_LEDGER if meta.is_some() => {
                    ledger = Some(payload.clone());
                }
                _ => {
                    return Err(corrupt(
                        offset,
                        format!("unexpected checkpoint record kind {kind}"),
                    ));
                }
            }
        }
        let header = header.ok_or_else(|| corrupt(0, "missing header record".into()))?;
        let (frames, rejected_malformed, declared_epochs) =
            meta.ok_or_else(|| corrupt(0, "missing meta record".into()))?;
        let ledger = ledger.ok_or_else(|| corrupt(0, "missing ledger record".into()))?;
        if epochs.len() != declared_epochs {
            return Err(corrupt(
                0,
                format!(
                    "meta declared {declared_epochs} epoch records, found {}",
                    epochs.len()
                ),
            ));
        }
        Ok(Checkpoint {
            header,
            frames,
            rejected_malformed,
            epochs,
            ledger,
        })
    }

    /// Rebuilds a [`ReportService`] from this checkpoint: re-issue the
    /// header's `Hello`, restore the counters, each epoch's partials, and
    /// the ledger. Returns the service plus the number of admits the
    /// checkpoint covers (the `checkpointed` term of the conservation
    /// invariant `admitted == wal_replayed + checkpointed`).
    ///
    /// # Errors
    /// Schema validation or state-codec failures.
    pub fn install(self, snapshot_every: Option<u64>) -> Result<(ReportService, u64)> {
        let config = ServiceConfig {
            ledger_key: self.header.ledger_key,
            snapshot_every,
        };
        let mut service = ReportService::new(config);
        service.handle(&self.header.hello())?;
        service.restore_counters(self.frames, self.rejected_malformed);
        for (epoch, bytes) in &self.epochs {
            service.restore_epoch_partials(*epoch, bytes)?;
        }
        service.restore_ledger(BudgetLedger::decode_state(&self.ledger)?)?;
        let ledger = service.ledger();
        let checkpointed = ledger.epochs().map(|e| ledger.admitted(e)).sum();
        Ok((service, checkpointed))
    }
}
