//! The write-ahead log: a binding header record followed by one framed
//! record per admitted `Submit`.
//!
//! Every record is an [`ldp_core::frame`] frame, so the log inherits the
//! wire format's length/checksum discipline. A `Submit` record's payload is
//! **byte-identical** to the payload the message travelled the wire as —
//! replay is `WireMessage::decode` + `ReportService::handle`, the exact
//! production path, with nothing re-derived.

use super::{disk_err, note, CrashPoint, CrashSchedule, FsyncPolicy};
use crate::pipeline::Protocol;
use crate::service::{WireMessage, KIND_HELLO, KIND_SUBMIT};
use ldp_core::frame::{self, FrameRead};
use ldp_core::multidim::AttrSpec;
use ldp_core::{Epsilon, LdpError, Result};
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

/// File name of the log inside a durable directory.
pub const WAL_FILE: &str = "wal.log";

/// Frame kind of the one header record opening every log (and every
/// checkpoint). Log kinds live above the client (1–4) and server (5–8)
/// wire kinds so a stray wire frame can never masquerade as a log record.
pub const KIND_WAL_HEADER: u8 = 9;
/// Frame kind of an admitted-submit record.
pub const KIND_WAL_SUBMIT: u8 = 10;

/// The binding header: everything a recovered process needs to rebuild the
/// session *and* everything that must match before replaying a record is
/// safe — protocol, ε, schema, base epoch, the ledger's hashing key, and
/// the run seed. A log written under different parameters fails the
/// binding check instead of silently corrupting estimates.
#[derive(Debug, Clone)]
pub struct WalHeader {
    /// Aggregation protocol the session runs.
    pub protocol: Protocol,
    /// Per-user privacy budget.
    pub epsilon: Epsilon,
    /// Attribute schema.
    pub specs: Vec<AttrSpec>,
    /// The session's base epoch.
    pub base_epoch: u64,
    /// Key under which the budget ledger hashes user ids; a checkpoint's
    /// hashes are meaningless to a service keyed differently.
    pub ledger_key: u64,
    /// The collection run's seed, binding the log to one deterministic run.
    pub run_seed: u64,
}

impl WalHeader {
    /// The `Hello` that re-establishes this header's session on recovery.
    pub fn hello(&self) -> WireMessage {
        WireMessage::Hello {
            protocol: self.protocol,
            epsilon: self.epsilon,
            specs: self.specs.clone(),
            epoch: self.base_epoch,
        }
    }

    /// Record payload: the canonical `Hello` payload followed by a 16-byte
    /// trailer of ledger key and run seed (big-endian).
    pub fn encode(&self) -> Vec<u8> {
        let mut payload = self.hello().payload();
        payload.extend_from_slice(&self.ledger_key.to_be_bytes());
        payload.extend_from_slice(&self.run_seed.to_be_bytes());
        payload
    }

    /// Inverse of [`WalHeader::encode`].
    ///
    /// # Errors
    /// [`LdpError::MalformedFrame`] when the payload is shorter than its
    /// trailer or the `Hello` prefix fails its exact-length codec.
    pub fn decode(payload: &[u8]) -> Result<WalHeader> {
        if payload.len() < 16 {
            return Err(LdpError::MalformedFrame {
                message: "wal header record shorter than its key/seed trailer".into(),
            });
        }
        let (hello, trailer) = payload.split_at(payload.len() - 16);
        let WireMessage::Hello {
            protocol,
            epsilon,
            specs,
            epoch,
        } = WireMessage::decode(KIND_HELLO, hello)?
        else {
            return Err(LdpError::MalformedFrame {
                message: "wal header prefix did not decode as a hello".into(),
            });
        };
        let ledger_key = u64::from_be_bytes(trailer[..8].try_into().expect("split_at 16"));
        let run_seed = u64::from_be_bytes(trailer[8..].try_into().expect("split_at 16"));
        Ok(WalHeader {
            protocol,
            epsilon,
            specs,
            base_epoch: epoch,
            ledger_key,
            run_seed,
        })
    }

    /// Bit-exact equality (ε compared via `to_bits`, mirroring the
    /// service's idempotent-hello check).
    pub fn matches(&self, other: &WalHeader) -> bool {
        self.protocol == other.protocol
            && self.epsilon.value().to_bits() == other.epsilon.value().to_bits()
            && self.specs == other.specs
            && self.base_epoch == other.base_epoch
            && self.ledger_key == other.ledger_key
            && self.run_seed == other.run_seed
    }
}

/// A fresh log image: the header record and nothing else (what rotation
/// swaps into place once a checkpoint has made the old records redundant).
pub(crate) fn header_only_log(header: &WalHeader) -> Result<Vec<u8>> {
    frame::frame_to_vec(KIND_WAL_HEADER, &header.encode())
}

/// Appender over an open log file.
///
/// The durability contract: [`WalWriter::create`] returns only after the
/// header record is on stable storage, and [`WalWriter::append`] returns
/// only after the record is as durable as the configured [`FsyncPolicy`]
/// promises — `EveryRecord` means the ack that follows is backed by disk,
/// `EveryN`/`OnFlush` trade that window for throughput (group commit).
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    policy: FsyncPolicy,
    /// Records appended since the last fsync reached disk.
    unsynced: u64,
    records: u64,
}

impl WalWriter {
    /// Creates a fresh log at `path` holding only the header record,
    /// durably: the file *and its directory entry* are fsynced before any
    /// ack can reference the log.
    ///
    /// # Errors
    /// I/O failures creating, writing, or syncing the file.
    pub fn create(path: &Path, header: &WalHeader, policy: FsyncPolicy) -> Result<WalWriter> {
        let mut file = OpenOptions::new()
            .create(true)
            .truncate(true)
            .write(true)
            .open(path)
            .map_err(|e| disk_err("wal_create", &e))?;
        let image = header_only_log(header)?;
        file.write_all(&image)
            .map_err(|e| disk_err("wal_create", &e))?;
        file.sync_all().map_err(|e| disk_err("wal_create", &e))?;
        ldp_core::fsio::sync_parent_dir(path).map_err(|e| disk_err("wal_create", &e))?;
        Ok(WalWriter {
            file,
            policy,
            unsynced: 0,
            records: 0,
        })
    }

    /// Reopens an existing (recovered and tail-truncated) log for
    /// appending.
    ///
    /// # Errors
    /// I/O failures opening the file.
    pub fn open_end(path: &Path, policy: FsyncPolicy) -> Result<WalWriter> {
        let file = OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| disk_err("wal_open", &e))?;
        Ok(WalWriter {
            file,
            policy,
            unsynced: 0,
            records: 0,
        })
    }

    /// Submit records appended through this writer (recovered records are
    /// not counted — they belong to a previous incarnation).
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Appends one admitted `Submit` as a [`KIND_WAL_SUBMIT`] frame whose
    /// payload is byte-identical to the wire message, then syncs per the
    /// policy. The crash schedule is consulted after the append and after
    /// any fsync, exactly where a real kill could land.
    ///
    /// # Errors
    /// I/O failures, or the injected crash when the schedule trips.
    pub fn append(&mut self, msg: &WireMessage, crash: &mut Option<CrashSchedule>) -> Result<()> {
        debug_assert_eq!(msg.kind(), KIND_SUBMIT, "only submits are logged");
        let record = frame::frame_to_vec(KIND_WAL_SUBMIT, &msg.payload())?;
        self.file
            .write_all(&record)
            .map_err(|e| disk_err("wal_append", &e))?;
        self.records += 1;
        self.unsynced += 1;
        note(crash, CrashPoint::AfterAppend)?;
        let due = match self.policy {
            FsyncPolicy::EveryRecord => true,
            FsyncPolicy::EveryN(n) => self.unsynced >= n.max(1),
            FsyncPolicy::OnFlush => false,
        };
        if due {
            self.sync(crash)?;
        }
        Ok(())
    }

    /// Forces every appended record onto stable storage (the `OnFlush`
    /// policy's durability boundary; a no-op when nothing is pending).
    ///
    /// # Errors
    /// I/O failures, or the injected crash when the schedule trips.
    pub fn sync(&mut self, crash: &mut Option<CrashSchedule>) -> Result<()> {
        if self.unsynced > 0 {
            self.file
                .sync_data()
                .map_err(|e| disk_err("wal_fsync", &e))?;
            self.unsynced = 0;
            note(crash, CrashPoint::AfterFsync)?;
        }
        Ok(())
    }
}

/// Everything one pass over a log file yields.
#[derive(Debug)]
pub struct WalScan {
    /// The binding header, absent only when the file is empty (a crash
    /// between log creation and the header write).
    pub header: Option<WalHeader>,
    /// The admitted submits, in append order.
    pub submits: Vec<WireMessage>,
    /// Bytes up to and including the last intact record; recovery
    /// truncates the file here.
    pub valid_bytes: u64,
    /// Torn-tail bytes past `valid_bytes` that will be dropped.
    pub truncated_bytes: u64,
}

/// Scans a complete log image, separating a torn tail (the expected
/// signature of a crash mid-append: a truncated final frame, or a
/// checksum-corrupt record that runs exactly to end-of-file) from mid-log
/// corruption (intact durable records *after* the damage — impossible to
/// produce with a single crash).
///
/// # Errors
/// [`LdpError::WalCorrupt`] with the byte offset of the first corrupt
/// record when durable records follow it, when a checksum-valid record
/// fails to decode, or when a record kind is out of place.
pub fn scan(buf: &[u8]) -> Result<WalScan> {
    let mut cursor: &[u8] = buf;
    let mut payload = Vec::new();
    let mut header: Option<WalHeader> = None;
    let mut submits = Vec::new();
    let mut valid_bytes = 0u64;
    // A checksum-corrupt record is only `WalCorrupt` once we know durable
    // bytes follow it; until then it is a candidate torn tail.
    let mut pending_corrupt: Option<(u64, String)> = None;
    loop {
        let offset = (buf.len() - cursor.len()) as u64;
        let read = match frame::read_frame(&mut cursor, &mut payload) {
            Ok(read) => read,
            // A frame cut off by end-of-file (or an unreadable length
            // field) is the torn tail itself: stop, truncate here.
            Err(LdpError::MalformedFrame { .. }) => break,
            Err(e) => return Err(e),
        };
        let kind = match read {
            None => break, // clean EOF
            Some(FrameRead::Corrupt { declared, computed }) => {
                if let Some((off, message)) = pending_corrupt.take() {
                    return Err(LdpError::WalCorrupt {
                        offset: off,
                        message,
                    });
                }
                pending_corrupt = Some((
                    offset,
                    format!(
                        "record checksum mismatch: declared {declared:#018x}, computed {computed:#018x}"
                    ),
                ));
                continue;
            }
            Some(FrameRead::Valid { kind }) => kind,
        };
        if let Some((off, message)) = pending_corrupt.take() {
            return Err(LdpError::WalCorrupt {
                offset: off,
                message,
            });
        }
        match (kind, header.is_some()) {
            (KIND_WAL_HEADER, false) if offset == 0 => {
                header = Some(
                    WalHeader::decode(&payload).map_err(|e| LdpError::WalCorrupt {
                        offset,
                        message: format!("header record failed to decode: {e}"),
                    })?,
                );
            }
            (KIND_WAL_SUBMIT, true) => {
                let msg = WireMessage::decode(KIND_SUBMIT, &payload).map_err(|e| {
                    LdpError::WalCorrupt {
                        offset,
                        message: format!("submit record failed to decode: {e}"),
                    }
                })?;
                submits.push(msg);
            }
            _ => {
                return Err(LdpError::WalCorrupt {
                    offset,
                    message: format!("unexpected record kind {kind}"),
                });
            }
        }
        valid_bytes = (buf.len() - cursor.len()) as u64;
    }
    Ok(WalScan {
        header,
        submits,
        valid_bytes,
        truncated_bytes: buf.len() as u64 - valid_bytes,
    })
}
