//! Aggregator-side frequency estimation for categorical attributes.
//!
//! Every [`FrequencyOracle`] exposes a debiased per-report `support`; the
//! estimator is `scale/n · Σ support` where `scale = 1` for dense protocols
//! and `d/k` for Algorithm 4 (§IV-C: only a `k/d` fraction of users report
//! any given attribute, and the scaling restores unbiasedness).

use ldp_core::{CategoricalReport, FrequencyOracle, LdpError, Result};

/// Streaming accumulator for the value frequencies of one categorical
/// attribute.
#[derive(Debug, Clone)]
pub struct FrequencyAccumulator {
    supports: Vec<f64>,
    /// Number of reports absorbed (users who actually reported this
    /// attribute).
    reports: usize,
    /// Total population `n` the estimate divides by (≥ `reports` under
    /// attribute sampling). Set by [`FrequencyAccumulator::set_population`];
    /// defaults to the report count.
    population: Option<usize>,
    scale: f64,
}

impl FrequencyAccumulator {
    /// An empty accumulator for a `k`-value attribute with the given
    /// protocol scale (`1.0` dense, `d/k` for Algorithm 4).
    pub fn new(k: u32, scale: f64) -> Self {
        FrequencyAccumulator {
            supports: vec![0.0; k as usize],
            reports: 0,
            population: None,
            scale,
        }
    }

    /// Domain size.
    pub fn k(&self) -> u32 {
        self.supports.len() as u32
    }

    /// Number of absorbed reports.
    pub fn reports(&self) -> usize {
        self.reports
    }

    /// Absorbs one report through its oracle's debiasing.
    pub fn add(&mut self, oracle: &dyn FrequencyOracle, report: &CategoricalReport) {
        debug_assert_eq!(oracle.k(), self.k(), "oracle/accumulator domain mismatch");
        for v in 0..self.k() {
            self.supports[v as usize] += oracle.support(report, v);
        }
        self.reports += 1;
    }

    /// Declares the total population `n` (including users who sampled other
    /// attributes and therefore sent nothing for this one).
    pub fn set_population(&mut self, n: usize) {
        self.population = Some(n);
    }

    /// Merges another accumulator (for sharded aggregation). Populations are
    /// not merged — call [`FrequencyAccumulator::set_population`] on the
    /// result.
    ///
    /// # Errors
    /// [`LdpError::DimensionMismatch`] on differing domain sizes.
    pub fn merge(&mut self, other: &FrequencyAccumulator) -> Result<()> {
        if other.supports.len() != self.supports.len() {
            return Err(LdpError::DimensionMismatch {
                expected: self.supports.len(),
                actual: other.supports.len(),
            });
        }
        for (s, o) in self.supports.iter_mut().zip(&other.supports) {
            *s += o;
        }
        self.reports += other.reports;
        Ok(())
    }

    /// The unbiased frequency estimates `scale/n · Σ support`.
    ///
    /// # Errors
    /// [`LdpError::EmptyInput`] if no reports arrived and no population was
    /// declared.
    pub fn estimate(&self) -> Result<Vec<f64>> {
        let n = self.population.unwrap_or(self.reports);
        if n == 0 {
            return Err(LdpError::EmptyInput("reports"));
        }
        Ok(self
            .supports
            .iter()
            .map(|s| self.scale * s / n as f64)
            .collect())
    }

    /// Post-processed estimates: clamped to `[0, 1]` and renormalized to sum
    /// to one (post-processing preserves LDP and reduces error when the raw
    /// estimates stray outside the simplex).
    ///
    /// # Errors
    /// As [`FrequencyAccumulator::estimate`].
    pub fn estimate_normalized(&self) -> Result<Vec<f64>> {
        let mut est: Vec<f64> = self
            .estimate()?
            .into_iter()
            .map(|f| f.clamp(0.0, 1.0))
            .collect();
        let total: f64 = est.iter().sum();
        if total > 0.0 {
            for f in &mut est {
                *f /= total;
            }
        } else {
            // Degenerate all-clamped-to-zero case: fall back to uniform.
            let k = est.len() as f64;
            est.iter_mut().for_each(|f| *f = 1.0 / k);
        }
        Ok(est)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_core::assert_within_ci;
    use ldp_core::categorical::{Grr, Oue};
    use ldp_core::rng::seeded_rng;
    use ldp_core::testutil::fixture_rng;
    use ldp_core::Epsilon;
    use rand::Rng;

    fn sample_value(rng: &mut impl Rng, freqs: &[f64]) -> u32 {
        let mut u: f64 = rng.random();
        for (v, f) in freqs.iter().enumerate() {
            u -= f;
            if u <= 0.0 {
                return v as u32;
            }
        }
        freqs.len() as u32 - 1
    }

    #[test]
    fn oue_frequencies_converge() {
        let eps = Epsilon::new(1.0).unwrap();
        let oracle = Oue::new(eps, 4).unwrap();
        let truth = [0.55, 0.25, 0.15, 0.05];
        let mut rng = fixture_rng("frequency::oue_frequencies_converge");
        let mut acc = FrequencyAccumulator::new(4, 1.0);
        let n = 150_000;
        for _ in 0..n {
            let v = sample_value(&mut rng, &truth);
            let rep = oracle.perturb(v, &mut rng).unwrap();
            acc.add(&oracle, &rep);
        }
        let est = acc.estimate().unwrap();
        for (v, (&e, &t)) in est.iter().zip(&truth).enumerate() {
            // Values are drawn from `truth`, so the per-report variance is
            // exactly `support_variance(t)` (data + response randomness).
            assert_within_ci!(e, t, oracle.support_variance(t), n, "v={v}");
        }
    }

    #[test]
    fn grr_frequencies_converge() {
        let eps = Epsilon::new(2.0).unwrap();
        let oracle = Grr::new(eps, 3).unwrap();
        let truth = [0.7, 0.2, 0.1];
        let mut rng = fixture_rng("frequency::grr_frequencies_converge");
        let mut acc = FrequencyAccumulator::new(3, 1.0);
        let n = 150_000;
        for _ in 0..n {
            let v = sample_value(&mut rng, &truth);
            acc.add(&oracle, &oracle.perturb(v, &mut rng).unwrap());
        }
        let est = acc.estimate().unwrap();
        for (v, (&e, &t)) in est.iter().zip(&truth).enumerate() {
            assert_within_ci!(e, t, oracle.support_variance(t), n, "v={v}");
        }
    }

    #[test]
    fn sampling_scale_restores_unbiasedness() {
        // Simulate Algorithm 4 with d = 3, k = 1: each user reports this
        // attribute with probability 1/3; the d/k = 3 scaling must undo that.
        let eps = Epsilon::new(1.0).unwrap();
        let oracle = Oue::new(eps, 3).unwrap();
        let truth = [0.5, 0.3, 0.2];
        let mut rng = fixture_rng("frequency::sampling_scale_restores_unbiasedness");
        let n = 240_000;
        let mut acc = FrequencyAccumulator::new(3, 3.0);
        for _ in 0..n {
            if rng.random::<f64>() < 1.0 / 3.0 {
                let v = sample_value(&mut rng, &truth);
                acc.add(&oracle, &oracle.perturb(v, &mut rng).unwrap());
            }
        }
        acc.set_population(n);
        let est = acc.estimate().unwrap();
        for (v, (&e, &t)) in est.iter().zip(&truth).enumerate() {
            // Per-user contribution is `(d/k)·B·s` with `B ~ Bernoulli(k/d)`
            // and `d/k = 3`, so `Var = 3·E[s²] − t² = 3·support_variance(t)
            // + 2t²` — the sampling step triples the response variance and
            // adds a `2t²` thinning term.
            let var = 3.0 * oracle.support_variance(t) + 2.0 * t * t;
            assert_within_ci!(e, t, var, n, "v={v}");
        }
    }

    #[test]
    fn normalized_estimates_form_distribution() {
        let eps = Epsilon::new(0.5).unwrap();
        let oracle = Oue::new(eps, 5).unwrap();
        let mut rng = seeded_rng(313);
        let mut acc = FrequencyAccumulator::new(5, 1.0);
        for _ in 0..500 {
            acc.add(&oracle, &oracle.perturb(0, &mut rng).unwrap());
        }
        let est = acc.estimate_normalized().unwrap();
        assert!((est.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(est.iter().all(|&f| (0.0..=1.0).contains(&f)));
    }

    #[test]
    fn empty_and_merge_behaviour() {
        let acc = FrequencyAccumulator::new(3, 1.0);
        assert!(acc.estimate().is_err());

        let eps = Epsilon::new(1.0).unwrap();
        let oracle = Oue::new(eps, 3).unwrap();
        let mut rng = seeded_rng(314);
        let mut a = FrequencyAccumulator::new(3, 1.0);
        let mut b = FrequencyAccumulator::new(3, 1.0);
        let mut whole = FrequencyAccumulator::new(3, 1.0);
        for i in 0..50 {
            let rep = oracle.perturb(i % 3, &mut rng).unwrap();
            whole.add(&oracle, &rep);
            if i % 2 == 0 { &mut a } else { &mut b }.add(&oracle, &rep);
        }
        a.merge(&b).unwrap();
        assert_eq!(a.reports(), whole.reports());
        // Merged and sequential sums differ only in addition order.
        for (x, y) in a.estimate().unwrap().iter().zip(whole.estimate().unwrap()) {
            assert!((x - y).abs() < 1e-12, "{x} vs {y}");
        }
        let bad = FrequencyAccumulator::new(4, 1.0);
        assert!(a.merge(&bad).is_err());
    }
}
