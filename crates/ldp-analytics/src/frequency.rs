//! Aggregator-side frequency estimation for categorical attributes.
//!
//! Every [`FrequencyOracle`] exposes a debiased per-report `support`, but
//! that support is *affine* in the report's raw hit bit (see
//! [`ldp_core::DebiasParams`]), so the accumulator never evaluates it per
//! report: it counts raw hits per category and debiases once at estimation
//! time with `(c − n·q)/(p − q)`. Unary reports are absorbed *by backing
//! word* into a bit-sliced [`WordHistogram`] plane — O(words) carry-save
//! adds per report, not O(popcount) scattered increments — with the
//! per-category scatter deferred to (amortized-free) plane flushes; direct
//! reports are a single increment. The estimator is `scale/n · Σ support`
//! where `scale = 1` for dense protocols and `d/k` for Algorithm 4 (§IV-C:
//! only a `k/d` fraction of users report any given attribute, and the
//! scaling restores unbiasedness).

use crate::wordhist::WordHistogram;
use ldp_core::multidim::wire::{BitReader, BitWriter};
use ldp_core::{CategoricalReport, DebiasParams, FrequencyOracle, LdpError, Result};

/// Streaming accumulator for the value frequencies of one categorical
/// attribute.
///
/// Internally count-based: direct hits are single integer increments, and
/// unary reports land whole-word in a [`WordHistogram`] plane, so absorbing
/// a report costs O(words) word operations instead of the O(k)
/// virtual-dispatch support loop a naive aggregator pays — which is what
/// makes large-domain OUE aggregation cheap. All counts are exact `u64`s,
/// so the engine swap never moves an estimate by a bit.
#[derive(Debug, Clone)]
pub struct FrequencyAccumulator {
    /// Raw direct hit counts per category (indicator hits of direct
    /// reports, plus anything streamed through
    /// [`FrequencyAccumulator::note_hit`]). Unary counts live in `hist`;
    /// [`FrequencyAccumulator::counts`] sums the two.
    counts: Vec<u64>,
    /// Word-level plane for unary reports, created on first use.
    hist: Option<WordHistogram>,
    /// Number of reports absorbed (users who actually reported this
    /// attribute).
    reports: usize,
    /// Total population `n` the estimate divides by (≥ `reports` under
    /// attribute sampling). Set by [`FrequencyAccumulator::set_population`];
    /// defaults to the report count.
    population: Option<usize>,
    scale: f64,
    /// The `(p, q)` debiasing pair of the oracle that produced the absorbed
    /// reports; recorded on first [`FrequencyAccumulator::add`].
    debias: Option<DebiasParams>,
}

impl FrequencyAccumulator {
    /// An empty accumulator for a `k`-value attribute with the given
    /// protocol scale (`1.0` dense, `d/k` for Algorithm 4).
    pub fn new(k: u32, scale: f64) -> Self {
        FrequencyAccumulator {
            counts: vec![0; k as usize],
            hist: None,
            reports: 0,
            population: None,
            scale,
            debias: None,
        }
    }

    /// An empty accumulator with the oracle's debiasing parameters declared
    /// up front — the constructor for the fused perturb-and-count engine,
    /// whose per-hit path ([`FrequencyAccumulator::note_report`] /
    /// [`FrequencyAccumulator::note_hit`]) carries no oracle to read them
    /// from. Declaring them here preserves the mixed-parameter safety check:
    /// [`FrequencyAccumulator::add`] and
    /// [`FrequencyAccumulator::merge`] still reject any other `(p, q)`.
    pub fn with_debias(k: u32, scale: f64, debias: DebiasParams) -> Self {
        FrequencyAccumulator {
            counts: vec![0; k as usize],
            hist: None,
            reports: 0,
            population: None,
            scale,
            debias: Some(debias),
        }
    }

    /// Fused-engine path: records that one report arrived for this
    /// attribute. The report's raw hits follow through
    /// [`FrequencyAccumulator::note_hit`]; together the pair is exactly
    /// [`FrequencyAccumulator::add`] minus the second walk over the bit
    /// vector (the perturber streams each hit as it places it).
    ///
    /// The accumulator must have been built with
    /// [`FrequencyAccumulator::with_debias`] (debug-asserted): estimation
    /// needs the `(p, q)` the reports were produced with.
    #[inline]
    pub fn note_report(&mut self) {
        debug_assert!(
            self.debias.is_some(),
            "fused counting needs with_debias(); the (p, q) pair cannot be recovered later"
        );
        self.reports += 1;
    }

    /// Fused-engine path: records one raw hit for category `v` of the
    /// current report. See [`FrequencyAccumulator::note_report`].
    ///
    /// # Panics
    /// Panics if `v` is outside the accumulator's domain.
    #[inline]
    pub fn note_hit(&mut self, v: u32) {
        self.counts[v as usize] += 1;
    }

    /// Word-level fused-engine path: records one whole unary report by its
    /// backing 64-bit words (exactly [`ldp_core::BitVec::words`] of a
    /// well-formed report of this domain size). The hits are absorbed as a carry-save
    /// column add into the [`WordHistogram`] plane — O(words) word
    /// operations, no per-category scatter — and count exactly like one
    /// [`FrequencyAccumulator::note_hit`] per set bit. Pair with
    /// [`FrequencyAccumulator::note_report`], as with `note_hit`.
    ///
    /// # Panics
    /// Panics (debug builds) on a word count not matching the domain.
    #[inline]
    pub fn note_words(&mut self, words: &[u64]) {
        debug_assert!(
            self.debias.is_some(),
            "fused counting needs with_debias(); the (p, q) pair cannot be recovered later"
        );
        self.hist_mut().add_words(words);
    }

    /// The lazily-created word plane (most accumulators only ever see
    /// direct reports and never pay for one).
    #[inline]
    fn hist_mut(&mut self) -> &mut WordHistogram {
        let k = self.counts.len() as u32;
        self.hist.get_or_insert_with(|| WordHistogram::new(k))
    }

    /// Absorbs one already-materialized report using the debias parameters
    /// declared at construction ([`FrequencyAccumulator::with_debias`]) —
    /// the aggregator-side path of the session API, where no oracle object
    /// travels with the wire report. Counts exactly like
    /// [`FrequencyAccumulator::note_report`] plus one
    /// [`FrequencyAccumulator::note_hit`] per set bit (unary) or reported
    /// value (direct) — but unary reports are absorbed whole-word through
    /// the [`WordHistogram`] plane ([`FrequencyAccumulator::note_words`])
    /// rather than bit by bit, leaving identical counts either way.
    ///
    /// # Panics
    /// Panics if a unary report's length differs from the domain or a
    /// direct report's value is out of domain (callers holding untrusted
    /// reports should validate first), and debug-asserts that debias
    /// parameters were declared.
    pub fn count_report(&mut self, report: &CategoricalReport) {
        debug_assert!(
            self.debias.is_some(),
            "count_report needs with_debias(); the (p, q) pair cannot be recovered later"
        );
        match report {
            CategoricalReport::Bits(bits) => {
                assert_eq!(bits.len(), self.k(), "report/accumulator domain mismatch");
                self.hist_mut().add_words(bits.words());
            }
            CategoricalReport::Value(x) => {
                self.counts[*x as usize] += 1;
            }
        }
        self.reports += 1;
    }

    /// Domain size.
    pub fn k(&self) -> u32 {
        self.counts.len() as u32
    }

    /// Number of absorbed reports.
    pub fn reports(&self) -> usize {
        self.reports
    }

    /// Raw per-category hit counts absorbed so far: direct hits plus the
    /// word plane's flushed and pending unary counts. Exact integers —
    /// identical to what a per-set-bit walk would have counted.
    pub fn counts(&self) -> Vec<u64> {
        let mut out = self.counts.clone();
        if let Some(hist) = &self.hist {
            hist.add_to(&mut out);
        }
        out
    }

    /// The `(p, q)` debias pair the absorbed reports were perturbed with, or
    /// `None` while the accumulator is empty. Read-only: downstream
    /// post-processors (e.g. the `ldp-query` grid repair) need the oracle's
    /// parameters without re-deriving them from `(ε, k)`.
    pub fn debias_params(&self) -> Option<DebiasParams> {
        self.debias
    }

    /// The protocol scale (`d/k` under attribute sampling, 1 otherwise)
    /// applied at estimation time.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The declared population, if [`FrequencyAccumulator::set_population`]
    /// was called.
    pub fn population(&self) -> Option<usize> {
        self.population
    }

    /// Debiased per-category *support counts* — the estimate numerators
    /// `scale · (c_v − reports·q) / (p − q)` before division by the
    /// population. `None` while no reports have been absorbed (the debias
    /// pair is unknown). Unlike [`FrequencyAccumulator::estimate`] this never
    /// fails on an undeclared population, which is what count-space
    /// consumers (grid repair, sharded consistency checks) want.
    pub fn debiased_counts(&self) -> Option<Vec<f64>> {
        let debias = self.debias?;
        Some(
            self.counts()
                .into_iter()
                .map(|c| self.scale * debias.debias_count(c, self.reports))
                .collect(),
        )
    }

    /// Exact serialized size of [`FrequencyAccumulator::encode_state`] in
    /// bits: the report count plus one exact 64-bit hit count per category.
    /// `k`, `scale` and the debias pair are *not* on the wire — both sides
    /// derive them from the shared session schema — so a checkpoint can
    /// never smuggle in mismatched debias parameters.
    pub fn state_bits(k: u32) -> usize {
        64 + 64 * k as usize
    }

    /// Appends the accumulator's count state — `reports`, then each
    /// category's folded hit count (direct hits plus the word plane, the
    /// same exact integers [`FrequencyAccumulator::counts`] returns) — to
    /// `w`. All counts are exact `u64`s, so a decode on a same-schema
    /// accumulator reproduces every future estimate bit for bit.
    pub fn encode_state(&self, w: &mut BitWriter) {
        w.write_bits(self.reports as u64, 64);
        for c in self.counts() {
            w.write_bits(c, 64);
        }
    }

    /// Overwrites this accumulator's count state with state read from `r`
    /// (inverse of [`FrequencyAccumulator::encode_state`]). The folded
    /// counts land in the direct-count lane and the word plane resets —
    /// exactly the count-preserving fold [`FrequencyAccumulator::merge`]
    /// performs — while `k`, `scale` and the debias pair stay the ones this
    /// accumulator was constructed with.
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] on a truncated buffer.
    pub fn decode_state(&mut self, r: &mut BitReader<'_>) -> Result<()> {
        self.reports = r.read_bits(64)? as usize;
        self.hist = None;
        for c in &mut self.counts {
            *c = r.read_bits(64)?;
        }
        Ok(())
    }

    /// Absorbs one report. The oracle only contributes its
    /// [`DebiasParams`] — all reports in one accumulator must come from
    /// oracles with the same `(p, q)`, since the debias is applied once at
    /// estimation time (mixing parameters would silently bias every
    /// estimate, so it is rejected here just as [`FrequencyAccumulator::merge`]
    /// rejects it).
    ///
    /// # Panics
    /// Panics if the oracle's debias parameters differ from those of the
    /// reports already absorbed.
    pub fn add(&mut self, oracle: &dyn FrequencyOracle, report: &CategoricalReport) {
        debug_assert_eq!(oracle.k(), self.k(), "oracle/accumulator domain mismatch");
        let params = oracle.debias_params();
        match self.debias {
            None => self.debias = Some(params),
            Some(prev) => assert_eq!(
                prev, params,
                "accumulator fed by oracles with different debias parameters"
            ),
        }
        match report {
            CategoricalReport::Bits(bits) => {
                debug_assert_eq!(bits.len(), self.k(), "report/accumulator domain mismatch");
                // Whole-word carry-save add into the bit-sliced plane:
                // O(words) per report, scatter deferred to plane flushes.
                self.hist_mut().add_words(bits.words());
            }
            CategoricalReport::Value(x) => {
                self.counts[*x as usize] += 1;
            }
        }
        self.reports += 1;
    }

    /// Declares the total population `n` (including users who sampled other
    /// attributes and therefore sent nothing for this one).
    pub fn set_population(&mut self, n: usize) {
        self.population = Some(n);
    }

    /// Merges another accumulator (for sharded aggregation). Populations are
    /// not merged — call [`FrequencyAccumulator::set_population`] on the
    /// result.
    ///
    /// # Errors
    /// [`LdpError::DimensionMismatch`] on differing domain sizes,
    /// [`LdpError::DebiasMismatch`] when the two sides absorbed reports
    /// from oracles with different debiasing parameters, and
    /// [`LdpError::InvalidParameter`] when they disagree on the protocol
    /// scale — either mixture would silently bias the merged estimates.
    pub fn merge(&mut self, other: &FrequencyAccumulator) -> Result<()> {
        if other.counts.len() != self.counts.len() {
            return Err(LdpError::DimensionMismatch {
                expected: self.counts.len(),
                actual: other.counts.len(),
            });
        }
        if other.scale != self.scale {
            return Err(LdpError::InvalidParameter {
                name: "scale",
                message: format!(
                    "cannot merge accumulators with scales {} and {}",
                    self.scale, other.scale
                ),
            });
        }
        match (self.debias, other.debias) {
            (Some(a), Some(b)) if a != b => {
                return Err(LdpError::DebiasMismatch {
                    expected: a,
                    actual: b,
                });
            }
            (None, Some(b)) => self.debias = Some(b),
            _ => {}
        }
        // Exact integer folds, so merge order can never move an estimate:
        // the other side's direct counts and word plane (flushed + pending)
        // land in this side's direct counts.
        for (s, o) in self.counts.iter_mut().zip(&other.counts) {
            *s += o;
        }
        if let Some(hist) = &other.hist {
            hist.add_to(&mut self.counts);
        }
        self.reports += other.reports;
        Ok(())
    }

    /// The unbiased frequency estimates `scale/n · Σ support`, computed from
    /// the raw counts via the one-shot debias `(c − reports·q)/(p − q)`.
    ///
    /// # Errors
    /// [`LdpError::EmptyInput`] if no reports arrived and no population was
    /// declared.
    pub fn estimate(&self) -> Result<Vec<f64>> {
        let n = self.population.unwrap_or(self.reports);
        if n == 0 {
            return Err(LdpError::EmptyInput("reports"));
        }
        let Some(debias) = self.debias else {
            // Population declared but no reports absorbed: every support sum
            // is zero regardless of the (unknown) debias parameters.
            return Ok(vec![0.0; self.counts.len()]);
        };
        Ok(self
            .counts()
            .into_iter()
            .map(|c| self.scale * debias.debias_count(c, self.reports) / n as f64)
            .collect())
    }

    /// Post-processed estimates: clamped to `[0, 1]` and renormalized to sum
    /// to one (post-processing preserves LDP and reduces error when the raw
    /// estimates stray outside the simplex).
    ///
    /// # Errors
    /// As [`FrequencyAccumulator::estimate`].
    pub fn estimate_normalized(&self) -> Result<Vec<f64>> {
        let mut est: Vec<f64> = self
            .estimate()?
            .into_iter()
            .map(|f| f.clamp(0.0, 1.0))
            .collect();
        let total: f64 = est.iter().sum();
        if total > 0.0 {
            for f in &mut est {
                *f /= total;
            }
        } else {
            // Degenerate all-clamped-to-zero case: fall back to uniform.
            let k = est.len() as f64;
            est.iter_mut().for_each(|f| *f = 1.0 / k);
        }
        Ok(est)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_core::assert_within_ci;
    use ldp_core::categorical::{Grr, Oue};
    use ldp_core::rng::seeded_rng;
    use ldp_core::testutil::fixture_rng;
    use ldp_core::Epsilon;
    use rand::Rng;

    fn sample_value(rng: &mut impl Rng, freqs: &[f64]) -> u32 {
        let mut u: f64 = rng.random();
        for (v, f) in freqs.iter().enumerate() {
            u -= f;
            if u <= 0.0 {
                return v as u32;
            }
        }
        freqs.len() as u32 - 1
    }

    #[test]
    fn oue_frequencies_converge() {
        let eps = Epsilon::new(1.0).unwrap();
        let oracle = Oue::new(eps, 4).unwrap();
        let truth = [0.55, 0.25, 0.15, 0.05];
        let mut rng = fixture_rng("frequency::oue_frequencies_converge");
        let mut acc = FrequencyAccumulator::new(4, 1.0);
        let n = 150_000;
        for _ in 0..n {
            let v = sample_value(&mut rng, &truth);
            let rep = oracle.perturb(v, &mut rng).unwrap();
            acc.add(&oracle, &rep);
        }
        let est = acc.estimate().unwrap();
        for (v, (&e, &t)) in est.iter().zip(&truth).enumerate() {
            // Values are drawn from `truth`, so the per-report variance is
            // exactly `support_variance(t)` (data + response randomness).
            assert_within_ci!(e, t, oracle.support_variance(t), n, "v={v}");
        }
    }

    #[test]
    fn accessors_expose_debias_state_read_only() {
        let eps = Epsilon::new(1.0).unwrap();
        let oracle = Oue::new(eps, 4).unwrap();
        let mut acc = FrequencyAccumulator::new(4, 2.0);

        // Empty accumulator: no debias pair yet, so no debiased counts.
        assert_eq!(acc.debias_params(), None);
        assert_eq!(acc.debiased_counts(), None);
        assert_eq!(acc.scale(), 2.0);
        assert_eq!(acc.population(), None);

        let mut rng = fixture_rng("frequency::accessors_read_only");
        for _ in 0..100 {
            let rep = oracle.perturb(1, &mut rng).unwrap();
            acc.add(&oracle, &rep);
        }
        assert_eq!(acc.debias_params(), Some(oracle.debias_params()));
        acc.set_population(250);
        assert_eq!(acc.population(), Some(250));
    }

    #[test]
    fn debiased_counts_are_estimate_numerators() {
        let eps = Epsilon::new(2.0).unwrap();
        let oracle = Oue::new(eps, 5).unwrap();
        let scale = 3.0;
        let mut acc = FrequencyAccumulator::new(5, scale);
        let mut rng = fixture_rng("frequency::debiased_counts_numerators");
        for i in 0..1_000u32 {
            let rep = oracle.perturb(i % 5, &mut rng).unwrap();
            acc.add(&oracle, &rep);
        }
        let n = 4_000;
        acc.set_population(n);
        let est = acc.estimate().unwrap();
        let counts = acc.debiased_counts().unwrap();
        assert_eq!(counts.len(), est.len());
        for (c, e) in counts.iter().zip(&est) {
            // estimate = debiased_count / population, exactly.
            assert!((c / n as f64 - e).abs() < 1e-12);
        }
        // The raw integer counts stay exact and untouched by the accessors.
        assert!(acc.counts().iter().copied().max().unwrap() <= 1_000);
    }

    #[test]
    fn grr_frequencies_converge() {
        let eps = Epsilon::new(2.0).unwrap();
        let oracle = Grr::new(eps, 3).unwrap();
        let truth = [0.7, 0.2, 0.1];
        let mut rng = fixture_rng("frequency::grr_frequencies_converge");
        let mut acc = FrequencyAccumulator::new(3, 1.0);
        let n = 150_000;
        for _ in 0..n {
            let v = sample_value(&mut rng, &truth);
            acc.add(&oracle, &oracle.perturb(v, &mut rng).unwrap());
        }
        let est = acc.estimate().unwrap();
        for (v, (&e, &t)) in est.iter().zip(&truth).enumerate() {
            assert_within_ci!(e, t, oracle.support_variance(t), n, "v={v}");
        }
    }

    #[test]
    fn sampling_scale_restores_unbiasedness() {
        // Simulate Algorithm 4 with d = 3, k = 1: each user reports this
        // attribute with probability 1/3; the d/k = 3 scaling must undo that.
        let eps = Epsilon::new(1.0).unwrap();
        let oracle = Oue::new(eps, 3).unwrap();
        let truth = [0.5, 0.3, 0.2];
        let mut rng = fixture_rng("frequency::sampling_scale_restores_unbiasedness");
        let n = 240_000;
        let mut acc = FrequencyAccumulator::new(3, 3.0);
        for _ in 0..n {
            if rng.random::<f64>() < 1.0 / 3.0 {
                let v = sample_value(&mut rng, &truth);
                acc.add(&oracle, &oracle.perturb(v, &mut rng).unwrap());
            }
        }
        acc.set_population(n);
        let est = acc.estimate().unwrap();
        for (v, (&e, &t)) in est.iter().zip(&truth).enumerate() {
            // Per-user contribution is `(d/k)·B·s` with `B ~ Bernoulli(k/d)`
            // and `d/k = 3`, so `Var = 3·E[s²] − t² = 3·support_variance(t)
            // + 2t²` — the sampling step triples the response variance and
            // adds a `2t²` thinning term.
            let var = 3.0 * oracle.support_variance(t) + 2.0 * t * t;
            assert_within_ci!(e, t, var, n, "v={v}");
        }
    }

    #[test]
    fn count_based_estimates_match_support_path_exactly() {
        // The count-based accumulator must reproduce the legacy per-report
        // support()-loop estimates to f64 summation tolerance: the support
        // is affine in the hit bit, so `Σ support = (c − n·q)/(p − q)`
        // exactly up to floating-point associativity.
        use ldp_core::categorical::Sue;
        use ldp_core::OracleKind;
        let eps = Epsilon::new(1.2).unwrap();
        let k = 9u32;
        let oracles: Vec<Box<dyn ldp_core::FrequencyOracle>> = vec![
            OracleKind::Oue.build(eps, k).unwrap(),
            OracleKind::Grr.build(eps, k).unwrap(),
            Box::new(Sue::new(eps, k).unwrap()),
        ];
        for oracle in &oracles {
            let mut rng = fixture_rng("frequency::count_vs_support");
            let mut acc = FrequencyAccumulator::new(k, 2.5);
            let mut supports = vec![0.0f64; k as usize];
            let n = 4_000;
            for i in 0..n {
                let rep = oracle.perturb(i % k, &mut rng).unwrap();
                acc.add(oracle.as_ref(), &rep);
                for v in 0..k {
                    supports[v as usize] += oracle.support(&rep, v);
                }
            }
            acc.set_population(2 * n as usize);
            let est = acc.estimate().unwrap();
            for (v, (&e, &s)) in est.iter().zip(&supports).enumerate() {
                let legacy = 2.5 * s / (2 * n as usize) as f64;
                assert!(
                    (e - legacy).abs() <= 1e-9 * legacy.abs().max(1.0),
                    "{}: v={v}: count-path {e} vs support-path {legacy}",
                    oracle.name()
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "different debias parameters")]
    fn add_rejects_mismatched_debias_params() {
        let k = 4u32;
        let o1 = Oue::new(Epsilon::new(1.0).unwrap(), k).unwrap();
        let o2 = Oue::new(Epsilon::new(3.0).unwrap(), k).unwrap();
        let mut rng = seeded_rng(501);
        let mut acc = FrequencyAccumulator::new(k, 1.0);
        acc.add(&o1, &o1.perturb(0, &mut rng).unwrap());
        acc.add(&o2, &o2.perturb(0, &mut rng).unwrap());
    }

    #[test]
    fn merge_rejects_mismatched_debias_params() {
        let eps = Epsilon::new(1.0).unwrap();
        let k = 4u32;
        let o1 = Oue::new(eps, k).unwrap();
        let o2 = Oue::new(Epsilon::new(3.0).unwrap(), k).unwrap();
        let mut rng = seeded_rng(500);
        let mut a = FrequencyAccumulator::new(k, 1.0);
        let mut b = FrequencyAccumulator::new(k, 1.0);
        a.add(&o1, &o1.perturb(0, &mut rng).unwrap());
        b.add(&o2, &o2.perturb(1, &mut rng).unwrap());
        // Typed rejection: callers can match on the mismatch specifically.
        assert!(
            matches!(a.merge(&b), Err(LdpError::DebiasMismatch { .. })),
            "different ε ⇒ different (p, q)"
        );
        // Mismatched protocol scales are the same silent-bias class.
        let scaled = FrequencyAccumulator::new(k, 3.0);
        assert!(a.merge(&scaled).is_err(), "different scales must not merge");
        // Merging an empty accumulator adopts the other side's parameters.
        let mut c = FrequencyAccumulator::new(k, 1.0);
        c.merge(&a).unwrap();
        assert_eq!(c.reports(), 1);
        assert_eq!(c.counts(), a.counts());
    }

    #[test]
    fn word_plane_counts_match_per_bit_walk_exactly() {
        // Unary reports absorbed through the WordHistogram plane must count
        // exactly like the old per-set-bit scatter, including with pending
        // (un-flushed) planes at read and merge time.
        let eps = Epsilon::new(1.0).unwrap();
        let k = 70u32; // straddles a word boundary
        let oracle = Oue::new(eps, k).unwrap();
        let mut rng = seeded_rng(606);
        let mut acc = FrequencyAccumulator::with_debias(k, 1.0, oracle.debias_params());
        let mut fused = FrequencyAccumulator::with_debias(k, 1.0, oracle.debias_params());
        let mut reference = vec![0u64; k as usize];
        for i in 0..500 {
            let rep = oracle.perturb(i % k, &mut rng).unwrap();
            let CategoricalReport::Bits(bits) = &rep else {
                unreachable!("OUE is unary");
            };
            for v in bits.iter_ones() {
                reference[v as usize] += 1;
            }
            acc.count_report(&rep);
            fused.note_report();
            fused.note_words(bits.words());
        }
        assert_eq!(acc.counts(), reference);
        assert_eq!(fused.counts(), reference);
        assert_eq!(acc.estimate().unwrap(), fused.estimate().unwrap());
        // Merging folds the other side's pending planes exactly.
        let mut merged = FrequencyAccumulator::with_debias(k, 1.0, oracle.debias_params());
        merged.merge(&acc).unwrap();
        merged.merge(&fused).unwrap();
        let doubled: Vec<u64> = reference.iter().map(|c| 2 * c).collect();
        assert_eq!(merged.counts(), doubled);
    }

    #[test]
    fn normalized_estimates_form_distribution() {
        let eps = Epsilon::new(0.5).unwrap();
        let oracle = Oue::new(eps, 5).unwrap();
        let mut rng = seeded_rng(313);
        let mut acc = FrequencyAccumulator::new(5, 1.0);
        for _ in 0..500 {
            acc.add(&oracle, &oracle.perturb(0, &mut rng).unwrap());
        }
        let est = acc.estimate_normalized().unwrap();
        assert!((est.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(est.iter().all(|&f| (0.0..=1.0).contains(&f)));
    }

    #[test]
    fn empty_and_merge_behaviour() {
        let acc = FrequencyAccumulator::new(3, 1.0);
        assert!(acc.estimate().is_err());

        let eps = Epsilon::new(1.0).unwrap();
        let oracle = Oue::new(eps, 3).unwrap();
        let mut rng = seeded_rng(314);
        let mut a = FrequencyAccumulator::new(3, 1.0);
        let mut b = FrequencyAccumulator::new(3, 1.0);
        let mut whole = FrequencyAccumulator::new(3, 1.0);
        for i in 0..50 {
            let rep = oracle.perturb(i % 3, &mut rng).unwrap();
            whole.add(&oracle, &rep);
            if i % 2 == 0 { &mut a } else { &mut b }.add(&oracle, &rep);
        }
        a.merge(&b).unwrap();
        assert_eq!(a.reports(), whole.reports());
        // Merged and sequential sums differ only in addition order.
        for (x, y) in a.estimate().unwrap().iter().zip(whole.estimate().unwrap()) {
            assert!((x - y).abs() < 1e-12, "{x} vs {y}");
        }
        let bad = FrequencyAccumulator::new(4, 1.0);
        assert!(a.merge(&bad).is_err());
    }
}
