//! The two-sided collection session API: untrusted clients encode, the
//! server aggregates.
//!
//! The paper's deployment model is inherently split — millions of clients
//! each perturb **one** record locally and send a compact report; a server
//! consumes reports incrementally and publishes estimates. This module is
//! that split, as API:
//!
//! * [`ClientEncoder`] — built from a [`Protocol`], an [`Epsilon`] and the
//!   public schema; turns one user tuple into a serde-able [`Report`]
//!   (Algorithm 4 sparse sampling, or the best-effort ε/d composition).
//! * [`Report`] — the only thing that crosses the trust boundary: sampled
//!   attribute indices plus numeric draws and categorical bits. Sized by
//!   [`ldp_core::multidim::wire`], serialized by serde.
//! * [`Aggregator`] — consumes reports incrementally ([`Aggregator::absorb`]),
//!   merges partial aggregates from other shards or processes
//!   ([`Aggregator::merge`]), and yields a [`CollectionResult`] snapshot at
//!   any point ([`Aggregator::snapshot`]).
//!
//! ## Mergeable partials and the determinism model
//!
//! An [`Aggregator`] is a *set of partial aggregates* keyed by an ordinal
//! ([`Aggregator::with_ordinal`]): everything it absorbs lands in its own
//! ordinal's partial, and [`Aggregator::merge`] takes the union of the two
//! ordinal sets. [`Aggregator::snapshot`] folds the partials in ascending
//! ordinal order, so the floating-point summation order — and therefore
//! every output bit — is fixed by the ordinals alone. Partials may be
//! merged in **any** order, across threads, processes or machines, and the
//! snapshot is bit-identical to the ordered fold; that is the invariant the
//! [`Collector`](crate::Collector) pipeline, the `determinism` CI job and
//! the `proptest_session` suite all pin.
//!
//! ## Fused simulation path
//!
//! A real deployment materializes every report. A simulation of millions of
//! users should not: [`Aggregator::absorb_with`] runs the client encoder and
//! the absorb in one fused pass — finished unary reports are absorbed whole
//! 64-bit words at a time into the accumulators' bit-sliced
//! [`crate::WordHistogram`] planes, and GRR direct reports go straight from
//! the sampled ordinal to a counter increment with no report object in
//! between — consuming the same rng draws and leaving the aggregator in the
//! same state as [`ClientEncoder::encode_into`] followed by
//! [`Aggregator::absorb`]. `Collector::run` is a thin block-parallel driver
//! over exactly these calls.

use crate::frequency::FrequencyAccumulator;
use crate::mean::MeanAccumulator;
use crate::pipeline::{BestEffortNumeric, CollectionResult, Protocol};
use ldp_core::multidim::{
    optimal_k, wire, CatObservation, CatReportView, DuchiMultidim, DuchiScratch, SamplingPerturber,
    SparseReport, SparseScratch,
};
use ldp_core::rng::DrawSource;
use ldp_core::{
    AnyNumeric, AnyOracle, AttrReport, AttrSpec, AttrValue, CategoricalReport, DebiasParams,
    Epsilon, LdpError, Result,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The perturbed message one user submits for one record — the only data
/// that crosses the client→server trust boundary.
///
/// Serde-able and compact: numeric entries are single `f64` draws,
/// categorical entries are oracle bits (a `⌈log₂ k⌉`-bit value for GRR, a
/// `k`-bit vector for OUE/SUE). [`ldp_core::multidim::wire`] provides the
/// bit-level codec and size accounting for the sampling variant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Report {
    /// An Algorithm 4 report: `k` sampled attributes, each carrying an
    /// ε/k-LDP sub-report (numeric entries pre-scaled by `d/k`).
    Sampling(SparseReport),
    /// A best-effort composition report: every attribute reported at its
    /// split budget.
    Composition(CompositionReport),
}

/// The dense report of the best-effort composition protocols: one numeric
/// draw per numeric attribute and one categorical report per categorical
/// attribute, each in schema slot order.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct CompositionReport {
    /// Noisy numeric values, one per numeric attribute in schema order.
    /// Under [`BestEffortNumeric::DuchiMultidim`] these are the coordinates
    /// of Duchi et al.'s joint report; otherwise independent 1-D draws.
    pub numeric: Vec<f64>,
    /// Oracle reports, one per categorical attribute in schema order.
    pub categorical: Vec<CategoricalReport>,
}

impl CompositionReport {
    /// Encodes the report into the canonical bit-level wire format, the
    /// composition counterpart of
    /// [`wire::WireFormat::encode_sparse`]: 64 bits
    /// per numeric draw, then per categorical attribute either the unary
    /// report's `k` bits (word-at-a-time, vector bit 0 first) or the direct
    /// report's `⌈log₂ k⌉`-bit value. Schema order is implied and every
    /// attribute is present, so no indices and no header go on the wire —
    /// the encoded size is exactly
    /// [`wire::composition_report_bits`] rounded up
    /// to bytes.
    ///
    /// # Panics
    /// Panics if the report's shape or entry types disagree with the schema
    /// (reports produced by a [`ClientEncoder`] on the same schema always
    /// agree).
    pub fn encode_wire(&self, specs: &[AttrSpec]) -> Vec<u8> {
        let d_num = specs.iter().filter(|s| s.is_numeric()).count();
        assert_eq!(self.numeric.len(), d_num, "schema mismatch");
        assert_eq!(
            self.categorical.len(),
            specs.len() - d_num,
            "schema mismatch"
        );
        let mut w = wire::BitWriter::new();
        for x in &self.numeric {
            w.write_bits(x.to_bits(), 64);
        }
        let mut cats = self.categorical.iter();
        for spec in specs {
            let AttrSpec::Categorical { k } = spec else {
                continue;
            };
            match cats.next().expect("counted above") {
                CategoricalReport::Value(v) => {
                    w.write_bits(u64::from(*v), wire::index_bits(*k as usize));
                }
                CategoricalReport::Bits(bits) => {
                    assert_eq!(bits.len(), *k, "bit-vector length mismatch");
                    // Same word-at-a-time layout as the sparse codec: the
                    // stream wants vector bit 0 first, `write_bits` emits
                    // high bit first, so each word goes out reversed.
                    let mut remaining = *k;
                    for &word in bits.words() {
                        let width = remaining.min(64);
                        w.write_bits(word.reverse_bits() >> (64 - width), width as usize);
                        remaining -= width;
                    }
                }
            }
        }
        w.finish()
    }

    /// Decodes a composition report. As with
    /// [`wire::WireFormat::decode_sparse`], the
    /// protocol fixes whether categorical payloads are unary bit vectors
    /// (`unary = true`, OUE/SUE) or `⌈log₂ k⌉`-bit direct values (GRR), so
    /// it is not encoded per report.
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] on truncated buffers and
    /// [`LdpError::InvalidCategory`] on out-of-range direct values.
    pub fn decode_wire(specs: &[AttrSpec], bytes: &[u8], unary: bool) -> Result<CompositionReport> {
        let mut r = wire::BitReader::new(bytes);
        let d_num = specs.iter().filter(|s| s.is_numeric()).count();
        let mut numeric = Vec::with_capacity(d_num);
        for _ in 0..d_num {
            numeric.push(f64::from_bits(r.read_bits(64)?));
        }
        let mut categorical = Vec::with_capacity(specs.len() - d_num);
        for spec in specs {
            let AttrSpec::Categorical { k } = spec else {
                continue;
            };
            categorical.push(if unary {
                let mut words = vec![0u64; (*k as usize).div_ceil(64)];
                let mut base = 0u32;
                for word in &mut words {
                    let width = (*k - base).min(64);
                    let chunk = r.read_bits(width as usize)?;
                    *word = chunk.reverse_bits() >> (64 - width);
                    base += width;
                }
                let bits = ldp_core::BitVec::from_words(*k, words)
                    .expect("masked reads are well-formed by construction");
                CategoricalReport::Bits(bits)
            } else {
                let v = r.read_bits(wire::index_bits(*k as usize))? as u32;
                if v >= *k {
                    return Err(LdpError::InvalidCategory { value: v, k: *k });
                }
                CategoricalReport::Value(v)
            });
        }
        Ok(CompositionReport {
            numeric,
            categorical,
        })
    }
}

/// Expected set bits per unary report above which the fused engines absorb
/// whole-word through the [`crate::WordHistogram`] plane instead of noting
/// hits as they are placed. Both engines count identically (exact
/// integers), so this is purely a routing choice: the word plane's
/// per-report cost is flat in density, so a handful of expected hits is
/// cheaper to stream one at a time — the same trade
/// `ldp_analytics::wordhist`'s sparse-scatter shortcut makes per report.
const WORD_LEVEL_MIN_HITS: f64 = 8.0;

/// The shared public shape of a session: everything both sides derive from
/// `(protocol, ε, schema)` without exchanging messages.
#[derive(Debug, Clone)]
struct Shape {
    d: usize,
    num_indices: Vec<usize>,
    cat_indices: Vec<usize>,
    /// Attribute index → categorical slot, so per-report dispatch is a
    /// table lookup.
    slot_of: Vec<Option<usize>>,
    /// Estimator scale: `d/k` for sampling, `1` for composition.
    scale: f64,
    /// Per categorical slot: domain size and the oracle's `(p, q)` pair.
    cats: Vec<(u32, DebiasParams)>,
    /// Per categorical slot: absorb unary reports whole-word (dense
    /// oracles) or hit-by-hit (sparse ones) — see [`WORD_LEVEL_MIN_HITS`].
    word_level: Vec<bool>,
    /// Any slot word-level ⇒ the sampling engine runs word-wise.
    any_word_level: bool,
    /// Entries per sampling report (`k` of Equation 12); `d` for
    /// composition.
    sampled_k: usize,
}

/// Expected set bits of one unary report from a `(k, (p, q))` oracle:
/// `p + (k−1)·q`, independent of the true value.
fn expected_hits(k: u32, debias: DebiasParams) -> f64 {
    debias.p + f64::from(k - 1) * debias.q
}

/// Per-slot engine routing: direct (GRR) oracles always take the
/// word-level engine — their fast path is the ordinal kernel, with no bit
/// vector in sight, so the density cutoff is meaningless for them — while
/// unary oracles take it only when dense enough
/// ([`WORD_LEVEL_MIN_HITS`]).
fn word_level_routing(cats: &[(u32, DebiasParams)], direct: &[bool]) -> Vec<bool> {
    cats.iter()
        .zip(direct)
        .map(|(&(k, debias), &is_direct)| {
            is_direct || expected_hits(k, debias) >= WORD_LEVEL_MIN_HITS
        })
        .collect()
}

impl Shape {
    /// Derives the shape from an already-built engine — the cheap path
    /// [`ClientEncoder`] uses, reading each oracle's `(k, p, q)` off the
    /// engine instead of constructing throwaway oracles.
    fn from_engine(specs: &[AttrSpec], engine: &Engine) -> Shape {
        let d = specs.len();
        let mut num_indices = Vec::new();
        let mut cat_indices = Vec::new();
        let mut slot_of = vec![None; d];
        for (j, spec) in specs.iter().enumerate() {
            match spec {
                AttrSpec::Numeric => num_indices.push(j),
                AttrSpec::Categorical { .. } => {
                    slot_of[j] = Some(cat_indices.len());
                    cat_indices.push(j);
                }
            }
        }
        let (scale, sampled_k, cats, direct): (f64, usize, Vec<(u32, DebiasParams)>, Vec<bool>) =
            match engine {
                Engine::Sampling(p) => {
                    let cats = cat_indices
                        .iter()
                        .map(|&j| {
                            let o = p.any_oracle(j).expect("categorical slot");
                            (o.k(), o.debias_params())
                        })
                        .collect();
                    let direct = cat_indices
                        .iter()
                        .map(|&j| {
                            p.any_oracle(j)
                                .expect("categorical slot")
                                .as_grr()
                                .is_some()
                        })
                        .collect();
                    (p.scale(), p.k(), cats, direct)
                }
                Engine::Composition { oracles, .. } => {
                    let cats = oracles.iter().map(|o| (o.k(), o.debias_params())).collect();
                    let direct = oracles.iter().map(|o| o.as_grr().is_some()).collect();
                    (1.0, d, cats, direct)
                }
            };
        let word_level = word_level_routing(&cats, &direct);
        Shape {
            d,
            num_indices,
            cat_indices,
            slot_of,
            scale,
            any_word_level: word_level.iter().any(|&b| b),
            word_level,
            cats,
            sampled_k,
        }
    }

    fn new(protocol: Protocol, epsilon: Epsilon, specs: &[AttrSpec]) -> Result<Self> {
        let d = specs.len();
        if d == 0 {
            return Err(LdpError::InvalidParameter {
                name: "specs",
                message: "schema must contain at least one attribute".into(),
            });
        }
        let (sampled_k, scale, oracle_kind) = match protocol {
            Protocol::Sampling { oracle, .. } => {
                let k = optimal_k(epsilon, d);
                (k, d as f64 / k as f64, oracle)
            }
            Protocol::BestEffort { oracle, .. } => (d, 1.0, oracle),
        };
        let per_attr = epsilon.split(sampled_k)?;
        let mut num_indices = Vec::new();
        let mut cat_indices = Vec::new();
        let mut slot_of = vec![None; d];
        let mut cats = Vec::new();
        for (j, spec) in specs.iter().enumerate() {
            match spec {
                AttrSpec::Numeric => num_indices.push(j),
                AttrSpec::Categorical { k } => {
                    slot_of[j] = Some(cat_indices.len());
                    cat_indices.push(j);
                    // Built through the same constructor as the client's
                    // oracle, so the (p, q) pair is identical by
                    // construction, never by re-derivation.
                    let oracle = AnyOracle::build(oracle_kind, per_attr, *k)?;
                    cats.push((*k, oracle.debias_params()));
                }
            }
        }
        let direct = vec![matches!(oracle_kind, ldp_core::OracleKind::Grr); cats.len()];
        let word_level = word_level_routing(&cats, &direct);
        Ok(Shape {
            d,
            num_indices,
            cat_indices,
            slot_of,
            scale,
            any_word_level: word_level.iter().any(|&b| b),
            word_level,
            cats,
            sampled_k,
        })
    }
}

/// How a [`ClientEncoder`] produces reports for its protocol family.
enum Engine {
    /// Algorithm 4: sample `k` attributes, spend ε/k on each.
    Sampling(SamplingPerturber),
    /// Best-effort composition: every attribute at its split budget.
    Composition {
        numeric: CompositionNumeric,
        /// One oracle per categorical slot, at ε/d.
        oracles: Vec<AnyOracle>,
    },
}

enum CompositionNumeric {
    None,
    /// Each numeric attribute independently at ε/d.
    PerAttr(AnyNumeric),
    /// The whole numeric block jointly at ε·d_num/d.
    Duchi(DuchiMultidim),
}

/// Caller-owned scratch buffers for the zero-allocation encoding loop
/// ([`ClientEncoder::encode_into`] / [`Aggregator::absorb_with`]). Must stay
/// paired with the encoder that built it.
pub struct EncoderScratch {
    inner: ScratchInner,
}

enum ScratchInner {
    Sampling {
        scratch: SparseScratch,
        /// Numeric-entry report buffer for the fused
        /// [`Aggregator::absorb_with`] path.
        fused: SparseReport,
    },
    Composition {
        dense: Vec<f64>,
        numeric_block: Vec<f64>,
        noisy: Vec<f64>,
        duchi: Option<DuchiScratch>,
        /// Recycled categorical payloads for the fused path.
        cat_reports: Vec<CategoricalReport>,
    },
}

/// The client half of a collection session: turns one user record into one
/// ε-LDP [`Report`].
///
/// Built from public knowledge only — the protocol, the total budget and
/// the schema — so every client constructs an identical encoder without
/// coordination. The encoder is `Clone + Send + Sync` (all mechanism state
/// is unboxed via [`AnyNumeric`]/[`AnyOracle`]) and fully monomorphized
/// over the caller's rng: driven by an [`ldp_core::rng::RngBlock`] there is
/// no virtual call anywhere in the per-draw path.
///
/// ```
/// use ldp_analytics::{ClientEncoder, Protocol};
/// use ldp_core::rng::seeded_rng;
/// use ldp_core::{AttrSpec, AttrValue, Epsilon, NumericKind, OracleKind};
///
/// let encoder = ClientEncoder::new(
///     Protocol::Sampling { numeric: NumericKind::Hybrid, oracle: OracleKind::Oue },
///     Epsilon::new(4.0)?,
///     vec![AttrSpec::Numeric, AttrSpec::Categorical { k: 4 }],
/// )?;
/// // One user, one record, one report.
/// let tuple = [AttrValue::Numeric(0.25), AttrValue::Categorical(3)];
/// let report = encoder.encode(&tuple, &mut seeded_rng(7))?;
/// let ldp_analytics::Report::Sampling(sparse) = &report else { unreachable!() };
/// assert_eq!(sparse.entries.len(), encoder.sampled_k());
/// # Ok::<(), ldp_core::LdpError>(())
/// ```
pub struct ClientEncoder {
    protocol: Protocol,
    epsilon: Epsilon,
    specs: Vec<AttrSpec>,
    shape: Shape,
    engine: Engine,
}

impl ClientEncoder {
    /// Builds the encoder for a protocol, total budget and public schema.
    ///
    /// # Errors
    /// Rejects empty schemas and invalid categorical domains.
    pub fn new(protocol: Protocol, epsilon: Epsilon, specs: Vec<AttrSpec>) -> Result<Self> {
        if specs.is_empty() {
            return Err(LdpError::InvalidParameter {
                name: "specs",
                message: "schema must contain at least one attribute".into(),
            });
        }
        let engine = match protocol {
            Protocol::Sampling { numeric, oracle } => Engine::Sampling(SamplingPerturber::new(
                epsilon,
                specs.clone(),
                numeric,
                oracle,
            )?),
            Protocol::BestEffort { numeric, oracle } => {
                let d = specs.len();
                let per_attr = epsilon.split(d)?;
                let d_num = specs.iter().filter(|s| s.is_numeric()).count();
                let numeric = if d_num == 0 {
                    CompositionNumeric::None
                } else {
                    match numeric {
                        BestEffortNumeric::PerAttribute(kind) => {
                            CompositionNumeric::PerAttr(AnyNumeric::build(kind, per_attr))
                        }
                        BestEffortNumeric::DuchiMultidim => {
                            let block_eps = epsilon.fraction(d_num as f64 / d as f64)?;
                            CompositionNumeric::Duchi(DuchiMultidim::new(block_eps, d_num)?)
                        }
                    }
                };
                let oracles = specs
                    .iter()
                    .filter_map(|spec| match spec {
                        AttrSpec::Numeric => None,
                        AttrSpec::Categorical { k } => Some(AnyOracle::build(oracle, per_attr, *k)),
                    })
                    .collect::<Result<Vec<_>>>()?;
                Engine::Composition { numeric, oracles }
            }
        };
        let shape = Shape::from_engine(&specs, &engine);
        Ok(ClientEncoder {
            protocol,
            epsilon,
            specs,
            shape,
            engine,
        })
    }

    /// The protocol this encoder implements.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// The total per-user privacy budget.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// The public schema.
    pub fn specs(&self) -> &[AttrSpec] {
        &self.specs
    }

    /// Number of attributes `d`.
    pub fn d(&self) -> usize {
        self.shape.d
    }

    /// Attributes carried per report: Equation 12's `k` under sampling,
    /// `d` under composition.
    pub fn sampled_k(&self) -> usize {
        self.shape.sampled_k
    }

    /// An [`Aggregator`] configured for exactly this encoder's sessions —
    /// built from the encoder's already-derived shape, so it is cheap
    /// enough to call once per block or shard.
    ///
    /// # Errors
    /// Infallible today (the encoder already validated the session);
    /// `Result` keeps the signature aligned with [`Aggregator::new`].
    pub fn aggregator(&self) -> Result<Aggregator> {
        Ok(Aggregator {
            protocol: self.protocol,
            epsilon: self.epsilon,
            specs: self.specs.clone(),
            shape: self.shape.clone(),
            ordinal: 0,
            parts: BTreeMap::new(),
            dense: vec![0.0; self.shape.d],
        })
    }

    /// A scratch buffer sized for this encoder, enabling the
    /// zero-allocation [`ClientEncoder::encode_into`] /
    /// [`Aggregator::absorb_with`] loops.
    pub fn scratch(&self) -> EncoderScratch {
        let inner = match &self.engine {
            Engine::Sampling(p) => ScratchInner::Sampling {
                scratch: p.scratch(),
                fused: SparseReport::with_capacity(p.d(), p.k()),
            },
            Engine::Composition { numeric, .. } => ScratchInner::Composition {
                dense: vec![0.0; self.shape.d],
                numeric_block: vec![0.0; self.shape.num_indices.len()],
                noisy: Vec::with_capacity(self.shape.num_indices.len()),
                duchi: match numeric {
                    CompositionNumeric::Duchi(md) => Some(md.scratch()),
                    _ => None,
                },
                cat_reports: self
                    .shape
                    .cats
                    .iter()
                    .map(|_| CategoricalReport::Value(0))
                    .collect(),
            },
        };
        EncoderScratch { inner }
    }

    /// An empty report shell of the right variant for this encoder, meant
    /// to be (re)filled by [`ClientEncoder::encode_into`].
    pub fn empty_report(&self) -> Report {
        match &self.engine {
            Engine::Sampling(p) => Report::Sampling(SparseReport::with_capacity(p.d(), p.k())),
            Engine::Composition { .. } => Report::Composition(CompositionReport::default()),
        }
    }

    /// Encodes one user tuple into a fresh report.
    ///
    /// Convenience wrapper over [`ClientEncoder::encode_into`] that
    /// allocates the report and a transient scratch; simulation loops
    /// should hold a report + scratch pair and call `encode_into`.
    ///
    /// # Errors
    /// Rejects tuples whose arity, types or values do not match the schema.
    pub fn encode<R: DrawSource + ?Sized>(
        &self,
        tuple: &[AttrValue],
        rng: &mut R,
    ) -> Result<Report> {
        let mut report = self.empty_report();
        let mut scratch = self.scratch();
        self.encode_into(tuple, rng, &mut report, &mut scratch)?;
        Ok(report)
    }

    /// Zero-allocation streaming form of [`ClientEncoder::encode`]: refills
    /// `report` in place, recycling its buffers (and the categorical bit
    /// vectors shuttling through `scratch`) across calls.
    ///
    /// Draw-for-draw identical to `encode` under the same rng state, and —
    /// by the session equivalence the `proptest_session` suite pins —
    /// `encode_into` + [`Aggregator::absorb`] leaves an aggregator in
    /// exactly the state [`Aggregator::absorb_with`] produces.
    ///
    /// # Errors
    /// As [`ClientEncoder::encode`].
    pub fn encode_into<R: DrawSource + ?Sized>(
        &self,
        tuple: &[AttrValue],
        rng: &mut R,
        report: &mut Report,
        scratch: &mut EncoderScratch,
    ) -> Result<()> {
        match &self.engine {
            Engine::Sampling(p) => {
                if !matches!(report, Report::Sampling(_)) {
                    *report = self.empty_report();
                }
                let (Report::Sampling(sparse), ScratchInner::Sampling { scratch, .. }) =
                    (&mut *report, &mut scratch.inner)
                else {
                    return Err(scratch_mismatch());
                };
                p.perturb_into(tuple, rng, sparse, scratch)
            }
            Engine::Composition { numeric, oracles } => {
                if !matches!(report, Report::Composition(_)) {
                    *report = self.empty_report();
                }
                let (
                    Report::Composition(out),
                    ScratchInner::Composition {
                        numeric_block,
                        noisy,
                        duchi,
                        ..
                    },
                ) = (&mut *report, &mut scratch.inner)
                else {
                    return Err(scratch_mismatch());
                };
                self.validate(tuple)?;
                out.numeric.clear();
                match numeric {
                    CompositionNumeric::None => {}
                    CompositionNumeric::PerAttr(mech) => {
                        for &j in &self.shape.num_indices {
                            let AttrValue::Numeric(x) = tuple[j] else {
                                unreachable!("validated above");
                            };
                            out.numeric.push(mech.perturb(x, &mut *rng)?);
                        }
                    }
                    CompositionNumeric::Duchi(md) => {
                        for (slot, &j) in self.shape.num_indices.iter().enumerate() {
                            let AttrValue::Numeric(x) = tuple[j] else {
                                unreachable!("validated above");
                            };
                            numeric_block[slot] = x;
                        }
                        md.perturb_into(
                            numeric_block,
                            &mut *rng,
                            noisy,
                            duchi.as_mut().expect("built with Duchi state"),
                        )?;
                        out.numeric.extend_from_slice(noisy);
                    }
                }
                if out.categorical.len() != self.shape.cat_indices.len() {
                    out.categorical.clear();
                    out.categorical
                        .resize_with(self.shape.cat_indices.len(), || CategoricalReport::Value(0));
                }
                for (slot, &j) in self.shape.cat_indices.iter().enumerate() {
                    let AttrValue::Categorical(v) = tuple[j] else {
                        unreachable!("validated above");
                    };
                    oracles[slot].perturb_into(v, &mut *rng, &mut out.categorical[slot])?;
                }
                Ok(())
            }
        }
    }

    /// Validates one tuple against the schema.
    fn validate(&self, tuple: &[AttrValue]) -> Result<()> {
        if tuple.len() != self.shape.d {
            return Err(LdpError::DimensionMismatch {
                expected: self.shape.d,
                actual: tuple.len(),
            });
        }
        for (i, (value, spec)) in tuple.iter().zip(&self.specs).enumerate() {
            value.validate(spec, i)?;
        }
        Ok(())
    }
}

impl std::fmt::Debug for ClientEncoder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientEncoder")
            .field("protocol", &self.protocol)
            .field("epsilon", &self.epsilon)
            .field("d", &self.shape.d)
            .field("sampled_k", &self.shape.sampled_k)
            .finish()
    }
}

fn scratch_mismatch() -> LdpError {
    LdpError::InvalidParameter {
        name: "scratch",
        message: "report/scratch built for a different protocol family".into(),
    }
}

/// One mergeable partial aggregate: the accumulators for a contiguous slice
/// of the report stream.
#[derive(Debug, Clone)]
struct Partial {
    means: MeanAccumulator,
    freqs: Vec<FrequencyAccumulator>,
}

impl Partial {
    fn new(shape: &Shape) -> Self {
        Partial {
            means: MeanAccumulator::new(shape.d),
            freqs: shape
                .cats
                .iter()
                .map(|&(k, params)| FrequencyAccumulator::with_debias(k, shape.scale, params))
                .collect(),
        }
    }

    fn merge(&mut self, other: &Partial) -> Result<()> {
        self.means.merge(&other.means)?;
        for (acc, o) in self.freqs.iter_mut().zip(&other.freqs) {
            acc.merge(o)?;
        }
        Ok(())
    }
}

/// The server half of a collection session: consumes [`Report`]s
/// incrementally and yields [`CollectionResult`] snapshots at any point.
///
/// Internally an aggregator is a set of partial aggregates keyed by an
/// *ordinal* — its position in the canonical fold order. Reports absorbed
/// by this instance land in its own ordinal's partial;
/// [`Aggregator::merge`] unions the ordinal sets, and
/// [`Aggregator::snapshot`] folds partials in ascending ordinal order.
/// Because the fold order depends only on the ordinals — never on the
/// merge order — partial aggregates can be reduced tree-wise, shard-wise
/// or across processes in any order, with bit-identical results.
///
/// ```
/// use ldp_analytics::{Aggregator, ClientEncoder, Protocol};
/// use ldp_core::rng::seeded_rng;
/// use ldp_core::{AttrSpec, AttrValue, Epsilon, NumericKind, OracleKind};
///
/// let protocol = Protocol::Sampling { numeric: NumericKind::Hybrid, oracle: OracleKind::Oue };
/// let eps = Epsilon::new(4.0)?;
/// let specs = vec![AttrSpec::Numeric, AttrSpec::Categorical { k: 4 }];
/// let encoder = ClientEncoder::new(protocol, eps, specs.clone())?;
/// let mut rng = seeded_rng(7);
///
/// // Two shards aggregate disjoint user populations…
/// let mut shard_a = encoder.aggregator()?.with_ordinal(0);
/// let mut shard_b = encoder.aggregator()?.with_ordinal(1);
/// let tuple = [AttrValue::Numeric(0.5), AttrValue::Categorical(2)];
/// for _ in 0..500 {
///     shard_a.absorb(&encoder.encode(&tuple, &mut rng)?)?;
///     shard_b.absorb(&encoder.encode(&tuple, &mut rng)?)?;
/// }
/// // …and their merge (in either order) yields one coherent result.
/// let mut total = encoder.aggregator()?;
/// total.merge(shard_b)?;
/// total.merge(shard_a)?;
/// let result = total.snapshot()?;
/// assert_eq!(result.n, 1000);
/// # Ok::<(), ldp_core::LdpError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Aggregator {
    protocol: Protocol,
    epsilon: Epsilon,
    specs: Vec<AttrSpec>,
    shape: Shape,
    ordinal: u64,
    parts: BTreeMap<u64, Partial>,
    /// Scatter buffer for dense absorbs.
    dense: Vec<f64>,
}

impl Aggregator {
    /// Builds an aggregator from the same public knowledge clients hold.
    ///
    /// # Errors
    /// Rejects empty schemas and invalid categorical domains.
    pub fn new(protocol: Protocol, epsilon: Epsilon, specs: Vec<AttrSpec>) -> Result<Self> {
        let shape = Shape::new(protocol, epsilon, &specs)?;
        let dense = vec![0.0; shape.d];
        Ok(Aggregator {
            protocol,
            epsilon,
            specs,
            shape,
            ordinal: 0,
            parts: BTreeMap::new(),
            dense,
        })
    }

    /// Sets this aggregator's ordinal — its partial's position in the
    /// canonical fold order. Shards that will later be merged should use
    /// distinct ordinals (e.g. their block or shard index); the snapshot is
    /// then invariant to the order the shards are merged in.
    #[must_use]
    pub fn with_ordinal(mut self, ordinal: u64) -> Self {
        self.ordinal = ordinal;
        self
    }

    /// Redirects future absorbs into the partial keyed by `ordinal`.
    ///
    /// The in-place counterpart of [`Aggregator::with_ordinal`], for
    /// long-running consumers (the report service) that route interleaved
    /// streams: each report carries its block ordinal, and one aggregator
    /// per shard accumulates many partials by switching the ordinal between
    /// absorbs. Already-absorbed partials keep the ordinal they were
    /// absorbed under.
    pub fn set_ordinal(&mut self, ordinal: u64) {
        self.ordinal = ordinal;
    }

    /// Checks `report` against this aggregator's protocol and schema
    /// without touching any state: variant/protocol agreement, arity,
    /// entry types, domains, and (for sampling reports) the sampled-entry
    /// count and ordering. Exactly the checks [`Aggregator::absorb`] runs
    /// before mutating, exposed so a service can interpose its own
    /// admission control (e.g. the privacy-budget ledger) between
    /// validation and absorption — a report that fails here must not burn
    /// its user's per-epoch budget.
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] / [`LdpError::DimensionMismatch`] /
    /// [`LdpError::InvalidCategory`] on malformed reports.
    pub fn validate_report(&self, report: &Report) -> Result<()> {
        match report {
            Report::Sampling(sparse) => {
                if !matches!(self.protocol, Protocol::Sampling { .. }) {
                    return Err(report_mismatch());
                }
                self.validate_sparse(sparse)
            }
            Report::Composition(dense_rep) => {
                if !matches!(self.protocol, Protocol::BestEffort { .. }) {
                    return Err(report_mismatch());
                }
                self.validate_composition(dense_rep)
            }
        }
    }

    /// The protocol this aggregator estimates for.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// The per-user privacy budget of the absorbed reports.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// The public schema.
    pub fn specs(&self) -> &[AttrSpec] {
        &self.specs
    }

    /// Total users absorbed across all partials.
    pub fn users(&self) -> usize {
        self.parts.values().map(|p| p.means.n()).sum()
    }

    /// Number of partial aggregates currently held.
    pub fn partials(&self) -> usize {
        self.parts.len()
    }

    /// Exact serialized size in bits of one ordinal-keyed partial in
    /// [`Aggregator::encode_partials`]: the ordinal, the mean state, then
    /// one frequency state per categorical slot. A schema constant — which
    /// is what lets [`Aggregator::decode_partials`] compute the only legal
    /// payload length before reading a single field.
    fn partial_state_bits(&self) -> usize {
        64 + MeanAccumulator::state_bits(self.shape.d)
            + self
                .shape
                .cats
                .iter()
                .map(|&(k, _)| FrequencyAccumulator::state_bits(k))
                .sum::<usize>()
    }

    /// Serializes every ordinal-keyed partial — the complete aggregate
    /// state minus the schema, which both sides already share — as an
    /// exact-length `BitWriter` payload. All counts are exact integers and
    /// every running sum travels as its raw `f64::to_bits` word, so a
    /// decode on a same-session aggregator followed by
    /// [`Aggregator::snapshot`] reproduces the original snapshot bit for
    /// bit. This is the epoch-checkpoint payload of
    /// [`crate::durable`].
    pub fn encode_partials(&self) -> Vec<u8> {
        let mut w = wire::BitWriter::new();
        w.write_bits(self.parts.len() as u64, 32);
        for (ordinal, part) in &self.parts {
            w.write_bits(*ordinal, 64);
            part.means.encode_state(&mut w);
            for f in &part.freqs {
                f.encode_state(&mut w);
            }
        }
        w.finish()
    }

    /// Replaces this aggregator's partials with state decoded from an
    /// [`Aggregator::encode_partials`] payload. The aggregator must have
    /// been built for the same protocol/ε/schema (the payload carries no
    /// schema of its own — a length mismatch against this aggregator's
    /// shape is rejected outright, trailing junk included).
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] on a payload whose length disagrees
    /// with this aggregator's schema or that repeats an ordinal.
    pub fn decode_partials(&mut self, bytes: &[u8]) -> Result<()> {
        let mut r = wire::BitReader::new(bytes);
        let count = r.read_bits(32)? as usize;
        let total_bits = 32 + count * self.partial_state_bits();
        if bytes.len() != total_bits.div_ceil(8) {
            return Err(LdpError::InvalidParameter {
                name: "partial_state",
                message: format!(
                    "payload is {} bytes but {count} partials of this schema need {}",
                    bytes.len(),
                    total_bits.div_ceil(8)
                ),
            });
        }
        let mut parts = BTreeMap::new();
        for _ in 0..count {
            let ordinal = r.read_bits(64)?;
            let mut part = Partial::new(&self.shape);
            part.means.decode_state(&mut r)?;
            for f in &mut part.freqs {
                f.decode_state(&mut r)?;
            }
            if parts.insert(ordinal, part).is_some() {
                return Err(LdpError::InvalidParameter {
                    name: "partial_state",
                    message: format!("ordinal {ordinal} encoded twice"),
                });
            }
        }
        self.parts = parts;
        Ok(())
    }

    /// Absorbs one report into this aggregator's own partial.
    ///
    /// Validates the report against the schema and protocol (arity, entry
    /// types, domains, sampled-entry count and ordering), so a malformed or
    /// cross-protocol report is rejected rather than silently biasing the
    /// estimates.
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] / [`LdpError::DimensionMismatch`] /
    /// [`LdpError::InvalidCategory`] on malformed reports.
    pub fn absorb(&mut self, report: &Report) -> Result<()> {
        match report {
            Report::Sampling(sparse) => {
                if !matches!(self.protocol, Protocol::Sampling { .. }) {
                    return Err(report_mismatch());
                }
                self.validate_sparse(sparse)?;
                let shape = &self.shape;
                let part = self
                    .parts
                    .entry(self.ordinal)
                    .or_insert_with(|| Partial::new(shape));
                for (j, rep) in &sparse.entries {
                    if let AttrReport::Categorical(cat) = rep {
                        let slot = shape.slot_of[*j as usize].expect("validated categorical");
                        part.freqs[slot].count_report(cat);
                    }
                }
                part.means.add_sparse(sparse)
            }
            Report::Composition(dense_rep) => {
                if !matches!(self.protocol, Protocol::BestEffort { .. }) {
                    return Err(report_mismatch());
                }
                self.validate_composition(dense_rep)?;
                let shape = &self.shape;
                // Scatter the numeric draws into a dense tuple so the mean
                // accumulator sees exactly what the fused engine feeds it.
                self.dense.iter_mut().for_each(|x| *x = 0.0);
                for (slot, &j) in shape.num_indices.iter().enumerate() {
                    self.dense[j] = dense_rep.numeric[slot];
                }
                let part = self
                    .parts
                    .entry(self.ordinal)
                    .or_insert_with(|| Partial::new(shape));
                for (slot, cat) in dense_rep.categorical.iter().enumerate() {
                    part.freqs[slot].count_report(cat);
                }
                part.means.add_dense(&self.dense)
            }
        }
    }

    /// Fused simulation path: encodes `tuple` with `encoder` and absorbs
    /// the resulting report in one pass, without materializing categorical
    /// payloads as report entries. Unary reports are absorbed *by backing
    /// word* into the accumulators' bit-sliced
    /// [`crate::WordHistogram`] planes, and GRR reports skip report
    /// objects entirely — the sampled ordinal goes straight to a counter
    /// increment (the word-level successor of the PR 3 per-hit engine).
    ///
    /// Consumes exactly the rng draws of [`ClientEncoder::encode_into`] and
    /// leaves the aggregator in exactly the state
    /// [`Aggregator::absorb`]-ing that report would (pinned by the
    /// `proptest_session` suite), so simulations can use this path and real
    /// collections the two-call path interchangeably.
    ///
    /// # Errors
    /// Rejects invalid tuples, and encoders whose protocol, budget or
    /// schema differ from this aggregator's.
    pub fn absorb_with<R: DrawSource + ?Sized>(
        &mut self,
        encoder: &ClientEncoder,
        tuple: &[AttrValue],
        rng: &mut R,
        scratch: &mut EncoderScratch,
    ) -> Result<()> {
        // Full session-identity check, in release builds too: a schema
        // mismatch would index accumulators out of range or silently bias
        // estimates. The specs comparison is a linear scan of small Copy
        // enums — noise next to the per-user perturbation work.
        if encoder.protocol != self.protocol
            || encoder.epsilon != self.epsilon
            || encoder.specs != self.specs
        {
            return Err(LdpError::InvalidParameter {
                name: "encoder",
                message: "encoder protocol/budget/schema differs from the aggregator's".into(),
            });
        }
        match &encoder.engine {
            Engine::Sampling(p) => {
                let ScratchInner::Sampling { scratch, fused } = &mut scratch.inner else {
                    return Err(scratch_mismatch());
                };
                let shape = &self.shape;
                let part = self
                    .parts
                    .entry(self.ordinal)
                    .or_insert_with(|| Partial::new(shape));
                if shape.any_word_level {
                    // Word-level fused engine: each sampled categorical
                    // attribute arrives as one complete view — the
                    // finished unary report's backing words (absorbed
                    // whole-word into the accumulator's bit-sliced plane)
                    // or GRR's bare ordinal (one counter increment, no
                    // report object).
                    p.perturb_wordwise(tuple, rng, fused, scratch, |view| match view {
                        CatReportView::Unary { attr, words } => {
                            let slot = shape.slot_of[attr as usize].expect("categorical index");
                            let acc = &mut part.freqs[slot];
                            acc.note_report();
                            acc.note_words(words);
                        }
                        CatReportView::Direct { attr, category } => {
                            let slot = shape.slot_of[attr as usize].expect("categorical index");
                            let acc = &mut part.freqs[slot];
                            acc.note_report();
                            acc.note_hit(category);
                        }
                    })?;
                } else {
                    // Sparse-report regime (every oracle expects only a
                    // handful of set bits): streaming each hit as it is
                    // placed beats re-reading the finished vector. Same
                    // draws, same counts — routing only.
                    let mut slot = 0usize;
                    p.perturb_counting(tuple, rng, fused, scratch, |obs| match obs {
                        CatObservation::Report { attr } => {
                            slot = shape.slot_of[attr as usize].expect("categorical index");
                            part.freqs[slot].note_report();
                        }
                        CatObservation::Hit { category, .. } => {
                            part.freqs[slot].note_hit(category);
                        }
                    })?;
                }
                part.means.add_sparse(fused)
            }
            Engine::Composition { numeric, oracles } => {
                let ScratchInner::Composition {
                    dense,
                    numeric_block,
                    noisy,
                    duchi,
                    cat_reports,
                } = &mut scratch.inner
                else {
                    return Err(scratch_mismatch());
                };
                encoder.validate(tuple)?;
                let shape = &self.shape;
                let part = self
                    .parts
                    .entry(self.ordinal)
                    .or_insert_with(|| Partial::new(shape));
                dense.iter_mut().for_each(|x| *x = 0.0);
                match numeric {
                    CompositionNumeric::None => {}
                    CompositionNumeric::PerAttr(mech) => {
                        for &j in &shape.num_indices {
                            let AttrValue::Numeric(x) = tuple[j] else {
                                unreachable!("validated above");
                            };
                            dense[j] = mech.perturb(x, &mut *rng)?;
                        }
                    }
                    CompositionNumeric::Duchi(md) => {
                        for (slot, &j) in shape.num_indices.iter().enumerate() {
                            let AttrValue::Numeric(x) = tuple[j] else {
                                unreachable!("validated above");
                            };
                            numeric_block[slot] = x;
                        }
                        md.perturb_into(
                            numeric_block,
                            &mut *rng,
                            noisy,
                            duchi.as_mut().expect("built with Duchi state"),
                        )?;
                        for (slot, &j) in shape.num_indices.iter().enumerate() {
                            dense[j] = noisy[slot];
                        }
                    }
                }
                for (slot, &j) in shape.cat_indices.iter().enumerate() {
                    let AttrValue::Categorical(v) = tuple[j] else {
                        unreachable!("validated above");
                    };
                    // Fused perturb-and-count: GRR reports go
                    // ordinal-direct (no report object at all); unary
                    // reports are absorbed by backing word when dense, or
                    // hit-by-hit as they are placed when sparse (identical
                    // counts either way — routing only).
                    let acc = &mut part.freqs[slot];
                    acc.note_report();
                    if let Some(grr) = oracles[slot].as_grr() {
                        acc.note_hit(grr.sample(v, &mut *rng)?);
                    } else if shape.word_level[slot] {
                        oracles[slot].perturb_into(v, &mut *rng, &mut cat_reports[slot])?;
                        let CategoricalReport::Bits(bits) = &cat_reports[slot] else {
                            unreachable!("unary oracles produce bit reports");
                        };
                        acc.note_words(bits.words());
                    } else {
                        oracles[slot].perturb_into_noting(
                            v,
                            &mut *rng,
                            &mut cat_reports[slot],
                            |c| acc.note_hit(c),
                        )?;
                    }
                }
                part.means.add_dense(dense)
            }
        }
    }

    /// Merges another aggregator's partials into this one. Order-invariant:
    /// partials keep their ordinals, and [`Aggregator::snapshot`] folds by
    /// ordinal, so `a.merge(b)` and `b.merge(a)` snapshot bit-identically.
    /// Two partials sharing an ordinal are combined pairwise in merge
    /// order — give shards distinct ordinals for strict order invariance.
    ///
    /// # Errors
    /// Rejects aggregators with a different protocol, budget or schema
    /// (merging them would silently bias every estimate).
    pub fn merge(&mut self, other: Aggregator) -> Result<()> {
        if other.protocol != self.protocol
            || other.epsilon != self.epsilon
            || other.specs != self.specs
        {
            return Err(LdpError::InvalidParameter {
                name: "aggregator",
                message: "cannot merge aggregators from different sessions".into(),
            });
        }
        for (ordinal, part) in other.parts {
            match self.parts.entry(ordinal) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(part);
                }
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    slot.get_mut().merge(&part)?;
                }
            }
        }
        Ok(())
    }

    /// The current estimates: folds every partial in ascending ordinal
    /// order and debiases once. Non-destructive — absorb more reports and
    /// snapshot again at any point.
    ///
    /// # Errors
    /// [`LdpError::EmptyInput`] before any report arrives.
    pub fn snapshot(&self) -> Result<CollectionResult> {
        let shape = &self.shape;
        let mut means = MeanAccumulator::new(shape.d);
        let mut freqs: Vec<FrequencyAccumulator> = shape
            .cats
            .iter()
            .map(|&(k, _)| FrequencyAccumulator::new(k, shape.scale))
            .collect();
        // BTreeMap iteration is ascending in ordinal: the canonical fold
        // order that makes the merged f64 sums independent of merge order.
        for part in self.parts.values() {
            means.merge(&part.means)?;
            for (acc, shard_acc) in freqs.iter_mut().zip(&part.freqs) {
                acc.merge(shard_acc)?;
            }
        }
        let n = means.n();
        let mean_est = means.estimate()?;
        let mut frequencies = Vec::with_capacity(shape.cat_indices.len());
        for (slot, &j) in shape.cat_indices.iter().enumerate() {
            // Every absorbed user counts toward the population, including
            // (under sampling) those whose k attributes missed this one.
            freqs[slot].set_population(n);
            frequencies.push((j, freqs[slot].estimate()?));
        }
        Ok(CollectionResult {
            n,
            means: shape
                .num_indices
                .iter()
                .map(|&j| (j, mean_est[j]))
                .collect(),
            frequencies,
        })
    }

    fn validate_sparse(&self, report: &SparseReport) -> Result<()> {
        let shape = &self.shape;
        if report.d != shape.d {
            return Err(LdpError::DimensionMismatch {
                expected: shape.d,
                actual: report.d,
            });
        }
        if report.entries.len() != shape.sampled_k {
            return Err(LdpError::InvalidParameter {
                name: "report",
                message: format!(
                    "sampling report must carry exactly {} entries, got {}",
                    shape.sampled_k,
                    report.entries.len()
                ),
            });
        }
        let mut prev: Option<u32> = None;
        for (j, rep) in &report.entries {
            if *j as usize >= shape.d {
                return Err(LdpError::InvalidParameter {
                    name: "report",
                    message: format!("attribute index {j} out of range {}", shape.d),
                });
            }
            if prev.is_some_and(|p| p >= *j) {
                return Err(LdpError::InvalidParameter {
                    name: "report",
                    message: "report entries must be strictly increasing in attribute".into(),
                });
            }
            prev = Some(*j);
            validate_entry(rep, &self.specs[*j as usize])?;
        }
        Ok(())
    }

    fn validate_composition(&self, report: &CompositionReport) -> Result<()> {
        let shape = &self.shape;
        if report.numeric.len() != shape.num_indices.len()
            || report.categorical.len() != shape.cat_indices.len()
        {
            return Err(LdpError::DimensionMismatch {
                expected: shape.d,
                actual: report.numeric.len() + report.categorical.len(),
            });
        }
        for x in &report.numeric {
            // One NaN would poison the mean sums for every later snapshot;
            // reject it here like the sparse path does.
            if !x.is_finite() {
                return Err(LdpError::InvalidParameter {
                    name: "report",
                    message: "numeric entry must be finite".into(),
                });
            }
        }
        for (slot, cat) in report.categorical.iter().enumerate() {
            let k = shape.cats[slot].0;
            validate_entry(
                &AttrReport::Categorical(cat.clone()),
                &AttrSpec::Categorical { k },
            )?;
        }
        Ok(())
    }
}

/// Validates one report entry against its attribute spec.
fn validate_entry(rep: &AttrReport, spec: &AttrSpec) -> Result<()> {
    match (rep, spec) {
        (AttrReport::Numeric(x), AttrSpec::Numeric) => {
            if x.is_finite() {
                Ok(())
            } else {
                Err(LdpError::InvalidParameter {
                    name: "report",
                    message: "numeric entry must be finite".into(),
                })
            }
        }
        (AttrReport::Categorical(CategoricalReport::Value(v)), AttrSpec::Categorical { k }) => {
            if v < k {
                Ok(())
            } else {
                Err(LdpError::InvalidCategory { value: *v, k: *k })
            }
        }
        (AttrReport::Categorical(CategoricalReport::Bits(bits)), AttrSpec::Categorical { k }) => {
            if bits.len() != *k {
                return Err(LdpError::DimensionMismatch {
                    expected: *k as usize,
                    actual: bits.len() as usize,
                });
            }
            // A deserialized report can violate BitVec's storage invariants
            // (stray bits past `len`, wrong word count); the word-level
            // count walk assumes them, so reject rather than panic or
            // miscount.
            if !bits.is_well_formed() {
                return Err(LdpError::InvalidParameter {
                    name: "report",
                    message: "unary report carries bits beyond its domain".into(),
                });
            }
            Ok(())
        }
        _ => Err(LdpError::InvalidParameter {
            name: "report",
            message: "report entry type disagrees with the schema".into(),
        }),
    }
}

fn report_mismatch() -> LdpError {
    LdpError::InvalidParameter {
        name: "report",
        message: "report variant does not match the aggregator's protocol".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_core::rng::seeded_rng;
    use ldp_core::{NumericKind, OracleKind};

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    fn mixed_specs() -> Vec<AttrSpec> {
        vec![
            AttrSpec::Numeric,
            AttrSpec::Categorical { k: 5 },
            AttrSpec::Numeric,
            AttrSpec::Categorical { k: 3 },
        ]
    }

    fn mixed_tuple(i: usize) -> Vec<AttrValue> {
        vec![
            AttrValue::Numeric(-1.0 + 2.0 * ((i % 7) as f64) / 6.0),
            AttrValue::Categorical((i % 5) as u32),
            AttrValue::Numeric(0.25),
            AttrValue::Categorical((i % 3) as u32),
        ]
    }

    const PROTOCOLS: [Protocol; 3] = [
        Protocol::Sampling {
            numeric: NumericKind::Hybrid,
            oracle: OracleKind::Oue,
        },
        Protocol::Sampling {
            numeric: NumericKind::Piecewise,
            oracle: OracleKind::Grr,
        },
        Protocol::BestEffort {
            numeric: BestEffortNumeric::PerAttribute(NumericKind::Laplace),
            oracle: OracleKind::Oue,
        },
    ];

    #[test]
    fn encode_absorb_matches_fused_absorb_bit_for_bit() {
        // The two public paths are the same computation: identical draws,
        // identical aggregator state, for both protocol families.
        for protocol in PROTOCOLS {
            let encoder = ClientEncoder::new(protocol, eps(2.0), mixed_specs()).unwrap();
            let mut rng_a = seeded_rng(71);
            let mut rng_b = seeded_rng(71);
            let mut two_call = encoder.aggregator().unwrap();
            let mut fused = encoder.aggregator().unwrap();
            let mut report = encoder.empty_report();
            let mut scratch_a = encoder.scratch();
            let mut scratch_b = encoder.scratch();
            for i in 0..400 {
                let tuple = mixed_tuple(i);
                encoder
                    .encode_into(&tuple, &mut rng_a, &mut report, &mut scratch_a)
                    .unwrap();
                two_call.absorb(&report).unwrap();
                fused
                    .absorb_with(&encoder, &tuple, &mut rng_b, &mut scratch_b)
                    .unwrap();
            }
            let a = two_call.snapshot().unwrap();
            let b = fused.snapshot().unwrap();
            assert_eq!(a.n, b.n);
            assert_eq!(a.mean_vector(), b.mean_vector(), "{protocol:?}");
            assert_eq!(a.frequencies, b.frequencies, "{protocol:?}");
        }
    }

    #[test]
    fn encode_matches_encode_into() {
        for protocol in PROTOCOLS {
            let encoder = ClientEncoder::new(protocol, eps(1.5), mixed_specs()).unwrap();
            let mut rng_a = seeded_rng(5);
            let mut rng_b = seeded_rng(5);
            let mut report = encoder.empty_report();
            let mut scratch = encoder.scratch();
            for i in 0..200 {
                let tuple = mixed_tuple(i);
                let owned = encoder.encode(&tuple, &mut rng_a).unwrap();
                encoder
                    .encode_into(&tuple, &mut rng_b, &mut report, &mut scratch)
                    .unwrap();
                assert_eq!(owned, report, "{protocol:?} round {i}");
            }
        }
    }

    #[test]
    fn merge_is_order_invariant_and_snapshot_is_incremental() {
        let protocol = PROTOCOLS[0];
        let encoder = ClientEncoder::new(protocol, eps(4.0), mixed_specs()).unwrap();
        let mut rng = seeded_rng(17);
        // Three shards with distinct ordinals.
        let mut shards: Vec<Aggregator> = (0..3)
            .map(|o| encoder.aggregator().unwrap().with_ordinal(o))
            .collect();
        for i in 0..600 {
            let report = encoder.encode(&mixed_tuple(i), &mut rng).unwrap();
            shards[i % 3].absorb(&report).unwrap();
        }
        // Snapshot mid-stream is allowed and non-destructive.
        let early = shards[0].snapshot().unwrap();
        assert_eq!(early.n, 200);

        let merge_in = |order: &[usize]| {
            let mut total = encoder.aggregator().unwrap();
            for &i in order {
                total.merge(shards[i].clone()).unwrap();
            }
            total.snapshot().unwrap()
        };
        let a = merge_in(&[0, 1, 2]);
        let b = merge_in(&[2, 0, 1]);
        let c = merge_in(&[1, 2, 0]);
        assert_eq!(a.n, 600);
        assert_eq!(a.mean_vector(), b.mean_vector());
        assert_eq!(a.frequencies, b.frequencies);
        assert_eq!(a.mean_vector(), c.mean_vector());
        assert_eq!(a.frequencies, c.frequencies);
    }

    #[test]
    fn absorb_rejects_malformed_reports() {
        let sampling = ClientEncoder::new(PROTOCOLS[0], eps(2.0), mixed_specs()).unwrap();
        let composition = ClientEncoder::new(PROTOCOLS[2], eps(2.0), mixed_specs()).unwrap();
        let mut rng = seeded_rng(3);
        let mut agg = sampling.aggregator().unwrap();

        // Cross-protocol reports are rejected.
        let dense = composition.encode(&mixed_tuple(0), &mut rng).unwrap();
        assert!(agg.absorb(&dense).is_err());
        let mut comp_agg = composition.aggregator().unwrap();
        let sparse = sampling.encode(&mixed_tuple(0), &mut rng).unwrap();
        assert!(comp_agg.absorb(&sparse).is_err());

        // Malformed sparse reports: wrong d, wrong entry count, unsorted
        // entries, out-of-range values.
        let Report::Sampling(good) = sampling.encode(&mixed_tuple(1), &mut rng).unwrap() else {
            unreachable!();
        };
        let mut wrong_d = good.clone();
        wrong_d.d = 9;
        assert!(agg.absorb(&Report::Sampling(wrong_d)).is_err());
        let mut extra = good.clone();
        extra.entries.extend(good.entries.iter().cloned());
        assert!(agg.absorb(&Report::Sampling(extra)).is_err());
        let mut dup = good.clone();
        if dup.entries.len() >= 2 {
            dup.entries[1] = dup.entries[0].clone();
            assert!(agg.absorb(&Report::Sampling(dup)).is_err());
        }

        // Malformed composition reports: wrong arity, out-of-domain value.
        let Report::Composition(mut bad) = composition.encode(&mixed_tuple(2), &mut rng).unwrap()
        else {
            unreachable!();
        };
        bad.categorical[0] = CategoricalReport::Value(99);
        assert!(comp_agg.absorb(&Report::Composition(bad.clone())).is_err());
        bad.categorical.pop();
        assert!(comp_agg.absorb(&Report::Composition(bad)).is_err());

        // Non-finite numeric entries would poison the mean sums forever.
        let Report::Composition(mut poisoned) =
            composition.encode(&mixed_tuple(3), &mut rng).unwrap()
        else {
            unreachable!();
        };
        poisoned.numeric[0] = f64::NAN;
        assert!(comp_agg.absorb(&Report::Composition(poisoned)).is_err());

        // Cross-session merges are rejected.
        let other = ClientEncoder::new(PROTOCOLS[0], eps(3.0), mixed_specs())
            .unwrap()
            .aggregator()
            .unwrap();
        assert!(agg.merge(other).is_err());
    }

    #[test]
    fn absorb_with_rejects_cross_session_encoders() {
        // Same protocol and ε but a different schema: the fused path must
        // return an error (in release builds too), never index another
        // session's accumulators.
        let encoder = ClientEncoder::new(PROTOCOLS[0], eps(2.0), mixed_specs()).unwrap();
        let bigger = vec![
            AttrSpec::Numeric,
            AttrSpec::Categorical { k: 9 },
            AttrSpec::Numeric,
            AttrSpec::Categorical { k: 3 },
        ];
        let foreign = ClientEncoder::new(PROTOCOLS[0], eps(2.0), bigger.clone()).unwrap();
        let mut agg = encoder.aggregator().unwrap();
        let mut rng = seeded_rng(4);
        let mut scratch = foreign.scratch();
        let tuple = vec![
            AttrValue::Numeric(0.0),
            AttrValue::Categorical(8),
            AttrValue::Numeric(0.0),
            AttrValue::Categorical(0),
        ];
        assert!(agg
            .absorb_with(&foreign, &tuple, &mut rng, &mut scratch)
            .is_err());
    }

    #[test]
    fn duchi_composition_round_trips_through_both_paths() {
        let protocol = Protocol::BestEffort {
            numeric: BestEffortNumeric::DuchiMultidim,
            oracle: OracleKind::Grr,
        };
        let encoder = ClientEncoder::new(protocol, eps(2.0), mixed_specs()).unwrap();
        let mut rng_a = seeded_rng(9);
        let mut rng_b = seeded_rng(9);
        let mut two_call = encoder.aggregator().unwrap();
        let mut fused = encoder.aggregator().unwrap();
        let mut scratch_a = encoder.scratch();
        let mut scratch_b = encoder.scratch();
        let mut report = encoder.empty_report();
        for i in 0..300 {
            let tuple = mixed_tuple(i);
            encoder
                .encode_into(&tuple, &mut rng_a, &mut report, &mut scratch_a)
                .unwrap();
            two_call.absorb(&report).unwrap();
            fused
                .absorb_with(&encoder, &tuple, &mut rng_b, &mut scratch_b)
                .unwrap();
        }
        let a = two_call.snapshot().unwrap();
        let b = fused.snapshot().unwrap();
        assert_eq!(a.mean_vector(), b.mean_vector());
        assert_eq!(a.frequencies, b.frequencies);
    }

    #[test]
    fn composition_wire_codec_round_trips_both_payload_kinds() {
        use ldp_core::multidim::wire;
        for oracle in [OracleKind::Oue, OracleKind::Grr] {
            let unary = oracle != OracleKind::Grr;
            let protocol = Protocol::BestEffort {
                numeric: BestEffortNumeric::PerAttribute(NumericKind::Laplace),
                oracle,
            };
            let encoder = ClientEncoder::new(protocol, eps(2.0), mixed_specs()).unwrap();
            let mut rng = seeded_rng(23);
            for i in 0..100 {
                let Report::Composition(report) =
                    encoder.encode(&mixed_tuple(i), &mut rng).unwrap()
                else {
                    unreachable!("composition protocol");
                };
                let bytes = report.encode_wire(encoder.specs());
                // The encoded size is the canonical accounting, exactly.
                assert_eq!(
                    bytes.len(),
                    wire::composition_report_bits(encoder.specs(), unary).div_ceil(8)
                );
                let back = CompositionReport::decode_wire(encoder.specs(), &bytes, unary).unwrap();
                assert_eq!(back, report, "{oracle:?} round {i}");
            }
        }
        // Truncated buffers are rejected, not misread.
        assert!(CompositionReport::decode_wire(&mixed_specs(), &[0u8; 2], true).is_err());
    }

    #[test]
    fn empty_aggregator_snapshot_fails() {
        let encoder = ClientEncoder::new(PROTOCOLS[0], eps(1.0), mixed_specs()).unwrap();
        let agg = encoder.aggregator().unwrap();
        assert!(agg.snapshot().is_err());
        assert_eq!(agg.users(), 0);
        assert_eq!(agg.partials(), 0);
    }
}
