//! Per-epoch privacy-budget ledger: at most one report per user per epoch.
//!
//! Under the paper's model every user spends their whole budget ε on a
//! single report per collection round. A client that submits twice — by
//! bug, retry, or malice — would have its two reports averaged into the
//! estimate as if they were independent users, and its *actual* privacy
//! loss would be 2ε while the server still advertises ε. Arcolezi et al.
//! (2022) demonstrate exactly this failure mode in deployed collectors;
//! the `ldp-audit` exemplar guards it with a hash-keyed seen-set, which is
//! the design reproduced here.
//!
//! The ledger never stores raw user ids. Each id is folded through a keyed
//! xxhash-style finalizer first, so a ledger dump reveals membership only
//! to someone who already holds both the key and the id — and two shards
//! given the same key admit/reject identically, which is what makes the
//! ledger [`merge`](BudgetLedger::merge) well-defined.

use ldp_core::{LdpError, Result};
use std::collections::{BTreeMap, HashSet};

/// Keyed finalizer over a user id: xxhash-style avalanche multiply-shifts.
///
/// Not a cryptographic MAC — it is a collision-resistant-in-practice mixer
/// that keeps raw ids out of ledger state and makes set membership
/// key-dependent. The constants are the XXH64 primes.
fn keyed_user_hash(key: u64, user: u64) -> u64 {
    let mut x = user ^ key.rotate_left(32) ^ 0x9E37_79B1_85EB_CA87;
    x ^= x >> 33;
    x = x.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    x ^= x >> 29;
    x = x.wrapping_mul(0x1656_67B1_9E37_79F9);
    x ^= x >> 32;
    x
}

/// Admission record for one epoch.
#[derive(Debug, Clone, Default)]
struct EpochLedger {
    /// Keyed hashes of every user admitted this epoch.
    seen: HashSet<u64>,
    /// Reports rejected because their user had already spent this epoch's
    /// budget.
    rejected: u64,
}

/// Tracks which users have spent their per-epoch privacy budget.
///
/// One ledger per service shard; shards constructed with the same key can
/// be [merged](BudgetLedger::merge) and behave exactly like one ledger that
/// saw the union of their streams.
///
/// ```
/// use ldp_analytics::ledger::BudgetLedger;
///
/// let mut ledger = BudgetLedger::with_key(42);
/// assert!(ledger.admit(7, 0).is_ok());   // first report: budget spent
/// assert!(ledger.admit(7, 0).is_err());  // second report, same epoch: rejected
/// assert!(ledger.admit(7, 1).is_ok());   // new epoch: fresh budget
/// assert_eq!(ledger.rejected(0), 1);
/// ```
#[derive(Debug, Clone)]
pub struct BudgetLedger {
    key: u64,
    epochs: BTreeMap<u64, EpochLedger>,
}

impl BudgetLedger {
    /// Create a ledger whose user-id hashing is keyed by `key`.
    ///
    /// Every shard of one logical service must use the same key, otherwise
    /// [`merge`](Self::merge) refuses to combine them (the seen-sets would
    /// be incomparable).
    pub fn with_key(key: u64) -> Self {
        BudgetLedger {
            key,
            epochs: BTreeMap::new(),
        }
    }

    /// The hashing key this ledger was built with.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// Try to spend `user`'s budget for `epoch`.
    ///
    /// The first call for a given (user, epoch) succeeds; every later one
    /// returns [`LdpError::DuplicateReport`] (carrying the keyed hash, not
    /// the raw id) and bumps the epoch's rejection counter.
    pub fn admit(&mut self, user: u64, epoch: u64) -> Result<()> {
        let hashed = keyed_user_hash(self.key, user);
        let entry = self.epochs.entry(epoch).or_default();
        if entry.seen.insert(hashed) {
            Ok(())
        } else {
            entry.rejected += 1;
            Err(LdpError::DuplicateReport {
                user: hashed,
                epoch,
            })
        }
    }

    /// Number of distinct users admitted in `epoch`.
    pub fn admitted(&self, epoch: u64) -> u64 {
        self.epochs.get(&epoch).map_or(0, |e| e.seen.len() as u64)
    }

    /// Number of duplicate reports rejected in `epoch`.
    pub fn rejected(&self, epoch: u64) -> u64 {
        self.epochs.get(&epoch).map_or(0, |e| e.rejected)
    }

    /// Total duplicate rejections across all epochs.
    pub fn total_rejected(&self) -> u64 {
        self.epochs.values().map(|e| e.rejected).sum()
    }

    /// Epochs this ledger has seen at least one report (or rejection) for.
    pub fn epochs(&self) -> impl Iterator<Item = u64> + '_ {
        self.epochs.keys().copied()
    }

    /// Fold another shard's ledger into this one.
    ///
    /// A user admitted by both shards was double-reported across the wire
    /// boundary; the merge admits them once and counts the overlap as a
    /// rejection, so the merged ledger is indistinguishable from one ledger
    /// that had processed both streams serially. Rejections already counted
    /// by either side carry over. Mismatched keys are a configuration error
    /// and are refused.
    pub fn merge(&mut self, other: BudgetLedger) -> Result<()> {
        if self.key != other.key {
            return Err(LdpError::InvalidParameter {
                name: "ledger_key",
                message: format!(
                    "cannot merge ledgers keyed {:#x} and {:#x}",
                    self.key, other.key
                ),
            });
        }
        for (epoch, theirs) in other.epochs {
            let ours = self.epochs.entry(epoch).or_default();
            ours.rejected += theirs.rejected;
            for hashed in theirs.seen {
                if !ours.seen.insert(hashed) {
                    ours.rejected += 1;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_report_admitted_second_rejected_and_counted() {
        let mut ledger = BudgetLedger::with_key(1);
        ledger.admit(99, 0).unwrap();
        let err = ledger.admit(99, 0).unwrap_err();
        assert!(matches!(err, LdpError::DuplicateReport { epoch: 0, .. }));
        assert_eq!(ledger.admitted(0), 1);
        assert_eq!(ledger.rejected(0), 1);
    }

    #[test]
    fn same_user_fresh_epoch_is_admitted() {
        let mut ledger = BudgetLedger::with_key(1);
        ledger.admit(99, 0).unwrap();
        ledger.admit(99, 1).unwrap();
        assert_eq!(ledger.admitted(0), 1);
        assert_eq!(ledger.admitted(1), 1);
        assert_eq!(ledger.total_rejected(), 0);
    }

    #[test]
    fn duplicate_error_carries_the_hash_not_the_id() {
        let mut ledger = BudgetLedger::with_key(7);
        ledger.admit(1234, 5).unwrap();
        match ledger.admit(1234, 5).unwrap_err() {
            LdpError::DuplicateReport { user, epoch } => {
                assert_eq!(epoch, 5);
                assert_ne!(user, 1234, "raw id must not appear in the error");
                assert_eq!(user, keyed_user_hash(7, 1234));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn different_keys_hash_users_differently() {
        assert_ne!(keyed_user_hash(1, 42), keyed_user_hash(2, 42));
        assert_ne!(keyed_user_hash(1, 42), keyed_user_hash(1, 43));
    }

    #[test]
    fn merge_does_not_double_admit() {
        let mut a = BudgetLedger::with_key(3);
        let mut b = BudgetLedger::with_key(3);
        // Users 0..10 on shard A, 5..15 on shard B: 5 users double-reported.
        for u in 0..10 {
            a.admit(u, 0).unwrap();
        }
        for u in 5..15 {
            b.admit(u, 0).unwrap();
        }
        a.merge(b).unwrap();
        assert_eq!(a.admitted(0), 15);
        assert_eq!(a.rejected(0), 5);
        // The merged ledger still rejects everyone it has seen.
        for u in 0..15 {
            assert!(a.admit(u, 0).is_err(), "user {u} re-admitted after merge");
        }
        assert_eq!(a.rejected(0), 20);
    }

    #[test]
    fn merge_carries_over_prior_rejections() {
        let mut a = BudgetLedger::with_key(3);
        let mut b = BudgetLedger::with_key(3);
        a.admit(1, 0).unwrap();
        let _ = a.admit(1, 0);
        b.admit(2, 0).unwrap();
        let _ = b.admit(2, 0);
        a.merge(b).unwrap();
        assert_eq!(a.admitted(0), 2);
        assert_eq!(a.rejected(0), 2);
    }

    #[test]
    fn merge_refuses_mismatched_keys() {
        let mut a = BudgetLedger::with_key(1);
        let b = BudgetLedger::with_key(2);
        assert!(matches!(
            a.merge(b),
            Err(LdpError::InvalidParameter {
                name: "ledger_key",
                ..
            })
        ));
    }

    #[test]
    fn merge_equals_serial_processing() {
        // Partition one interleaved stream across two shards; the merged
        // ledger must match a single ledger that saw the whole stream.
        let stream: Vec<(u64, u64)> = (0..200).map(|i| ((i * 7) % 60, i / 100)).collect();
        let mut single = BudgetLedger::with_key(9);
        for &(u, e) in &stream {
            let _ = single.admit(u, e);
        }

        let mut left = BudgetLedger::with_key(9);
        let mut right = BudgetLedger::with_key(9);
        for (i, &(u, e)) in stream.iter().enumerate() {
            let shard = if i % 2 == 0 { &mut left } else { &mut right };
            let _ = shard.admit(u, e);
        }
        left.merge(right).unwrap();

        for epoch in 0..2 {
            assert_eq!(left.admitted(epoch), single.admitted(epoch));
            assert_eq!(left.rejected(epoch), single.rejected(epoch));
        }
    }
}
