//! Per-epoch privacy-budget ledger: at most one report per user per epoch.
//!
//! Under the paper's model every user spends their whole budget ε on a
//! single report per collection round. A client that submits twice — by
//! bug, retry, or malice — would have its two reports averaged into the
//! estimate as if they were independent users, and its *actual* privacy
//! loss would be 2ε while the server still advertises ε. Arcolezi et al.
//! (2022) demonstrate exactly this failure mode in deployed collectors;
//! the `ldp-audit` exemplar guards it with a hash-keyed seen-set, which is
//! the design reproduced here.
//!
//! The ledger never stores raw user ids. Each id is folded through a keyed
//! xxhash-style finalizer first, so a ledger dump reveals membership only
//! to someone who already holds both the key and the id — and two shards
//! given the same key admit/reject identically, which is what makes the
//! ledger [`merge`](BudgetLedger::merge) well-defined.

use ldp_core::multidim::wire::{BitReader, BitWriter};
use ldp_core::{LdpError, Result};
use std::collections::{BTreeMap, HashSet};

/// Keyed finalizer over a user id: xxhash-style avalanche multiply-shifts.
///
/// Not a cryptographic MAC — it is a collision-resistant-in-practice mixer
/// that keeps raw ids out of ledger state and makes set membership
/// key-dependent. The constants are the XXH64 primes.
fn keyed_user_hash(key: u64, user: u64) -> u64 {
    let mut x = user ^ key.rotate_left(32) ^ 0x9E37_79B1_85EB_CA87;
    x ^= x >> 33;
    x = x.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    x ^= x >> 29;
    x = x.wrapping_mul(0x1656_67B1_9E37_79F9);
    x ^= x >> 32;
    x
}

/// Admission record for one epoch.
#[derive(Debug, Clone, Default)]
struct EpochLedger {
    /// Keyed hashes of every user admitted this epoch.
    seen: HashSet<u64>,
    /// Reports rejected because their user had already spent this epoch's
    /// budget.
    rejected: u64,
}

/// Tracks which users have spent their per-epoch privacy budget.
///
/// One ledger per service shard; shards constructed with the same key can
/// be [merged](BudgetLedger::merge) and behave exactly like one ledger that
/// saw the union of their streams.
///
/// ```
/// use ldp_analytics::ledger::BudgetLedger;
///
/// let mut ledger = BudgetLedger::with_key(42);
/// assert!(ledger.admit(7, 0).is_ok());   // first report: budget spent
/// assert!(ledger.admit(7, 0).is_err());  // second report, same epoch: rejected
/// assert!(ledger.admit(7, 1).is_ok());   // new epoch: fresh budget
/// assert_eq!(ledger.rejected(0), 1);
/// ```
#[derive(Debug, Clone)]
pub struct BudgetLedger {
    key: u64,
    epochs: BTreeMap<u64, EpochLedger>,
}

impl BudgetLedger {
    /// Create a ledger whose user-id hashing is keyed by `key`.
    ///
    /// Every shard of one logical service must use the same key, otherwise
    /// [`merge`](Self::merge) refuses to combine them (the seen-sets would
    /// be incomparable).
    pub fn with_key(key: u64) -> Self {
        BudgetLedger {
            key,
            epochs: BTreeMap::new(),
        }
    }

    /// The hashing key this ledger was built with.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// Try to spend `user`'s budget for `epoch`.
    ///
    /// The first call for a given (user, epoch) succeeds; every later one
    /// returns [`LdpError::DuplicateReport`] (carrying the keyed hash, not
    /// the raw id) and bumps the epoch's rejection counter.
    pub fn admit(&mut self, user: u64, epoch: u64) -> Result<()> {
        let hashed = keyed_user_hash(self.key, user);
        let entry = self.epochs.entry(epoch).or_default();
        if entry.seen.insert(hashed) {
            Ok(())
        } else {
            entry.rejected += 1;
            Err(LdpError::DuplicateReport {
                user: hashed,
                epoch,
            })
        }
    }

    /// Whether `user`'s budget for `epoch` is already spent, *without*
    /// counting a rejection. WAL replay uses this to skip records the
    /// checkpoint already covers: those skips are recovery bookkeeping, not
    /// client misbehaviour, so they must leave the rejection counters — and
    /// therefore every recovered snapshot — bit-identical to the clean run.
    pub fn contains(&self, user: u64, epoch: u64) -> bool {
        let hashed = keyed_user_hash(self.key, user);
        self.epochs
            .get(&epoch)
            .is_some_and(|e| e.seen.contains(&hashed))
    }

    /// Number of distinct users admitted in `epoch`.
    pub fn admitted(&self, epoch: u64) -> u64 {
        self.epochs.get(&epoch).map_or(0, |e| e.seen.len() as u64)
    }

    /// Number of duplicate reports rejected in `epoch`.
    pub fn rejected(&self, epoch: u64) -> u64 {
        self.epochs.get(&epoch).map_or(0, |e| e.rejected)
    }

    /// Total duplicate rejections across all epochs.
    pub fn total_rejected(&self) -> u64 {
        self.epochs.values().map(|e| e.rejected).sum()
    }

    /// Epochs this ledger has seen at least one report (or rejection) for.
    pub fn epochs(&self) -> impl Iterator<Item = u64> + '_ {
        self.epochs.keys().copied()
    }

    /// Serializes the ledger for an epoch checkpoint: the key, then per
    /// epoch its rejection counter and the *keyed hashes* of every admitted
    /// user, sorted ascending so the encoding is deterministic. Raw user
    /// ids were never stored, so none can leak here — a checkpoint file
    /// reveals membership only to a holder of both the key and an id.
    ///
    /// The payload is exact-length: [`BudgetLedger::decode_state`] rejects
    /// any buffer that does not end exactly where the declared counts say
    /// it should.
    pub fn encode_state(&self) -> Vec<u8> {
        let mut w = BitWriter::new();
        w.write_bits(self.key, 64);
        w.write_bits(self.epochs.len() as u64, 32);
        for (epoch, entry) in &self.epochs {
            w.write_bits(*epoch, 64);
            w.write_bits(entry.rejected, 64);
            w.write_bits(entry.seen.len() as u64, 64);
            let mut hashes: Vec<u64> = entry.seen.iter().copied().collect();
            hashes.sort_unstable();
            for h in hashes {
                w.write_bits(h, 64);
            }
        }
        w.finish()
    }

    /// Reconstructs a ledger from [`BudgetLedger::encode_state`] bytes. The
    /// stored hashes are installed directly (they were hashed under the
    /// encoded key, so admission checks against replayed raw ids keep
    /// matching), and every at-most-once guarantee resumes exactly where
    /// the checkpoint left off.
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] on a truncated buffer or trailing
    /// junk bytes.
    pub fn decode_state(bytes: &[u8]) -> Result<BudgetLedger> {
        let mut r = BitReader::new(bytes);
        let key = r.read_bits(64)?;
        let mut ledger = BudgetLedger::with_key(key);
        let epoch_count = r.read_bits(32)?;
        let mut bits = 64usize + 32;
        for _ in 0..epoch_count {
            let epoch = r.read_bits(64)?;
            let rejected = r.read_bits(64)?;
            let seen_len = r.read_bits(64)? as usize;
            let mut entry = EpochLedger {
                seen: HashSet::with_capacity(seen_len),
                rejected,
            };
            for _ in 0..seen_len {
                if !entry.seen.insert(r.read_bits(64)?) {
                    return Err(LdpError::InvalidParameter {
                        name: "ledger_state",
                        message: format!("duplicate seen-hash in epoch {epoch}"),
                    });
                }
            }
            if ledger.epochs.insert(epoch, entry).is_some() {
                return Err(LdpError::InvalidParameter {
                    name: "ledger_state",
                    message: format!("epoch {epoch} encoded twice"),
                });
            }
            bits += 3 * 64 + 64 * seen_len;
        }
        if bytes.len() != bits.div_ceil(8) {
            return Err(LdpError::InvalidParameter {
                name: "ledger_state",
                message: format!(
                    "payload is {} bytes but the declared counts need {}",
                    bytes.len(),
                    bits.div_ceil(8)
                ),
            });
        }
        Ok(ledger)
    }

    /// Fold another shard's ledger into this one.
    ///
    /// A user admitted by both shards was double-reported across the wire
    /// boundary; the merge admits them once and counts the overlap as a
    /// rejection, so the merged ledger is indistinguishable from one ledger
    /// that had processed both streams serially. Rejections already counted
    /// by either side carry over. Mismatched keys are a configuration error
    /// and are refused.
    pub fn merge(&mut self, other: BudgetLedger) -> Result<()> {
        if self.key != other.key {
            return Err(LdpError::InvalidParameter {
                name: "ledger_key",
                message: format!(
                    "cannot merge ledgers keyed {:#x} and {:#x}",
                    self.key, other.key
                ),
            });
        }
        for (epoch, theirs) in other.epochs {
            let ours = self.epochs.entry(epoch).or_default();
            ours.rejected += theirs.rejected;
            for hashed in theirs.seen {
                if !ours.seen.insert(hashed) {
                    ours.rejected += 1;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_report_admitted_second_rejected_and_counted() {
        let mut ledger = BudgetLedger::with_key(1);
        ledger.admit(99, 0).unwrap();
        let err = ledger.admit(99, 0).unwrap_err();
        assert!(matches!(err, LdpError::DuplicateReport { epoch: 0, .. }));
        assert_eq!(ledger.admitted(0), 1);
        assert_eq!(ledger.rejected(0), 1);
    }

    #[test]
    fn same_user_fresh_epoch_is_admitted() {
        let mut ledger = BudgetLedger::with_key(1);
        ledger.admit(99, 0).unwrap();
        ledger.admit(99, 1).unwrap();
        assert_eq!(ledger.admitted(0), 1);
        assert_eq!(ledger.admitted(1), 1);
        assert_eq!(ledger.total_rejected(), 0);
    }

    #[test]
    fn duplicate_error_carries_the_hash_not_the_id() {
        let mut ledger = BudgetLedger::with_key(7);
        ledger.admit(1234, 5).unwrap();
        match ledger.admit(1234, 5).unwrap_err() {
            LdpError::DuplicateReport { user, epoch } => {
                assert_eq!(epoch, 5);
                assert_ne!(user, 1234, "raw id must not appear in the error");
                assert_eq!(user, keyed_user_hash(7, 1234));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn different_keys_hash_users_differently() {
        assert_ne!(keyed_user_hash(1, 42), keyed_user_hash(2, 42));
        assert_ne!(keyed_user_hash(1, 42), keyed_user_hash(1, 43));
    }

    #[test]
    fn merge_does_not_double_admit() {
        let mut a = BudgetLedger::with_key(3);
        let mut b = BudgetLedger::with_key(3);
        // Users 0..10 on shard A, 5..15 on shard B: 5 users double-reported.
        for u in 0..10 {
            a.admit(u, 0).unwrap();
        }
        for u in 5..15 {
            b.admit(u, 0).unwrap();
        }
        a.merge(b).unwrap();
        assert_eq!(a.admitted(0), 15);
        assert_eq!(a.rejected(0), 5);
        // The merged ledger still rejects everyone it has seen.
        for u in 0..15 {
            assert!(a.admit(u, 0).is_err(), "user {u} re-admitted after merge");
        }
        assert_eq!(a.rejected(0), 20);
    }

    #[test]
    fn merge_carries_over_prior_rejections() {
        let mut a = BudgetLedger::with_key(3);
        let mut b = BudgetLedger::with_key(3);
        a.admit(1, 0).unwrap();
        let _ = a.admit(1, 0);
        b.admit(2, 0).unwrap();
        let _ = b.admit(2, 0);
        a.merge(b).unwrap();
        assert_eq!(a.admitted(0), 2);
        assert_eq!(a.rejected(0), 2);
    }

    #[test]
    fn state_codec_round_trips_and_rejects_length_mismatch() {
        let mut ledger = BudgetLedger::with_key(0x1cde_2019);
        for u in 0..40u64 {
            ledger.admit(u * 31, u % 3).unwrap();
        }
        let _ = ledger.admit(0, 0); // one rejection on record
        let bytes = ledger.encode_state();
        // Deterministic encoding despite HashSet-backed seen-sets.
        assert_eq!(bytes, ledger.encode_state());

        let back = BudgetLedger::decode_state(&bytes).unwrap();
        assert_eq!(back.key(), ledger.key());
        for epoch in 0..3 {
            assert_eq!(back.admitted(epoch), ledger.admitted(epoch));
            assert_eq!(back.rejected(epoch), ledger.rejected(epoch));
        }
        // The restored ledger still rejects every user it had admitted.
        let mut back = back;
        for u in 0..40u64 {
            assert!(back.admit(u * 31, u % 3).is_err(), "user {u} double-spent");
        }

        // Exact-length: trailing junk and truncation are both typed errors.
        let mut long = bytes.clone();
        long.extend_from_slice(&[0u8; 8]);
        assert!(BudgetLedger::decode_state(&long).is_err());
        assert!(BudgetLedger::decode_state(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn merge_refuses_mismatched_keys() {
        let mut a = BudgetLedger::with_key(1);
        let b = BudgetLedger::with_key(2);
        assert!(matches!(
            a.merge(b),
            Err(LdpError::InvalidParameter {
                name: "ledger_key",
                ..
            })
        ));
    }

    #[test]
    fn merge_equals_serial_processing() {
        // Partition one interleaved stream across two shards; the merged
        // ledger must match a single ledger that saw the whole stream.
        let stream: Vec<(u64, u64)> = (0..200).map(|i| ((i * 7) % 60, i / 100)).collect();
        let mut single = BudgetLedger::with_key(9);
        for &(u, e) in &stream {
            let _ = single.admit(u, e);
        }

        let mut left = BudgetLedger::with_key(9);
        let mut right = BudgetLedger::with_key(9);
        for (i, &(u, e)) in stream.iter().enumerate() {
            let shard = if i % 2 == 0 { &mut left } else { &mut right };
            let _ = shard.admit(u, e);
        }
        left.merge(right).unwrap();

        for epoch in 0..2 {
            assert_eq!(left.admitted(epoch), single.admitted(epoch));
            assert_eq!(left.rejected(epoch), single.rejected(epoch));
        }
    }
}
