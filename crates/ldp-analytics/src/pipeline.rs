//! End-to-end collection pipelines: dataset in, estimates out.
//!
//! Two protocol families, matching §VI-A's experimental setup:
//!
//! * [`Protocol::Sampling`] — the paper's proposal: Algorithm 4 over the
//!   full mixed schema, PM or HM for numeric attributes, a frequency oracle
//!   (OUE) for categorical ones, each sampled attribute at `ε/k`.
//! * [`Protocol::BestEffort`] — the best-effort combination of prior work:
//!   the numeric block gets `ε·d_num/d` (spent either per-attribute at `ε/d`
//!   via Laplace/SCDF/Staircase, or jointly via Duchi et al.'s Algorithm 3),
//!   and every categorical attribute gets `ε/d` through the oracle.
//!
//! ## Determinism model and scheduling
//!
//! A run's random draws are fully determined by three fixed quantities —
//! the shard count ([`DEFAULT_SHARDS`] unless overridden), the block size
//! ([`BLOCK_USERS`]), and the run seed. Each shard's contiguous user range
//! is chopped into blocks of at most [`BLOCK_USERS`] users; block `b` (in
//! user order) draws from an RNG seeded by `(run seed, b)` and accumulates
//! into its own local accumulators, which are merged in block order at the
//! end. Worker threads are pure *schedulers*: a deterministic work-stealing
//! runner hands blocks to whichever worker is idle (a shared atomic cursor
//! — idle workers steal the remaining blocks), so neither the worker count
//! nor the steal order can change a single bit of any estimate. That
//! invariant is what makes default-configuration runs reproducible across
//! machines with different core counts, and it is enforced in CI by a job
//! that diffs runs under different `--workers` values.
//!
//! The per-user loop is the system's hot path and is allocation-free in
//! steady state: each block wraps its seeded generator in an
//! [`ldp_core::rng::RngBlock`] (one monomorphized batched refill instead of
//! a virtual call per draw) and drives the session API's fused
//! [`Aggregator::absorb_with`] engine with caller-owned scratch — fully
//! monomorphized over the batched rng, with finished unary reports
//! absorbed whole 64-bit words at a time into the count-based
//! [`crate::FrequencyAccumulator`]'s bit-sliced [`crate::WordHistogram`]
//! plane (O(words) carry-save adds per report, per-category scatter
//! deferred to amortized flushes) and GRR direct reports going straight
//! from the sampled ordinal to a counter increment — so a report never
//! pays a per-set-bit scatter, a second walk over any bit vector, or an
//! O(k) support loop.
//!
//! [`Collector::run`] itself is a thin driver over the public
//! [`ClientEncoder`]/[`Aggregator`] session API: one encoder shared by all
//! blocks, one [`Aggregator`] partial per block (keyed by the block index
//! as its merge ordinal), merged and snapshotted at the end. Everything it
//! does can be reproduced — bit for bit — with the session API and the
//! public [`block_partition`]/[`block_rng`] helpers; the `proptest_session`
//! suite and the `distributed_collection` example do exactly that.

use crate::session::{Aggregator, ClientEncoder};
use ldp_core::rng::{seeded_rng, RngBlock};
use ldp_core::{AttrValue, Epsilon, LdpError, NumericKind, OracleKind, Result};
use ldp_data::Dataset;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default number of simulation shards.
///
/// Fixed (rather than derived from `available_parallelism`) so that
/// default-configuration runs are bit-for-bit reproducible across machines:
/// shards define the contiguous user ranges the seeded blocks partition, so
/// the shard count is part of the experiment's definition, not a hardware
/// detail. Override with [`Collector::with_shards`].
pub const DEFAULT_SHARDS: usize = 16;

/// Maximum users per scheduling block.
///
/// Blocks are the unit of both seeding and scheduling: each shard range is
/// chopped into blocks of at most this many users, block `b` draws from an
/// RNG derived from `(run seed, b)`, and the work-stealing runner hands
/// whole blocks to idle workers. The value is part of the determinism model
/// (changing it re-partitions the RNG streams), chosen so that typical
/// experiment sizes leave each shard a single block while paper-scale runs
/// (millions of users) still split into enough blocks to load-balance.
pub const BLOCK_USERS: usize = 16_384;

/// How the best-effort baseline spends the numeric block's budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BestEffortNumeric {
    /// Each numeric attribute independently at `ε/d` (Laplace, SCDF,
    /// Staircase, or any other 1-D mechanism).
    PerAttribute(NumericKind),
    /// The whole numeric sub-tuple jointly via Duchi et al.'s Algorithm 3 at
    /// `ε·d_num/d`.
    DuchiMultidim,
}

/// A complete collection protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Protocol {
    /// The paper's Algorithm 4 (+ §IV-C mixed-type extension).
    Sampling {
        /// 1-D mechanism for numeric attributes (paper: PM or HM).
        numeric: NumericKind,
        /// Frequency oracle for categorical attributes (paper: OUE).
        oracle: OracleKind,
    },
    /// Budget-splitting combination of existing methods (§VI-A baseline).
    BestEffort {
        /// Treatment of the numeric block.
        numeric: BestEffortNumeric,
        /// Frequency oracle, applied per categorical attribute at `ε/d`.
        oracle: OracleKind,
    },
}

impl Protocol {
    /// A short display name for experiment tables ("PM", "HM",
    /// "Laplace", "Duchi", …), matching the paper's figure legends.
    pub fn label(&self) -> String {
        match self {
            Protocol::Sampling { numeric, .. } => numeric.name().to_string(),
            Protocol::BestEffort {
                numeric: BestEffortNumeric::PerAttribute(kind),
                ..
            } => kind.name().to_string(),
            Protocol::BestEffort {
                numeric: BestEffortNumeric::DuchiMultidim,
                ..
            } => "Duchi".to_string(),
        }
    }
}

/// Aggregated estimates from one collection run.
#[derive(Debug, Clone)]
pub struct CollectionResult {
    /// Number of users that contributed.
    pub n: usize,
    /// `(attribute index, mean estimate)` for every numeric attribute, in
    /// canonical `[-1, 1]` scale.
    pub means: Vec<(usize, f64)>,
    /// `(attribute index, per-value frequency estimates)` for every
    /// categorical attribute.
    pub frequencies: Vec<(usize, Vec<f64>)>,
}

impl CollectionResult {
    /// Flattened mean estimates in attribute order.
    pub fn mean_vector(&self) -> Vec<f64> {
        self.means.iter().map(|(_, m)| *m).collect()
    }
}

/// Runs collection protocols over datasets.
///
/// ```
/// use ldp_analytics::{Collector, Protocol, numeric_mse};
/// use ldp_core::{Epsilon, NumericKind, OracleKind};
/// use ldp_data::synthetic::{gaussian, numeric_dataset};
///
/// let dataset = numeric_dataset(10_000, 4, gaussian(0.5), 3)?;
/// let collector = Collector::new(
///     Protocol::Sampling { numeric: NumericKind::Hybrid, oracle: OracleKind::Oue },
///     Epsilon::new(2.0)?,
/// );
/// let result = collector.run(&dataset, 1)?;
/// assert_eq!(result.means.len(), 4);
/// assert!(numeric_mse(&result, &dataset)? < 0.05);
/// # Ok::<(), ldp_core::LdpError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Collector {
    protocol: Protocol,
    epsilon: Epsilon,
    shards: usize,
    /// Worker-thread cap; `None` uses the machine's parallelism. Affects
    /// scheduling only — never results.
    workers: Option<usize>,
}

impl Collector {
    /// A collector with the default [`DEFAULT_SHARDS`] simulation shards,
    /// parallelized over all available cores. Results are identical on any
    /// machine: the worker-thread count never affects estimates.
    pub fn new(protocol: Protocol, epsilon: Epsilon) -> Self {
        Collector {
            protocol,
            epsilon,
            shards: DEFAULT_SHARDS,
            workers: None,
        }
    }

    /// Overrides the shard count (1 for exact single-stream determinism at
    /// small n). Shards define the contiguous ranges the seeded blocks
    /// partition, so changing the shard count changes the (equally valid)
    /// random draws.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Deprecated alias of [`Collector::with_shards`].
    ///
    /// The old name suggested an OS-thread cap, but the knob has always set
    /// the *simulation shard* count — part of the determinism model, never a
    /// scheduling detail. Use [`Collector::with_shards`] for shards and
    /// [`Collector::with_worker_threads`] for the worker cap.
    #[deprecated(
        since = "0.1.0",
        note = "renamed to `with_shards`; for an OS-thread cap use `with_worker_threads`"
    )]
    pub fn with_threads(self, shards: usize) -> Self {
        self.with_shards(shards)
    }

    /// Caps the number of OS worker threads in the work-stealing runner.
    /// This is a scheduling knob only: any worker count produces
    /// bit-identical estimates, because blocks — not workers — own the RNG
    /// streams and the merge order is fixed by block index.
    pub fn with_worker_threads(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// The protocol in use.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// Runs every block's closure across the worker pool, returning results
    /// in block order.
    ///
    /// Scheduling is deterministic work-stealing: a shared atomic cursor
    /// over the block list; each worker claims (steals) the next unclaimed
    /// block the moment it goes idle, so a straggler block never strands the
    /// rest of the pool the way the old statically striped scheduler could.
    /// Because every block owns its seed (derived from its index) and
    /// results are scattered back into index-ordered slots, neither the
    /// worker count nor the steal order can affect what this returns — only
    /// how fast it returns it.
    fn run_blocks<T, F>(&self, n: usize, f: F) -> Vec<Result<T>>
    where
        T: Send,
        F: Fn(usize, std::ops::Range<usize>) -> Result<T> + Sync,
    {
        let blocks = block_partition(n, self.shards);
        let workers = self
            .workers
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()))
            .clamp(1, blocks.len());
        let mut slots: Vec<Option<Result<T>>> = (0..blocks.len()).map(|_| None).collect();
        if workers == 1 {
            for (b, range) in blocks.iter().enumerate() {
                slots[b] = Some(f(b, range.clone()));
            }
        } else {
            let next = AtomicUsize::new(0);
            let per_worker: Vec<Vec<(usize, Result<T>)>> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        let blocks = &blocks;
                        let next = &next;
                        let f = &f;
                        scope.spawn(move || {
                            let mut done = Vec::new();
                            loop {
                                let b = next.fetch_add(1, Ordering::Relaxed);
                                let Some(range) = blocks.get(b) else { break };
                                done.push((b, f(b, range.clone())));
                            }
                            done
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("block worker panicked"))
                    .collect()
            });
            for (b, res) in per_worker.into_iter().flatten() {
                slots[b] = Some(res);
            }
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every block is claimed by exactly one worker"))
            .collect()
    }

    /// Simulates every user perturbing her tuple and aggregates the reports.
    ///
    /// A thin driver over the public session API: one [`ClientEncoder`]
    /// shared by every block, one [`Aggregator`] partial per block (the
    /// block index is its merge ordinal), all partials merged and
    /// snapshotted at the end. Per block the fused
    /// [`Aggregator::absorb_with`] engine runs — batched rng, streaming
    /// perturb-and-count — so the redesigned surface sits on the same hot
    /// path as before, and per-block aggregates merge in block-ordinal
    /// order, bit-identical for any worker count or merge order.
    ///
    /// # Errors
    /// Propagates schema/validation failures from the underlying mechanisms
    /// and rejects empty datasets.
    pub fn run(&self, dataset: &Dataset, seed: u64) -> Result<CollectionResult> {
        if dataset.n() == 0 {
            return Err(LdpError::EmptyInput("rows"));
        }
        let schema = dataset.schema();
        let encoder = ClientEncoder::new(self.protocol, self.epsilon, schema.attr_specs())?;
        let results = self.run_blocks(dataset.n(), |b, range| {
            // Batched, monomorphized, fused hot path: every draw comes from
            // the block's buffered generator with no dyn dispatch, and
            // categorical hits stream straight into the count accumulators
            // as they are placed (no second walk over any bit vector).
            let mut rng: RngBlock<rand::rngs::StdRng> = RngBlock::new(block_rng(seed, b));
            let mut agg = encoder.aggregator()?.with_ordinal(b as u64);
            let mut scratch = encoder.scratch();
            let mut tuple: Vec<AttrValue> = Vec::with_capacity(schema.d());
            for i in range {
                dataset.canonical_tuple_into(i, &mut tuple);
                agg.absorb_with(&encoder, &tuple, &mut rng, &mut scratch)?;
            }
            Ok(agg)
        });
        let mut total: Option<Aggregator> = None;
        for res in results {
            let agg = res?;
            match &mut total {
                None => total = Some(agg),
                Some(t) => t.merge(agg)?,
            }
        }
        total
            .expect("dataset is non-empty, so at least one block ran")
            .snapshot()
    }
}

/// Splits `0..n` into at most `threads` contiguous ranges.
fn shard_ranges(n: usize, threads: usize) -> Vec<std::ops::Range<usize>> {
    let threads = threads.clamp(1, n.max(1));
    let base = n / threads;
    let extra = n % threads;
    let mut out = Vec::with_capacity(threads);
    let mut start = 0usize;
    for c in 0..threads {
        let len = base + usize::from(c < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// The deterministic block partition: every shard range chopped into blocks
/// of at most [`BLOCK_USERS`] users, listed in user order. This layout —
/// together with [`block_rng`] — *is* the run's randomness structure; the
/// scheduler merely decides which worker executes which block.
///
/// Public because it is the contract a distributed collection needs to
/// reproduce a [`Collector::run`] bit for bit: feed block `b`'s users
/// through a [`ClientEncoder`] with an [`ldp_core::rng::RngBlock`] over
/// [`block_rng`]`(seed, b)` into an [`Aggregator`] with ordinal `b`, then
/// merge the partials in any order.
pub fn block_partition(n: usize, shards: usize) -> Vec<std::ops::Range<usize>> {
    let shard_list = shard_ranges(n, shards);
    let mut out = Vec::with_capacity(shard_list.len());
    for shard in shard_list {
        let mut start = shard.start;
        while shard.end - start > BLOCK_USERS {
            out.push(start..start + BLOCK_USERS);
            start += BLOCK_USERS;
        }
        out.push(start..shard.end);
    }
    out
}

/// Decorrelated per-block RNG, derived from `(run seed, block index)`.
///
/// When every shard fits in a single block (n ≤ shards · [`BLOCK_USERS`]),
/// block indices coincide with shard indices and this reproduces the
/// pre-block per-shard streams exactly. Public for the same reason as
/// [`block_partition`]: it is half of the determinism contract.
pub fn block_rng(seed: u64, block: usize) -> rand::rngs::StdRng {
    seeded_rng(seed ^ (block as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// MSE of the mean estimates over the numeric attributes, against the
/// dataset's ground truth (the y-axis of Figures 4(a,b), 5, 6, 7(a), 8(a)).
///
/// # Errors
/// Propagates ground-truth computation failures.
pub fn numeric_mse(result: &CollectionResult, dataset: &Dataset) -> Result<f64> {
    if result.means.is_empty() {
        return Err(LdpError::EmptyInput("numeric attributes"));
    }
    let mut total = 0.0;
    for (j, est) in &result.means {
        let truth = dataset.true_mean(*j)?;
        total += (est - truth) * (est - truth);
    }
    Ok(total / result.means.len() as f64)
}

/// MSE of the frequency estimates over every value of every categorical
/// attribute (the y-axis of Figures 4(c,d), 7(b), 8(b)).
///
/// # Errors
/// Propagates ground-truth computation failures.
pub fn categorical_mse(result: &CollectionResult, dataset: &Dataset) -> Result<f64> {
    if result.frequencies.is_empty() {
        return Err(LdpError::EmptyInput("categorical attributes"));
    }
    let mut total = 0.0;
    let mut count = 0usize;
    for (j, est) in &result.frequencies {
        let truth = dataset.true_frequencies(*j)?;
        for (e, t) in est.iter().zip(&truth) {
            total += (e - t) * (e - t);
            count += 1;
        }
    }
    Ok(total / count as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_data::census::generate_br;
    use ldp_data::synthetic::{gaussian, numeric_dataset};

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn sampling_protocol_estimates_numeric_means() {
        let ds = numeric_dataset(60_000, 4, gaussian(0.3), 42).unwrap();
        let collector = Collector::new(
            Protocol::Sampling {
                numeric: NumericKind::Hybrid,
                oracle: OracleKind::Oue,
            },
            eps(4.0),
        )
        .with_shards(4);
        let result = collector.run(&ds, 7).unwrap();
        assert_eq!(result.n, 60_000);
        assert_eq!(result.means.len(), 4);
        assert!(result.frequencies.is_empty());
        for (j, est) in &result.means {
            let truth = ds.true_mean(*j).unwrap();
            assert!((est - truth).abs() < 0.1, "attr {j}: {est} vs {truth}");
        }
        let mse = numeric_mse(&result, &ds).unwrap();
        assert!(mse < 0.01, "MSE {mse}");
    }

    #[test]
    fn best_effort_duchi_estimates_numeric_means() {
        let ds = numeric_dataset(60_000, 4, gaussian(0.0), 43).unwrap();
        let collector = Collector::new(
            Protocol::BestEffort {
                numeric: BestEffortNumeric::DuchiMultidim,
                oracle: OracleKind::Oue,
            },
            eps(4.0),
        )
        .with_shards(4);
        let result = collector.run(&ds, 8).unwrap();
        for (j, est) in &result.means {
            let truth = ds.true_mean(*j).unwrap();
            assert!((est - truth).abs() < 0.15, "attr {j}: {est} vs {truth}");
        }
    }

    #[test]
    fn mixed_census_pipeline_produces_both_estimate_kinds() {
        let ds = generate_br(30_000, 9).unwrap();
        let collector = Collector::new(
            Protocol::Sampling {
                numeric: NumericKind::Piecewise,
                oracle: OracleKind::Oue,
            },
            eps(4.0),
        )
        .with_shards(4);
        let result = collector.run(&ds, 9).unwrap();
        assert_eq!(result.means.len(), 6);
        assert_eq!(result.frequencies.len(), 10);
        for (j, freqs) in &result.frequencies {
            let truth = ds.true_frequencies(*j).unwrap();
            assert_eq!(freqs.len(), truth.len());
        }
        // Sanity on magnitudes rather than exact values at this n.
        let nm = numeric_mse(&result, &ds).unwrap();
        let cm = categorical_mse(&result, &ds).unwrap();
        assert!(nm < 0.05, "numeric MSE {nm}");
        assert!(cm < 0.05, "categorical MSE {cm}");
    }

    #[test]
    fn proposed_beats_best_effort_on_census() {
        // The headline claim of Figure 4, at reduced scale: Algorithm 4 with
        // HM beats the Laplace-split baseline on numeric MSE, and beats the
        // OUE-split baseline on categorical MSE. Averaged over a few runs to
        // keep the test stable.
        let ds = generate_br(20_000, 10).unwrap();
        let e = eps(1.0);
        let proposed = Collector::new(
            Protocol::Sampling {
                numeric: NumericKind::Hybrid,
                oracle: OracleKind::Oue,
            },
            e,
        )
        .with_shards(4);
        let baseline = Collector::new(
            Protocol::BestEffort {
                numeric: BestEffortNumeric::PerAttribute(NumericKind::Laplace),
                oracle: OracleKind::Oue,
            },
            e,
        )
        .with_shards(4);
        let runs = 5;
        let (mut p_num, mut p_cat, mut b_num, mut b_cat) = (0.0, 0.0, 0.0, 0.0);
        for r in 0..runs {
            let p = proposed.run(&ds, 100 + r).unwrap();
            let b = baseline.run(&ds, 200 + r).unwrap();
            p_num += numeric_mse(&p, &ds).unwrap();
            p_cat += categorical_mse(&p, &ds).unwrap();
            b_num += numeric_mse(&b, &ds).unwrap();
            b_cat += categorical_mse(&b, &ds).unwrap();
        }
        assert!(
            p_num < b_num,
            "numeric: proposed {p_num} vs baseline {b_num}"
        );
        assert!(
            p_cat < b_cat,
            "categorical: proposed {p_cat} vs baseline {b_cat}"
        );
    }

    #[test]
    fn worker_thread_count_never_affects_estimates() {
        // The worker pool is a scheduling detail: shards own the RNG
        // streams and the merge order, so any worker count must produce
        // bit-identical estimates (this is what makes the default
        // configuration reproducible across machines with different core
        // counts).
        let ds = generate_br(6_000, 11).unwrap();
        for protocol in [
            Protocol::Sampling {
                numeric: NumericKind::Hybrid,
                oracle: OracleKind::Oue,
            },
            Protocol::BestEffort {
                numeric: BestEffortNumeric::DuchiMultidim,
                oracle: OracleKind::Grr,
            },
        ] {
            let base = Collector::new(protocol, eps(2.0));
            let default = base.clone().run(&ds, 3).unwrap();
            for workers in [1usize, 3, 64] {
                let capped = base
                    .clone()
                    .with_worker_threads(workers)
                    .run(&ds, 3)
                    .unwrap();
                assert_eq!(default.mean_vector(), capped.mean_vector(), "{workers}");
                assert_eq!(default.frequencies, capped.frequencies, "{workers}");
            }
        }
    }

    #[test]
    fn multi_block_shards_are_invariant_to_workers_and_steal_order() {
        // Force shard ranges larger than BLOCK_USERS so a single shard
        // splits into several seeded blocks, then check the work-stealing
        // runner still produces bit-identical estimates for every worker
        // count (steal order varies run to run; results must not).
        let n = 2 * BLOCK_USERS + 777;
        let ds = numeric_dataset(n, 2, gaussian(0.1), 46).unwrap();
        let base = Collector::new(
            Protocol::Sampling {
                numeric: NumericKind::Hybrid,
                oracle: OracleKind::Oue,
            },
            eps(2.0),
        )
        .with_shards(2); // 2 shards → 2–3 blocks each
        let reference = base.clone().with_worker_threads(1).run(&ds, 21).unwrap();
        for workers in [2usize, 5, 32] {
            let got = base
                .clone()
                .with_worker_threads(workers)
                .run(&ds, 21)
                .unwrap();
            assert_eq!(reference.mean_vector(), got.mean_vector(), "{workers}");
        }
    }

    #[test]
    fn default_shard_count_is_the_documented_constant() {
        // Collector::new must behave exactly like an explicit override with
        // DEFAULT_SHARDS — i.e. the default no longer depends on
        // available_parallelism.
        let ds = numeric_dataset(4_000, 2, gaussian(0.2), 45).unwrap();
        let protocol = Protocol::Sampling {
            numeric: NumericKind::Hybrid,
            oracle: OracleKind::Oue,
        };
        let a = Collector::new(protocol, eps(1.0)).run(&ds, 12).unwrap();
        let b = Collector::new(protocol, eps(1.0))
            .with_shards(DEFAULT_SHARDS)
            .run(&ds, 12)
            .unwrap();
        assert_eq!(a.mean_vector(), b.mean_vector());
        // And a different shard count draws different (equally valid)
        // streams — the override is doing something.
        let c = Collector::new(protocol, eps(1.0))
            .with_shards(DEFAULT_SHARDS + 1)
            .run(&ds, 12)
            .unwrap();
        assert_ne!(a.mean_vector(), c.mean_vector());
    }

    #[test]
    fn single_thread_run_is_deterministic() {
        let ds = numeric_dataset(5_000, 3, gaussian(0.5), 44).unwrap();
        let collector = Collector::new(
            Protocol::Sampling {
                numeric: NumericKind::Piecewise,
                oracle: OracleKind::Oue,
            },
            eps(1.0),
        )
        .with_shards(1);
        let a = collector.run(&ds, 5).unwrap();
        let b = collector.run(&ds, 5).unwrap();
        assert_eq!(a.mean_vector(), b.mean_vector());
        let c = collector.run(&ds, 6).unwrap();
        assert_ne!(a.mean_vector(), c.mean_vector());
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_with_threads_forwards_to_with_shards() {
        let ds = numeric_dataset(2_000, 2, gaussian(0.2), 48).unwrap();
        let protocol = Protocol::Sampling {
            numeric: NumericKind::Hybrid,
            oracle: OracleKind::Oue,
        };
        let a = Collector::new(protocol, eps(1.0))
            .with_shards(3)
            .run(&ds, 2)
            .unwrap();
        let b = Collector::new(protocol, eps(1.0))
            .with_threads(3)
            .run(&ds, 2)
            .unwrap();
        assert_eq!(a.mean_vector(), b.mean_vector());
        assert_eq!(a.frequencies, b.frequencies);
    }

    #[test]
    fn protocol_labels() {
        assert_eq!(
            Protocol::Sampling {
                numeric: NumericKind::Hybrid,
                oracle: OracleKind::Oue
            }
            .label(),
            "HM"
        );
        assert_eq!(
            Protocol::BestEffort {
                numeric: BestEffortNumeric::PerAttribute(NumericKind::Scdf),
                oracle: OracleKind::Oue
            }
            .label(),
            "SCDF"
        );
        assert_eq!(
            Protocol::BestEffort {
                numeric: BestEffortNumeric::DuchiMultidim,
                oracle: OracleKind::Oue
            }
            .label(),
            "Duchi"
        );
    }

    #[test]
    fn empty_dataset_is_rejected() {
        use ldp_data::{Attribute, Column, Schema};
        let schema = Schema::new(vec![Attribute::numeric("x", -1.0, 1.0).unwrap()]).unwrap();
        let ds = Dataset::new(schema, vec![Column::Numeric(vec![])]).unwrap();
        let collector = Collector::new(
            Protocol::Sampling {
                numeric: NumericKind::Piecewise,
                oracle: OracleKind::Oue,
            },
            eps(1.0),
        );
        assert!(collector.run(&ds, 0).is_err());
    }
}
