//! End-to-end collection pipelines: dataset in, estimates out.
//!
//! Two protocol families, matching §VI-A's experimental setup:
//!
//! * [`Protocol::Sampling`] — the paper's proposal: Algorithm 4 over the
//!   full mixed schema, PM or HM for numeric attributes, a frequency oracle
//!   (OUE) for categorical ones, each sampled attribute at `ε/k`.
//! * [`Protocol::BestEffort`] — the best-effort combination of prior work:
//!   the numeric block gets `ε·d_num/d` (spent either per-attribute at `ε/d`
//!   via Laplace/SCDF/Staircase, or jointly via Duchi et al.'s Algorithm 3),
//!   and every categorical attribute gets `ε/d` through the oracle.
//!
//! Users are simulated in parallel shards (std scoped threads); each shard
//! owns a seeded RNG and local accumulators which are merged at the end.

use crate::frequency::FrequencyAccumulator;
use crate::mean::MeanAccumulator;
use ldp_core::multidim::{DuchiMultidim, SamplingPerturber};
use ldp_core::rng::seeded_rng;
use ldp_core::{AttrReport, AttrValue, Epsilon, LdpError, NumericKind, OracleKind, Result};
use ldp_data::Dataset;
use serde::{Deserialize, Serialize};

/// How the best-effort baseline spends the numeric block's budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BestEffortNumeric {
    /// Each numeric attribute independently at `ε/d` (Laplace, SCDF,
    /// Staircase, or any other 1-D mechanism).
    PerAttribute(NumericKind),
    /// The whole numeric sub-tuple jointly via Duchi et al.'s Algorithm 3 at
    /// `ε·d_num/d`.
    DuchiMultidim,
}

/// A complete collection protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Protocol {
    /// The paper's Algorithm 4 (+ §IV-C mixed-type extension).
    Sampling {
        /// 1-D mechanism for numeric attributes (paper: PM or HM).
        numeric: NumericKind,
        /// Frequency oracle for categorical attributes (paper: OUE).
        oracle: OracleKind,
    },
    /// Budget-splitting combination of existing methods (§VI-A baseline).
    BestEffort {
        /// Treatment of the numeric block.
        numeric: BestEffortNumeric,
        /// Frequency oracle, applied per categorical attribute at `ε/d`.
        oracle: OracleKind,
    },
}

impl Protocol {
    /// A short display name for experiment tables ("PM", "HM",
    /// "Laplace", "Duchi", …), matching the paper's figure legends.
    pub fn label(&self) -> String {
        match self {
            Protocol::Sampling { numeric, .. } => numeric.name().to_string(),
            Protocol::BestEffort {
                numeric: BestEffortNumeric::PerAttribute(kind),
                ..
            } => kind.name().to_string(),
            Protocol::BestEffort {
                numeric: BestEffortNumeric::DuchiMultidim,
                ..
            } => "Duchi".to_string(),
        }
    }
}

/// Aggregated estimates from one collection run.
#[derive(Debug, Clone)]
pub struct CollectionResult {
    /// Number of users that contributed.
    pub n: usize,
    /// `(attribute index, mean estimate)` for every numeric attribute, in
    /// canonical `[-1, 1]` scale.
    pub means: Vec<(usize, f64)>,
    /// `(attribute index, per-value frequency estimates)` for every
    /// categorical attribute.
    pub frequencies: Vec<(usize, Vec<f64>)>,
}

impl CollectionResult {
    /// Flattened mean estimates in attribute order.
    pub fn mean_vector(&self) -> Vec<f64> {
        self.means.iter().map(|(_, m)| *m).collect()
    }
}

/// Runs collection protocols over datasets.
///
/// ```
/// use ldp_analytics::{Collector, Protocol, numeric_mse};
/// use ldp_core::{Epsilon, NumericKind, OracleKind};
/// use ldp_data::synthetic::{gaussian, numeric_dataset};
///
/// let dataset = numeric_dataset(10_000, 4, gaussian(0.5), 3)?;
/// let collector = Collector::new(
///     Protocol::Sampling { numeric: NumericKind::Hybrid, oracle: OracleKind::Oue },
///     Epsilon::new(2.0)?,
/// );
/// let result = collector.run(&dataset, 1)?;
/// assert_eq!(result.means.len(), 4);
/// assert!(numeric_mse(&result, &dataset)? < 0.05);
/// # Ok::<(), ldp_core::LdpError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Collector {
    protocol: Protocol,
    epsilon: Epsilon,
    threads: usize,
}

impl Collector {
    /// A collector using all available cores.
    pub fn new(protocol: Protocol, epsilon: Epsilon) -> Self {
        let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
        Collector {
            protocol,
            epsilon,
            threads,
        }
    }

    /// Overrides the shard count (1 for exact single-stream determinism; the
    /// default sharding is deterministic only for a fixed thread count).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The protocol in use.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// Simulates every user perturbing her tuple and aggregates the reports.
    ///
    /// # Errors
    /// Propagates schema/validation failures from the underlying mechanisms
    /// and rejects empty datasets.
    pub fn run(&self, dataset: &Dataset, seed: u64) -> Result<CollectionResult> {
        if dataset.n() == 0 {
            return Err(LdpError::EmptyInput("rows"));
        }
        match self.protocol {
            Protocol::Sampling { numeric, oracle } => {
                self.run_sampling(dataset, numeric, oracle, seed)
            }
            Protocol::BestEffort { numeric, oracle } => {
                self.run_best_effort(dataset, numeric, oracle, seed)
            }
        }
    }

    fn run_sampling(
        &self,
        dataset: &Dataset,
        numeric: NumericKind,
        oracle: OracleKind,
        seed: u64,
    ) -> Result<CollectionResult> {
        let schema = dataset.schema();
        let d = schema.d();
        let perturber = SamplingPerturber::new(self.epsilon, schema.attr_specs(), numeric, oracle)?;
        let scale = perturber.scale();
        let cat_indices = schema.categorical_indices();

        let shards = shard_ranges(dataset.n(), self.threads);
        let results: Vec<Result<(MeanAccumulator, Vec<FrequencyAccumulator>)>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = shards
                    .iter()
                    .enumerate()
                    .map(|(c, range)| {
                        let perturber = &perturber;
                        let cat_indices = &cat_indices;
                        let range = range.clone();
                        scope.spawn(move || {
                            let mut rng = shard_rng(seed, c);
                            let mut means = MeanAccumulator::new(d);
                            let mut freqs: Vec<FrequencyAccumulator> = cat_indices
                                .iter()
                                .map(|&j| {
                                    let k = perturber.oracle(j).expect("categorical").k();
                                    FrequencyAccumulator::new(k, scale)
                                })
                                .collect();
                            let mut tuple: Vec<AttrValue> = Vec::with_capacity(d);
                            for i in range {
                                dataset.canonical_tuple_into(i, &mut tuple);
                                let report = perturber.perturb(&tuple, &mut rng)?;
                                for (j, rep) in &report.entries {
                                    if let AttrReport::Categorical(cat) = rep {
                                        let slot = cat_indices
                                            .iter()
                                            .position(|&x| x == *j as usize)
                                            .expect("categorical index");
                                        let oracle =
                                            perturber.oracle(*j as usize).expect("categorical");
                                        freqs[slot].add(oracle, cat);
                                    }
                                }
                                means.add_sparse(&report)?;
                            }
                            Ok((means, freqs))
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard panicked"))
                    .collect()
            });

        let mut means = MeanAccumulator::new(d);
        let mut freqs: Vec<FrequencyAccumulator> = cat_indices
            .iter()
            .map(|&j| {
                let k = perturber.oracle(j).expect("categorical").k();
                FrequencyAccumulator::new(k, scale)
            })
            .collect();
        for res in results {
            let (m, fs) = res?;
            means.merge(&m)?;
            for (acc, shard_acc) in freqs.iter_mut().zip(&fs) {
                acc.merge(shard_acc)?;
            }
        }
        let n = dataset.n();
        let mean_est = means.estimate()?;
        let mut frequencies = Vec::with_capacity(cat_indices.len());
        for (slot, &j) in cat_indices.iter().enumerate() {
            freqs[slot].set_population(n);
            frequencies.push((j, freqs[slot].estimate()?));
        }
        Ok(CollectionResult {
            n,
            means: schema
                .numeric_indices()
                .into_iter()
                .map(|j| (j, mean_est[j]))
                .collect(),
            frequencies,
        })
    }

    fn run_best_effort(
        &self,
        dataset: &Dataset,
        numeric: BestEffortNumeric,
        oracle: OracleKind,
        seed: u64,
    ) -> Result<CollectionResult> {
        let schema = dataset.schema();
        let d = schema.d();
        let num_indices = schema.numeric_indices();
        let cat_indices = schema.categorical_indices();
        let d_num = num_indices.len();

        // Budget allocation of §VI-A: ε·d_num/d to the numeric block,
        // ε·d_cat/d to the categorical block, ε/d per categorical attribute.
        let per_attr_eps = self.epsilon.split(d)?;

        enum NumericState {
            None,
            PerAttr(Box<dyn ldp_core::NumericMechanism>),
            Duchi(DuchiMultidim),
        }
        let numeric_state = if d_num == 0 {
            NumericState::None
        } else {
            match numeric {
                BestEffortNumeric::PerAttribute(kind) => {
                    NumericState::PerAttr(kind.build(per_attr_eps))
                }
                BestEffortNumeric::DuchiMultidim => {
                    let block_eps = self.epsilon.fraction(d_num as f64 / d as f64)?;
                    NumericState::Duchi(DuchiMultidim::new(block_eps, d_num)?)
                }
            }
        };
        let oracles: Vec<Box<dyn ldp_core::FrequencyOracle>> = cat_indices
            .iter()
            .map(|&j| {
                let ldp_core::AttrSpec::Categorical { k } = schema.attr_specs()[j] else {
                    unreachable!("categorical index");
                };
                oracle.build(per_attr_eps, k)
            })
            .collect::<Result<Vec<_>>>()?;

        let shards = shard_ranges(dataset.n(), self.threads);
        let results: Vec<Result<(MeanAccumulator, Vec<FrequencyAccumulator>)>> =
            std::thread::scope(|scope| {
                let handles: Vec<_> = shards
                    .iter()
                    .enumerate()
                    .map(|(c, range)| {
                        let numeric_state = &numeric_state;
                        let oracles = &oracles;
                        let num_indices = &num_indices;
                        let cat_indices = &cat_indices;
                        let range = range.clone();
                        scope.spawn(move || {
                            let mut rng = shard_rng(seed, c);
                            let mut means = MeanAccumulator::new(d);
                            let mut freqs: Vec<FrequencyAccumulator> = oracles
                                .iter()
                                .map(|o| FrequencyAccumulator::new(o.k(), 1.0))
                                .collect();
                            let mut tuple: Vec<AttrValue> = Vec::with_capacity(d);
                            let mut dense = vec![0.0; d];
                            let mut numeric_block = vec![0.0; d_num];
                            for i in range {
                                dataset.canonical_tuple_into(i, &mut tuple);
                                dense.iter_mut().for_each(|x| *x = 0.0);
                                match numeric_state {
                                    NumericState::None => {}
                                    NumericState::PerAttr(mech) => {
                                        for &j in num_indices.iter() {
                                            let AttrValue::Numeric(x) = tuple[j] else {
                                                unreachable!("schema-validated");
                                            };
                                            dense[j] = mech.perturb(x, &mut rng)?;
                                        }
                                    }
                                    NumericState::Duchi(md) => {
                                        for (slot, &j) in num_indices.iter().enumerate() {
                                            let AttrValue::Numeric(x) = tuple[j] else {
                                                unreachable!("schema-validated");
                                            };
                                            numeric_block[slot] = x;
                                        }
                                        let noisy = md.perturb(&numeric_block, &mut rng)?;
                                        for (slot, &j) in num_indices.iter().enumerate() {
                                            dense[j] = noisy[slot];
                                        }
                                    }
                                }
                                for (slot, &j) in cat_indices.iter().enumerate() {
                                    let AttrValue::Categorical(v) = tuple[j] else {
                                        unreachable!("schema-validated");
                                    };
                                    let rep = oracles[slot].perturb(v, &mut rng)?;
                                    freqs[slot].add(oracles[slot].as_ref(), &rep);
                                }
                                means.add_dense(&dense)?;
                            }
                            Ok((means, freqs))
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("shard panicked"))
                    .collect()
            });

        let mut means = MeanAccumulator::new(d);
        let mut freqs: Vec<FrequencyAccumulator> = oracles
            .iter()
            .map(|o| FrequencyAccumulator::new(o.k(), 1.0))
            .collect();
        for res in results {
            let (m, fs) = res?;
            means.merge(&m)?;
            for (acc, shard_acc) in freqs.iter_mut().zip(&fs) {
                acc.merge(shard_acc)?;
            }
        }
        let mean_est = means.estimate()?;
        let mut frequencies = Vec::with_capacity(cat_indices.len());
        for (slot, &j) in cat_indices.iter().enumerate() {
            frequencies.push((j, freqs[slot].estimate()?));
        }
        Ok(CollectionResult {
            n: dataset.n(),
            means: num_indices.into_iter().map(|j| (j, mean_est[j])).collect(),
            frequencies,
        })
    }
}

/// Splits `0..n` into at most `threads` contiguous ranges.
fn shard_ranges(n: usize, threads: usize) -> Vec<std::ops::Range<usize>> {
    let threads = threads.clamp(1, n.max(1));
    let base = n / threads;
    let extra = n % threads;
    let mut out = Vec::with_capacity(threads);
    let mut start = 0usize;
    for c in 0..threads {
        let len = base + usize::from(c < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Decorrelated per-shard RNG.
fn shard_rng(seed: u64, shard: usize) -> rand::rngs::StdRng {
    seeded_rng(seed ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// MSE of the mean estimates over the numeric attributes, against the
/// dataset's ground truth (the y-axis of Figures 4(a,b), 5, 6, 7(a), 8(a)).
///
/// # Errors
/// Propagates ground-truth computation failures.
pub fn numeric_mse(result: &CollectionResult, dataset: &Dataset) -> Result<f64> {
    if result.means.is_empty() {
        return Err(LdpError::EmptyInput("numeric attributes"));
    }
    let mut total = 0.0;
    for (j, est) in &result.means {
        let truth = dataset.true_mean(*j)?;
        total += (est - truth) * (est - truth);
    }
    Ok(total / result.means.len() as f64)
}

/// MSE of the frequency estimates over every value of every categorical
/// attribute (the y-axis of Figures 4(c,d), 7(b), 8(b)).
///
/// # Errors
/// Propagates ground-truth computation failures.
pub fn categorical_mse(result: &CollectionResult, dataset: &Dataset) -> Result<f64> {
    if result.frequencies.is_empty() {
        return Err(LdpError::EmptyInput("categorical attributes"));
    }
    let mut total = 0.0;
    let mut count = 0usize;
    for (j, est) in &result.frequencies {
        let truth = dataset.true_frequencies(*j)?;
        for (e, t) in est.iter().zip(&truth) {
            total += (e - t) * (e - t);
            count += 1;
        }
    }
    Ok(total / count as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_data::census::generate_br;
    use ldp_data::synthetic::{gaussian, numeric_dataset};

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn sampling_protocol_estimates_numeric_means() {
        let ds = numeric_dataset(60_000, 4, gaussian(0.3), 42).unwrap();
        let collector = Collector::new(
            Protocol::Sampling {
                numeric: NumericKind::Hybrid,
                oracle: OracleKind::Oue,
            },
            eps(4.0),
        )
        .with_threads(4);
        let result = collector.run(&ds, 7).unwrap();
        assert_eq!(result.n, 60_000);
        assert_eq!(result.means.len(), 4);
        assert!(result.frequencies.is_empty());
        for (j, est) in &result.means {
            let truth = ds.true_mean(*j).unwrap();
            assert!((est - truth).abs() < 0.1, "attr {j}: {est} vs {truth}");
        }
        let mse = numeric_mse(&result, &ds).unwrap();
        assert!(mse < 0.01, "MSE {mse}");
    }

    #[test]
    fn best_effort_duchi_estimates_numeric_means() {
        let ds = numeric_dataset(60_000, 4, gaussian(0.0), 43).unwrap();
        let collector = Collector::new(
            Protocol::BestEffort {
                numeric: BestEffortNumeric::DuchiMultidim,
                oracle: OracleKind::Oue,
            },
            eps(4.0),
        )
        .with_threads(4);
        let result = collector.run(&ds, 8).unwrap();
        for (j, est) in &result.means {
            let truth = ds.true_mean(*j).unwrap();
            assert!((est - truth).abs() < 0.15, "attr {j}: {est} vs {truth}");
        }
    }

    #[test]
    fn mixed_census_pipeline_produces_both_estimate_kinds() {
        let ds = generate_br(30_000, 9).unwrap();
        let collector = Collector::new(
            Protocol::Sampling {
                numeric: NumericKind::Piecewise,
                oracle: OracleKind::Oue,
            },
            eps(4.0),
        )
        .with_threads(4);
        let result = collector.run(&ds, 9).unwrap();
        assert_eq!(result.means.len(), 6);
        assert_eq!(result.frequencies.len(), 10);
        for (j, freqs) in &result.frequencies {
            let truth = ds.true_frequencies(*j).unwrap();
            assert_eq!(freqs.len(), truth.len());
        }
        // Sanity on magnitudes rather than exact values at this n.
        let nm = numeric_mse(&result, &ds).unwrap();
        let cm = categorical_mse(&result, &ds).unwrap();
        assert!(nm < 0.05, "numeric MSE {nm}");
        assert!(cm < 0.05, "categorical MSE {cm}");
    }

    #[test]
    fn proposed_beats_best_effort_on_census() {
        // The headline claim of Figure 4, at reduced scale: Algorithm 4 with
        // HM beats the Laplace-split baseline on numeric MSE, and beats the
        // OUE-split baseline on categorical MSE. Averaged over a few runs to
        // keep the test stable.
        let ds = generate_br(20_000, 10).unwrap();
        let e = eps(1.0);
        let proposed = Collector::new(
            Protocol::Sampling {
                numeric: NumericKind::Hybrid,
                oracle: OracleKind::Oue,
            },
            e,
        )
        .with_threads(4);
        let baseline = Collector::new(
            Protocol::BestEffort {
                numeric: BestEffortNumeric::PerAttribute(NumericKind::Laplace),
                oracle: OracleKind::Oue,
            },
            e,
        )
        .with_threads(4);
        let runs = 5;
        let (mut p_num, mut p_cat, mut b_num, mut b_cat) = (0.0, 0.0, 0.0, 0.0);
        for r in 0..runs {
            let p = proposed.run(&ds, 100 + r).unwrap();
            let b = baseline.run(&ds, 200 + r).unwrap();
            p_num += numeric_mse(&p, &ds).unwrap();
            p_cat += categorical_mse(&p, &ds).unwrap();
            b_num += numeric_mse(&b, &ds).unwrap();
            b_cat += categorical_mse(&b, &ds).unwrap();
        }
        assert!(
            p_num < b_num,
            "numeric: proposed {p_num} vs baseline {b_num}"
        );
        assert!(
            p_cat < b_cat,
            "categorical: proposed {p_cat} vs baseline {b_cat}"
        );
    }

    #[test]
    fn single_thread_run_is_deterministic() {
        let ds = numeric_dataset(5_000, 3, gaussian(0.5), 44).unwrap();
        let collector = Collector::new(
            Protocol::Sampling {
                numeric: NumericKind::Piecewise,
                oracle: OracleKind::Oue,
            },
            eps(1.0),
        )
        .with_threads(1);
        let a = collector.run(&ds, 5).unwrap();
        let b = collector.run(&ds, 5).unwrap();
        assert_eq!(a.mean_vector(), b.mean_vector());
        let c = collector.run(&ds, 6).unwrap();
        assert_ne!(a.mean_vector(), c.mean_vector());
    }

    #[test]
    fn protocol_labels() {
        assert_eq!(
            Protocol::Sampling {
                numeric: NumericKind::Hybrid,
                oracle: OracleKind::Oue
            }
            .label(),
            "HM"
        );
        assert_eq!(
            Protocol::BestEffort {
                numeric: BestEffortNumeric::PerAttribute(NumericKind::Scdf),
                oracle: OracleKind::Oue
            }
            .label(),
            "SCDF"
        );
        assert_eq!(
            Protocol::BestEffort {
                numeric: BestEffortNumeric::DuchiMultidim,
                oracle: OracleKind::Oue
            }
            .label(),
            "Duchi"
        );
    }

    #[test]
    fn empty_dataset_is_rejected() {
        use ldp_data::{Attribute, Column, Schema};
        let schema = Schema::new(vec![Attribute::numeric("x", -1.0, 1.0).unwrap()]).unwrap();
        let ds = Dataset::new(schema, vec![Column::Numeric(vec![])]).unwrap();
        let collector = Collector::new(
            Protocol::Sampling {
                numeric: NumericKind::Piecewise,
                oracle: OracleKind::Oue,
            },
            eps(1.0),
        );
        assert!(collector.run(&ds, 0).is_err());
    }
}
