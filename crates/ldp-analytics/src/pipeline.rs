//! End-to-end collection pipelines: dataset in, estimates out.
//!
//! Two protocol families, matching §VI-A's experimental setup:
//!
//! * [`Protocol::Sampling`] — the paper's proposal: Algorithm 4 over the
//!   full mixed schema, PM or HM for numeric attributes, a frequency oracle
//!   (OUE) for categorical ones, each sampled attribute at `ε/k`.
//! * [`Protocol::BestEffort`] — the best-effort combination of prior work:
//!   the numeric block gets `ε·d_num/d` (spent either per-attribute at `ε/d`
//!   via Laplace/SCDF/Staircase, or jointly via Duchi et al.'s Algorithm 3),
//!   and every categorical attribute gets `ε/d` through the oracle.
//!
//! Users are simulated in parallel shards (std scoped threads); each shard
//! owns a seeded RNG and local accumulators which are merged in shard order
//! at the end. The shard count — not the worker-thread count — fully
//! determines the RNG streams and the merge order, so estimates are
//! bit-identical across machines with different core counts.
//!
//! The per-user loop is the system's hot path and is allocation-free in
//! steady state: perturbation goes through
//! [`SamplingPerturber::perturb_into`] with caller-owned scratch, and
//! categorical aggregation through the count-based
//! [`FrequencyAccumulator`] (O(set bits) per report instead of an O(k)
//! support loop).

use crate::frequency::FrequencyAccumulator;
use crate::mean::MeanAccumulator;
use ldp_core::multidim::{DuchiMultidim, SamplingPerturber, SparseReport};
use ldp_core::rng::seeded_rng;
use ldp_core::{
    AttrReport, AttrValue, CategoricalReport, Epsilon, LdpError, NumericKind, OracleKind, Result,
};
use ldp_data::Dataset;
use serde::{Deserialize, Serialize};

/// Default number of simulation shards.
///
/// Fixed (rather than derived from `available_parallelism`) so that
/// default-configuration runs are bit-for-bit reproducible across machines:
/// each shard owns a seeded RNG stream, so the shard count is part of the
/// experiment's definition, not a hardware detail. Override with
/// [`Collector::with_threads`].
pub const DEFAULT_SHARDS: usize = 16;

/// How the best-effort baseline spends the numeric block's budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BestEffortNumeric {
    /// Each numeric attribute independently at `ε/d` (Laplace, SCDF,
    /// Staircase, or any other 1-D mechanism).
    PerAttribute(NumericKind),
    /// The whole numeric sub-tuple jointly via Duchi et al.'s Algorithm 3 at
    /// `ε·d_num/d`.
    DuchiMultidim,
}

/// A complete collection protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Protocol {
    /// The paper's Algorithm 4 (+ §IV-C mixed-type extension).
    Sampling {
        /// 1-D mechanism for numeric attributes (paper: PM or HM).
        numeric: NumericKind,
        /// Frequency oracle for categorical attributes (paper: OUE).
        oracle: OracleKind,
    },
    /// Budget-splitting combination of existing methods (§VI-A baseline).
    BestEffort {
        /// Treatment of the numeric block.
        numeric: BestEffortNumeric,
        /// Frequency oracle, applied per categorical attribute at `ε/d`.
        oracle: OracleKind,
    },
}

impl Protocol {
    /// A short display name for experiment tables ("PM", "HM",
    /// "Laplace", "Duchi", …), matching the paper's figure legends.
    pub fn label(&self) -> String {
        match self {
            Protocol::Sampling { numeric, .. } => numeric.name().to_string(),
            Protocol::BestEffort {
                numeric: BestEffortNumeric::PerAttribute(kind),
                ..
            } => kind.name().to_string(),
            Protocol::BestEffort {
                numeric: BestEffortNumeric::DuchiMultidim,
                ..
            } => "Duchi".to_string(),
        }
    }
}

/// Aggregated estimates from one collection run.
#[derive(Debug, Clone)]
pub struct CollectionResult {
    /// Number of users that contributed.
    pub n: usize,
    /// `(attribute index, mean estimate)` for every numeric attribute, in
    /// canonical `[-1, 1]` scale.
    pub means: Vec<(usize, f64)>,
    /// `(attribute index, per-value frequency estimates)` for every
    /// categorical attribute.
    pub frequencies: Vec<(usize, Vec<f64>)>,
}

impl CollectionResult {
    /// Flattened mean estimates in attribute order.
    pub fn mean_vector(&self) -> Vec<f64> {
        self.means.iter().map(|(_, m)| *m).collect()
    }
}

/// Runs collection protocols over datasets.
///
/// ```
/// use ldp_analytics::{Collector, Protocol, numeric_mse};
/// use ldp_core::{Epsilon, NumericKind, OracleKind};
/// use ldp_data::synthetic::{gaussian, numeric_dataset};
///
/// let dataset = numeric_dataset(10_000, 4, gaussian(0.5), 3)?;
/// let collector = Collector::new(
///     Protocol::Sampling { numeric: NumericKind::Hybrid, oracle: OracleKind::Oue },
///     Epsilon::new(2.0)?,
/// );
/// let result = collector.run(&dataset, 1)?;
/// assert_eq!(result.means.len(), 4);
/// assert!(numeric_mse(&result, &dataset)? < 0.05);
/// # Ok::<(), ldp_core::LdpError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Collector {
    protocol: Protocol,
    epsilon: Epsilon,
    shards: usize,
    /// Worker-thread cap; `None` uses the machine's parallelism. Affects
    /// scheduling only — never results.
    workers: Option<usize>,
}

impl Collector {
    /// A collector with the default [`DEFAULT_SHARDS`] simulation shards,
    /// parallelized over all available cores. Results are identical on any
    /// machine: the worker-thread count never affects estimates.
    pub fn new(protocol: Protocol, epsilon: Epsilon) -> Self {
        Collector {
            protocol,
            epsilon,
            shards: DEFAULT_SHARDS,
            workers: None,
        }
    }

    /// Overrides the shard count (1 for exact single-stream determinism).
    /// Each shard owns an independent seeded RNG stream, so changing the
    /// shard count changes the (equally valid) random draws.
    pub fn with_threads(mut self, shards: usize) -> Self {
        self.shards = shards.max(1);
        self
    }

    /// Caps the number of OS worker threads that process the shards. This
    /// is a scheduling knob only: any worker count produces bit-identical
    /// estimates, because shards — not workers — own the RNG streams and
    /// the merge order is fixed by shard index.
    pub fn with_worker_threads(mut self, workers: usize) -> Self {
        self.workers = Some(workers.max(1));
        self
    }

    /// The protocol in use.
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// Runs every shard's closure across the worker pool, returning results
    /// in shard order (worker scheduling cannot reorder or change them).
    fn run_sharded<T, F>(&self, n: usize, f: F) -> Vec<Result<T>>
    where
        T: Send,
        F: Fn(usize, std::ops::Range<usize>) -> Result<T> + Sync,
    {
        let ranges = shard_ranges(n, self.shards);
        let workers = self
            .workers
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()))
            .clamp(1, ranges.len());
        let slots: Vec<Option<Result<T>>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let ranges = &ranges;
                    let f = &f;
                    scope.spawn(move || {
                        // Stride over shards so each shard's work is
                        // independent of how many workers exist.
                        ranges
                            .iter()
                            .enumerate()
                            .skip(w)
                            .step_by(workers)
                            .map(|(c, range)| (c, f(c, range.clone())))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            let mut slots: Vec<Option<Result<T>>> = (0..ranges.len()).map(|_| None).collect();
            for handle in handles {
                for (c, res) in handle.join().expect("shard worker panicked") {
                    slots[c] = Some(res);
                }
            }
            slots
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every shard is scheduled on exactly one worker"))
            .collect()
    }

    /// Simulates every user perturbing her tuple and aggregates the reports.
    ///
    /// # Errors
    /// Propagates schema/validation failures from the underlying mechanisms
    /// and rejects empty datasets.
    pub fn run(&self, dataset: &Dataset, seed: u64) -> Result<CollectionResult> {
        if dataset.n() == 0 {
            return Err(LdpError::EmptyInput("rows"));
        }
        match self.protocol {
            Protocol::Sampling { numeric, oracle } => {
                self.run_sampling(dataset, numeric, oracle, seed)
            }
            Protocol::BestEffort { numeric, oracle } => {
                self.run_best_effort(dataset, numeric, oracle, seed)
            }
        }
    }

    fn run_sampling(
        &self,
        dataset: &Dataset,
        numeric: NumericKind,
        oracle: OracleKind,
        seed: u64,
    ) -> Result<CollectionResult> {
        let schema = dataset.schema();
        let d = schema.d();
        let perturber = SamplingPerturber::new(self.epsilon, schema.attr_specs(), numeric, oracle)?;
        let scale = perturber.scale();
        let cat_indices = schema.categorical_indices();
        // Attribute index → frequency-accumulator slot, precomputed once so
        // the per-entry hot loop is a table lookup, not a linear scan.
        let mut slot_of: Vec<Option<usize>> = vec![None; d];
        for (slot, &j) in cat_indices.iter().enumerate() {
            slot_of[j] = Some(slot);
        }

        let results = self.run_sharded(dataset.n(), |c, range| {
            let mut rng = shard_rng(seed, c);
            let mut means = MeanAccumulator::new(d);
            let mut freqs: Vec<FrequencyAccumulator> = cat_indices
                .iter()
                .map(|&j| {
                    let k = perturber.oracle(j).expect("categorical").k();
                    FrequencyAccumulator::new(k, scale)
                })
                .collect();
            let mut tuple: Vec<AttrValue> = Vec::with_capacity(d);
            let mut report = SparseReport::with_capacity(d, perturber.k());
            let mut scratch = perturber.scratch();
            for i in range {
                dataset.canonical_tuple_into(i, &mut tuple);
                perturber.perturb_into(&tuple, &mut rng, &mut report, &mut scratch)?;
                for (j, rep) in &report.entries {
                    if let AttrReport::Categorical(cat) = rep {
                        let slot = slot_of[*j as usize].expect("categorical index");
                        let oracle = perturber.oracle(*j as usize).expect("categorical");
                        freqs[slot].add(oracle, cat);
                    }
                }
                means.add_sparse(&report)?;
            }
            Ok((means, freqs))
        });

        let mut means = MeanAccumulator::new(d);
        let mut freqs: Vec<FrequencyAccumulator> = cat_indices
            .iter()
            .map(|&j| {
                let k = perturber.oracle(j).expect("categorical").k();
                FrequencyAccumulator::new(k, scale)
            })
            .collect();
        for res in results {
            let (m, fs) = res?;
            means.merge(&m)?;
            for (acc, shard_acc) in freqs.iter_mut().zip(&fs) {
                acc.merge(shard_acc)?;
            }
        }
        let n = dataset.n();
        let mean_est = means.estimate()?;
        let mut frequencies = Vec::with_capacity(cat_indices.len());
        for (slot, &j) in cat_indices.iter().enumerate() {
            freqs[slot].set_population(n);
            frequencies.push((j, freqs[slot].estimate()?));
        }
        Ok(CollectionResult {
            n,
            means: schema
                .numeric_indices()
                .into_iter()
                .map(|j| (j, mean_est[j]))
                .collect(),
            frequencies,
        })
    }

    fn run_best_effort(
        &self,
        dataset: &Dataset,
        numeric: BestEffortNumeric,
        oracle: OracleKind,
        seed: u64,
    ) -> Result<CollectionResult> {
        let schema = dataset.schema();
        let d = schema.d();
        let num_indices = schema.numeric_indices();
        let cat_indices = schema.categorical_indices();
        let d_num = num_indices.len();

        // Budget allocation of §VI-A: ε·d_num/d to the numeric block,
        // ε·d_cat/d to the categorical block, ε/d per categorical attribute.
        let per_attr_eps = self.epsilon.split(d)?;

        enum NumericState {
            None,
            PerAttr(Box<dyn ldp_core::NumericMechanism>),
            Duchi(DuchiMultidim),
        }
        let numeric_state = if d_num == 0 {
            NumericState::None
        } else {
            match numeric {
                BestEffortNumeric::PerAttribute(kind) => {
                    NumericState::PerAttr(kind.build(per_attr_eps))
                }
                BestEffortNumeric::DuchiMultidim => {
                    let block_eps = self.epsilon.fraction(d_num as f64 / d as f64)?;
                    NumericState::Duchi(DuchiMultidim::new(block_eps, d_num)?)
                }
            }
        };
        let oracles: Vec<Box<dyn ldp_core::FrequencyOracle>> = cat_indices
            .iter()
            .map(|&j| {
                let ldp_core::AttrSpec::Categorical { k } = schema.attr_specs()[j] else {
                    unreachable!("categorical index");
                };
                oracle.build(per_attr_eps, k)
            })
            .collect::<Result<Vec<_>>>()?;

        let results = self.run_sharded(dataset.n(), |c, range| {
            let mut rng = shard_rng(seed, c);
            let mut means = MeanAccumulator::new(d);
            let mut freqs: Vec<FrequencyAccumulator> = oracles
                .iter()
                .map(|o| FrequencyAccumulator::new(o.k(), 1.0))
                .collect();
            let mut tuple: Vec<AttrValue> = Vec::with_capacity(d);
            let mut dense = vec![0.0; d];
            let mut numeric_block = vec![0.0; d_num];
            let mut noisy: Vec<f64> = Vec::with_capacity(d_num);
            let mut duchi_scratch = match &numeric_state {
                NumericState::Duchi(md) => Some(md.scratch()),
                _ => None,
            };
            // One reusable report buffer per categorical attribute, so the
            // unary oracles recycle their bit vectors user after user.
            let mut cat_reports: Vec<CategoricalReport> = oracles
                .iter()
                .map(|_| CategoricalReport::Value(0))
                .collect();
            for i in range {
                dataset.canonical_tuple_into(i, &mut tuple);
                dense.iter_mut().for_each(|x| *x = 0.0);
                match &numeric_state {
                    NumericState::None => {}
                    NumericState::PerAttr(mech) => {
                        for &j in num_indices.iter() {
                            let AttrValue::Numeric(x) = tuple[j] else {
                                unreachable!("schema-validated");
                            };
                            dense[j] = mech.perturb(x, &mut rng)?;
                        }
                    }
                    NumericState::Duchi(md) => {
                        for (slot, &j) in num_indices.iter().enumerate() {
                            let AttrValue::Numeric(x) = tuple[j] else {
                                unreachable!("schema-validated");
                            };
                            numeric_block[slot] = x;
                        }
                        md.perturb_into(
                            &numeric_block,
                            &mut rng,
                            &mut noisy,
                            duchi_scratch.as_mut().expect("built with Duchi state"),
                        )?;
                        for (slot, &j) in num_indices.iter().enumerate() {
                            dense[j] = noisy[slot];
                        }
                    }
                }
                for (slot, &j) in cat_indices.iter().enumerate() {
                    let AttrValue::Categorical(v) = tuple[j] else {
                        unreachable!("schema-validated");
                    };
                    oracles[slot].perturb_into(v, &mut rng, &mut cat_reports[slot])?;
                    freqs[slot].add(oracles[slot].as_ref(), &cat_reports[slot]);
                }
                means.add_dense(&dense)?;
            }
            Ok((means, freqs))
        });

        let mut means = MeanAccumulator::new(d);
        let mut freqs: Vec<FrequencyAccumulator> = oracles
            .iter()
            .map(|o| FrequencyAccumulator::new(o.k(), 1.0))
            .collect();
        for res in results {
            let (m, fs) = res?;
            means.merge(&m)?;
            for (acc, shard_acc) in freqs.iter_mut().zip(&fs) {
                acc.merge(shard_acc)?;
            }
        }
        let mean_est = means.estimate()?;
        let mut frequencies = Vec::with_capacity(cat_indices.len());
        for (slot, &j) in cat_indices.iter().enumerate() {
            frequencies.push((j, freqs[slot].estimate()?));
        }
        Ok(CollectionResult {
            n: dataset.n(),
            means: num_indices.into_iter().map(|j| (j, mean_est[j])).collect(),
            frequencies,
        })
    }
}

/// Splits `0..n` into at most `threads` contiguous ranges.
fn shard_ranges(n: usize, threads: usize) -> Vec<std::ops::Range<usize>> {
    let threads = threads.clamp(1, n.max(1));
    let base = n / threads;
    let extra = n % threads;
    let mut out = Vec::with_capacity(threads);
    let mut start = 0usize;
    for c in 0..threads {
        let len = base + usize::from(c < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Decorrelated per-shard RNG.
fn shard_rng(seed: u64, shard: usize) -> rand::rngs::StdRng {
    seeded_rng(seed ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// MSE of the mean estimates over the numeric attributes, against the
/// dataset's ground truth (the y-axis of Figures 4(a,b), 5, 6, 7(a), 8(a)).
///
/// # Errors
/// Propagates ground-truth computation failures.
pub fn numeric_mse(result: &CollectionResult, dataset: &Dataset) -> Result<f64> {
    if result.means.is_empty() {
        return Err(LdpError::EmptyInput("numeric attributes"));
    }
    let mut total = 0.0;
    for (j, est) in &result.means {
        let truth = dataset.true_mean(*j)?;
        total += (est - truth) * (est - truth);
    }
    Ok(total / result.means.len() as f64)
}

/// MSE of the frequency estimates over every value of every categorical
/// attribute (the y-axis of Figures 4(c,d), 7(b), 8(b)).
///
/// # Errors
/// Propagates ground-truth computation failures.
pub fn categorical_mse(result: &CollectionResult, dataset: &Dataset) -> Result<f64> {
    if result.frequencies.is_empty() {
        return Err(LdpError::EmptyInput("categorical attributes"));
    }
    let mut total = 0.0;
    let mut count = 0usize;
    for (j, est) in &result.frequencies {
        let truth = dataset.true_frequencies(*j)?;
        for (e, t) in est.iter().zip(&truth) {
            total += (e - t) * (e - t);
            count += 1;
        }
    }
    Ok(total / count as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_data::census::generate_br;
    use ldp_data::synthetic::{gaussian, numeric_dataset};

    fn eps(v: f64) -> Epsilon {
        Epsilon::new(v).unwrap()
    }

    #[test]
    fn sampling_protocol_estimates_numeric_means() {
        let ds = numeric_dataset(60_000, 4, gaussian(0.3), 42).unwrap();
        let collector = Collector::new(
            Protocol::Sampling {
                numeric: NumericKind::Hybrid,
                oracle: OracleKind::Oue,
            },
            eps(4.0),
        )
        .with_threads(4);
        let result = collector.run(&ds, 7).unwrap();
        assert_eq!(result.n, 60_000);
        assert_eq!(result.means.len(), 4);
        assert!(result.frequencies.is_empty());
        for (j, est) in &result.means {
            let truth = ds.true_mean(*j).unwrap();
            assert!((est - truth).abs() < 0.1, "attr {j}: {est} vs {truth}");
        }
        let mse = numeric_mse(&result, &ds).unwrap();
        assert!(mse < 0.01, "MSE {mse}");
    }

    #[test]
    fn best_effort_duchi_estimates_numeric_means() {
        let ds = numeric_dataset(60_000, 4, gaussian(0.0), 43).unwrap();
        let collector = Collector::new(
            Protocol::BestEffort {
                numeric: BestEffortNumeric::DuchiMultidim,
                oracle: OracleKind::Oue,
            },
            eps(4.0),
        )
        .with_threads(4);
        let result = collector.run(&ds, 8).unwrap();
        for (j, est) in &result.means {
            let truth = ds.true_mean(*j).unwrap();
            assert!((est - truth).abs() < 0.15, "attr {j}: {est} vs {truth}");
        }
    }

    #[test]
    fn mixed_census_pipeline_produces_both_estimate_kinds() {
        let ds = generate_br(30_000, 9).unwrap();
        let collector = Collector::new(
            Protocol::Sampling {
                numeric: NumericKind::Piecewise,
                oracle: OracleKind::Oue,
            },
            eps(4.0),
        )
        .with_threads(4);
        let result = collector.run(&ds, 9).unwrap();
        assert_eq!(result.means.len(), 6);
        assert_eq!(result.frequencies.len(), 10);
        for (j, freqs) in &result.frequencies {
            let truth = ds.true_frequencies(*j).unwrap();
            assert_eq!(freqs.len(), truth.len());
        }
        // Sanity on magnitudes rather than exact values at this n.
        let nm = numeric_mse(&result, &ds).unwrap();
        let cm = categorical_mse(&result, &ds).unwrap();
        assert!(nm < 0.05, "numeric MSE {nm}");
        assert!(cm < 0.05, "categorical MSE {cm}");
    }

    #[test]
    fn proposed_beats_best_effort_on_census() {
        // The headline claim of Figure 4, at reduced scale: Algorithm 4 with
        // HM beats the Laplace-split baseline on numeric MSE, and beats the
        // OUE-split baseline on categorical MSE. Averaged over a few runs to
        // keep the test stable.
        let ds = generate_br(20_000, 10).unwrap();
        let e = eps(1.0);
        let proposed = Collector::new(
            Protocol::Sampling {
                numeric: NumericKind::Hybrid,
                oracle: OracleKind::Oue,
            },
            e,
        )
        .with_threads(4);
        let baseline = Collector::new(
            Protocol::BestEffort {
                numeric: BestEffortNumeric::PerAttribute(NumericKind::Laplace),
                oracle: OracleKind::Oue,
            },
            e,
        )
        .with_threads(4);
        let runs = 5;
        let (mut p_num, mut p_cat, mut b_num, mut b_cat) = (0.0, 0.0, 0.0, 0.0);
        for r in 0..runs {
            let p = proposed.run(&ds, 100 + r).unwrap();
            let b = baseline.run(&ds, 200 + r).unwrap();
            p_num += numeric_mse(&p, &ds).unwrap();
            p_cat += categorical_mse(&p, &ds).unwrap();
            b_num += numeric_mse(&b, &ds).unwrap();
            b_cat += categorical_mse(&b, &ds).unwrap();
        }
        assert!(
            p_num < b_num,
            "numeric: proposed {p_num} vs baseline {b_num}"
        );
        assert!(
            p_cat < b_cat,
            "categorical: proposed {p_cat} vs baseline {b_cat}"
        );
    }

    #[test]
    fn worker_thread_count_never_affects_estimates() {
        // The worker pool is a scheduling detail: shards own the RNG
        // streams and the merge order, so any worker count must produce
        // bit-identical estimates (this is what makes the default
        // configuration reproducible across machines with different core
        // counts).
        let ds = generate_br(6_000, 11).unwrap();
        for protocol in [
            Protocol::Sampling {
                numeric: NumericKind::Hybrid,
                oracle: OracleKind::Oue,
            },
            Protocol::BestEffort {
                numeric: BestEffortNumeric::DuchiMultidim,
                oracle: OracleKind::Grr,
            },
        ] {
            let base = Collector::new(protocol, eps(2.0));
            let default = base.clone().run(&ds, 3).unwrap();
            for workers in [1usize, 3, 64] {
                let capped = base
                    .clone()
                    .with_worker_threads(workers)
                    .run(&ds, 3)
                    .unwrap();
                assert_eq!(default.mean_vector(), capped.mean_vector(), "{workers}");
                assert_eq!(default.frequencies, capped.frequencies, "{workers}");
            }
        }
    }

    #[test]
    fn default_shard_count_is_the_documented_constant() {
        // Collector::new must behave exactly like an explicit override with
        // DEFAULT_SHARDS — i.e. the default no longer depends on
        // available_parallelism.
        let ds = numeric_dataset(4_000, 2, gaussian(0.2), 45).unwrap();
        let protocol = Protocol::Sampling {
            numeric: NumericKind::Hybrid,
            oracle: OracleKind::Oue,
        };
        let a = Collector::new(protocol, eps(1.0)).run(&ds, 12).unwrap();
        let b = Collector::new(protocol, eps(1.0))
            .with_threads(DEFAULT_SHARDS)
            .run(&ds, 12)
            .unwrap();
        assert_eq!(a.mean_vector(), b.mean_vector());
        // And a different shard count draws different (equally valid)
        // streams — the override is doing something.
        let c = Collector::new(protocol, eps(1.0))
            .with_threads(DEFAULT_SHARDS + 1)
            .run(&ds, 12)
            .unwrap();
        assert_ne!(a.mean_vector(), c.mean_vector());
    }

    #[test]
    fn single_thread_run_is_deterministic() {
        let ds = numeric_dataset(5_000, 3, gaussian(0.5), 44).unwrap();
        let collector = Collector::new(
            Protocol::Sampling {
                numeric: NumericKind::Piecewise,
                oracle: OracleKind::Oue,
            },
            eps(1.0),
        )
        .with_threads(1);
        let a = collector.run(&ds, 5).unwrap();
        let b = collector.run(&ds, 5).unwrap();
        assert_eq!(a.mean_vector(), b.mean_vector());
        let c = collector.run(&ds, 6).unwrap();
        assert_ne!(a.mean_vector(), c.mean_vector());
    }

    #[test]
    fn protocol_labels() {
        assert_eq!(
            Protocol::Sampling {
                numeric: NumericKind::Hybrid,
                oracle: OracleKind::Oue
            }
            .label(),
            "HM"
        );
        assert_eq!(
            Protocol::BestEffort {
                numeric: BestEffortNumeric::PerAttribute(NumericKind::Scdf),
                oracle: OracleKind::Oue
            }
            .label(),
            "SCDF"
        );
        assert_eq!(
            Protocol::BestEffort {
                numeric: BestEffortNumeric::DuchiMultidim,
                oracle: OracleKind::Oue
            }
            .label(),
            "Duchi"
        );
    }

    #[test]
    fn empty_dataset_is_rejected() {
        use ldp_data::{Attribute, Column, Schema};
        let schema = Schema::new(vec![Attribute::numeric("x", -1.0, 1.0).unwrap()]).unwrap();
        let ds = Dataset::new(schema, vec![Column::Numeric(vec![])]).unwrap();
        let collector = Collector::new(
            Protocol::Sampling {
                numeric: NumericKind::Piecewise,
                oracle: OracleKind::Oue,
            },
            eps(1.0),
        );
        assert!(collector.run(&ds, 0).is_err());
    }
}
