//! # ldp-analytics — aggregator-side estimation for LDP reports
//!
//! The aggregator half of the protocols in Wang et al. (ICDE 2019):
//!
//! * [`mean`] — unbiased mean estimation from dense or Algorithm 4 sparse
//!   reports, with mergeable accumulators for sharded simulation.
//! * [`frequency`] — debiased frequency estimation through any
//!   [`ldp_core::FrequencyOracle`], including the `d/k` sampling correction.
//! * [`wordhist`] — the word-level aggregation plane beneath the frequency
//!   accumulator: bit-sliced per-category counters absorbing whole unary
//!   reports by 64-bit words, with the per-category scatter deferred to
//!   amortized plane flushes.
//! * [`session`] — the two-sided collection API: [`ClientEncoder`] turns
//!   one user record into a serde-able [`Report`]; [`Aggregator`] consumes
//!   reports incrementally, merges partial aggregates from other shards,
//!   and yields [`CollectionResult`] snapshots at any point.
//! * [`service`] — the wire boundary: a long-running [`ReportService`]
//!   absorbing length-framed `Hello`/`Submit`/`FlushEpoch`/`Shutdown`
//!   messages from any `Read`-able byte stream, validating every frame
//!   before state is touched, with multi-shard tree merges bit-identical
//!   to a single-process [`Collector::run`](pipeline::Collector::run).
//! * [`transport`] — the fault-tolerant shell around the service: a
//!   [`transport::ReportServer`] feeding one service through a bounded
//!   backpressure queue from per-connection threads, a reconnecting
//!   [`transport::ReportClient`] whose retries the budget ledger makes
//!   idempotent, and a deterministic chaos harness proving clean/chaos
//!   snapshot parity bit for bit.
//! * [`durable`] — crash safety under the service: a write-ahead log of
//!   admitted submits behind a binding header, epoch checkpoints written
//!   atomically and fsync-hardened, and [`durable::Recovery`] replay that
//!   survives a kill at any instant with bit-identical recovered
//!   snapshots (proven by the seeded [`durable::CrashSchedule`] harness).
//! * [`ledger`] — the per-epoch privacy-budget ledger behind the service:
//!   a keyed user-id seen-set rejecting (and counting) any second report
//!   from one user inside an epoch.
//! * [`pipeline`] — end-to-end collection runs: the paper's proposal
//!   ([`Protocol::Sampling`]) vs the best-effort composition of prior work
//!   ([`Protocol::BestEffort`]), exactly as configured in §VI-A — a thin
//!   block-parallel driver over the session API.
//! * [`metrics`] / [`confidence`] — MSE / max-error metrics and
//!   Bernstein-style instantiations of the Lemma 2/5 accuracy guarantees.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod confidence;
pub mod durable;
pub mod frequency;
pub mod ledger;
pub mod mean;
pub mod metrics;
pub mod pipeline;
pub mod service;
pub mod session;
pub mod transport;
pub mod wordhist;

pub use durable::{
    CrashPoint, CrashSchedule, DurableConfig, DurableService, FsyncPolicy, Recovery,
    RecoveryReport, WalHeader,
};
pub use frequency::FrequencyAccumulator;
pub use ledger::BudgetLedger;
pub use mean::MeanAccumulator;
pub use pipeline::{
    block_partition, block_rng, categorical_mse, numeric_mse, BestEffortNumeric, CollectionResult,
    Collector, Protocol, BLOCK_USERS, DEFAULT_SHARDS,
};
pub use service::{
    AckOutcome, EpochSnapshot, ReportService, ResponseMessage, ServiceConfig, StreamFault,
    WireMessage,
};
pub use session::{Aggregator, ClientEncoder, CompositionReport, EncoderScratch, Report};
pub use wordhist::WordHistogram;
