//! Word-level histogram accumulation for unary (bit-vector) reports.
//!
//! The count-based [`crate::FrequencyAccumulator`] used to absorb a unary
//! report by walking its set bits (`iter_ones`) and incrementing one
//! per-category counter per bit — O(popcount) scattered adds per report,
//! which is the aggregator's hot loop once perturbation is fused and
//! batched. [`WordHistogram`] replaces that scatter with *bit-sliced*
//! counters in the style of Harley–Seal / positional-popcount
//! accumulation:
//!
//! 1. incoming reports buffer whole, eight at a time, as raw 64-bit words
//!    (one column per report word);
//! 2. a full batch reduces each word column through a fixed carry-save
//!    adder network — ~30 word-wide XOR/AND ops turn eight 1-bit lanes
//!    into a 4-bit column sum, with **no data-dependent branches**, which
//!    is what the per-report carry loop this design replaced kept
//!    mispredicting on;
//! 3. the 4-bit column sums carry-save into `L` counter planes
//!    (`plane[l]` holds bit `l` of every category's running count), and
//!    the planes flush into ordinary `u64` per-category counts every
//!    ≤ `2^L` reports (a `count_ones`-style gather, amortized to nothing).
//!
//! Absorption therefore costs O(words) word-wide operations per report —
//! independent of how dense the report is — instead of O(popcount)
//! scattered increments. And the histogram is exact integer arithmetic end
//! to end: its counts are **identical** — not approximately, but bit for
//! bit — to the scattered walk's, which is what lets the accumulator swap
//! engines without moving a single estimate. The proptest suite pins that
//! equivalence across oracles, domain sizes, batch and flush boundaries,
//! and merge orders.

use ldp_core::BitVec;

/// Counter planes per word column: lane counts fit `PLANES` bits, so the
/// planes must flush before a batch could push a lane past `2^PLANES − 1`.
const PLANES: u32 = 16;

/// Reports buffered per carry-save batch.
const BATCH: usize = 8;

/// Reports with at most this many set bits scatter straight into the
/// flushed counts instead of buffering: a popcount is ~one op per word,
/// and a handful of increments undercuts even the amortized column fold.
/// Purely a routing choice between two exact kernels — counts are
/// identical either way.
const SCATTER_CUTOFF: u32 = 8;

/// A bit-sliced per-category counter for fixed-length unary reports: the
/// word-level aggregation plane beneath [`crate::FrequencyAccumulator`].
///
/// Absorbing a report costs O(words) branchless word operations (buffer
/// store + amortized share of the batch adder network), not O(set bits)
/// scattered increments; counts are exact `u64`s, bit-identical to a
/// per-bit walk.
///
/// ```
/// use ldp_analytics::WordHistogram;
/// use ldp_core::BitVec;
///
/// let mut hist = WordHistogram::new(130);
/// let mut report = BitVec::zeros(130);
/// report.set(3, true);
/// report.set(129, true);
/// for _ in 0..5 {
///     hist.add_bits(&report);
/// }
/// let counts = hist.counts();
/// assert_eq!(counts[3], 5);
/// assert_eq!(counts[129], 5);
/// assert_eq!(counts.iter().sum::<u64>(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct WordHistogram {
    /// Domain size (bits per report).
    k: u32,
    /// Words per report: `⌈k/64⌉`.
    words: usize,
    /// Column-major batch buffer: report `r`'s word `w` at `buf[w·8 + r]`.
    buf: Vec<u64>,
    /// Reports currently sitting in `buf` (< [`BATCH`]).
    buffered: usize,
    /// Plane-major bit-sliced counters: `planes[l·words + w]` holds bit `l`
    /// of the running count for every category in word column `w`.
    planes: Vec<u64>,
    /// Reports folded into the planes since the last flush.
    pending: u32,
    /// Plane flush threshold: folding another batch past this could
    /// overflow a 2^planes−1 lane count.
    flush_at: u32,
    /// Flushed per-category counts (also the direct target of the
    /// sparse-report scatter shortcut).
    counts: Vec<u64>,
}

/// Carry-save full adder: `a + b + c = sum + 2·carry`, per bit lane.
#[inline(always)]
fn csa(a: u64, b: u64, c: u64) -> (u64, u64) {
    let axb = a ^ b;
    (axb ^ c, (a & b) | (axb & c))
}

impl WordHistogram {
    /// An empty histogram for `k`-bit reports with the default plane depth
    /// (flushes every ≤ `2^16` reports).
    pub fn new(k: u32) -> Self {
        Self::with_planes(k, PLANES)
    }

    /// An empty histogram with an explicit plane depth in `4..=16` —
    /// exposed so tests can force flush boundaries every `≲ 2^planes`
    /// reports without absorbing tens of thousands of them. (The batch
    /// adder produces 4-bit column sums, hence the lower bound of 4.)
    ///
    /// # Panics
    /// Panics if `planes` is outside `4..=16`.
    pub fn with_planes(k: u32, planes: u32) -> Self {
        assert!(
            (4..=PLANES).contains(&planes),
            "plane depth must be in 4..={PLANES}, got {planes}"
        );
        let words = (k as usize).div_ceil(64);
        WordHistogram {
            k,
            words,
            buf: vec![0; BATCH * words],
            buffered: 0,
            planes: vec![0; planes as usize * words],
            pending: 0,
            // After folding a batch (pending += 8), every lane count is
            // ≤ pending; the next fold adds ≤ 8 more, so flush once
            // pending + 8 could exceed 2^planes − 1.
            flush_at: (1u32 << planes) - 1 - BATCH as u32,
            counts: vec![0; k as usize],
        }
    }

    /// Domain size (bits per absorbed report).
    pub fn k(&self) -> u32 {
        self.k
    }

    /// Absorbs one report given as its backing words (least-significant bit
    /// first, `⌈k/64⌉` words, no bit set at or beyond `k` — i.e. exactly
    /// [`BitVec::words`] of a well-formed `k`-bit vector).
    ///
    /// This is the kernel: the words land in the batch buffer, and every
    /// eighth report folds the batch through the branchless carry-save
    /// network into the planes (flushing them into the `u64` counts as
    /// they fill).
    ///
    /// # Panics
    /// Panics when `report` has the wrong word count (one predictable
    /// compare — noise next to the column adds). Stray bits beyond `k`
    /// accumulate in the planes and panic at the next flush/gather;
    /// callers holding untrusted vectors must validate with
    /// [`BitVec::is_well_formed`] first (in-tree oracles always produce
    /// well-formed vectors).
    #[inline]
    pub fn add_words(&mut self, report: &[u64]) {
        assert_eq!(report.len(), self.words, "report/histogram width mismatch");
        let ones: u32 = report.iter().map(|w| w.count_ones()).sum();
        if ones <= SCATTER_CUTOFF {
            // Nearly-empty report (sparse high-ε unary encodings): a few
            // direct increments beat the batch machinery. Same exact
            // counts, different route.
            for (wi, &word) in report.iter().enumerate() {
                let mut m = word;
                while m != 0 {
                    let tz = m.trailing_zeros() as usize;
                    self.counts[wi * 64 + tz] += 1;
                    m &= m - 1;
                }
            }
            return;
        }
        let r = self.buffered;
        for (wi, &word) in report.iter().enumerate() {
            self.buf[wi * BATCH + r] = word;
        }
        self.buffered = r + 1;
        if self.buffered == BATCH {
            self.fold_batch();
        }
    }

    /// Absorbs one report given as a bit vector (must be `k` bits long).
    #[inline]
    pub fn add_bits(&mut self, bits: &BitVec) {
        debug_assert_eq!(bits.len(), self.k, "report/histogram domain mismatch");
        self.add_words(bits.words());
    }

    /// Reduces the eight buffered reports into the planes: per word
    /// column, a fixed adder network turns the eight 1-bit lanes into a
    /// 4-bit column sum (`s0 + 2·s1 + 4·s2 + 8·s3`), which carry-saves
    /// into the planes. Entirely branchless except the (rare, short)
    /// high-plane carry tail.
    fn fold_batch(&mut self) {
        let words = self.words;
        for wi in 0..words {
            let b = &self.buf[wi * BATCH..wi * BATCH + BATCH];
            // Pairwise half-adders, then a carry-save tree: exact 4-bit
            // per-lane sum of eight bits.
            let (x01, c01) = (b[0] ^ b[1], b[0] & b[1]);
            let (x23, c23) = (b[2] ^ b[3], b[2] & b[3]);
            let (x45, c45) = (b[4] ^ b[5], b[4] & b[5]);
            let (x67, c67) = (b[6] ^ b[7], b[6] & b[7]);
            let (s0a, c2a) = (x01 ^ x23, x01 & x23);
            let (s0b, c2b) = (x45 ^ x67, x45 & x67);
            let (t_a, f_a) = csa(c01, c23, c2a);
            let (t_b, f_b) = csa(c45, c67, c2b);
            let (s0, c2c) = (s0a ^ s0b, s0a & s0b);
            let (s1, f_c) = csa(t_a, t_b, c2c);
            let (s2, s3) = csa(f_a, f_b, f_c);
            // Carry-save the column sum into the planes, level-aligned.
            let p = &mut self.planes[wi..];
            let (n0, carry0) = (p[0] ^ s0, p[0] & s0);
            p[0] = n0;
            let (n1, carry1) = csa(p[words], s1, carry0);
            p[words] = n1;
            let (n2, carry2) = csa(p[2 * words], s2, carry1);
            p[2 * words] = n2;
            let (n3, mut carry) = csa(p[3 * words], s3, carry2);
            p[3 * words] = n3;
            // Tail: a carry past plane 3 happens for a lane only once per
            // 16 folded reports, so this loop almost never iterates.
            let mut slot = 4 * words;
            while carry != 0 {
                let plane = &mut p[slot];
                let sum = *plane ^ carry;
                carry &= *plane;
                *plane = sum;
                slot += words;
            }
        }
        self.buffered = 0;
        self.pending += BATCH as u32;
        if self.pending > self.flush_at {
            self.flush();
        }
    }

    /// Drains the pending planes (and any partially-filled batch) into the
    /// flushed per-category counts. Called automatically as the planes
    /// fill; public so benches can charge the gather to the timed region
    /// explicitly.
    pub fn flush(&mut self) {
        if self.pending == 0 && self.buffered == 0 {
            return;
        }
        let mut counts = std::mem::take(&mut self.counts);
        self.gather_into(&mut counts);
        self.counts = counts;
        self.planes.iter_mut().for_each(|p| *p = 0);
        self.pending = 0;
        self.buffered = 0;
    }

    /// The exact per-category counts absorbed so far (flushed, plane-held
    /// and batch-buffered alike).
    pub fn counts(&self) -> Vec<u64> {
        let mut out = self.counts.clone();
        self.gather_into(&mut out);
        out
    }

    /// Adds this histogram's total counts into `out`, without mutating the
    /// histogram — the merge primitive [`crate::FrequencyAccumulator`]
    /// folds shards with.
    ///
    /// # Panics
    /// Panics if `out` is shorter than the domain.
    pub fn add_to(&self, out: &mut [u64]) {
        assert!(
            out.len() >= self.counts.len(),
            "output slice shorter than the {}-category domain",
            self.counts.len()
        );
        for (o, &c) in out.iter_mut().zip(&self.counts) {
            *o += c;
        }
        self.gather_into(out);
    }

    /// Adds the un-flushed state — plane contributions plus the partially
    /// filled batch buffer — into `out`.
    fn gather_into(&self, out: &mut [u64]) {
        if self.pending > 0 {
            for (l, plane) in self.planes.chunks_exact(self.words).enumerate() {
                let weight = 1u64 << l;
                for (wi, &bits) in plane.iter().enumerate() {
                    let mut m = bits;
                    while m != 0 {
                        let tz = m.trailing_zeros() as usize;
                        out[wi * 64 + tz] += weight;
                        m &= m - 1;
                    }
                }
            }
        }
        for r in 0..self.buffered {
            for wi in 0..self.words {
                let mut m = self.buf[wi * BATCH + r];
                while m != 0 {
                    let tz = m.trailing_zeros() as usize;
                    out[wi * 64 + tz] += 1;
                    m &= m - 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_core::rng::seeded_rng;
    use rand::RngCore;

    /// A random well-formed k-bit vector (~half the bits set).
    fn random_bits(k: u32, rng: &mut impl RngCore) -> BitVec {
        let words = (k as usize).div_ceil(64);
        let mut ws: Vec<u64> = (0..words).map(|_| rng.next_u64()).collect();
        let tail = k % 64;
        if tail != 0 {
            ws[words - 1] &= (1u64 << tail) - 1;
        }
        BitVec::from_words(k, ws).expect("masked to well-formed")
    }

    #[test]
    fn matches_scattered_walk_across_batch_and_flush_boundaries() {
        for (k, planes) in [(1u32, 4u32), (5, 4), (64, 5), (130, 4), (256, 6)] {
            let mut rng = seeded_rng(u64::from(k) * 31 + u64::from(planes));
            let mut hist = WordHistogram::with_planes(k, planes);
            let mut reference = vec![0u64; k as usize];
            // Enough reports to cross several flushes (every ≲ 2^planes) and
            // leave a partially-filled batch at the end.
            for _ in 0..((1usize << planes) * 5 + 3) {
                let bits = random_bits(k, &mut rng);
                for v in bits.iter_ones() {
                    reference[v as usize] += 1;
                }
                hist.add_bits(&bits);
            }
            assert_eq!(hist.counts(), reference, "k={k} planes={planes}");
            // add_to folds flushed + pending + buffered into a total.
            let mut merged = vec![7u64; k as usize];
            hist.add_to(&mut merged);
            for (m, r) in merged.iter().zip(&reference) {
                assert_eq!(*m, r + 7);
            }
            // Explicit flush is a no-op on the observable counts.
            hist.flush();
            assert_eq!(hist.counts(), reference);
            hist.flush();
            assert_eq!(hist.counts(), reference);
        }
    }

    #[test]
    fn adder_network_is_exact_for_every_lane_pattern() {
        // Feed eight reports that enumerate every possible 8-bit column
        // pattern across 256 lanes: lane c receives bit r of c at report r,
        // so its count must equal popcount(c).
        let k = 256u32;
        let mut hist = WordHistogram::new(k);
        for r in 0..8u32 {
            let mut bits = BitVec::zeros(k);
            for c in 0..k {
                if (c >> r) & 1 == 1 {
                    bits.set(c, true);
                }
            }
            hist.add_bits(&bits);
        }
        let counts = hist.counts();
        for c in 0..k {
            assert_eq!(counts[c as usize], u64::from(c.count_ones()), "lane {c}");
        }
    }

    #[test]
    fn empty_histogram_counts_zero() {
        let hist = WordHistogram::new(70);
        assert_eq!(hist.k(), 70);
        assert_eq!(hist.counts(), vec![0u64; 70]);
    }

    #[test]
    #[should_panic(expected = "plane depth")]
    fn rejects_shallow_planes() {
        WordHistogram::with_planes(8, 3);
    }
}
