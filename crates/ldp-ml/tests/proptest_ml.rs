//! Property-based tests for the ERM layer: gradient correctness against
//! finite differences, clipping invariants, and training determinism.

use ldp_core::{Epsilon, NumericKind};
use ldp_data::census::generate_br;
use ldp_data::{DesignMatrix, TargetKind};
use ldp_ml::{clip_unit, GradientMechanism, LdpSgd, LossKind, NonPrivateSgd, SgdConfig};
use proptest::prelude::*;

fn loss_strategy() -> impl Strategy<Value = LossKind> {
    prop_oneof![
        Just(LossKind::LinearRegression),
        Just(LossKind::Logistic),
        Just(LossKind::SvmHinge),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Analytic gradients match central finite differences for random
    /// (β, x, y), away from the hinge kink.
    #[test]
    fn gradients_match_finite_differences(
        loss in loss_strategy(),
        beta in prop::collection::vec(-2.0f64..2.0, 4),
        x in prop::collection::vec(-1.0f64..1.0, 4),
        label in prop::bool::ANY,
    ) {
        let y = if label { 1.0 } else { -1.0 };
        let s = LossKind::score(&beta, &x);
        // Skip the hinge's non-differentiable point.
        prop_assume!(!matches!(loss, LossKind::SvmHinge) || (y * s - 1.0).abs() > 1e-3);
        let mut grad = vec![0.0; 4];
        loss.gradient_into(&beta, &x, y, &mut grad);
        let h = 1e-6;
        for j in 0..4 {
            let mut plus = beta.clone();
            plus[j] += h;
            let mut minus = beta.clone();
            minus[j] -= h;
            let numeric = (loss.loss(&plus, &x, y) - loss.loss(&minus, &x, y)) / (2.0 * h);
            prop_assert!((grad[j] - numeric).abs() < 1e-4,
                "{loss:?} j={j}: {} vs {numeric}", grad[j]);
        }
    }

    /// Losses are non-negative and zero exactly when the prediction is
    /// perfect (linear) or the margin is met (hinge).
    #[test]
    fn losses_are_nonnegative(
        loss in loss_strategy(),
        beta in prop::collection::vec(-2.0f64..2.0, 3),
        x in prop::collection::vec(-1.0f64..1.0, 3),
        label in prop::bool::ANY,
    ) {
        let y = if label { 1.0 } else { -1.0 };
        prop_assert!(loss.loss(&beta, &x, y) >= 0.0);
    }

    /// Clipping is a projection: idempotent, bounded output, identity on
    /// already-bounded input.
    #[test]
    fn clip_unit_is_projection(grad in prop::collection::vec(-10.0f64..10.0, 1..30)) {
        let mut once = grad.clone();
        clip_unit(&mut once);
        prop_assert!(once.iter().all(|g| (-1.0..=1.0).contains(g)));
        let mut twice = once.clone();
        clip_unit(&mut twice);
        prop_assert_eq!(&once, &twice);
        for (o, g) in once.iter().zip(&grad) {
            if (-1.0..=1.0).contains(g) {
                prop_assert_eq!(*o, *g);
            }
        }
    }

    /// Training is a pure function of (data, rows, seed).
    #[test]
    fn training_is_deterministic(seed in 0u64..50) {
        let ds = generate_br(600, 3).unwrap();
        let data = DesignMatrix::encode(&ds, "total_income", TargetKind::BinaryAtMean).unwrap();
        let rows: Vec<usize> = (0..600).collect();
        let np = NonPrivateSgd::new(SgdConfig::paper_defaults(LossKind::Logistic), 1, 32)
            .unwrap();
        prop_assert_eq!(np.train(&data, &rows, seed).unwrap(),
                        np.train(&data, &rows, seed).unwrap());
        let ldp = LdpSgd::new(
            SgdConfig::paper_defaults(LossKind::Logistic),
            Epsilon::new(2.0).unwrap(),
            GradientMechanism::Sampling(NumericKind::Piecewise),
            100,
        )
        .unwrap();
        prop_assert_eq!(ldp.train(&data, &rows, seed).unwrap(),
                        ldp.train(&data, &rows, seed).unwrap());
    }

    /// Model coordinates stay finite for any seed and budget — the noise is
    /// bounded per iteration (clip → perturb → γ_t-weighted step), so no
    /// blow-ups.
    #[test]
    fn ldp_models_stay_finite(seed in 0u64..30, eps in 0.2f64..8.0) {
        let ds = generate_br(400, 4).unwrap();
        let data = DesignMatrix::encode(&ds, "total_income", TargetKind::BinaryAtMean).unwrap();
        let rows: Vec<usize> = (0..400).collect();
        let ldp = LdpSgd::new(
            SgdConfig::paper_defaults(LossKind::SvmHinge),
            Epsilon::new(eps).unwrap(),
            GradientMechanism::Sampling(NumericKind::Hybrid),
            50,
        )
        .unwrap();
        let beta = ldp.train(&data, &rows, seed).unwrap();
        prop_assert!(beta.iter().all(|b| b.is_finite()));
    }
}
