//! Stochastic gradient descent: the non-private baseline and the §V
//! LDP-compliant variant.
//!
//! ## Privacy accounting (§V)
//!
//! Each user participates in **at most one** iteration: the paper shows that
//! splitting a user's budget over `m` iterations inflates the required group
//! size by `m²`, so `m = 1` is optimal. [`LdpSgd::train`] therefore
//! partitions the (shuffled) training users into `T = ⌊n/|G|⌋` disjoint
//! groups, and iteration `t` consumes group `t`: every user's single report
//! is `ε`-LDP, hence the whole training run is `ε`-LDP per user with no
//! composition loss.

use crate::gradient::clip_unit;
use crate::loss::LossKind;
use ldp_core::multidim::SamplingPerturber;
use ldp_core::rng::seeded_rng;
use ldp_core::{AttrSpec, Epsilon, LdpError, NumericKind, OracleKind, Result};
use ldp_data::DesignMatrix;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// Hyper-parameters shared by both trainers.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SgdConfig {
    /// The loss to minimize.
    pub loss: LossKind,
    /// L2 regularization weight λ (paper: 1e-4).
    pub lambda: f64,
    /// Learning-rate scale `c` in the schedule `γ_t = c/√t`.
    pub learning_rate: f64,
}

impl SgdConfig {
    /// The paper's configuration: λ = 1e-4 with a unit learning-rate scale.
    pub fn paper_defaults(loss: LossKind) -> Self {
        SgdConfig {
            loss,
            lambda: 1e-4,
            learning_rate: 1.0,
        }
    }

    fn validate(&self) -> Result<()> {
        if !(self.lambda >= 0.0 && self.lambda.is_finite()) {
            return Err(LdpError::InvalidParameter {
                name: "lambda",
                message: format!("λ must be finite and ≥ 0, got {}", self.lambda),
            });
        }
        if !(self.learning_rate > 0.0 && self.learning_rate.is_finite()) {
            return Err(LdpError::InvalidParameter {
                name: "learning_rate",
                message: format!("must be finite and > 0, got {}", self.learning_rate),
            });
        }
        Ok(())
    }
}

/// How LDP-SGD perturbs each user's clipped gradient.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GradientMechanism {
    /// The paper's proposal: Algorithm 4 with the given 1-D mechanism
    /// (PM or HM).
    Sampling(NumericKind),
    /// Duchi et al.'s Algorithm 3 over the whole gradient.
    DuchiMultidim,
    /// Laplace with the budget split evenly across the `d` coordinates —
    /// the paper's weakest baseline.
    LaplaceSplit,
}

impl GradientMechanism {
    /// Legend label used by the figures.
    pub fn label(self) -> &'static str {
        match self {
            GradientMechanism::Sampling(kind) => kind.name(),
            GradientMechanism::DuchiMultidim => "Duchi",
            GradientMechanism::LaplaceSplit => "Laplace",
        }
    }
}

/// Non-private mini-batch SGD baseline (the "Non-private" line of
/// Figures 9–11).
#[derive(Debug, Clone)]
pub struct NonPrivateSgd {
    config: SgdConfig,
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch: usize,
}

impl NonPrivateSgd {
    /// A trainer with the given epochs/batch.
    ///
    /// # Errors
    /// Validates the config and batch/epoch positivity.
    pub fn new(config: SgdConfig, epochs: usize, batch: usize) -> Result<Self> {
        config.validate()?;
        if epochs == 0 || batch == 0 {
            return Err(LdpError::InvalidParameter {
                name: "epochs/batch",
                message: "must be positive".into(),
            });
        }
        Ok(NonPrivateSgd {
            config,
            epochs,
            batch,
        })
    }

    /// Trains on `rows` of `data`, returning the parameter vector.
    ///
    /// # Errors
    /// Rejects an empty row set.
    pub fn train(&self, data: &DesignMatrix, rows: &[usize], seed: u64) -> Result<Vec<f64>> {
        if rows.is_empty() {
            return Err(LdpError::EmptyInput("training rows"));
        }
        let d = data.dim();
        let mut beta = vec![0.0; d];
        let mut grad = vec![0.0; d];
        let mut batch_grad = vec![0.0; d];
        let mut order = rows.to_vec();
        let mut rng = seeded_rng(seed);
        let mut t = 0usize;
        for _ in 0..self.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(self.batch) {
                t += 1;
                let gamma = self.config.learning_rate / (t as f64).sqrt();
                batch_grad.iter_mut().for_each(|g| *g = 0.0);
                for &i in chunk {
                    self.config
                        .loss
                        .gradient_into(&beta, data.row(i), data.target(i), &mut grad);
                    for (b, g) in batch_grad.iter_mut().zip(&grad) {
                        *b += g;
                    }
                }
                let inv = 1.0 / chunk.len() as f64;
                for j in 0..d {
                    beta[j] -= gamma * (batch_grad[j] * inv + self.config.lambda * beta[j]);
                }
            }
        }
        Ok(beta)
    }
}

/// The §V LDP-SGD trainer.
///
/// ```
/// use ldp_core::{Epsilon, NumericKind};
/// use ldp_data::{census::generate_br, DesignMatrix, TargetKind};
/// use ldp_ml::{GradientMechanism, LdpSgd, LossKind, SgdConfig};
///
/// let ds = generate_br(2_000, 1)?;
/// let data = DesignMatrix::encode(&ds, "total_income", TargetKind::BinaryAtMean)?;
/// let trainer = LdpSgd::new(
///     SgdConfig::paper_defaults(LossKind::Logistic),
///     Epsilon::new(2.0)?,
///     GradientMechanism::Sampling(NumericKind::Hybrid),
///     500, // users per iteration; each user participates at most once
/// )?;
/// let rows: Vec<usize> = (0..2_000).collect();
/// let model = trainer.train(&data, &rows, 7)?;
/// assert_eq!(model.len(), data.dim());
/// # Ok::<(), ldp_core::LdpError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LdpSgd {
    config: SgdConfig,
    epsilon: Epsilon,
    mechanism: GradientMechanism,
    group_size: usize,
    tail_averaging: bool,
}

impl LdpSgd {
    /// Builds a trainer that spends `ε` per user, with groups of
    /// `group_size` users per iteration.
    ///
    /// §V suggests `|G| = Ω(d·log d / ε²)` so the averaged noisy gradient
    /// concentrates; [`LdpSgd::suggested_group_size`] computes that value.
    ///
    /// # Errors
    /// Validates the config and `group_size ≥ 1`.
    pub fn new(
        config: SgdConfig,
        epsilon: Epsilon,
        mechanism: GradientMechanism,
        group_size: usize,
    ) -> Result<Self> {
        config.validate()?;
        if group_size == 0 {
            return Err(LdpError::InvalidParameter {
                name: "group_size",
                message: "must be positive".into(),
            });
        }
        Ok(LdpSgd {
            config,
            epsilon,
            mechanism,
            group_size,
            tail_averaging: false,
        })
    }

    /// Enables Polyak-style tail averaging: the returned model is the
    /// average of the iterates from the second half of training rather than
    /// the last iterate.
    ///
    /// With `γ_t = c/√t` schedules, averaging suppresses the random walk the
    /// perturbation noise induces; it is a post-processing of already-private
    /// gradients, so the privacy guarantee is unchanged. Most useful at
    /// reduced scale, where groups are small and per-iteration noise high.
    pub fn with_tail_averaging(mut self, enabled: bool) -> Self {
        self.tail_averaging = enabled;
        self
    }

    /// The paper's group-size guidance `|G| = c·d·log d/ε²`, with `c = 1`
    /// and a floor of 10 users.
    pub fn suggested_group_size(d: usize, epsilon: Epsilon) -> usize {
        let d = d as f64;
        let eps = epsilon.value();
        ((d * d.max(2.0).ln() / (eps * eps)).ceil() as usize).max(10)
    }

    /// The gradient mechanism in use.
    pub fn mechanism(&self) -> GradientMechanism {
        self.mechanism
    }

    /// Trains on `rows`, consuming each user at most once.
    ///
    /// # Errors
    /// Rejects row sets smaller than one group.
    pub fn train(&self, data: &DesignMatrix, rows: &[usize], seed: u64) -> Result<Vec<f64>> {
        if rows.len() < self.group_size {
            return Err(LdpError::InvalidParameter {
                name: "rows",
                message: format!(
                    "need at least one group of {} users, got {}",
                    self.group_size,
                    rows.len()
                ),
            });
        }
        let d = data.dim();
        let mut rng = seeded_rng(seed);
        // Disjoint groups over a shuffled user order: at most one iteration
        // per user (see the module docs for the privacy argument).
        let mut order = rows.to_vec();
        order.shuffle(&mut rng);
        let iterations = order.len() / self.group_size;

        enum Perturber {
            Sampling(SamplingPerturber),
            Duchi(ldp_core::multidim::DuchiMultidim),
            // Unboxed (`AnyNumeric`): the per-coordinate Laplace draw below
            // monomorphizes over the trainer's rng instead of paying a
            // virtual call per gradient coordinate.
            Laplace(ldp_core::AnyNumeric),
        }
        let perturber = match self.mechanism {
            GradientMechanism::Sampling(kind) => Perturber::Sampling(SamplingPerturber::new(
                self.epsilon,
                vec![AttrSpec::Numeric; d],
                kind,
                OracleKind::Oue,
            )?),
            GradientMechanism::DuchiMultidim => {
                Perturber::Duchi(ldp_core::multidim::DuchiMultidim::new(self.epsilon, d)?)
            }
            GradientMechanism::LaplaceSplit => Perturber::Laplace(ldp_core::AnyNumeric::build(
                NumericKind::Laplace,
                self.epsilon.split(d)?,
            )),
        };

        let mut beta = vec![0.0; d];
        let mut grad = vec![0.0; d];
        let mut sum = vec![0.0; d];
        let tail_start = iterations / 2;
        let mut tail_sum = vec![0.0; d];
        let mut tail_count = 0usize;
        for t in 0..iterations {
            let gamma = self.config.learning_rate / ((t + 1) as f64).sqrt();
            let group = &order[t * self.group_size..(t + 1) * self.group_size];
            sum.iter_mut().for_each(|g| *g = 0.0);
            for &i in group {
                // User side: regularized gradient, clipped, perturbed.
                self.config
                    .loss
                    .gradient_into(&beta, data.row(i), data.target(i), &mut grad);
                for (g, b) in grad.iter_mut().zip(&beta) {
                    *g += self.config.lambda * b;
                }
                clip_unit(&mut grad);
                match &perturber {
                    Perturber::Sampling(p) => {
                        let report = p.perturb_numeric(&grad, &mut rng)?;
                        for (s, x) in sum.iter_mut().zip(report) {
                            *s += x;
                        }
                    }
                    Perturber::Duchi(p) => {
                        let report = p.perturb(&grad, &mut rng)?;
                        for (s, x) in sum.iter_mut().zip(report) {
                            *s += x;
                        }
                    }
                    Perturber::Laplace(m) => {
                        for (s, &g) in sum.iter_mut().zip(&grad) {
                            *s += m.perturb(g, &mut rng)?;
                        }
                    }
                }
            }
            // Aggregator side: average the noisy gradients, step.
            let inv = 1.0 / group.len() as f64;
            for (b, s) in beta.iter_mut().zip(&sum) {
                *b -= gamma * s * inv;
            }
            if self.tail_averaging && t >= tail_start {
                for (a, b) in tail_sum.iter_mut().zip(&beta) {
                    *a += b;
                }
                tail_count += 1;
            }
        }
        if self.tail_averaging && tail_count > 0 {
            let inv = 1.0 / tail_count as f64;
            return Ok(tail_sum.into_iter().map(|x| x * inv).collect());
        }
        Ok(beta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_data::census::generate_br;
    use ldp_data::TargetKind;

    fn small_design(n: usize) -> DesignMatrix {
        let ds = generate_br(n, 77).unwrap();
        DesignMatrix::encode(&ds, "total_income", TargetKind::BinaryAtMean).unwrap()
    }

    fn misclassification(beta: &[f64], data: &DesignMatrix, rows: &[usize]) -> f64 {
        let wrong = rows
            .iter()
            .filter(|&&i| LossKind::classify(beta, data.row(i)) != data.target(i))
            .count();
        wrong as f64 / rows.len() as f64
    }

    #[test]
    fn nonprivate_logistic_learns() {
        let data = small_design(8_000);
        let rows: Vec<usize> = (0..6_000).collect();
        let test: Vec<usize> = (6_000..8_000).collect();
        let trainer =
            NonPrivateSgd::new(SgdConfig::paper_defaults(LossKind::Logistic), 3, 32).unwrap();
        let beta = trainer.train(&data, &rows, 1).unwrap();
        let err = misclassification(&beta, &data, &test);
        // Majority class alone is ~0.4; learning must do clearly better.
        assert!(err < 0.32, "misclassification {err}");
    }

    #[test]
    fn ldp_sgd_learns_with_generous_budget() {
        let data = small_design(30_000);
        let rows: Vec<usize> = (0..24_000).collect();
        let test: Vec<usize> = (24_000..30_000).collect();
        let trainer = LdpSgd::new(
            SgdConfig::paper_defaults(LossKind::Logistic),
            Epsilon::new(4.0).unwrap(),
            GradientMechanism::Sampling(NumericKind::Hybrid),
            400,
        )
        .unwrap();
        let beta = trainer.train(&data, &rows, 2).unwrap();
        let err = misclassification(&beta, &data, &test);
        assert!(err < 0.45, "LDP misclassification {err}");
    }

    #[test]
    fn ldp_noise_hurts_relative_to_nonprivate() {
        let data = small_design(20_000);
        let rows: Vec<usize> = (0..16_000).collect();
        let test: Vec<usize> = (16_000..20_000).collect();
        let nonpriv = NonPrivateSgd::new(SgdConfig::paper_defaults(LossKind::Logistic), 3, 32)
            .unwrap()
            .train(&data, &rows, 3)
            .unwrap();
        let ldp = LdpSgd::new(
            SgdConfig::paper_defaults(LossKind::Logistic),
            Epsilon::new(0.5).unwrap(),
            GradientMechanism::Sampling(NumericKind::Piecewise),
            400,
        )
        .unwrap()
        .train(&data, &rows, 3)
        .unwrap();
        let e_non = misclassification(&nonpriv, &data, &test);
        let e_ldp = misclassification(&ldp, &data, &test);
        assert!(
            e_non <= e_ldp + 0.02,
            "non-private {e_non} vs LDP(0.5) {e_ldp}"
        );
    }

    #[test]
    fn svm_and_linear_losses_run() {
        let ds = generate_br(5_000, 78).unwrap();
        let reg = DesignMatrix::encode(&ds, "total_income", TargetKind::Regression).unwrap();
        let rows: Vec<usize> = (0..5_000).collect();
        for (loss, data) in [
            (LossKind::SvmHinge, &small_design(5_000)),
            (LossKind::LinearRegression, &reg),
        ] {
            let trainer = LdpSgd::new(
                SgdConfig::paper_defaults(loss),
                Epsilon::new(2.0).unwrap(),
                GradientMechanism::DuchiMultidim,
                250,
            )
            .unwrap();
            let beta = trainer.train(data, &rows, 4).unwrap();
            assert_eq!(beta.len(), data.dim());
            assert!(beta.iter().all(|b| b.is_finite()));
        }
    }

    #[test]
    fn each_user_participates_at_most_once() {
        // With n = 1000 and |G| = 300, exactly 3 groups run and 100 users
        // are never consumed. We can't observe participation directly, but
        // the iteration count bound implies it: T·|G| ≤ n.
        let data = small_design(1_000);
        let rows: Vec<usize> = (0..1_000).collect();
        let trainer = LdpSgd::new(
            SgdConfig::paper_defaults(LossKind::Logistic),
            Epsilon::new(1.0).unwrap(),
            GradientMechanism::LaplaceSplit,
            300,
        )
        .unwrap();
        // Smoke: runs with T = 3 iterations.
        let beta = trainer.train(&data, &rows, 5).unwrap();
        assert!(beta.iter().all(|b| b.is_finite()));
        // Too few users for a single group fails loudly.
        assert!(trainer.train(&data, &rows[..200], 5).is_err());
    }

    #[test]
    fn config_validation() {
        let mut cfg = SgdConfig::paper_defaults(LossKind::Logistic);
        cfg.lambda = -1.0;
        assert!(NonPrivateSgd::new(cfg, 1, 1).is_err());
        let mut cfg2 = SgdConfig::paper_defaults(LossKind::Logistic);
        cfg2.learning_rate = 0.0;
        assert!(LdpSgd::new(
            cfg2,
            Epsilon::new(1.0).unwrap(),
            GradientMechanism::LaplaceSplit,
            10
        )
        .is_err());
        assert!(LdpSgd::new(
            SgdConfig::paper_defaults(LossKind::Logistic),
            Epsilon::new(1.0).unwrap(),
            GradientMechanism::LaplaceSplit,
            0
        )
        .is_err());
        assert!(NonPrivateSgd::new(SgdConfig::paper_defaults(LossKind::Logistic), 0, 5).is_err());
    }

    #[test]
    fn suggested_group_size_scales() {
        let e1 = Epsilon::new(1.0).unwrap();
        let e4 = Epsilon::new(4.0).unwrap();
        let g_small = LdpSgd::suggested_group_size(90, e4);
        let g_large = LdpSgd::suggested_group_size(90, e1);
        assert!(g_large > g_small);
        assert!(LdpSgd::suggested_group_size(2, e4) >= 10);
    }

    #[test]
    fn tail_averaging_reduces_variance_across_seeds() {
        // The averaged model should scatter less across seeds than the last
        // iterate: compare the spread of one coordinate over retrainings.
        let data = small_design(6_000);
        let rows: Vec<usize> = (0..6_000).collect();
        let make = |avg: bool| {
            LdpSgd::new(
                SgdConfig::paper_defaults(LossKind::Logistic),
                Epsilon::new(1.0).unwrap(),
                GradientMechanism::Sampling(NumericKind::Hybrid),
                300,
            )
            .unwrap()
            .with_tail_averaging(avg)
        };
        // Spread over seeds, summed across all coordinates so a single
        // noisy coordinate cannot dominate the comparison.
        let spread = |avg: bool| -> f64 {
            let betas: Vec<Vec<f64>> = (0..12)
                .map(|s| make(avg).train(&data, &rows, s).unwrap())
                .collect();
            let d = betas[0].len();
            let n = betas.len() as f64;
            (0..d)
                .map(|j| {
                    let mean = betas.iter().map(|b| b[j]).sum::<f64>() / n;
                    betas.iter().map(|b| (b[j] - mean).powi(2)).sum::<f64>() / n
                })
                .sum()
        };
        let (averaged, raw) = (spread(true), spread(false));
        assert!(
            averaged < raw,
            "averaged spread {averaged} vs raw spread {raw}"
        );
    }

    #[test]
    fn mechanism_labels() {
        assert_eq!(
            GradientMechanism::Sampling(NumericKind::Piecewise).label(),
            "PM"
        );
        assert_eq!(GradientMechanism::DuchiMultidim.label(), "Duchi");
        assert_eq!(GradientMechanism::LaplaceSplit.label(), "Laplace");
    }
}
