//! Gradient clipping (§V: "if any entry of ∇ℓ is greater than 1 (resp.
//! smaller than −1), the user should clip it to 1 (resp. −1) before
//! perturbation").
//!
//! Clipping is what lets the LDP mechanisms assume a `[-1, 1]` input domain;
//! it introduces bias into the *gradient direction* but keeps the privacy
//! analysis exact, which is the standard trade in private SGD.

/// Clips every coordinate into `[-1, 1]` in place.
pub fn clip_unit(grad: &mut [f64]) {
    for g in grad {
        *g = g.clamp(-1.0, 1.0);
    }
}

/// Returns the fraction of coordinates that the clip actually changed
/// (useful diagnostics: persistent clipping means the learning rate or
/// regularization is off).
pub fn clip_unit_counting(grad: &mut [f64]) -> f64 {
    if grad.is_empty() {
        return 0.0;
    }
    let mut clipped = 0usize;
    for g in grad.iter_mut() {
        let before = *g;
        *g = g.clamp(-1.0, 1.0);
        if *g != before {
            clipped += 1;
        }
    }
    clipped as f64 / grad.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clips_out_of_range_only() {
        let mut g = vec![-3.0, -1.0, 0.5, 1.0, 7.0];
        clip_unit(&mut g);
        assert_eq!(g, vec![-1.0, -1.0, 0.5, 1.0, 1.0]);
    }

    #[test]
    fn counting_variant_reports_fraction() {
        let mut g = vec![-3.0, 0.0, 3.0, 0.9];
        let frac = clip_unit_counting(&mut g);
        assert_eq!(frac, 0.5);
        assert_eq!(g, vec![-1.0, 0.0, 1.0, 0.9]);
        assert_eq!(clip_unit_counting(&mut []), 0.0);
    }

    #[test]
    fn idempotent() {
        let mut g = vec![-5.0, 5.0];
        clip_unit(&mut g);
        let snapshot = g.clone();
        clip_unit(&mut g);
        assert_eq!(g, snapshot);
    }
}
