//! # ldp-ml — empirical risk minimization under local differential privacy
//!
//! The §V case study of Wang et al. (ICDE 2019): training linear regression,
//! logistic regression, and SVM classifiers by stochastic gradient descent
//! where each gradient is collected from users under ε-LDP.
//!
//! * [`loss`] — the three losses with analytically-verified gradients.
//! * [`gradient`] — the `[-1,1]` clipping that bounds mechanism inputs.
//! * [`sgd`] — [`sgd::NonPrivateSgd`] (baseline) and [`sgd::LdpSgd`], which
//!   consumes each user at most once (no budget splitting across
//!   iterations; §V shows `m > 1` participation only hurts).
//! * [`eval`] — misclassification / regression-MSE metrics and the 10-fold
//!   cross-validation harness of §VI-B.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod eval;
pub mod gradient;
pub mod loss;
pub mod sgd;

pub use eval::{cross_validate, misclassification_rate, regression_mse};
pub use gradient::clip_unit;
pub use loss::LossKind;
pub use sgd::{GradientMechanism, LdpSgd, NonPrivateSgd, SgdConfig};
