//! Model evaluation and the §VI-B cross-validation harness.

use crate::loss::LossKind;
use ldp_core::{LdpError, Result};
use ldp_data::{DesignMatrix, KFold};

/// Misclassification rate of `sign(x^Tβ)` against ±1 targets over `rows`.
///
/// # Errors
/// [`LdpError::EmptyInput`] on empty `rows`.
pub fn misclassification_rate(beta: &[f64], data: &DesignMatrix, rows: &[usize]) -> Result<f64> {
    if rows.is_empty() {
        return Err(LdpError::EmptyInput("evaluation rows"));
    }
    let wrong = rows
        .iter()
        .filter(|&&i| LossKind::classify(beta, data.row(i)) != data.target(i))
        .count();
    Ok(wrong as f64 / rows.len() as f64)
}

/// Mean squared prediction error `1/n Σ (x^Tβ − y)²` over `rows` — the
/// linear-regression metric of Figure 11.
///
/// # Errors
/// [`LdpError::EmptyInput`] on empty `rows`.
pub fn regression_mse(beta: &[f64], data: &DesignMatrix, rows: &[usize]) -> Result<f64> {
    if rows.is_empty() {
        return Err(LdpError::EmptyInput("evaluation rows"));
    }
    let total: f64 = rows
        .iter()
        .map(|&i| {
            let e = LossKind::score(beta, data.row(i)) - data.target(i);
            e * e
        })
        .sum();
    Ok(total / rows.len() as f64)
}

/// Runs `folds`-fold cross validation `repeats` times (the paper uses
/// 10-fold × 5), averaging `metric` over every fold.
///
/// `train` receives the training rows and a per-fold seed; `metric`
/// evaluates the returned model on the held-out rows.
///
/// # Errors
/// Propagates trainer/metric errors and fold-construction validation.
pub fn cross_validate<T, M>(
    data: &DesignMatrix,
    folds: usize,
    repeats: usize,
    seed: u64,
    mut train: T,
    mut metric: M,
) -> Result<f64>
where
    T: FnMut(&[usize], u64) -> Result<Vec<f64>>,
    M: FnMut(&[f64], &[usize]) -> Result<f64>,
{
    if repeats == 0 {
        return Err(LdpError::InvalidParameter {
            name: "repeats",
            message: "must be positive".into(),
        });
    }
    let mut total = 0.0;
    let mut count = 0usize;
    for r in 0..repeats {
        let kfold = KFold::new(data.n(), folds, seed.wrapping_add(r as u64))?;
        for (f, split) in kfold.splits().enumerate() {
            let fold_seed = seed
                .wrapping_add((r as u64) << 32)
                .wrapping_add(f as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let beta = train(&split.train, fold_seed)?;
            total += metric(&beta, &split.test)?;
            count += 1;
        }
    }
    Ok(total / count as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sgd::{NonPrivateSgd, SgdConfig};
    use ldp_data::census::generate_br;
    use ldp_data::TargetKind;

    fn design(n: usize) -> DesignMatrix {
        let ds = generate_br(n, 79).unwrap();
        DesignMatrix::encode(&ds, "total_income", TargetKind::BinaryAtMean).unwrap()
    }

    #[test]
    fn misclassification_bounds() {
        let data = design(500);
        let rows: Vec<usize> = (0..500).collect();
        let zero = vec![0.0; data.dim()];
        // The zero model classifies everything +1.
        let rate = misclassification_rate(&zero, &data, &rows).unwrap();
        let pos = rows.iter().filter(|&&i| data.target(i) == 1.0).count() as f64 / 500.0;
        assert!((rate - (1.0 - pos)).abs() < 1e-12);
        assert!(misclassification_rate(&zero, &data, &[]).is_err());
    }

    #[test]
    fn regression_mse_of_zero_model_is_mean_square_target() {
        let ds = generate_br(400, 80).unwrap();
        let data = DesignMatrix::encode(&ds, "total_income", TargetKind::Regression).unwrap();
        let rows: Vec<usize> = (0..400).collect();
        let zero = vec![0.0; data.dim()];
        let mse = regression_mse(&zero, &data, &rows).unwrap();
        let expect = rows.iter().map(|&i| data.target(i).powi(2)).sum::<f64>() / rows.len() as f64;
        assert!((mse - expect).abs() < 1e-12);
    }

    #[test]
    fn cross_validation_averages_folds() {
        let data = design(600);
        let trainer =
            NonPrivateSgd::new(SgdConfig::paper_defaults(LossKind::Logistic), 1, 32).unwrap();
        let err = cross_validate(
            &data,
            5,
            1,
            42,
            |rows, seed| trainer.train(&data, rows, seed),
            |beta, rows| misclassification_rate(beta, &data, rows),
        )
        .unwrap();
        assert!((0.0..=1.0).contains(&err));
        // A learned model should beat coin flipping on held-out folds.
        assert!(err < 0.45, "CV error {err}");
    }

    #[test]
    fn cross_validation_validates_inputs() {
        let data = design(100);
        let res = cross_validate(
            &data,
            5,
            0,
            0,
            |_, _| Ok(vec![0.0; data.dim()]),
            |_, _| Ok(0.0),
        );
        assert!(res.is_err());
        // Bad fold count propagates from KFold.
        let res = cross_validate(
            &data,
            1,
            1,
            0,
            |_, _| Ok(vec![0.0; data.dim()]),
            |_, _| Ok(0.0),
        );
        assert!(res.is_err());
    }

    #[test]
    fn cross_validation_is_deterministic() {
        let data = design(300);
        let run = |seed| {
            cross_validate(
                &data,
                3,
                2,
                seed,
                |rows, _| {
                    // Degenerate "trainer": majority sign of the targets.
                    let pos = rows.iter().filter(|&&i| data.target(i) > 0.0).count();
                    let sign = if 2 * pos >= rows.len() { 1.0 } else { -1.0 };
                    let mut beta = vec![0.0; data.dim()];
                    // Bias via a constant-ish feature is unavailable, so use
                    // the all-`sign` vector; only determinism matters here.
                    beta.iter_mut().for_each(|b| *b = sign);
                    Ok(beta)
                },
                |beta, rows| misclassification_rate(beta, &data, rows),
            )
            .unwrap()
        };
        assert_eq!(run(7), run(7));
    }
}
