//! The three empirical-risk-minimization losses of §V.
//!
//! Each user holds `⟨x_i, y_i⟩` with `x_i ∈ [-1,1]^d` and `y_i ∈ [-1,1]`
//! (linear regression) or `y_i ∈ {-1, 1}` (logistic regression, SVM). The
//! regularized objective is `1/n Σ ℓ(β; x_i, y_i) + λ/2‖β‖²`.

use ldp_core::math::sigmoid;
use serde::{Deserialize, Serialize};

/// Which loss function drives the SGD.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LossKind {
    /// `ℓ = (x^Tβ − y)²` — linear regression.
    LinearRegression,
    /// `ℓ = log(1 + e^{−y·x^Tβ})` — logistic regression.
    Logistic,
    /// `ℓ = max{0, 1 − y·x^Tβ}` — SVM hinge loss.
    SvmHinge,
}

impl LossKind {
    /// Display name matching the paper's section headers.
    pub fn name(self) -> &'static str {
        match self {
            LossKind::LinearRegression => "linear regression",
            LossKind::Logistic => "logistic regression",
            LossKind::SvmHinge => "SVM",
        }
    }

    /// True for the two classification losses.
    pub fn is_classification(self) -> bool {
        !matches!(self, LossKind::LinearRegression)
    }

    /// The raw score `x^Tβ`.
    pub fn score(beta: &[f64], x: &[f64]) -> f64 {
        debug_assert_eq!(beta.len(), x.len());
        beta.iter().zip(x).map(|(b, v)| b * v).sum()
    }

    /// The per-example loss `ℓ(β; x, y)` (un-regularized).
    pub fn loss(self, beta: &[f64], x: &[f64], y: f64) -> f64 {
        let s = Self::score(beta, x);
        match self {
            LossKind::LinearRegression => (s - y) * (s - y),
            LossKind::Logistic => ldp_core::math::ln_1p_exp(-y * s),
            LossKind::SvmHinge => (1.0 - y * s).max(0.0),
        }
    }

    /// Accumulates the per-example gradient `∇ℓ(β; x, y)` into `out`
    /// (overwriting it). The `λβ` regularization term is added by the SGD
    /// driver, not here.
    ///
    /// For the hinge loss we use the standard subgradient (0 at the kink).
    pub fn gradient_into(self, beta: &[f64], x: &[f64], y: f64, out: &mut [f64]) {
        debug_assert_eq!(beta.len(), out.len());
        let s = Self::score(beta, x);
        let coeff = match self {
            LossKind::LinearRegression => 2.0 * (s - y),
            LossKind::Logistic => -y * sigmoid(-y * s),
            LossKind::SvmHinge => {
                if y * s < 1.0 {
                    -y
                } else {
                    0.0
                }
            }
        };
        for (o, &v) in out.iter_mut().zip(x) {
            *o = coeff * v;
        }
    }

    /// The classification decision `sign(x^Tβ)` (ties broken toward +1).
    pub fn classify(beta: &[f64], x: &[f64]) -> f64 {
        if Self::score(beta, x) >= 0.0 {
            1.0
        } else {
            -1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numeric_gradient(kind: LossKind, beta: &[f64], x: &[f64], y: f64) -> Vec<f64> {
        let h = 1e-6;
        (0..beta.len())
            .map(|j| {
                let mut plus = beta.to_vec();
                plus[j] += h;
                let mut minus = beta.to_vec();
                minus[j] -= h;
                (kind.loss(&plus, x, y) - kind.loss(&minus, x, y)) / (2.0 * h)
            })
            .collect()
    }

    #[test]
    fn gradients_match_finite_differences() {
        let beta = [0.3, -0.7, 0.1];
        let x = [0.5, 0.2, -0.9];
        for kind in [LossKind::LinearRegression, LossKind::Logistic] {
            for y in [-1.0, 0.4, 1.0] {
                let mut grad = vec![0.0; 3];
                kind.gradient_into(&beta, &x, y, &mut grad);
                let num = numeric_gradient(kind, &beta, &x, y);
                for j in 0..3 {
                    assert!(
                        (grad[j] - num[j]).abs() < 1e-5,
                        "{kind:?} y={y} j={j}: {} vs {}",
                        grad[j],
                        num[j]
                    );
                }
            }
        }
    }

    #[test]
    fn hinge_gradient_matches_fd_away_from_kink() {
        let kind = LossKind::SvmHinge;
        // Active margin (y·s < 1) and inactive (y·s > 1) cases.
        for (beta, y) in [([0.1, 0.1], 1.0), ([2.0, 2.0], 1.0), ([-2.0, -2.0], 1.0)] {
            let x = [0.8, 0.6];
            let s = LossKind::score(&beta, &x);
            if (y * s - 1.0).abs() < 1e-3 {
                continue; // skip the kink itself
            }
            let mut grad = vec![0.0; 2];
            kind.gradient_into(&beta, &x, y, &mut grad);
            let num = numeric_gradient(kind, &beta, &x, y);
            for j in 0..2 {
                assert!((grad[j] - num[j]).abs() < 1e-5, "beta={beta:?} j={j}");
            }
        }
    }

    #[test]
    fn hinge_zero_gradient_when_margin_satisfied() {
        let beta = [5.0, 0.0];
        let x = [1.0, 0.0];
        let mut grad = vec![0.0; 2];
        LossKind::SvmHinge.gradient_into(&beta, &x, 1.0, &mut grad);
        assert_eq!(grad, vec![0.0, 0.0]);
    }

    #[test]
    fn logistic_loss_is_stable_for_large_scores() {
        let beta = [1e3, 0.0];
        let x = [1.0, 0.0];
        let l = LossKind::Logistic.loss(&beta, &x, -1.0);
        assert!((l - 1e3).abs() < 1e-9, "{l}");
        let l2 = LossKind::Logistic.loss(&beta, &x, 1.0);
        assert!((0.0..1e-10).contains(&l2), "{l2}");
    }

    #[test]
    fn classify_signs() {
        assert_eq!(LossKind::classify(&[1.0], &[0.5]), 1.0);
        assert_eq!(LossKind::classify(&[1.0], &[-0.5]), -1.0);
        assert_eq!(LossKind::classify(&[0.0], &[0.9]), 1.0);
    }

    #[test]
    fn names_and_kinds() {
        assert!(!LossKind::LinearRegression.is_classification());
        assert!(LossKind::Logistic.is_classification());
        assert!(LossKind::SvmHinge.is_classification());
        assert_eq!(LossKind::SvmHinge.name(), "SVM");
    }
}
