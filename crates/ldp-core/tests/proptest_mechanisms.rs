//! Property-based tests of the core mechanism invariants (DESIGN.md §7).
//!
//! The deterministic properties — privacy ratio bounds, output support,
//! closed-form identities — are checked over randomized inputs; the
//! statistical properties (unbiasedness, variance) live in the unit and
//! integration tests where sample sizes can be controlled.

use ldp_core::math::{epsilon_sharp, epsilon_star};
use ldp_core::multidim::{optimal_k, DuchiMultidim, SamplingPerturber};
use ldp_core::numeric::{Duchi1d, Hybrid, Piecewise, Scdf, Staircase};
use ldp_core::rng::seeded_rng;
use ldp_core::{variance, AttrSpec, Epsilon, NumericKind, NumericMechanism, OracleKind};
use proptest::prelude::*;

fn eps_strategy() -> impl Strategy<Value = f64> {
    // The paper's working range, avoiding degenerate extremes.
    0.05f64..8.0
}

fn unit_strategy() -> impl Strategy<Value = f64> {
    -1.0f64..=1.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Definition 1 on PM's density: pdf(x|t) ≤ e^ε · pdf(x|t') for all
    /// inputs t, t' and outputs x in [-C, C].
    #[test]
    fn pm_density_ratio_bounded(
        eps in eps_strategy(),
        t in unit_strategy(),
        u in unit_strategy(),
        frac in 0.0f64..=1.0,
    ) {
        let pm = Piecewise::new(Epsilon::new(eps).unwrap());
        let x = -pm.c() + 2.0 * pm.c() * frac;
        let (a, b) = (pm.pdf(x, t), pm.pdf(x, u));
        prop_assert!(a <= eps.exp() * b * (1.0 + 1e-12),
            "eps={eps} t={t} u={u} x={x}: {a} vs {b}");
    }

    /// PM's density never vanishes inside [-C, C] (plausible deniability:
    /// every output is compatible with every input).
    #[test]
    fn pm_density_positive_on_support(
        eps in eps_strategy(),
        t in unit_strategy(),
        frac in 0.0f64..=1.0,
    ) {
        let pm = Piecewise::new(Epsilon::new(eps).unwrap());
        let x = -pm.c() + 2.0 * pm.c() * frac;
        prop_assert!(pm.pdf(x, t) > 0.0);
    }

    /// PM outputs stay within [-C, C]; Duchi outputs are exactly ±magnitude.
    #[test]
    fn bounded_outputs(eps in eps_strategy(), t in unit_strategy(), seed in 0u64..1000) {
        let e = Epsilon::new(eps).unwrap();
        let mut rng = seeded_rng(seed);
        let pm = Piecewise::new(e);
        let x = pm.perturb(t, &mut rng).unwrap();
        prop_assert!(x.abs() <= pm.c() + 1e-12);

        let duchi = Duchi1d::new(e);
        let y = duchi.perturb(t, &mut rng).unwrap();
        prop_assert!((y.abs() - duchi.magnitude()).abs() < 1e-12);

        let hm = Hybrid::new(e);
        let z = hm.perturb(t, &mut rng).unwrap();
        prop_assert!(z.abs() <= hm.output_bound().unwrap() + 1e-12);
    }

    /// The discrete Definition 1 check for Duchi's two-point distribution.
    #[test]
    fn duchi_ratio_bounded(eps in eps_strategy(), t in unit_strategy(), u in unit_strategy()) {
        let duchi = Duchi1d::new(Epsilon::new(eps).unwrap());
        let bound = eps.exp() * (1.0 + 1e-12);
        let (pt, pu) = (duchi.head_probability(t), duchi.head_probability(u));
        prop_assert!(pt <= bound * pu + 1e-15);
        prop_assert!((1.0 - pt) <= bound * (1.0 - pu) + 1e-15);
    }

    /// Additive stepped-noise mechanisms: f(x−t) ≤ e^ε f(x−t') over a window
    /// wide enough to cover the mass that matters.
    #[test]
    fn stepped_noise_ratio_bounded(
        eps in 0.1f64..6.0,
        t in unit_strategy(),
        u in unit_strategy(),
        x in -12.0f64..12.0,
    ) {
        let e = Epsilon::new(eps).unwrap();
        let bound = eps.exp() * (1.0 + 1e-9);
        let scdf = Scdf::new(e);
        prop_assert!(scdf.noise_pdf(x - t) <= bound * scdf.noise_pdf(x - u));
        let st = Staircase::new(e);
        prop_assert!(st.noise_pdf(x - t) <= bound * st.noise_pdf(x - u));
    }

    /// Lemma 1's closed form equals the trait method for every (ε, t).
    #[test]
    fn variance_formula_consistency(eps in eps_strategy(), t in unit_strategy()) {
        let e = Epsilon::new(eps).unwrap();
        prop_assert!((Piecewise::new(e).variance(t) - variance::pm_1d(eps, t)).abs() < 1e-10);
        prop_assert!((Hybrid::new(e).variance(t) - variance::hm_1d(eps, t)).abs() < 1e-10);
        prop_assert!((Duchi1d::new(e).variance(t) - variance::duchi_1d(eps, t)).abs() < 1e-10);
    }

    /// Table I, d = 1: the regime orderings hold pointwise.
    #[test]
    fn table1_orderings_hold(eps in eps_strategy()) {
        let pm = variance::pm_1d_worst(eps);
        let hm = variance::hm_1d_worst(eps);
        let du = variance::duchi_1d_worst(eps);
        // HM never exceeds either component.
        prop_assert!(hm <= pm + 1e-9, "eps={eps}");
        prop_assert!(hm <= du + 1e-9, "eps={eps}");
        // The PM/Duchi order flips exactly at ε#.
        if eps > epsilon_sharp() + 1e-6 {
            prop_assert!(pm < du, "eps={eps}");
        } else if eps < epsilon_sharp() - 1e-6 {
            prop_assert!(pm > du, "eps={eps}");
        }
        // Below ε*, HM equals Duchi.
        if eps <= epsilon_star() {
            prop_assert!((hm - du).abs() < 1e-9, "eps={eps}");
        }
        // PM beats Laplace everywhere (§III-B).
        prop_assert!(pm < variance::laplace(eps), "eps={eps}");
    }

    /// Corollary 2's strict ordering for multidimensional data.
    #[test]
    fn corollary_2_ordering(eps in eps_strategy(), d in 2usize..100) {
        let hm = variance::hm_md_worst(eps, d);
        let pm = variance::pm_md_worst(eps, d);
        let du = variance::duchi_md_worst(eps, d);
        prop_assert!(hm < pm + 1e-9, "d={d} eps={eps}: {hm} vs {pm}");
        prop_assert!(pm < du + 1e-6, "d={d} eps={eps}: {pm} vs {du}");
    }

    /// Equation 12's k is always feasible and optimal among 1..=d for the
    /// worst-case PM variance (up to the floor's 1-step discretization).
    #[test]
    fn optimal_k_minimizes_pm_worst_case(eps in 0.5f64..20.0, d in 1usize..40) {
        let e = Epsilon::new(eps).unwrap();
        let k_star = optimal_k(e, d);
        prop_assert!(k_star >= 1 && k_star <= d);
        let best = variance::pm_md_with_k(eps, d, k_star, 1.0);
        // The analytic optimum of the continuous relaxation is within one
        // step of Eq. 12's floor; allow the neighbours to tie but no k may
        // beat k* by more than a whisker beyond discretization effects.
        for k in 1..=d {
            if (k as i64 - k_star as i64).abs() > 1 {
                let other = variance::pm_md_with_k(eps, d, k, 1.0);
                prop_assert!(other >= best * 0.75,
                    "d={d} eps={eps}: k={k} ({other}) far better than k*={k_star} ({best})");
            }
        }
    }

    /// Algorithm 4's report structure: exactly k sorted entries, scaled
    /// values within d/k · C of zero.
    #[test]
    fn sampling_report_structure(eps in 0.5f64..8.0, d in 1usize..20, seed in 0u64..500) {
        let e = Epsilon::new(eps).unwrap();
        let p = SamplingPerturber::new(
            e, vec![AttrSpec::Numeric; d], NumericKind::Piecewise, OracleKind::Oue).unwrap();
        let mut rng = seeded_rng(seed);
        let t: Vec<f64> = (0..d).map(|j| (j as f64 / d as f64) * 2.0 - 1.0).collect();
        let report = p.perturb(
            &t.iter().map(|&x| ldp_core::AttrValue::Numeric(x)).collect::<Vec<_>>(),
            &mut rng).unwrap();
        prop_assert_eq!(report.entries.len(), p.k());
        prop_assert!(report.entries.windows(2).all(|w| w[0].0 < w[1].0));
        let c = (e.value() / (2.0 * p.k() as f64)).exp();
        let c = (c + 1.0) / (c - 1.0);
        let bound = p.scale() * c + 1e-9;
        for (_, rep) in &report.entries {
            if let ldp_core::AttrReport::Numeric(x) = rep {
                prop_assert!(x.abs() <= bound, "|{x}| > {bound}");
            }
        }
    }

    /// Duchi MD outputs are hypercube vertices with the Equation 10
    /// magnitude, for any dimension.
    #[test]
    fn duchi_md_vertices(eps in 0.2f64..6.0, d in 1usize..30, seed in 0u64..200) {
        let md = DuchiMultidim::new(Epsilon::new(eps).unwrap(), d).unwrap();
        let mut rng = seeded_rng(seed);
        let t: Vec<f64> = (0..d).map(|j| ((j * 7919) % 2000) as f64 / 1000.0 - 1.0).collect();
        let out = md.perturb(&t, &mut rng).unwrap();
        prop_assert_eq!(out.len(), d);
        for x in out {
            prop_assert!((x.abs() - md.b()).abs() < 1e-9);
        }
    }

    /// The wire codec round-trips every report the sampling perturber can
    /// produce, for random schemas, budgets, and k.
    #[test]
    fn wire_codec_round_trips(
        eps in 0.3f64..8.0,
        seed in 0u64..500,
        schema_bits in prop::collection::vec(prop::option::of(2u32..20), 1..10),
        k_frac in 0.0f64..=1.0,
    ) {
        use ldp_core::multidim::wire::WireFormat;
        // None → numeric attribute, Some(k) → categorical with domain k.
        let specs: Vec<AttrSpec> = schema_bits
            .iter()
            .map(|c| match c {
                None => AttrSpec::Numeric,
                Some(k) => AttrSpec::Categorical { k: *k },
            })
            .collect();
        let d = specs.len();
        let k = ((k_frac * d as f64).ceil() as usize).clamp(1, d);
        let e = Epsilon::new(eps).unwrap();
        for (oracle, unary) in [(OracleKind::Oue, true), (OracleKind::Grr, false)] {
            let p = SamplingPerturber::with_k(
                e, specs.clone(), NumericKind::Hybrid, oracle, k).unwrap();
            let tuple: Vec<ldp_core::AttrValue> = specs
                .iter()
                .map(|s| match s {
                    AttrSpec::Numeric => ldp_core::AttrValue::Numeric(0.5),
                    AttrSpec::Categorical { k } => ldp_core::AttrValue::Categorical(k - 1),
                })
                .collect();
            let mut rng = seeded_rng(seed);
            let report = p.perturb(&tuple, &mut rng).unwrap();
            let format = WireFormat::new(specs.clone());
            let bytes = format.encode_sparse(&report);
            let back = format.decode_sparse(&bytes, unary).unwrap();
            prop_assert_eq!(back.d, report.d);
            prop_assert_eq!(back.entries, report.entries);
        }
    }

    /// Frequency-oracle supports take exactly two values whose expectation
    /// telescope to the {0,1} indicator (the debiasing identity).
    #[test]
    fn oracle_support_debiasing_identity(
        eps in 0.2f64..6.0,
        k in 2u32..40,
        v in 0u32..40,
        seed in 0u64..500,
    ) {
        let v = v % k;
        let e = Epsilon::new(eps).unwrap();
        for kind in OracleKind::ALL {
            let oracle = kind.build(e, k).unwrap();
            let mut rng = seeded_rng(seed);
            let report = oracle.perturb(v, &mut rng).unwrap();
            for target in 0..k {
                let s = oracle.support(&report, target);
                // Debiased indicator: (b − q)/(p − q) with b ∈ {0, 1} —
                // so s·(p−q) + q must be exactly 0 or 1.
                prop_assert!(s.is_finite());
                let (p, q) = probe_pq(kind, eps, k);
                let b = s * (p - q) + q;
                prop_assert!((b - 0.0).abs() < 1e-9 || (b - 1.0).abs() < 1e-9,
                    "{}: b = {b}", kind.name());
            }
        }
    }
}

/// The (p, q) parameters of each oracle, re-derived here so the test does
/// not simply mirror the implementation's accessors.
fn probe_pq(kind: OracleKind, eps: f64, k: u32) -> (f64, f64) {
    match kind {
        OracleKind::Oue => (0.5, 1.0 / (eps.exp() + 1.0)),
        OracleKind::Grr => {
            let denom = eps.exp() + k as f64 - 1.0;
            (eps.exp() / denom, 1.0 / denom)
        }
        OracleKind::Sue => {
            let eh = (eps / 2.0).exp();
            (eh / (eh + 1.0), 1.0 / (eh + 1.0))
        }
    }
}
