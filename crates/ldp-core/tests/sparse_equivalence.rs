//! Distribution-equivalence tests for the sparse unary samplers.
//!
//! OUE/SUE's `perturb` draws the flipped non-true bits with geometric gap
//! sampling (O(k·q) draws) instead of the naive per-bit Bernoulli loop that
//! `perturb_naive` keeps as the reference. The two paths must be identical
//! in distribution; these tests pin the per-bit marginals and the popcount
//! moments of both paths to the analytic values with CI-bounded assertions
//! (`ldp_core::testutil`), at fixed seeds.

use ldp_core::categorical::{Oue, Sue};
use ldp_core::testutil::fixture_rng;
use ldp_core::{assert_within_ci, CategoricalReport, Epsilon, FrequencyOracle};

/// Per-bit empirical one-frequencies and mean/variance of the popcount.
struct BitStats {
    ones_freq: Vec<f64>,
    popcount_mean: f64,
    popcount_var: f64,
}

fn collect_stats<F>(k: u32, n: usize, mut draw: F) -> BitStats
where
    F: FnMut() -> CategoricalReport,
{
    let mut ones = vec![0usize; k as usize];
    let mut pop_sum = 0.0f64;
    let mut pop_sq = 0.0f64;
    for _ in 0..n {
        let CategoricalReport::Bits(bits) = draw() else {
            panic!("unary oracle must emit bit reports");
        };
        assert_eq!(bits.len(), k);
        for v in bits.iter_ones() {
            ones[v as usize] += 1;
        }
        let c = f64::from(bits.count_ones());
        pop_sum += c;
        pop_sq += c * c;
    }
    let popcount_mean = pop_sum / n as f64;
    BitStats {
        ones_freq: ones.iter().map(|&c| c as f64 / n as f64).collect(),
        popcount_mean,
        popcount_var: pop_sq / n as f64 - popcount_mean * popcount_mean,
    }
}

/// Asserts both sampling paths match the analytic per-bit marginals
/// `Pr[b_true = 1] = p`, `Pr[b_other = 1] = q` and the popcount moments
/// `mean = p + (k−1)q`, `var = p(1−p) + (k−1)q(1−q)`.
fn assert_paths_match(oracle: &dyn FrequencyOracle, seed_tag: &str) {
    let k = oracle.k();
    let value = k / 2;
    let n = 60_000;
    let params = oracle.debias_params();
    let (p, q) = (params.p, params.q);
    let mut rng_sparse = fixture_rng(&format!("{seed_tag}::sparse"));
    let mut rng_naive = fixture_rng(&format!("{seed_tag}::naive"));
    let sparse = collect_stats(k, n, || oracle.perturb(value, &mut rng_sparse).unwrap());
    let naive = collect_stats(k, n, || {
        oracle.perturb_naive(value, &mut rng_naive).unwrap()
    });
    for stats in [&sparse, &naive] {
        for (v, &freq) in stats.ones_freq.iter().enumerate() {
            let expect = if v as u32 == value { p } else { q };
            assert_within_ci!(
                freq,
                expect,
                expect * (1.0 - expect),
                n,
                "{seed_tag} bit {v}"
            );
        }
        let mean = p + f64::from(k - 1) * q;
        let var = p * (1.0 - p) + f64::from(k - 1) * q * (1.0 - q);
        assert_within_ci!(stats.popcount_mean, mean, var, n, "{seed_tag} popcount");
        // The empirical variance of n popcounts concentrates with standard
        // deviation ≈ var·√(2/n) for the near-Gaussian popcount sum.
        assert!(
            (stats.popcount_var - var).abs() <= 4.4172 * var * (2.0 / n as f64).sqrt(),
            "{seed_tag}: popcount variance {} vs {}",
            stats.popcount_var,
            var
        );
    }
}

#[test]
fn oue_sparse_matches_naive_marginals() {
    for (eps, k) in [(0.5, 8u32), (1.0, 64), (4.0, 128)] {
        let oracle = Oue::new(Epsilon::new(eps).unwrap(), k).unwrap();
        assert_paths_match(&oracle, &format!("sparse_eq::oue::{eps}::{k}"));
    }
}

#[test]
fn sue_sparse_matches_naive_marginals() {
    for (eps, k) in [(1.0, 16u32), (2.0, 96)] {
        let oracle = Sue::new(Epsilon::new(eps).unwrap(), k).unwrap();
        assert_paths_match(&oracle, &format!("sparse_eq::sue::{eps}::{k}"));
    }
}

#[test]
fn sparse_and_naive_support_sums_agree_statistically() {
    // End-to-end: debiased support sums from both paths estimate the same
    // frequencies. All users hold the same value, so the estimate of that
    // value must be ≈ 1 under both samplers.
    let eps = Epsilon::new(1.0).unwrap();
    let k = 32u32;
    let oracle = Oue::new(eps, k).unwrap();
    let n = 40_000;
    let mut rng = fixture_rng("sparse_eq::support_sums");
    let mut sum_sparse = 0.0;
    let mut sum_naive = 0.0;
    for _ in 0..n {
        sum_sparse += oracle.support(&oracle.perturb(7, &mut rng).unwrap(), 7);
        sum_naive += oracle.support(&oracle.perturb_naive(7, &mut rng).unwrap(), 7);
    }
    let var = oracle.support_variance(1.0);
    assert_within_ci!(sum_sparse / n as f64, 1.0, var, n, "sparse path");
    assert_within_ci!(sum_naive / n as f64, 1.0, var, n, "naive path");
}
