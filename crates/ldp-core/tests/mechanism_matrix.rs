//! Systematic matrix test: every 1-D mechanism × every experiment budget ×
//! several inputs, checking unbiasedness, variance against the closed form,
//! and support containment in one sweep. Complements the per-mechanism unit
//! tests with uniform coverage (a new mechanism added to `NumericKind::ALL`
//! is automatically swept).

use ldp_core::rng::seeded_rng;
use ldp_core::{Epsilon, NumericKind};

const EPSILONS: [f64; 5] = [0.25, 0.5, 1.0, 2.0, 4.0];
const INPUTS: [f64; 5] = [-1.0, -0.5, 0.0, 0.5, 1.0];

#[test]
fn all_mechanisms_unbiased_with_declared_variance() {
    let n = 120_000;
    let mut rng = seeded_rng(7_777);
    for kind in NumericKind::ALL {
        for eps in EPSILONS {
            let mech = kind.build(Epsilon::new(eps).unwrap());
            for t in INPUTS {
                let mut sum = 0.0;
                let mut sq = 0.0;
                for _ in 0..n {
                    let x = mech.perturb(t, &mut rng).unwrap();
                    if let Some(bound) = mech.output_bound() {
                        assert!(
                            x.abs() <= bound + 1e-9,
                            "{} eps={eps}: output {x} above bound {bound}",
                            mech.name()
                        );
                    }
                    sum += x;
                    sq += x * x;
                }
                let mean = sum / n as f64;
                let var = sq / n as f64 - mean * mean;
                let sigma = (mech.variance(t) / n as f64).sqrt();
                assert!(
                    (mean - t).abs() < 5.0 * sigma + 1e-3,
                    "{} eps={eps} t={t}: mean {mean}",
                    mech.name()
                );
                let expect = mech.variance(t);
                assert!(
                    (var - expect).abs() / expect < 0.05,
                    "{} eps={eps} t={t}: var {var} vs {expect}",
                    mech.name()
                );
                assert!(
                    expect <= mech.worst_case_variance() + 1e-9,
                    "{} eps={eps} t={t}: pointwise variance above worst case",
                    mech.name()
                );
            }
        }
    }
}

#[test]
fn all_mechanisms_reject_bad_inputs() {
    let mut rng = seeded_rng(7_778);
    for kind in NumericKind::ALL {
        let mech = kind.build(Epsilon::new(1.0).unwrap());
        for bad in [1.0 + 1e-9, -1.5, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(
                mech.perturb(bad, &mut rng).is_err(),
                "{} accepted {bad}",
                mech.name()
            );
        }
    }
}

#[test]
fn worst_case_variances_decrease_in_eps() {
    // More budget can never hurt: worst-case variance is non-increasing in ε
    // for every mechanism.
    for kind in NumericKind::ALL {
        let mut prev = f64::INFINITY;
        for i in 1..=80 {
            let eps = i as f64 * 0.1;
            let v = kind.build(Epsilon::new(eps).unwrap()).worst_case_variance();
            assert!(
                v <= prev + 1e-9,
                "{}: worst-case variance rose at eps={eps} ({v} > {prev})",
                kind.name()
            );
            prev = v;
        }
    }
}
