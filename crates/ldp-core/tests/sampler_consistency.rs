//! Binds each sampler to its declared distribution: histogram checks of the
//! continuous mechanisms against their pdfs, and exact-probability checks of
//! the discrete ones. These are the tests that would catch a correct pdf
//! with a buggy sampler (or vice versa).

use ldp_core::multidim::DuchiMultidim;
use ldp_core::numeric::{Piecewise, Scdf, Staircase};
use ldp_core::rng::seeded_rng;
use ldp_core::{Epsilon, NumericMechanism};
use std::collections::HashMap;

/// Chi-square-style histogram comparison: empirical bin frequencies vs the
/// pdf integrated over each bin (midpoint approximation).
fn assert_histogram_matches_pdf(
    samples: &[f64],
    lo: f64,
    hi: f64,
    bins: usize,
    pdf: impl Fn(f64) -> f64,
    label: &str,
) {
    let width = (hi - lo) / bins as f64;
    let mut counts = vec![0usize; bins];
    let mut inside = 0usize;
    for &x in samples {
        if x >= lo && x < hi {
            counts[((x - lo) / width) as usize] += 1;
            inside += 1;
        }
    }
    assert!(
        inside as f64 >= 0.98 * samples.len() as f64,
        "{label}: support window misses too much mass"
    );
    let n = samples.len() as f64;
    for (b, &c) in counts.iter().enumerate() {
        // Integrate the pdf over the bin with fine sub-sampling, so bins
        // straddling a density discontinuity get their true mass.
        let sub = 400;
        let start = lo + b as f64 * width;
        let expect: f64 = (0..sub)
            .map(|i| pdf(start + (i as f64 + 0.5) * width / sub as f64) * width / sub as f64)
            .sum();
        let got = c as f64 / n;
        // Tolerance: 5σ binomial noise plus the residual sub-sampling error.
        let sigma = (expect.max(1e-12) * (1.0 - expect) / n).sqrt();
        let tol = 5.0 * sigma + 3e-4;
        assert!(
            (got - expect).abs() <= tol,
            "{label}: bin {b} (start {start:.3}): got {got:.5}, expect {expect:.5}, tol {tol:.5}"
        );
    }
}

#[test]
fn pm_sampler_matches_pdf() {
    for (eps, t) in [(1.0, 0.0), (1.0, 0.5), (1.0, 1.0), (4.0, -0.3)] {
        let pm = Piecewise::new(Epsilon::new(eps).unwrap());
        let mut rng = seeded_rng(900);
        let n = 400_000;
        let samples: Vec<f64> = (0..n).map(|_| pm.perturb(t, &mut rng).unwrap()).collect();
        assert_histogram_matches_pdf(
            &samples,
            -pm.c(),
            pm.c(),
            40,
            |x| pm.pdf(x, t),
            &format!("PM eps={eps} t={t}"),
        );
    }
}

#[test]
fn scdf_sampler_matches_noise_pdf() {
    let eps = 1.0;
    let m = Scdf::new(Epsilon::new(eps).unwrap());
    let t = 0.4;
    let mut rng = seeded_rng(901);
    let n = 400_000;
    // Noise = output − input; compare against the noise pdf on a window
    // holding ≈99.9% of the mass.
    let samples: Vec<f64> = (0..n)
        .map(|_| m.perturb(t, &mut rng).unwrap() - t)
        .collect();
    assert_histogram_matches_pdf(&samples, -16.0, 16.0, 64, |x| m.noise_pdf(x), "SCDF");
}

#[test]
fn staircase_sampler_matches_noise_pdf() {
    let eps = 2.0;
    let m = Staircase::new(Epsilon::new(eps).unwrap());
    let t = -0.8;
    let mut rng = seeded_rng(902);
    let n = 400_000;
    let samples: Vec<f64> = (0..n)
        .map(|_| m.perturb(t, &mut rng).unwrap() - t)
        .collect();
    assert_histogram_matches_pdf(&samples, -10.0, 10.0, 50, |x| m.noise_pdf(x), "Staircase");
}

/// For d = 2 (even: ties s·v = 0 exist) the full output distribution of
/// Algorithm 3 can be enumerated; compare the sampler against the exact
/// probabilities computed from the algorithm's definition.
#[test]
fn duchi_md_d2_matches_exact_distribution() {
    let eps = 1.0;
    let t = [0.6, -0.2];
    let md = DuchiMultidim::new(Epsilon::new(eps).unwrap(), 2).unwrap();

    // Exact output distribution over the four vertices.
    // v ∈ {±1}²: Pr[v] = Π (1/2 + v_j t_j / 2).
    // T⁺(v) = {s : s·v ≥ 0} = {v, (v₁,-v₂), (-v₁,v₂)} … for d=2 the
    // halfspace contains v itself plus the two tie vectors s with s·v = 0.
    let e = eps.exp();
    let p_plus = e / (e + 1.0);
    let mut exact: HashMap<(i8, i8), f64> = HashMap::new();
    for v1 in [-1.0f64, 1.0] {
        for v2 in [-1.0f64, 1.0] {
            let pv = (0.5 + v1 * t[0] / 2.0) * (0.5 + v2 * t[1] / 2.0);
            for s1 in [-1.0f64, 1.0] {
                for s2 in [-1.0f64, 1.0] {
                    let dot = s1 * v1 + s2 * v2;
                    // |T⁺| = |T⁻| = 3 for d = 2 (ties belong to both).
                    let p_s = if dot >= 0.0 { p_plus / 3.0 } else { 0.0 }
                        + if dot <= 0.0 {
                            (1.0 - p_plus) / 3.0
                        } else {
                            0.0
                        };
                    *exact.entry((s1 as i8, s2 as i8)).or_insert(0.0) += pv * p_s;
                }
            }
        }
    }
    let total: f64 = exact.values().sum();
    assert!(
        (total - 1.0).abs() < 1e-12,
        "exact distribution sums to {total}"
    );

    // Empirical distribution.
    let mut rng = seeded_rng(903);
    let n = 500_000;
    let mut counts: HashMap<(i8, i8), usize> = HashMap::new();
    for _ in 0..n {
        let out = md.perturb(&t, &mut rng).unwrap();
        let key = (out[0].signum() as i8, out[1].signum() as i8);
        *counts.entry(key).or_insert(0) += 1;
    }
    for (key, &p) in &exact {
        let got = *counts.get(key).unwrap_or(&0) as f64 / n as f64;
        let sigma = (p * (1.0 - p) / n as f64).sqrt();
        assert!(
            (got - p).abs() < 5.0 * sigma + 1e-4,
            "vertex {key:?}: got {got:.5}, exact {p:.5}"
        );
    }

    // And the exact distribution is unbiased after the B scaling — the
    // property Equation 10's B was derived for.
    for (j, &tj) in t.iter().enumerate().take(2) {
        let mean: f64 = exact
            .iter()
            .map(|((s1, s2), p)| {
                let s = if j == 0 { *s1 } else { *s2 };
                f64::from(s) * md.b() * p
            })
            .sum();
        assert!(
            (mean - tj).abs() < 1e-9,
            "coordinate {j}: exact mean {mean} vs {tj}"
        );
    }
}

/// Empirical ε-LDP check on PM's *sampler* (not just its pdf): the ratio of
/// output-bin frequencies between the two extreme inputs must not exceed
/// e^ε beyond sampling noise.
#[test]
fn pm_sampler_respects_ldp_ratio_empirically() {
    let eps = 1.0;
    let pm = Piecewise::new(Epsilon::new(eps).unwrap());
    let mut rng = seeded_rng(904);
    let n = 600_000;
    let bins = 16;
    let width = 2.0 * pm.c() / bins as f64;
    let mut hist = |t: f64| -> Vec<f64> {
        let mut counts = vec![0.0; bins];
        for _ in 0..n {
            let x = pm.perturb(t, &mut rng).unwrap();
            let b = (((x + pm.c()) / width) as usize).min(bins - 1);
            counts[b] += 1.0;
        }
        counts.iter().map(|c| c / n as f64).collect()
    };
    let h1 = hist(-1.0);
    let h2 = hist(1.0);
    for b in 0..bins {
        // Skip bins with negligible mass where the ratio is pure noise.
        if h1[b] < 5e-4 || h2[b] < 5e-4 {
            continue;
        }
        let ratio = h1[b] / h2[b];
        assert!(
            ratio < eps.exp() * 1.15 && ratio > (-eps).exp() / 1.15,
            "bin {b}: ratio {ratio} outside e^±ε"
        );
    }
}
