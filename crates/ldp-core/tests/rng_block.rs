//! The batched-RNG equivalence contract.
//!
//! Everything the streaming pipelines gained from [`RngBlock`] rests on one
//! property: a block is a bit-exact, capacity-independent prefix of its
//! inner generator's stream. These tests pin that property three ways —
//! exhaustively against the scalar helper paths under fixed seeds, through
//! the full perturbation stack (reports, not just raw draws), and as a
//! proptest over random seeds and block sizes.

use ldp_core::multidim::{SamplingPerturber, SparseReport};
use ldp_core::rng::{
    bernoulli, for_each_bernoulli_index, sample_binomial_inversion, sample_distinct_into,
    seeded_rng, uniform_index, RngBlock,
};
use ldp_core::{
    AnyOracle, AttrSpec, AttrValue, CategoricalReport, Epsilon, NumericKind, OracleKind,
};
use proptest::prelude::*;
use rand::RngCore;

/// Exhaustive scalar-vs-batched equivalence of the two draw primitives the
/// sparse samplers lean on: every bound in a dense range for
/// `uniform_index`, and a (n, q) lattice for the binomial inversion.
#[test]
fn uniform_index_and_binomial_match_scalar_paths_exhaustively() {
    for seed in [0u64, 1, 42, 20190408] {
        let mut scalar = seeded_rng(seed);
        let mut batched = RngBlock::<_, 19>::new(seeded_rng(seed));
        for bound in 1..=512u32 {
            assert_eq!(
                uniform_index(&mut scalar, bound),
                uniform_index(&mut batched, bound),
                "seed={seed} bound={bound}"
            );
        }
        for n in [1u32, 2, 15, 63, 255] {
            for q in [0.01f64, 0.1, 0.27, 0.5, 0.9] {
                assert_eq!(
                    sample_binomial_inversion(&mut scalar, n, q),
                    sample_binomial_inversion(&mut batched, n, q),
                    "seed={seed} n={n} q={q}"
                );
            }
        }
    }
}

/// The geometric-gap walk (the unary oracles' underflow fallback) visits
/// identical indices through either path.
#[test]
fn bernoulli_index_walk_matches_scalar_path() {
    let mut scalar = seeded_rng(9);
    let mut batched = RngBlock::<_, 3>::new(seeded_rng(9));
    for _ in 0..200 {
        let mut a = Vec::new();
        let mut b = Vec::new();
        for_each_bernoulli_index(&mut scalar, 96, 0.13, |i| a.push(i));
        for_each_bernoulli_index(&mut batched, 96, 0.13, |i| b.push(i));
        assert_eq!(a, b);
    }
}

/// Full-stack equivalence: a SamplingPerturber over a mixed schema produces
/// bit-identical sparse reports whether driven by the bare generator (the
/// scalar dyn path) or any capacity of RngBlock (the batched path).
#[test]
fn perturber_reports_are_identical_scalar_vs_batched() {
    let specs = vec![
        AttrSpec::Numeric,
        AttrSpec::Categorical { k: 24 },
        AttrSpec::Categorical { k: 7 },
        AttrSpec::Numeric,
    ];
    for oracle in [OracleKind::Oue, OracleKind::Sue, OracleKind::Grr] {
        let p = SamplingPerturber::with_k(
            Epsilon::new(2.0).unwrap(),
            specs.clone(),
            NumericKind::Hybrid,
            oracle,
            3,
        )
        .unwrap();
        let tuple = vec![
            AttrValue::Numeric(0.4),
            AttrValue::Categorical(11),
            AttrValue::Categorical(0),
            AttrValue::Numeric(-0.9),
        ];
        let mut scalar_seeded = seeded_rng(314);
        let scalar: &mut dyn RngCore = &mut scalar_seeded;
        let mut batched = RngBlock::<_, 11>::new(seeded_rng(314));
        let mut report_a = SparseReport::with_capacity(p.d(), p.k());
        let mut report_b = SparseReport::with_capacity(p.d(), p.k());
        let mut scratch_a = p.scratch();
        let mut scratch_b = p.scratch();
        for round in 0..300 {
            p.perturb_into(&tuple, &mut *scalar, &mut report_a, &mut scratch_a)
                .unwrap();
            p.perturb_into(&tuple, &mut batched, &mut report_b, &mut scratch_b)
                .unwrap();
            assert_eq!(
                report_a.entries, report_b.entries,
                "{oracle:?} round {round}"
            );
        }
    }
}

/// Same contract one layer down: AnyOracle's monomorphized perturb_into and
/// the boxed trait path consume identical streams.
#[test]
fn any_oracle_matches_boxed_trait_path() {
    let eps = Epsilon::new(1.3).unwrap();
    for kind in [OracleKind::Oue, OracleKind::Sue, OracleKind::Grr] {
        let any = AnyOracle::build(kind, eps, 33).unwrap();
        let boxed = kind.build(eps, 33).unwrap();
        let mut rng_a: RngBlock<rand::rngs::StdRng> = RngBlock::new(seeded_rng(77));
        let mut rng_b = seeded_rng(77);
        let mut out_a = CategoricalReport::Value(0);
        let mut out_b = CategoricalReport::Value(0);
        for v in (0..33).cycle().take(500) {
            any.perturb_into(v, &mut rng_a, &mut out_a).unwrap();
            boxed.perturb_into(v, &mut rng_b, &mut out_b).unwrap();
            assert_eq!(out_a, out_b, "{kind:?} v={v}");
        }
    }
}

/// The first `draws` outputs of a `LEN`-buffered block under `seed`.
fn stream<const LEN: usize>(seed: u64, draws: usize) -> Vec<u64> {
    let mut block = RngBlock::<_, LEN>::new(seeded_rng(seed));
    (0..draws).map(|_| block.next_u64()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Block-size invariance: every buffer length — 1, coprime sizes, the
    /// default, and sizes far larger than the number of draws — yields the
    /// same stream for the same seed, and that stream is the bare
    /// generator's.
    #[test]
    fn block_size_never_changes_the_stream(
        seed in 0u64..u64::MAX,
        draws in 1usize..800,
    ) {
        let mut bare = seeded_rng(seed);
        let reference: Vec<u64> = (0..draws).map(|_| bare.next_u64()).collect();
        prop_assert_eq!(&stream::<1>(seed, draws), &reference);
        prop_assert_eq!(&stream::<2>(seed, draws), &reference);
        prop_assert_eq!(&stream::<7>(seed, draws), &reference);
        prop_assert_eq!(&stream::<19>(seed, draws), &reference);
        prop_assert_eq!(&stream::<256>(seed, draws), &reference);
        prop_assert_eq!(&stream::<1009>(seed, draws), &reference);
    }

    /// Block-seeded perturbation runs are invariant to block size: the same
    /// user sequence through differently-sized RngBlocks produces the same
    /// distinct-index samples (the draw pattern Algorithm 4's sampling step
    /// makes per user).
    #[test]
    fn block_seeded_sampling_invariant_to_block_size(
        seed in 0u64..u64::MAX,
        d in 2usize..64,
    ) {
        let k = 1 + d / 3;
        let mut reference = RngBlock::<_, 64>::new(seeded_rng(seed));
        let mut small = RngBlock::<_, 5>::new(seeded_rng(seed));
        let mut large = RngBlock::<_, 2048>::new(seeded_rng(seed));
        let mut buf_a = Vec::new();
        let mut buf_b = Vec::new();
        let mut buf_c = Vec::new();
        for _ in 0..20 {
            sample_distinct_into(&mut reference, d, k, &mut buf_a);
            sample_distinct_into(&mut small, d, k, &mut buf_b);
            sample_distinct_into(&mut large, d, k, &mut buf_c);
            prop_assert_eq!(&buf_a, &buf_b);
            prop_assert_eq!(&buf_a, &buf_c);
            let coin = bernoulli(&mut reference, 0.4);
            prop_assert_eq!(coin, bernoulli(&mut small, 0.4));
            prop_assert_eq!(coin, bernoulli(&mut large, 0.4));
        }
    }
}
