//! One-dimensional ε-LDP mechanisms for numeric values in `[-1, 1]`.
//!
//! * [`Laplace`] — classic additive noise with scale `2/ε` (§III-A).
//! * [`Scdf`] — Soria-Comas & Domingo-Ferrer's piecewise-constant noise.
//! * [`Staircase`] — Geng et al.'s staircase noise with `γ* = 1/(1+e^{ε/2})`.
//! * [`Duchi1d`] — Duchi et al.'s binary mechanism (Algorithm 1).
//! * [`Piecewise`] — the paper's Piecewise Mechanism (Algorithm 2).
//! * [`Hybrid`] — the paper's Hybrid Mechanism (§III-C).

mod duchi;
mod hybrid;
mod laplace;
mod piecewise;
mod scdf;
mod staircase;
mod stepped;

pub use duchi::Duchi1d;
pub use hybrid::Hybrid;
pub use laplace::Laplace;
pub use piecewise::Piecewise;
pub use scdf::Scdf;
pub use staircase::Staircase;

use crate::budget::Epsilon;
use crate::error::Result;
use crate::kinds::NumericKind;
use crate::mechanism::NumericMechanism;
use rand::RngCore;

/// Enum dispatch over the concrete 1-D numeric mechanisms — the numeric
/// counterpart of [`crate::AnyOracle`].
///
/// The [`NumericMechanism`] trait stays object-safe for the experiment
/// harness (boxed mechanisms, `&mut dyn RngCore`), but a boxed mechanism
/// forces a virtual call per draw — the last piece of dyn dispatch the
/// batched-RNG hot path had left. `AnyNumeric` is the concrete, clonable
/// alternative the client-side perturbers hold: one predictable match per
/// value, and a [`AnyNumeric::perturb`] generic over the rng so the whole
/// numeric draw inlines when driven by an [`crate::rng::RngBlock`].
///
/// ```
/// use ldp_core::{numeric::AnyNumeric, Epsilon, NumericKind, rng::seeded_rng};
/// let hm = AnyNumeric::build(NumericKind::Hybrid, Epsilon::new(1.0)?);
/// let noisy = hm.perturb(0.25, &mut seeded_rng(7))?;
/// assert!(noisy.abs() <= hm.output_bound().unwrap());
/// # Ok::<(), ldp_core::LdpError>(())
/// ```
#[derive(Debug, Clone)]
pub enum AnyNumeric {
    /// Laplace mechanism with scale 2/ε.
    Laplace(Laplace),
    /// Soria-Comas & Domingo-Ferrer stepped noise.
    Scdf(Scdf),
    /// Geng et al.'s staircase noise.
    Staircase(Staircase),
    /// Duchi et al.'s binary mechanism (Algorithm 1).
    Duchi(Duchi1d),
    /// The paper's Piecewise Mechanism (Algorithm 2).
    Piecewise(Piecewise),
    /// The paper's Hybrid Mechanism (§III-C).
    Hybrid(Hybrid),
}

impl AnyNumeric {
    /// Instantiates the mechanism selected by `kind` for budget `ε` — the
    /// unboxed counterpart of [`NumericKind::build`].
    pub fn build(kind: NumericKind, epsilon: Epsilon) -> Self {
        match kind {
            NumericKind::Laplace => AnyNumeric::Laplace(Laplace::new(epsilon)),
            NumericKind::Scdf => AnyNumeric::Scdf(Scdf::new(epsilon)),
            NumericKind::Staircase => AnyNumeric::Staircase(Staircase::new(epsilon)),
            NumericKind::Duchi => AnyNumeric::Duchi(Duchi1d::new(epsilon)),
            NumericKind::Piecewise => AnyNumeric::Piecewise(Piecewise::new(epsilon)),
            NumericKind::Hybrid => AnyNumeric::Hybrid(Hybrid::new(epsilon)),
        }
    }

    /// Borrows the mechanism as a trait object, for the object-safe half of
    /// the API (harness tables, diagnostics, variance plots).
    pub fn as_dyn(&self) -> &dyn NumericMechanism {
        match self {
            AnyNumeric::Laplace(m) => m,
            AnyNumeric::Scdf(m) => m,
            AnyNumeric::Staircase(m) => m,
            AnyNumeric::Duchi(m) => m,
            AnyNumeric::Piecewise(m) => m,
            AnyNumeric::Hybrid(m) => m,
        }
    }

    /// Monomorphized perturbation: one match, then the concrete mechanism's
    /// generic sampler. Draw-for-draw identical to the trait's `perturb`
    /// under the same seed — swapping a boxed mechanism for `AnyNumeric`
    /// never changes an estimate.
    ///
    /// # Errors
    /// As [`NumericMechanism::perturb`].
    #[inline]
    pub fn perturb<R: RngCore + ?Sized>(&self, input: f64, rng: &mut R) -> Result<f64> {
        match self {
            AnyNumeric::Laplace(m) => m.perturb_any(input, rng),
            AnyNumeric::Scdf(m) => m.perturb_any(input, rng),
            AnyNumeric::Staircase(m) => m.perturb_any(input, rng),
            AnyNumeric::Duchi(m) => m.perturb_any(input, rng),
            AnyNumeric::Piecewise(m) => m.perturb_any(input, rng),
            AnyNumeric::Hybrid(m) => m.perturb_any(input, rng),
        }
    }

    /// Log-likelihood of output `x` given true value `t`, under each
    /// mechanism's natural output measure (density for [`Laplace`] and
    /// [`Piecewise`], point mass for [`Duchi1d`], the mixed measure for
    /// [`Hybrid`]). The `ldp-audit` attacker subtracts two of these to get
    /// an exact log likelihood ratio between neighboring inputs.
    ///
    /// # Errors
    /// * [`crate::LdpError::OutOfDomain`] if `t ∉ [-1, 1]`.
    /// * [`crate::LdpError::InvalidParameter`] for [`Scdf`] and
    ///   [`Staircase`], whose auditing likelihoods are not implemented (they
    ///   are §III baselines, not part of any audited protocol grid).
    pub fn log_density(&self, x: f64, t: f64) -> Result<f64> {
        match self {
            AnyNumeric::Laplace(m) => m.log_density(x, t),
            AnyNumeric::Duchi(m) => m.log_mass(x, t),
            AnyNumeric::Piecewise(m) => m.log_density(x, t),
            AnyNumeric::Hybrid(m) => m.log_density(x, t),
            AnyNumeric::Scdf(_) | AnyNumeric::Staircase(_) => {
                Err(crate::LdpError::InvalidParameter {
                    name: "mechanism",
                    message: format!("log_density not implemented for {}", self.name()),
                })
            }
        }
    }

    /// The privacy budget this mechanism was constructed with.
    #[inline]
    pub fn epsilon(&self) -> Epsilon {
        self.as_dyn().epsilon()
    }

    /// Short stable name ("PM", "HM", "Duchi", …).
    #[inline]
    pub fn name(&self) -> &'static str {
        self.as_dyn().name()
    }

    /// Closed-form output variance `Var[t* | t]` for the given input.
    #[inline]
    pub fn variance(&self, input: f64) -> f64 {
        self.as_dyn().variance(input)
    }

    /// `max_{t ∈ [-1,1]} Var[t* | t]`.
    #[inline]
    pub fn worst_case_variance(&self) -> f64 {
        self.as_dyn().worst_case_variance()
    }

    /// The symmetric output bound `b` with `|t*| ≤ b`, if bounded.
    #[inline]
    pub fn output_bound(&self) -> Option<f64> {
        self.as_dyn().output_bound()
    }
}

#[cfg(test)]
mod any_tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn any_numeric_matches_boxed_mechanisms_bit_for_bit() {
        // The enum is the same computation as the boxed trait object: same
        // draws, same outputs, for every kind and a spread of inputs.
        let eps = Epsilon::new(1.3).unwrap();
        for kind in NumericKind::ALL {
            let boxed = kind.build(eps);
            let unboxed = AnyNumeric::build(kind, eps);
            assert_eq!(unboxed.name(), boxed.name());
            assert_eq!(unboxed.epsilon(), boxed.epsilon());
            assert_eq!(unboxed.output_bound(), boxed.output_bound());
            assert_eq!(
                unboxed.worst_case_variance().to_bits(),
                boxed.worst_case_variance().to_bits()
            );
            let mut rng_a = seeded_rng(2024);
            let mut rng_b = seeded_rng(2024);
            for round in 0..500 {
                let t = -1.0 + 2.0 * (round % 101) as f64 / 100.0;
                let a = boxed.perturb(t, &mut rng_a).unwrap();
                let b = unboxed.perturb(t, &mut rng_b).unwrap();
                assert_eq!(a.to_bits(), b.to_bits(), "{kind:?} round {round}");
                assert_eq!(
                    unboxed.variance(t).to_bits(),
                    boxed.variance(t).to_bits(),
                    "{kind:?}"
                );
            }
        }
    }

    #[test]
    fn any_numeric_rejects_out_of_domain() {
        let m = AnyNumeric::build(NumericKind::Piecewise, Epsilon::new(1.0).unwrap());
        let mut rng = seeded_rng(3);
        assert!(m.perturb(1.5, &mut rng).is_err());
        assert!(m.perturb(f64::NAN, &mut rng).is_err());
    }
}
