//! One-dimensional ε-LDP mechanisms for numeric values in `[-1, 1]`.
//!
//! * [`Laplace`] — classic additive noise with scale `2/ε` (§III-A).
//! * [`Scdf`] — Soria-Comas & Domingo-Ferrer's piecewise-constant noise.
//! * [`Staircase`] — Geng et al.'s staircase noise with `γ* = 1/(1+e^{ε/2})`.
//! * [`Duchi1d`] — Duchi et al.'s binary mechanism (Algorithm 1).
//! * [`Piecewise`] — the paper's Piecewise Mechanism (Algorithm 2).
//! * [`Hybrid`] — the paper's Hybrid Mechanism (§III-C).

mod duchi;
mod hybrid;
mod laplace;
mod piecewise;
mod scdf;
mod staircase;
mod stepped;

pub use duchi::Duchi1d;
pub use hybrid::Hybrid;
pub use laplace::Laplace;
pub use piecewise::Piecewise;
pub use scdf::Scdf;
pub use staircase::Staircase;
