//! Duchi et al.'s mechanism for one-dimensional numeric data (Algorithm 1).

use crate::budget::Epsilon;
use crate::error::Result;
use crate::mechanism::{check_unit_interval, NumericMechanism};
use crate::rng::bernoulli;
use rand::RngCore;

/// Duchi et al.'s binary mechanism for `t ∈ [-1, 1]`.
///
/// Outputs `±(e^ε+1)/(e^ε−1)`, choosing `+` with probability
/// `(e^ε−1)/(2e^ε+2)·t + 1/2` (Equation 3). The output is unbiased with
/// variance `((e^ε+1)/(e^ε−1))² − t²` (Equation 4), which *increases* as
/// `|t| → 0` — the mirror image of PM's behaviour, and the reason the Hybrid
/// Mechanism mixes the two.
#[derive(Debug, Clone)]
pub struct Duchi1d {
    epsilon: Epsilon,
    /// The output magnitude `(e^ε+1)/(e^ε−1)`.
    magnitude: f64,
    /// The slope `(e^ε−1)/(2e^ε+2)` of the head probability in `t`.
    slope: f64,
}

impl Duchi1d {
    /// Creates the mechanism for budget `ε`.
    pub fn new(epsilon: Epsilon) -> Self {
        let e = epsilon.exp();
        Duchi1d {
            epsilon,
            magnitude: (e + 1.0) / (e - 1.0),
            slope: (e - 1.0) / (2.0 * e + 2.0),
        }
    }

    /// The two-point support magnitude `(e^ε+1)/(e^ε−1)`.
    pub fn magnitude(&self) -> f64 {
        self.magnitude
    }

    /// `Pr[t* = +magnitude | t]`.
    pub fn head_probability(&self, t: f64) -> f64 {
        self.slope * t + 0.5
    }

    /// Log-mass of the output atom `x` given true value `t`.
    ///
    /// The support is exactly two points, `±magnitude`, compared bitwise:
    /// `x` must be the *same float* the mechanism emits (honest reports are;
    /// anything else has probability zero and yields `-∞`).
    ///
    /// # Errors
    /// Returns [`crate::LdpError::OutOfDomain`] if `t ∉ [-1, 1]`.
    pub fn log_mass(&self, x: f64, t: f64) -> Result<f64> {
        check_unit_interval(t)?;
        if x == self.magnitude {
            Ok(self.head_probability(t).ln())
        } else if x == -self.magnitude {
            Ok((1.0 - self.head_probability(t)).ln())
        } else {
            Ok(f64::NEG_INFINITY)
        }
    }

    /// Monomorphic form of [`NumericMechanism::perturb`]: generic over the
    /// rng, draw-for-draw identical to the trait path.
    ///
    /// # Errors
    /// As [`NumericMechanism::perturb`].
    pub fn perturb_any<R: RngCore + ?Sized>(&self, input: f64, rng: &mut R) -> Result<f64> {
        check_unit_interval(input)?;
        if bernoulli(rng, self.head_probability(input)) {
            Ok(self.magnitude)
        } else {
            Ok(-self.magnitude)
        }
    }
}

impl NumericMechanism for Duchi1d {
    fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    fn name(&self) -> &'static str {
        "Duchi"
    }

    fn perturb(&self, input: f64, rng: &mut dyn RngCore) -> Result<f64> {
        self.perturb_any(input, rng)
    }

    fn variance(&self, input: f64) -> f64 {
        self.magnitude * self.magnitude - input * input
    }

    fn worst_case_variance(&self) -> f64 {
        // Equation 4: maximized at t = 0.
        self.magnitude * self.magnitude
    }

    fn output_bound(&self) -> Option<f64> {
        Some(self.magnitude)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn outputs_are_two_point() {
        let m = Duchi1d::new(Epsilon::new(1.0).unwrap());
        let mut rng = seeded_rng(20);
        let mag = m.magnitude();
        for _ in 0..1000 {
            let x = m.perturb(0.37, &mut rng).unwrap();
            assert!(x == mag || x == -mag, "{x}");
        }
    }

    #[test]
    fn magnitude_matches_formula() {
        let eps = 2.0f64;
        let m = Duchi1d::new(Epsilon::new(eps).unwrap());
        let expect = (eps.exp() + 1.0) / (eps.exp() - 1.0);
        assert!((m.magnitude() - expect).abs() < 1e-12);
    }

    #[test]
    fn head_probability_is_valid_on_domain() {
        let m = Duchi1d::new(Epsilon::new(4.0).unwrap());
        for t in [-1.0, -0.5, 0.0, 0.5, 1.0] {
            let p = m.head_probability(t);
            assert!((0.0..=1.0).contains(&p), "t={t}, p={p}");
        }
        assert!((m.head_probability(0.0) - 0.5).abs() < 1e-15);
    }

    #[test]
    fn unbiased_estimator() {
        let m = Duchi1d::new(Epsilon::new(1.0).unwrap());
        let mut rng = seeded_rng(21);
        for t in [-0.8, 0.0, 0.6] {
            let n = 300_000;
            let mean: f64 = (0..n).map(|_| m.perturb(t, &mut rng).unwrap()).sum::<f64>() / n as f64;
            // σ ≈ magnitude ≈ 2.16 for ε = 1, so 4σ/√n ≈ 0.016.
            assert!((mean - t).abs() < 0.02, "t={t}, mean={mean}");
        }
    }

    #[test]
    fn empirical_variance_matches_equation_4() {
        let m = Duchi1d::new(Epsilon::new(1.5).unwrap());
        let mut rng = seeded_rng(22);
        let t = 0.5;
        let n = 300_000;
        let samples: Vec<f64> = (0..n).map(|_| m.perturb(t, &mut rng).unwrap()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(
            (var - m.variance(t)).abs() / m.variance(t) < 0.02,
            "var {var}"
        );
    }

    #[test]
    fn worst_case_at_zero() {
        let m = Duchi1d::new(Epsilon::new(1.0).unwrap());
        assert!(m.variance(0.0) > m.variance(0.9));
        assert_eq!(m.worst_case_variance(), m.variance(0.0));
    }

    #[test]
    fn variance_always_above_one() {
        // §III-A: Duchi's variance exceeds 1 at t=0 regardless of ε, because
        // the output magnitude is > 1.
        for eps in [0.1, 1.0, 4.0, 8.0, 32.0] {
            let m = Duchi1d::new(Epsilon::new(eps).unwrap());
            assert!(m.worst_case_variance() > 1.0, "eps={eps}");
        }
    }

    #[test]
    fn satisfies_ldp_on_two_point_support() {
        // Discrete check of Definition 1: for any t, t' and both outputs,
        // Pr[x|t] ≤ e^ε Pr[x|t'].
        let eps = 0.7;
        let m = Duchi1d::new(Epsilon::new(eps).unwrap());
        let grid: Vec<f64> = (-10..=10).map(|i| i as f64 / 10.0).collect();
        for &t in &grid {
            for &u in &grid {
                for (pt, pu) in [
                    (m.head_probability(t), m.head_probability(u)),
                    (1.0 - m.head_probability(t), 1.0 - m.head_probability(u)),
                ] {
                    assert!(pt <= eps.exp() * pu + 1e-12, "t={t}, u={u}");
                }
            }
        }
    }
}
