//! The Hybrid Mechanism (HM) — §III-C of the paper.

use crate::budget::Epsilon;
use crate::error::Result;
use crate::math::epsilon_star;
use crate::mechanism::{check_unit_interval, NumericMechanism};
use crate::numeric::{Duchi1d, Piecewise};
use crate::rng::bernoulli;
use rand::RngCore;

/// The paper's Hybrid Mechanism: a coin-flip mixture of [`Piecewise`] and
/// [`Duchi1d`].
///
/// With probability `α` the input is perturbed by PM, otherwise by Duchi
/// et al.'s mechanism. Lemma 3 shows the worst-case variance is minimized by
///
/// * `α = 1 − e^{−ε/2}` when `ε > ε* ≈ 0.61`, and
/// * `α = 0` (pure Duchi) when `ε ≤ ε*`.
///
/// With the optimal `α`, the `t²` terms of the two component variances cancel
/// exactly, so HM's variance is *constant in the input* (Equation 8), and by
/// Corollary 1 its worst case is never above either component's.
///
/// ```
/// use ldp_core::{numeric::Hybrid, Epsilon, NumericMechanism};
/// let hm = Hybrid::new(Epsilon::new(2.0)?);
/// assert!(hm.worst_case_variance() < hm.pm().worst_case_variance());
/// assert!(hm.worst_case_variance() < hm.duchi().worst_case_variance());
/// # Ok::<(), ldp_core::LdpError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Hybrid {
    epsilon: Epsilon,
    alpha: f64,
    pm: Piecewise,
    duchi: Duchi1d,
}

impl Hybrid {
    /// Creates the mechanism with the optimal mixing weight of Lemma 3.
    pub fn new(epsilon: Epsilon) -> Self {
        let alpha = if epsilon.value() > epsilon_star() {
            1.0 - (-epsilon.value() / 2.0).exp()
        } else {
            0.0
        };
        Hybrid::with_alpha(epsilon, alpha)
    }

    /// Creates the mechanism with an explicit mixing weight `α ∈ [0, 1]`
    /// (exposed for the `ablation_alpha` bench, which sweeps α to confirm
    /// Lemma 3's optimum).
    ///
    /// # Panics
    /// Panics if `α` is not in `[0, 1]`.
    pub fn with_alpha(epsilon: Epsilon, alpha: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&alpha),
            "alpha must be in [0,1], got {alpha}"
        );
        Hybrid {
            epsilon,
            alpha,
            pm: Piecewise::new(epsilon),
            duchi: Duchi1d::new(epsilon),
        }
    }

    /// The mixing weight `α` in use.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The PM component (budget ε, same as the mixture).
    pub fn pm(&self) -> &Piecewise {
        &self.pm
    }

    /// The Duchi component.
    pub fn duchi(&self) -> &Duchi1d {
        &self.duchi
    }

    /// Log-likelihood of output `x` given true value `t`, under the mixed
    /// output measure.
    ///
    /// HM's output law is `(1−α)` of Duchi's two-point atoms plus `α` of PM's
    /// continuous density. With the reference measure "Lebesgue + the two
    /// atoms", the likelihood at an atom is the atom's mass (the continuous
    /// component contributes zero mass to a point) and elsewhere it is the
    /// PM density scaled by `α`. Atoms are detected by bitwise float
    /// equality, exactly as [`Duchi1d::log_mass`] — honest reports reproduce
    /// the emitted float verbatim. Likelihood *ratios* between two inputs are
    /// therefore exact, which is all the `ldp-audit` attacker needs.
    ///
    /// # Errors
    /// Returns [`crate::LdpError::OutOfDomain`] if `t ∉ [-1, 1]`.
    pub fn log_density(&self, x: f64, t: f64) -> Result<f64> {
        check_unit_interval(t)?;
        if x == self.duchi.magnitude() || x == -self.duchi.magnitude() {
            Ok((1.0 - self.alpha).ln() + self.duchi.log_mass(x, t)?)
        } else {
            // α = 0 (pure Duchi below ε*) makes this -∞: honest reports are
            // then always atoms, so the branch is unreachable for them.
            Ok(self.alpha.ln() + self.pm.log_density(x, t)?)
        }
    }

    /// Monomorphic form of [`NumericMechanism::perturb`]: generic over the
    /// rng, draw-for-draw identical to the trait path.
    ///
    /// # Errors
    /// As [`NumericMechanism::perturb`].
    pub fn perturb_any<R: RngCore + ?Sized>(&self, input: f64, rng: &mut R) -> Result<f64> {
        check_unit_interval(input)?;
        // Mixing two ε-LDP mechanisms with an input-independent coin is
        // ε-LDP: the output density is the α-convex combination of two
        // densities that each satisfy the e^ε ratio bound.
        if bernoulli(rng, self.alpha) {
            self.pm.perturb_any(input, rng)
        } else {
            self.duchi.perturb_any(input, rng)
        }
    }
}

impl NumericMechanism for Hybrid {
    fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    fn name(&self) -> &'static str {
        "HM"
    }

    fn perturb(&self, input: f64, rng: &mut dyn RngCore) -> Result<f64> {
        self.perturb_any(input, rng)
    }

    fn variance(&self, input: f64) -> f64 {
        self.alpha * self.pm.variance(input) + (1.0 - self.alpha) * self.duchi.variance(input)
    }

    fn worst_case_variance(&self) -> f64 {
        // Equation 8. For ε > ε* the variance is constant in t; evaluating
        // the mixture at t = 0 (or any t) gives the closed form. For ε ≤ ε*
        // HM is pure Duchi, whose worst case is at t = 0.
        if self.alpha == 0.0 {
            self.duchi.worst_case_variance()
        } else {
            // Constant in t — but guard against a caller-supplied α from
            // `with_alpha`, where the max sits at one of the extremes.
            self.variance(0.0).max(self.variance(1.0))
        }
    }

    fn output_bound(&self) -> Option<f64> {
        // PM's bound C dominates Duchi's magnitude? Not in general:
        // C = (e^{ε/2}+1)/(e^{ε/2}−1) vs (e^ε+1)/(e^ε−1); C is larger, since
        // x ↦ (x+1)/(x−1) is decreasing and e^{ε/2} < e^ε.
        Some(self.pm.c())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    fn hm(eps: f64) -> Hybrid {
        Hybrid::new(Epsilon::new(eps).unwrap())
    }

    #[test]
    fn alpha_matches_lemma_3() {
        let below = hm(0.5);
        assert_eq!(below.alpha(), 0.0, "ε ≤ ε* must use pure Duchi");
        let above = hm(1.0);
        assert!((above.alpha() - (1.0 - (-0.5f64).exp())).abs() < 1e-12);
        // Just above the threshold the optimal α jumps to 1 − e^{−ε/2}.
        let eps_star = crate::math::epsilon_star();
        let just_above = hm(eps_star + 1e-6);
        assert!(just_above.alpha() > 0.0);
    }

    #[test]
    fn variance_constant_in_t_when_alpha_optimal() {
        // The t² cancellation of Equation 8.
        for eps in [0.7, 1.0, 2.0, 4.0] {
            let m = hm(eps);
            let v0 = m.variance(0.0);
            for t in [0.25, 0.5, 0.75, 1.0] {
                assert!((m.variance(t) - v0).abs() < 1e-12, "eps={eps}, t={t}");
            }
        }
    }

    #[test]
    fn worst_case_matches_equation_8() {
        for eps in [1.0f64, 2.0, 4.0] {
            let m = hm(eps);
            let eh = (eps / 2.0).exp();
            let e = eps.exp();
            let expect = (eh + 3.0) / (3.0 * eh * (eh - 1.0))
                + (e + 1.0) * (e + 1.0) / (eh * (e - 1.0) * (e - 1.0));
            assert!(
                (m.worst_case_variance() - expect).abs() < 1e-12,
                "eps={eps}: {} vs {expect}",
                m.worst_case_variance()
            );
        }
        // Below ε*: HM = Duchi.
        let m = hm(0.4);
        let e = 0.4f64.exp();
        let expect = ((e + 1.0) / (e - 1.0)).powi(2);
        assert!((m.worst_case_variance() - expect).abs() < 1e-12);
    }

    #[test]
    fn corollary_1_dominates_components() {
        let eps_star = crate::math::epsilon_star();
        for eps in [0.7, 1.0, 1.29, 2.0, 4.0, 8.0] {
            assert!(eps > eps_star);
            let m = hm(eps);
            assert!(
                m.worst_case_variance() < m.pm().worst_case_variance(),
                "eps={eps}: HM must beat PM"
            );
            assert!(
                m.worst_case_variance() < m.duchi().worst_case_variance(),
                "eps={eps}: HM must beat Duchi"
            );
        }
        for eps in [0.2, 0.4, 0.6] {
            let m = hm(eps);
            assert_eq!(m.worst_case_variance(), m.duchi().worst_case_variance());
            assert!(m.worst_case_variance() < m.pm().worst_case_variance());
        }
    }

    #[test]
    fn unbiased_and_variance_matches_mixture() {
        let m = hm(1.5);
        let mut rng = seeded_rng(41);
        let t = -0.35;
        let n = 400_000;
        let samples: Vec<f64> = (0..n).map(|_| m.perturb(t, &mut rng).unwrap()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - t).abs() < 0.02, "mean {mean}");
        let expect = m.variance(t);
        assert!((var - expect).abs() / expect < 0.03, "{var} vs {expect}");
    }

    #[test]
    fn with_alpha_validates() {
        let eps = Epsilon::new(1.0).unwrap();
        let m = Hybrid::with_alpha(eps, 0.5);
        assert_eq!(m.alpha(), 0.5);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn with_alpha_rejects_out_of_range() {
        Hybrid::with_alpha(Epsilon::new(1.0).unwrap(), 1.5);
    }

    #[test]
    fn optimal_alpha_minimizes_worst_case() {
        // Lemma 3 sanity: sweeping α around the optimum never improves the
        // worst-case variance.
        for eps in [1.0, 2.0, 4.0] {
            let e = Epsilon::new(eps).unwrap();
            let best = Hybrid::new(e);
            let opt = best.worst_case_variance();
            for da in [-0.2, -0.05, 0.05, 0.2] {
                let a = (best.alpha() + da).clamp(0.0, 1.0);
                let other = Hybrid::with_alpha(e, a);
                assert!(
                    other.worst_case_variance() >= opt - 1e-12,
                    "eps={eps}, alpha={a}: {} < {opt}",
                    other.worst_case_variance()
                );
            }
        }
    }

    #[test]
    fn output_bound_contains_both_supports() {
        let m = hm(1.0);
        let b = m.output_bound().unwrap();
        assert!(b >= m.pm().c() - 1e-12);
        assert!(b >= m.duchi().magnitude() - 1e-12);
    }

    #[test]
    fn rejects_invalid_input() {
        let m = hm(1.0);
        let mut rng = seeded_rng(42);
        assert!(m.perturb(2.0, &mut rng).is_err());
    }
}
