//! Shared implementation of the piecewise-constant ("stepped") additive
//! noise distribution of Equation 2, used by both SCDF and Staircase.
//!
//! The density is symmetric around zero:
//!
//! * `f(x) = a` for `|x| ≤ m` (centre step), and
//! * `f(x) = a·e^{-(j+1)ε}` for `|x| ∈ [m + 2j, m + 2(j+1)]`, `j = 0, 1, …`.
//!
//! Steps have width 2 — the sensitivity of the `[-1, 1]` domain — so a shift
//! of the input by at most 2 crosses at most one density level, giving the
//! `e^ε` ratio bound of ε-LDP. SCDF and Staircase differ only in `(m, a)`.

use crate::rng::{random_sign, uniform};
use rand::{Rng, RngCore};

/// A zero-mean stepped noise distribution with centre half-width `m` and
/// centre density `a`, decaying by `e^{-ε}` per width-2 step.
#[derive(Debug, Clone)]
pub(crate) struct SteppedNoise {
    pub(crate) eps: f64,
    pub(crate) m: f64,
    pub(crate) a: f64,
    /// Mass of the centre step, `2am`.
    center_mass: f64,
}

impl SteppedNoise {
    pub(crate) fn new(eps: f64, m: f64, a: f64) -> Self {
        debug_assert!(eps > 0.0 && m >= 0.0 && a > 0.0);
        let center_mass = 2.0 * a * m;
        debug_assert!(
            (center_mass + 4.0 * a * (-eps).exp() / (1.0 - (-eps).exp()) - 1.0).abs() < 1e-9,
            "stepped noise parameters are not normalized"
        );
        SteppedNoise {
            eps,
            m,
            a,
            center_mass,
        }
    }

    /// The density `f(x)`.
    pub(crate) fn pdf(&self, x: f64) -> f64 {
        let ax = x.abs();
        if ax <= self.m {
            self.a
        } else {
            let j = ((ax - self.m) / 2.0).ceil().max(1.0);
            self.a * (-j * self.eps).exp()
        }
    }

    /// Draws one noise value by inverse-transform sampling over the pieces.
    pub(crate) fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let u: f64 = rng.random::<f64>();
        if u < self.center_mass {
            return uniform(rng, -self.m, self.m);
        }
        // Tail: geometric step index with ratio q = e^{-ε}, then uniform
        // within the chosen width-2 step, with a uniform sign.
        let q = (-self.eps).exp();
        let g: f64 = rng.random::<f64>();
        // P(j) = (1-q) q^j  ⇒  j = ⌊ln(1-g)/ln q⌋.
        let j = ((1.0 - g).max(f64::MIN_POSITIVE).ln() / q.ln()).floor();
        let lo = self.m + 2.0 * j;
        random_sign(rng) * uniform(rng, lo, lo + 2.0)
    }

    /// Exact noise variance via the (geometrically converging) series
    /// `2a·[m³/3 + Σ_j e^{-(j+1)ε}·((m+2j+2)³ − (m+2j)³)/3]`.
    pub(crate) fn variance(&self) -> f64 {
        let mut acc = self.m.powi(3) / 3.0;
        let mut j = 0.0f64;
        loop {
            let lo = self.m + 2.0 * j;
            let hi = lo + 2.0;
            let term = (-(j + 1.0) * self.eps).exp() * (hi.powi(3) - lo.powi(3)) / 3.0;
            acc += term;
            j += 1.0;
            if term < acc * 1e-16 || j > 1e6 {
                break;
            }
        }
        2.0 * self.a * acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    /// Staircase parameters for a quick structural check.
    fn staircase_params(eps: f64) -> SteppedNoise {
        let m = 2.0 / (1.0 + (eps / 2.0).exp());
        let a = (1.0 - (-eps).exp()) / (2.0 * m + 4.0 * (-eps).exp() - 2.0 * m * (-eps).exp());
        SteppedNoise::new(eps, m, a)
    }

    #[test]
    fn pdf_integrates_to_one() {
        let n = staircase_params(1.0);
        let steps = 2_000_000;
        let span = 60.0; // density beyond ±30 is ~e^{-15}·a, negligible
        let h = span / steps as f64;
        let integral: f64 = (0..steps)
            .map(|i| n.pdf(-span / 2.0 + (i as f64 + 0.5) * h) * h)
            .sum();
        // Midpoint rule across ~30 density discontinuities: O(h·Σjumps)
        // error, so a 1e-4 tolerance is the right order.
        assert!((integral - 1.0).abs() < 1e-4, "{integral}");
    }

    #[test]
    fn pdf_levels_decay_by_exp_eps() {
        let n = staircase_params(0.8);
        let ratio = n.pdf(n.m - 1e-9) / n.pdf(n.m + 1e-9);
        assert!((ratio - 0.8f64.exp()).abs() < 1e-9);
        let ratio2 = n.pdf(n.m + 1.0) / n.pdf(n.m + 3.0);
        assert!((ratio2 - 0.8f64.exp()).abs() < 1e-9);
    }

    #[test]
    fn empirical_variance_matches_series() {
        let n = staircase_params(1.0);
        let mut rng = seeded_rng(50);
        let count = 500_000;
        let samples: Vec<f64> = (0..count).map(|_| n.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / count as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        let expect = n.variance();
        assert!((var - expect).abs() / expect < 0.03, "{var} vs {expect}");
    }

    #[test]
    fn sample_histogram_matches_pdf() {
        // Compare empirical mass of the centre step with 2am.
        let n = staircase_params(2.0);
        let mut rng = seeded_rng(51);
        let count = 400_000;
        let inside = (0..count)
            .filter(|_| n.sample(&mut rng).abs() <= n.m)
            .count() as f64
            / count as f64;
        assert!((inside - 2.0 * n.a * n.m).abs() < 0.01, "{inside}");
    }
}
