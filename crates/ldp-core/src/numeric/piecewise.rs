//! The Piecewise Mechanism (PM) — Algorithm 2 and Lemma 1 of the paper.

use crate::budget::Epsilon;
use crate::error::Result;
use crate::mechanism::{check_unit_interval, NumericMechanism};
use crate::rng::{bernoulli, uniform};
use rand::RngCore;

/// The paper's Piecewise Mechanism for `t ∈ [-1, 1]`.
///
/// Outputs a value in `[-C, C]` with `C = (e^{ε/2}+1)/(e^{ε/2}−1)`, drawn
/// from the three-piece density of Equation 5: a high-density centre piece
/// `[ℓ(t), r(t)]` of width `C−1` containing the input, and two low-density
/// side pieces (density ratio exactly `e^ε`, which is what makes the
/// mechanism ε-LDP).
///
/// Unbiased, with variance (Lemma 1)
/// `Var[t*|t] = t²/(e^{ε/2}−1) + (e^{ε/2}+3)/(3(e^{ε/2}−1)²)`,
/// which *decreases* as `|t| → 0` — the opposite of Duchi et al.'s mechanism,
/// and the reason PM shines on small-magnitude data such as SGD gradients.
///
/// ```
/// use ldp_core::{numeric::Piecewise, Epsilon, NumericMechanism, rng::seeded_rng};
/// let pm = Piecewise::new(Epsilon::new(1.0)?);
/// let report = pm.perturb(0.3, &mut seeded_rng(1))?;
/// assert!(report.abs() <= pm.c());
/// assert!(pm.variance(0.0) < pm.variance(1.0)); // small inputs are cheaper
/// # Ok::<(), ldp_core::LdpError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Piecewise {
    epsilon: Epsilon,
    /// Output bound `C = (e^{ε/2}+1)/(e^{ε/2}−1)`.
    c: f64,
    /// Probability that the output falls in the centre piece:
    /// `e^{ε/2}/(e^{ε/2}+1)` (line 2 of Algorithm 2).
    center_prob: f64,
    /// Density of the centre piece, `p = e^{ε/2}(e^{ε/2}−1)/(2(e^{ε/2}+1))`.
    p: f64,
    /// `e^{ε/2}` cached for the variance formula.
    exp_half: f64,
}

impl Piecewise {
    /// Creates the mechanism for budget `ε`.
    pub fn new(epsilon: Epsilon) -> Self {
        let exp_half = (epsilon.value() / 2.0).exp();
        let c = (exp_half + 1.0) / (exp_half - 1.0);
        // Algebraically identical to (e^ε − e^{ε/2}) / (2e^{ε/2} + 2) but
        // avoids computing e^ε, which overflows ~140 budget units earlier.
        let p = exp_half * (exp_half - 1.0) / (2.0 * (exp_half + 1.0));
        let center_prob = exp_half / (exp_half + 1.0);
        Piecewise {
            epsilon,
            c,
            center_prob,
            p,
            exp_half,
        }
    }

    /// The output bound `C`.
    pub fn c(&self) -> f64 {
        self.c
    }

    /// Left end `ℓ(t) = (C+1)/2·t − (C−1)/2` of the centre piece.
    pub fn left(&self, t: f64) -> f64 {
        (self.c + 1.0) / 2.0 * t - (self.c - 1.0) / 2.0
    }

    /// Right end `r(t) = ℓ(t) + C − 1` of the centre piece.
    pub fn right(&self, t: f64) -> f64 {
        self.left(t) + self.c - 1.0
    }

    /// The output density `pdf(t* = x | t)` of Equation 5.
    ///
    /// Returns 0 outside `[-C, C]`. Exposed publicly so that Figure 2 can be
    /// regenerated and so that the ε-LDP inequality can be property-tested
    /// directly on the density.
    pub fn pdf(&self, x: f64, t: f64) -> f64 {
        if !(-self.c..=self.c).contains(&x) {
            return 0.0;
        }
        if (self.left(t)..=self.right(t)).contains(&x) {
            self.p
        } else {
            self.p / self.epsilon.exp()
        }
    }

    /// Log-density `ln pdf(t* = x | t)` of Equation 5.
    ///
    /// Returns `-∞` for `x` outside `[-C, C]` (honest reports never are).
    /// Used by the empirical privacy auditor (`ldp-audit`) to form exact
    /// likelihood ratios between neighboring inputs.
    ///
    /// # Errors
    /// Returns [`crate::LdpError::OutOfDomain`] if `t ∉ [-1, 1]`.
    pub fn log_density(&self, x: f64, t: f64) -> Result<f64> {
        check_unit_interval(t)?;
        Ok(self.pdf(x, t).ln())
    }

    /// Monomorphic form of [`NumericMechanism::perturb`]: generic over the
    /// rng, draw-for-draw identical to the trait path.
    ///
    /// # Errors
    /// As [`NumericMechanism::perturb`].
    pub fn perturb_any<R: RngCore + ?Sized>(&self, input: f64, rng: &mut R) -> Result<f64> {
        check_unit_interval(input)?;
        let l = self.left(input);
        let r = self.right(input);
        if bernoulli(rng, self.center_prob) {
            // Centre piece [ℓ(t), r(t)] — width C−1 > 0 always.
            Ok(uniform(rng, l, r))
        } else {
            // Side pieces [-C, ℓ) ∪ (r, C], chosen proportionally to length.
            // At t = ±1 one side has length 0 and is never chosen.
            let left_len = l - (-self.c);
            let right_len = self.c - r;
            let u = uniform(rng, 0.0, left_len + right_len);
            if u < left_len {
                Ok(-self.c + u)
            } else {
                Ok(r + (u - left_len))
            }
        }
    }
}

impl NumericMechanism for Piecewise {
    fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    fn name(&self) -> &'static str {
        "PM"
    }

    fn perturb(&self, input: f64, rng: &mut dyn RngCore) -> Result<f64> {
        self.perturb_any(input, rng)
    }

    fn variance(&self, input: f64) -> f64 {
        // Lemma 1.
        let eh = self.exp_half;
        input * input / (eh - 1.0) + (eh + 3.0) / (3.0 * (eh - 1.0) * (eh - 1.0))
    }

    fn worst_case_variance(&self) -> f64 {
        // Maximized at |t| = 1: 4e^{ε/2} / (3(e^{ε/2}−1)²).
        let eh = self.exp_half;
        4.0 * eh / (3.0 * (eh - 1.0) * (eh - 1.0))
    }

    fn output_bound(&self) -> Option<f64> {
        Some(self.c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    fn pm(eps: f64) -> Piecewise {
        Piecewise::new(Epsilon::new(eps).unwrap())
    }

    #[test]
    fn geometry_of_pieces() {
        let m = pm(1.0);
        // Centre piece has constant width C−1 for every input.
        for t in [-1.0, -0.4, 0.0, 0.7, 1.0] {
            assert!((m.right(t) - m.left(t) - (m.c() - 1.0)).abs() < 1e-12);
            assert!(m.left(t) >= -m.c() - 1e-12);
            assert!(m.right(t) <= m.c() + 1e-12);
        }
        // At t = 1 the right piece vanishes (r = C); at t = -1, ℓ = -C.
        assert!((m.right(1.0) - m.c()).abs() < 1e-12);
        assert!((m.left(-1.0) + m.c()).abs() < 1e-12);
    }

    #[test]
    fn pdf_integrates_to_one() {
        for eps in [0.3, 1.0, 4.0] {
            let m = pm(eps);
            for t in [-1.0, -0.3, 0.0, 0.5, 1.0] {
                let steps = 400_000;
                let h = 2.0 * m.c() / steps as f64;
                let integral: f64 = (0..steps)
                    .map(|i| m.pdf(-m.c() + (i as f64 + 0.5) * h, t) * h)
                    .sum();
                assert!(
                    (integral - 1.0).abs() < 1e-3,
                    "eps={eps}, t={t}: {integral}"
                );
            }
        }
    }

    #[test]
    fn pdf_ratio_bounded_by_exp_eps() {
        // Definition 1 checked directly on the density (the paper's Lemma 1
        // privacy claim). Grid over inputs and outputs.
        for eps in [0.5, 1.29, 3.0] {
            let m = pm(eps);
            let bound = eps.exp() * (1.0 + 1e-12);
            let inputs: Vec<f64> = (-4..=4).map(|i| i as f64 / 4.0).collect();
            let outputs: Vec<f64> = (0..200)
                .map(|i| -m.c() + 2.0 * m.c() * i as f64 / 199.0)
                .collect();
            for &t in &inputs {
                for &u in &inputs {
                    for &x in &outputs {
                        let (a, b) = (m.pdf(x, t), m.pdf(x, u));
                        assert!(a <= bound * b, "eps={eps} t={t} u={u} x={x}");
                    }
                }
            }
        }
    }

    #[test]
    fn outputs_bounded_by_c() {
        let m = pm(0.8);
        let mut rng = seeded_rng(31);
        for _ in 0..20_000 {
            let x = m.perturb(0.5, &mut rng).unwrap();
            assert!(x.abs() <= m.c() + 1e-12);
        }
    }

    #[test]
    fn unbiased_for_several_inputs() {
        let m = pm(1.0);
        let mut rng = seeded_rng(32);
        for t in [-1.0, -0.5, 0.0, 0.5, 1.0] {
            let n = 300_000;
            let mean: f64 = (0..n).map(|_| m.perturb(t, &mut rng).unwrap()).sum::<f64>() / n as f64;
            assert!((mean - t).abs() < 0.02, "t={t}, mean={mean}");
        }
    }

    #[test]
    fn empirical_variance_matches_lemma_1() {
        let m = pm(2.0);
        let mut rng = seeded_rng(33);
        for t in [0.0, 0.6, 1.0] {
            let n = 400_000;
            let samples: Vec<f64> = (0..n).map(|_| m.perturb(t, &mut rng).unwrap()).collect();
            let mean = samples.iter().sum::<f64>() / n as f64;
            let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
            let expect = m.variance(t);
            assert!(
                (var - expect).abs() / expect < 0.03,
                "t={t}: {var} vs {expect}"
            );
        }
    }

    #[test]
    fn variance_decreases_with_magnitude() {
        let m = pm(1.0);
        assert!(m.variance(0.0) < m.variance(0.5));
        assert!(m.variance(0.5) < m.variance(1.0));
        assert!((m.worst_case_variance() - m.variance(1.0)).abs() < 1e-12);
    }

    #[test]
    fn worst_case_beats_laplace_everywhere() {
        // §III-B: PM's worst-case variance is strictly smaller than the
        // Laplace mechanism's 8/ε² for every ε.
        for eps in [0.1, 0.5, 1.0, 2.0, 4.0, 8.0] {
            let m = pm(eps);
            assert!(
                m.worst_case_variance() < 8.0 / (eps * eps),
                "eps={eps}: {} vs {}",
                m.worst_case_variance(),
                8.0 / (eps * eps)
            );
        }
    }

    #[test]
    fn rejects_invalid_input() {
        let m = pm(1.0);
        let mut rng = seeded_rng(34);
        assert!(m.perturb(-1.01, &mut rng).is_err());
        assert!(m.perturb(f64::INFINITY, &mut rng).is_err());
    }

    #[test]
    fn center_probability_matches_algorithm_2() {
        // Empirically, the output should land in [ℓ(t), r(t)] with
        // probability e^{ε/2}/(e^{ε/2}+1).
        let m = pm(1.0);
        let mut rng = seeded_rng(35);
        let t = 0.25;
        let n = 200_000;
        let inside = (0..n)
            .filter(|_| {
                let x = m.perturb(t, &mut rng).unwrap();
                (m.left(t)..=m.right(t)).contains(&x)
            })
            .count();
        let frac = inside as f64 / n as f64;
        let expect = (0.5f64).exp() / ((0.5f64).exp() + 1.0);
        assert!((frac - expect).abs() < 0.005, "{frac} vs {expect}");
    }
}
