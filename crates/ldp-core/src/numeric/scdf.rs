//! SCDF — Soria-Comas & Domingo-Ferrer's data-independent noise (§III-A).

use crate::budget::Epsilon;
use crate::error::Result;
use crate::mechanism::{check_unit_interval, NumericMechanism};
use crate::numeric::stepped::SteppedNoise;
use rand::RngCore;

/// The SCDF mechanism: `t* = t + noise`, with stepped noise (Equation 2)
/// parameterized by
///
/// * `m = 2(1 − e^{−ε} − ε e^{−ε}) / (ε(1 − e^{−ε}))`, and
/// * `a(m) = ε/4`.
///
/// Like the Laplace mechanism, the noise is data-independent and unbounded;
/// its variance decays as `O(1/ε²)` with a smaller constant for moderate ε
/// but still blows up for small ε (Figure 4 of the paper groups it with
/// Laplace for exactly this reason).
#[derive(Debug, Clone)]
pub struct Scdf {
    epsilon: Epsilon,
    noise: SteppedNoise,
}

impl Scdf {
    /// Creates the mechanism for budget `ε`.
    pub fn new(epsilon: Epsilon) -> Self {
        let eps = epsilon.value();
        let em = (-eps).exp();
        let m = 2.0 * (1.0 - em - eps * em) / (eps * (1.0 - em));
        let a = eps / 4.0;
        Scdf {
            epsilon,
            noise: SteppedNoise::new(eps, m, a),
        }
    }

    /// Centre half-width `m` of the noise density.
    pub fn m(&self) -> f64 {
        self.noise.m
    }

    /// Centre density `a = ε/4`.
    pub fn a(&self) -> f64 {
        self.noise.a
    }

    /// The noise density `f(x)` (the output density is `f(x − t)`).
    pub fn noise_pdf(&self, x: f64) -> f64 {
        self.noise.pdf(x)
    }

    /// Monomorphic form of [`NumericMechanism::perturb`]: generic over the
    /// rng, draw-for-draw identical to the trait path.
    ///
    /// # Errors
    /// As [`NumericMechanism::perturb`].
    pub fn perturb_any<R: RngCore + ?Sized>(&self, input: f64, rng: &mut R) -> Result<f64> {
        check_unit_interval(input)?;
        Ok(input + self.noise.sample(rng))
    }
}

impl NumericMechanism for Scdf {
    fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    fn name(&self) -> &'static str {
        "SCDF"
    }

    fn perturb(&self, input: f64, rng: &mut dyn RngCore) -> Result<f64> {
        self.perturb_any(input, rng)
    }

    fn variance(&self, _input: f64) -> f64 {
        self.noise.variance()
    }

    fn worst_case_variance(&self) -> f64 {
        self.noise.variance()
    }

    fn output_bound(&self) -> Option<f64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn parameters_match_formulas() {
        let eps = 1.0f64;
        let m = Scdf::new(Epsilon::new(eps).unwrap());
        let em = (-eps).exp();
        let expect_m = 2.0 * (1.0 - em - eps * em) / (eps * (1.0 - em));
        assert!((m.m() - expect_m).abs() < 1e-12);
        assert!((m.a() - 0.25).abs() < 1e-15);
    }

    #[test]
    fn m_is_nonnegative_for_all_eps() {
        for eps in [0.01, 0.1, 0.5, 1.0, 4.0, 8.0] {
            let m = Scdf::new(Epsilon::new(eps).unwrap());
            assert!(m.m() >= 0.0, "eps={eps}: m={}", m.m());
        }
    }

    #[test]
    fn unbiased() {
        let m = Scdf::new(Epsilon::new(1.0).unwrap());
        let mut rng = seeded_rng(60);
        let t = -0.6;
        let n = 300_000;
        let mean: f64 = (0..n).map(|_| m.perturb(t, &mut rng).unwrap()).sum::<f64>() / n as f64;
        assert!((mean - t).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn variance_between_pm_and_laplace_shapes() {
        // SCDF improves on Laplace for moderate ε (its design goal) …
        for eps in [1.0, 2.0, 4.0] {
            let m = Scdf::new(Epsilon::new(eps).unwrap());
            assert!(
                m.worst_case_variance() < 8.0 / (eps * eps),
                "eps={eps}: {} vs Laplace {}",
                m.worst_case_variance(),
                8.0 / (eps * eps)
            );
        }
    }

    #[test]
    fn variance_is_data_independent() {
        let m = Scdf::new(Epsilon::new(2.0).unwrap());
        assert_eq!(m.variance(-1.0), m.variance(0.0));
        assert_eq!(m.variance(0.0), m.variance(1.0));
    }

    #[test]
    fn noise_density_satisfies_shift_ldp() {
        // For any t, t' ∈ [-1,1] and output x: f(x−t) ≤ e^ε f(x−t').
        let eps = 1.3;
        let m = Scdf::new(Epsilon::new(eps).unwrap());
        let bound = eps.exp() * (1.0 + 1e-9);
        for ti in [-1.0, -0.5, 0.0, 0.5, 1.0] {
            for tj in [-1.0, 0.0, 1.0] {
                for k in -200..=200 {
                    let x = k as f64 * 0.05;
                    assert!(
                        m.noise_pdf(x - ti) <= bound * m.noise_pdf(x - tj),
                        "t={ti}, t'={tj}, x={x}"
                    );
                }
            }
        }
    }

    #[test]
    fn rejects_out_of_domain() {
        let m = Scdf::new(Epsilon::new(1.0).unwrap());
        let mut rng = seeded_rng(61);
        assert!(m.perturb(-2.0, &mut rng).is_err());
    }
}
