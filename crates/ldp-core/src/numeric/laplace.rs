//! The Laplace mechanism applied to the LDP setting (§III-A).

use crate::budget::Epsilon;
use crate::error::Result;
use crate::mechanism::{check_unit_interval, NumericMechanism};
use rand::{Rng, RngCore};

/// Laplace mechanism for a value `t ∈ [-1, 1]`.
///
/// Outputs `t* = t + Lap(2/ε)`: the domain `[-1, 1]` has sensitivity 2, so
/// scale `λ = 2/ε` yields ε-LDP. The output is unbiased with constant
/// variance `2λ² = 8/ε²`, *unbounded*, and — as Figure 1 of the paper shows —
/// dominated by PM for every ε and by Duchi et al.'s mechanism for small ε.
#[derive(Debug, Clone)]
pub struct Laplace {
    epsilon: Epsilon,
    scale: f64,
}

impl Laplace {
    /// Creates the mechanism for budget `ε`.
    pub fn new(epsilon: Epsilon) -> Self {
        Laplace {
            epsilon,
            scale: 2.0 / epsilon.value(),
        }
    }

    /// The noise scale `λ = 2/ε`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Draws one Laplace(0, λ) noise value by inverse-CDF sampling.
    fn sample_noise<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // u ∈ [-0.5, 0.5); splitting on the sign gives the two exponential
        // tails. `1 - 2|u|` is in (0, 1], so ln is finite.
        let u: f64 = rng.random::<f64>() - 0.5;
        let magnitude = -self.scale * (1.0 - 2.0 * u.abs()).max(f64::MIN_POSITIVE).ln();
        if u >= 0.0 {
            magnitude
        } else {
            -magnitude
        }
    }

    /// Monomorphic form of [`NumericMechanism::perturb`]: generic over the
    /// rng, so concrete generators (e.g. [`crate::rng::RngBlock`]) inline
    /// every draw. Draw-for-draw identical to the trait path.
    ///
    /// # Errors
    /// As [`NumericMechanism::perturb`].
    pub fn perturb_any<R: RngCore + ?Sized>(&self, input: f64, rng: &mut R) -> Result<f64> {
        check_unit_interval(input)?;
        Ok(input + self.sample_noise(rng))
    }

    /// Log-density of the output `x` given true value `t`:
    /// `ln f(x|t) = −|x−t|/λ − ln(2λ)`.
    ///
    /// Used by the empirical privacy auditor (`ldp-audit`) to form exact
    /// likelihood ratios between neighboring inputs.
    ///
    /// # Errors
    /// Returns [`crate::LdpError::OutOfDomain`] if `t ∉ [-1, 1]`.
    pub fn log_density(&self, x: f64, t: f64) -> Result<f64> {
        check_unit_interval(t)?;
        Ok(-(x - t).abs() / self.scale - (2.0 * self.scale).ln())
    }
}

impl NumericMechanism for Laplace {
    fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    fn name(&self) -> &'static str {
        "Laplace"
    }

    fn perturb(&self, input: f64, rng: &mut dyn RngCore) -> Result<f64> {
        self.perturb_any(input, rng)
    }

    fn variance(&self, _input: f64) -> f64 {
        2.0 * self.scale * self.scale
    }

    fn worst_case_variance(&self) -> f64 {
        // Data-independent noise: the variance 8/ε² is already worst-case.
        self.variance(0.0)
    }

    fn output_bound(&self) -> Option<f64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn variance_is_eight_over_eps_squared() {
        let m = Laplace::new(Epsilon::new(2.0).unwrap());
        assert!((m.variance(0.3) - 2.0).abs() < 1e-12);
        assert!((m.worst_case_variance() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_out_of_domain_input() {
        let m = Laplace::new(Epsilon::new(1.0).unwrap());
        let mut rng = seeded_rng(0);
        assert!(m.perturb(1.5, &mut rng).is_err());
        assert!(m.perturb(f64::NAN, &mut rng).is_err());
    }

    #[test]
    fn empirical_mean_and_variance_match_theory() {
        let eps = Epsilon::new(1.0).unwrap();
        let m = Laplace::new(eps);
        let mut rng = seeded_rng(11);
        let t = 0.4;
        let n = 400_000;
        let samples: Vec<f64> = (0..n).map(|_| m.perturb(t, &mut rng).unwrap()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - t).abs() < 0.02, "mean {mean}");
        // Var = 8/ε² = 8.
        assert!((var - 8.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn noise_is_symmetric() {
        let m = Laplace::new(Epsilon::new(0.5).unwrap());
        let mut rng = seeded_rng(12);
        let n = 200_000;
        let pos = (0..n)
            .filter(|_| m.perturb(0.0, &mut rng).unwrap() > 0.0)
            .count();
        let frac = pos as f64 / n as f64;
        assert!((frac - 0.5).abs() < 0.01, "positive fraction {frac}");
    }

    #[test]
    fn name_and_bound() {
        let m = Laplace::new(Epsilon::new(1.0).unwrap());
        assert_eq!(m.name(), "Laplace");
        assert_eq!(m.output_bound(), None);
        assert_eq!(m.epsilon().value(), 1.0);
        assert!((m.scale() - 2.0).abs() < 1e-15);
    }
}
