//! The Staircase mechanism of Geng et al. (§III-A).

use crate::budget::Epsilon;
use crate::error::Result;
use crate::mechanism::{check_unit_interval, NumericMechanism};
use crate::numeric::stepped::SteppedNoise;
use rand::RngCore;

/// The Staircase mechanism: `t* = t + noise`, with stepped noise
/// (Equation 2) parameterized by
///
/// * `m = 2 / (1 + e^{ε/2})` (i.e. `γ* = 1/(1+e^{ε/2})` scaled by the
///   sensitivity Δ = 2), and
/// * `a(m) = (1 − e^{−ε}) / (2m + 4e^{−ε} − 2m e^{−ε})`.
///
/// Geng et al. prove this is the optimal additive data-independent noise for
/// *unbounded* inputs; as the paper notes, the optimality does not carry over
/// to the bounded domain `[-1, 1]`, where PM/HM win.
#[derive(Debug, Clone)]
pub struct Staircase {
    epsilon: Epsilon,
    noise: SteppedNoise,
}

impl Staircase {
    /// Creates the mechanism for budget `ε`.
    pub fn new(epsilon: Epsilon) -> Self {
        let eps = epsilon.value();
        let em = (-eps).exp();
        let m = 2.0 / (1.0 + (eps / 2.0).exp());
        let a = (1.0 - em) / (2.0 * m + 4.0 * em - 2.0 * m * em);
        Staircase {
            epsilon,
            noise: SteppedNoise::new(eps, m, a),
        }
    }

    /// Centre half-width `m` of the noise density.
    pub fn m(&self) -> f64 {
        self.noise.m
    }

    /// Centre density `a(m)`.
    pub fn a(&self) -> f64 {
        self.noise.a
    }

    /// The noise density `f(x)` (the output density is `f(x − t)`).
    pub fn noise_pdf(&self, x: f64) -> f64 {
        self.noise.pdf(x)
    }

    /// Monomorphic form of [`NumericMechanism::perturb`]: generic over the
    /// rng, draw-for-draw identical to the trait path.
    ///
    /// # Errors
    /// As [`NumericMechanism::perturb`].
    pub fn perturb_any<R: RngCore + ?Sized>(&self, input: f64, rng: &mut R) -> Result<f64> {
        check_unit_interval(input)?;
        Ok(input + self.noise.sample(rng))
    }
}

impl NumericMechanism for Staircase {
    fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    fn name(&self) -> &'static str {
        "Staircase"
    }

    fn perturb(&self, input: f64, rng: &mut dyn RngCore) -> Result<f64> {
        self.perturb_any(input, rng)
    }

    fn variance(&self, _input: f64) -> f64 {
        self.noise.variance()
    }

    fn worst_case_variance(&self) -> f64 {
        self.noise.variance()
    }

    fn output_bound(&self) -> Option<f64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn parameters_match_geng_formulas() {
        let eps = 2.0f64;
        let m = Staircase::new(Epsilon::new(eps).unwrap());
        assert!((m.m() - 2.0 / (1.0 + 1.0f64.exp())).abs() < 1e-12);
        // Normalization: 2am + 4a e^{-ε}/(1-e^{-ε}) = 1.
        let em = (-eps).exp();
        let total = 2.0 * m.a() * m.m() + 4.0 * m.a() * em / (1.0 - em);
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unbiased() {
        let m = Staircase::new(Epsilon::new(1.0).unwrap());
        let mut rng = seeded_rng(70);
        let t = 0.8;
        let n = 300_000;
        let mean: f64 = (0..n).map(|_| m.perturb(t, &mut rng).unwrap()).sum::<f64>() / n as f64;
        assert!((mean - t).abs() < 0.03, "mean {mean}");
    }

    #[test]
    fn beats_laplace_for_large_eps() {
        // Staircase's raison d'être: quadratically better than Laplace as
        // ε grows (Geng et al. Theorem 4 gives Θ(e^{-ε/2}) vs Θ(1/ε²)… here
        // we only need the direction).
        for eps in [2.0, 4.0, 8.0] {
            let m = Staircase::new(Epsilon::new(eps).unwrap());
            assert!(m.worst_case_variance() < 8.0 / (eps * eps), "eps={eps}");
        }
    }

    #[test]
    fn worse_than_pm_on_bounded_domain() {
        // The paper's §III-B claim (and Figure 1): PM dominates the additive
        // unbounded-noise mechanisms on [-1, 1] for small/moderate ε.
        use crate::numeric::Piecewise;
        for eps in [0.5, 1.0, 2.0] {
            let st = Staircase::new(Epsilon::new(eps).unwrap());
            let pm = Piecewise::new(Epsilon::new(eps).unwrap());
            assert!(
                pm.worst_case_variance() < st.worst_case_variance(),
                "eps={eps}: PM {} vs Staircase {}",
                pm.worst_case_variance(),
                st.worst_case_variance()
            );
        }
    }

    #[test]
    fn noise_density_satisfies_shift_ldp() {
        let eps = 0.9;
        let m = Staircase::new(Epsilon::new(eps).unwrap());
        let bound = eps.exp() * (1.0 + 1e-9);
        for ti in [-1.0, -0.3, 0.4, 1.0] {
            for tj in [-1.0, 0.0, 1.0] {
                for k in -200..=200 {
                    let x = k as f64 * 0.05;
                    assert!(
                        m.noise_pdf(x - ti) <= bound * m.noise_pdf(x - tj),
                        "t={ti}, t'={tj}, x={x}"
                    );
                }
            }
        }
    }

    #[test]
    fn variance_is_data_independent_and_positive() {
        let m = Staircase::new(Epsilon::new(0.5).unwrap());
        assert!(m.variance(0.0) > 0.0);
        assert_eq!(m.variance(-1.0), m.variance(1.0));
    }
}
