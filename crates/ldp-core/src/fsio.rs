//! Crash-safe filesystem primitives shared by the durability layer and the
//! bench harness.
//!
//! A plain `write` + `rename` survives a *process* crash (the rename is
//! atomic on POSIX) but not a *machine* crash: the freshly renamed file's
//! data may still sit in the page cache, and so may the directory entry
//! itself. [`write_atomic`] closes both windows with the canonical
//! sequence — write tmp, fsync tmp, rename, fsync parent directory — so
//! after it returns the new content is durable *and* no crash at any
//! intermediate step can leave a torn target file: readers see either the
//! old content or the new, never a prefix.

use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

/// Atomically and durably replace `path` with `contents`.
///
/// Steps, in order:
/// 1. write `contents` to `path` + `".tmp"` (same directory, so the rename
///    can never be a cross-device move);
/// 2. `fsync` the tmp file — its bytes are on stable storage before the
///    name swap makes them reachable;
/// 3. `rename` tmp over `path` — atomic on POSIX;
/// 4. open the parent directory and `fsync` it, making the rename itself
///    durable (without this, a power cut can resurrect the old file even
///    though the write "succeeded").
///
/// On filesystems where directories cannot be `fsync`ed (step 4 fails with
/// an error), the rename has still happened; the error is surfaced so
/// callers that require full durability can react.
pub fn write_atomic(path: &Path, contents: &[u8]) -> io::Result<()> {
    let tmp = stage(path, contents)?;
    commit(path, &tmp)
}

/// Steps 1–2 of [`write_atomic`]: durably write `contents` to the sibling
/// temp file and return its path, *without* making it reachable under
/// `path`. A crash after `stage` leaves at worst a stray `.tmp` file — the
/// target is untouched. Split out so crash-injection harnesses can place a
/// simulated kill between the stage and the [`commit`] while exercising the
/// exact production code path.
pub fn stage(path: &Path, contents: &[u8]) -> io::Result<std::path::PathBuf> {
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp_name);

    let mut file = File::create(&tmp)?;
    file.write_all(contents)?;
    file.sync_all()?;
    drop(file);
    Ok(tmp)
}

/// Steps 3–4 of [`write_atomic`]: atomically rename the staged temp file
/// over `path` and `fsync` the parent directory so the swap survives a
/// power cut.
pub fn commit(path: &Path, tmp: &Path) -> io::Result<()> {
    std::fs::rename(tmp, path)?;
    sync_parent_dir(path)
}

/// `fsync` the directory containing `path`, committing any rename or
/// creation of `path` itself to stable storage.
pub fn sync_parent_dir(path: &Path) -> io::Result<()> {
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    File::open(parent)?.sync_all()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("ldp_fsio_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn writes_then_replaces_without_leaving_tmp() {
        let path = temp_path("replace");
        write_atomic(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        write_atomic(&path, b"second, longer content").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer content");

        let mut tmp_name = path.as_os_str().to_owned();
        tmp_name.push(".tmp");
        assert!(
            !Path::new(&tmp_name).exists(),
            "tmp file must not survive a successful write"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_contents_are_valid() {
        let path = temp_path("empty");
        write_atomic(&path, b"").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_parent_directory_is_a_typed_error() {
        let mut p = std::env::temp_dir();
        p.push(format!("ldp_fsio_missing_{}", std::process::id()));
        p.push("nested");
        p.push("file.bin");
        assert!(write_atomic(&p, b"x").is_err());
    }
}
