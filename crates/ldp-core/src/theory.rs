//! Table I of the paper: which mechanism wins the worst-case-variance
//! comparison in each `(d, ε)` regime.

use crate::math::{epsilon_sharp, epsilon_star};
use crate::variance;
use serde::{Deserialize, Serialize};

/// The strict ordering regimes of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Regime {
    /// `d > 1, ε > 0` — `HM < PM < Duchi`.
    MultiDim,
    /// `d = 1, ε > ε#` — `HM < PM < Duchi`.
    OneDimLarge,
    /// `d = 1, ε = ε#` — `HM < PM = Duchi`.
    OneDimSharp,
    /// `d = 1, ε* < ε < ε#` — `HM < Duchi < PM`.
    OneDimMiddle,
    /// `d = 1, 0 < ε ≤ ε*` — `HM = Duchi < PM`.
    OneDimSmall,
}

impl Regime {
    /// The ordering string exactly as Table I prints it.
    pub fn ordering(self) -> &'static str {
        match self {
            Regime::MultiDim | Regime::OneDimLarge => "MaxVarHM < MaxVarPM < MaxVarDu",
            Regime::OneDimSharp => "MaxVarHM < MaxVarPM = MaxVarDu",
            Regime::OneDimMiddle => "MaxVarHM < MaxVarDu < MaxVarPM",
            Regime::OneDimSmall => "MaxVarHM = MaxVarDu < MaxVarPM",
        }
    }
}

/// One evaluated row of Table I: the three worst-case variances at `(d, ε)`
/// and the regime they fall into.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    /// Dimensionality.
    pub d: usize,
    /// Privacy budget.
    pub eps: f64,
    /// `max_t Var` for the Hybrid Mechanism.
    pub hm: f64,
    /// `max_t Var` for the Piecewise Mechanism.
    pub pm: f64,
    /// `max_t Var` for Duchi et al.'s mechanism.
    pub duchi: f64,
    /// The regime of Table I this `(d, ε)` belongs to.
    pub regime: Regime,
}

/// Classifies `(d, ε)` into its Table I regime (analytically, from the
/// `ε*`/`ε#` thresholds) and evaluates the three worst-case variances.
///
/// # Panics
/// Panics if `d == 0` or `ε ≤ 0` — Table I is defined only for valid inputs.
pub fn table1_row(d: usize, eps: f64) -> Table1Row {
    assert!(d >= 1, "Table I requires d ≥ 1");
    assert!(eps > 0.0 && eps.is_finite(), "Table I requires ε > 0");
    const TOL: f64 = 1e-9;
    let regime = if d > 1 {
        Regime::MultiDim
    } else if eps <= epsilon_star() {
        Regime::OneDimSmall
    } else if (eps - epsilon_sharp()).abs() < TOL {
        Regime::OneDimSharp
    } else if eps < epsilon_sharp() {
        Regime::OneDimMiddle
    } else {
        Regime::OneDimLarge
    };
    let (hm, pm, duchi) = if d == 1 {
        (
            variance::hm_1d_worst(eps),
            variance::pm_1d_worst(eps),
            variance::duchi_1d_worst(eps),
        )
    } else {
        (
            variance::hm_md_worst(eps, d),
            variance::pm_md_worst(eps, d),
            variance::duchi_md_worst(eps, d),
        )
    };
    Table1Row {
        d,
        eps,
        hm,
        pm,
        duchi,
        regime,
    }
}

/// Checks that a row's measured variances satisfy its regime's ordering
/// (used by tests and by the `table1_regimes` binary to self-verify).
pub fn row_consistent(row: &Table1Row) -> bool {
    // `≤ with tolerance`: strictness is implied by the regime boundaries
    // being excluded from the grid, while equality needs a looser relative
    // tolerance because ε* and ε# are themselves rounded floats.
    let le = |a: f64, b: f64| a <= b + 1e-9 * b.abs().max(1.0);
    let eq = |a: f64, b: f64| (a - b).abs() <= 1e-6 * b.abs().max(1.0);
    match row.regime {
        Regime::MultiDim | Regime::OneDimLarge => le(row.hm, row.pm) && le(row.pm, row.duchi),
        Regime::OneDimSharp => le(row.hm, row.pm) && eq(row.pm, row.duchi),
        Regime::OneDimMiddle => le(row.hm, row.duchi) && le(row.duchi, row.pm),
        Regime::OneDimSmall => eq(row.hm, row.duchi) && le(row.duchi, row.pm),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_dimensional_regimes_match_table_1() {
        assert_eq!(table1_row(1, 0.3).regime, Regime::OneDimSmall);
        assert_eq!(table1_row(1, epsilon_star()).regime, Regime::OneDimSmall);
        assert_eq!(table1_row(1, 0.9).regime, Regime::OneDimMiddle);
        assert_eq!(table1_row(1, epsilon_sharp()).regime, Regime::OneDimSharp);
        assert_eq!(table1_row(1, 2.0).regime, Regime::OneDimLarge);
        assert_eq!(table1_row(1, 8.0).regime, Regime::OneDimLarge);
    }

    #[test]
    fn multidimensional_always_hm_pm_duchi() {
        for d in [2usize, 5, 16, 40] {
            for eps in [0.2, 0.61, 1.0, 1.29, 4.0, 8.0] {
                let row = table1_row(d, eps);
                assert_eq!(row.regime, Regime::MultiDim);
                assert!(row_consistent(&row), "d={d}, eps={eps}: {row:?}");
            }
        }
    }

    #[test]
    fn every_regime_row_is_internally_consistent() {
        // Dense ε grid over (0, 8]; this is the numeric verification of
        // Table I promised in DESIGN.md.
        for i in 1..=160 {
            let eps = i as f64 * 0.05;
            let row = table1_row(1, eps);
            assert!(row_consistent(&row), "eps={eps}: {row:?}");
        }
        // And the two exact thresholds.
        for eps in [epsilon_star(), epsilon_sharp()] {
            let row = table1_row(1, eps);
            assert!(row_consistent(&row), "threshold eps={eps}: {row:?}");
        }
    }

    #[test]
    fn ordering_strings_match_paper() {
        assert_eq!(
            table1_row(1, 2.0).regime.ordering(),
            "MaxVarHM < MaxVarPM < MaxVarDu"
        );
        assert_eq!(
            table1_row(1, 1.0).regime.ordering(),
            "MaxVarHM < MaxVarDu < MaxVarPM"
        );
        assert_eq!(
            table1_row(1, 0.4).regime.ordering(),
            "MaxVarHM = MaxVarDu < MaxVarPM"
        );
    }

    #[test]
    #[should_panic(expected = "d ≥ 1")]
    fn rejects_zero_dimension() {
        table1_row(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "ε > 0")]
    fn rejects_non_positive_eps() {
        table1_row(1, 0.0);
    }
}
