//! Table I of the paper: which mechanism wins the worst-case-variance
//! comparison in each `(d, ε)` regime.

use crate::math::{epsilon_sharp, epsilon_star};
use crate::variance;
use serde::{Deserialize, Serialize};

/// The strict ordering regimes of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Regime {
    /// `d > 1, ε > 0` — `HM < PM < Duchi`.
    MultiDim,
    /// `d = 1, ε > ε#` — `HM < PM < Duchi`.
    OneDimLarge,
    /// `d = 1, ε = ε#` — `HM < PM = Duchi`.
    OneDimSharp,
    /// `d = 1, ε* < ε < ε#` — `HM < Duchi < PM`.
    OneDimMiddle,
    /// `d = 1, 0 < ε ≤ ε*` — `HM = Duchi < PM`.
    OneDimSmall,
}

impl Regime {
    /// The ordering string exactly as Table I prints it.
    pub fn ordering(self) -> &'static str {
        match self {
            Regime::MultiDim | Regime::OneDimLarge => "MaxVarHM < MaxVarPM < MaxVarDu",
            Regime::OneDimSharp => "MaxVarHM < MaxVarPM = MaxVarDu",
            Regime::OneDimMiddle => "MaxVarHM < MaxVarDu < MaxVarPM",
            Regime::OneDimSmall => "MaxVarHM = MaxVarDu < MaxVarPM",
        }
    }
}

/// One evaluated row of Table I: the three worst-case variances at `(d, ε)`
/// and the regime they fall into.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table1Row {
    /// Dimensionality.
    pub d: usize,
    /// Privacy budget.
    pub eps: f64,
    /// `max_t Var` for the Hybrid Mechanism.
    pub hm: f64,
    /// `max_t Var` for the Piecewise Mechanism.
    pub pm: f64,
    /// `max_t Var` for Duchi et al.'s mechanism.
    pub duchi: f64,
    /// The regime of Table I this `(d, ε)` belongs to.
    pub regime: Regime,
}

/// Classifies `(d, ε)` into its Table I regime (analytically, from the
/// `ε*`/`ε#` thresholds) and evaluates the three worst-case variances.
///
/// # Panics
/// Panics if `d == 0` or `ε ≤ 0` — Table I is defined only for valid inputs.
pub fn table1_row(d: usize, eps: f64) -> Table1Row {
    assert!(d >= 1, "Table I requires d ≥ 1");
    assert!(eps > 0.0 && eps.is_finite(), "Table I requires ε > 0");
    const TOL: f64 = 1e-9;
    let regime = if d > 1 {
        Regime::MultiDim
    } else if eps <= epsilon_star() {
        Regime::OneDimSmall
    } else if (eps - epsilon_sharp()).abs() < TOL {
        Regime::OneDimSharp
    } else if eps < epsilon_sharp() {
        Regime::OneDimMiddle
    } else {
        Regime::OneDimLarge
    };
    let (hm, pm, duchi) = if d == 1 {
        (
            variance::hm_1d_worst(eps),
            variance::pm_1d_worst(eps),
            variance::duchi_1d_worst(eps),
        )
    } else {
        (
            variance::hm_md_worst(eps, d),
            variance::pm_md_worst(eps, d),
            variance::duchi_md_worst(eps, d),
        )
    };
    Table1Row {
        d,
        eps,
        hm,
        pm,
        duchi,
        regime,
    }
}

/// Checks that a row's measured variances satisfy its regime's ordering
/// (used by tests and by the `table1_regimes` binary to self-verify).
pub fn row_consistent(row: &Table1Row) -> bool {
    // `≤ with tolerance`: strictness is implied by the regime boundaries
    // being excluded from the grid, while equality needs a looser relative
    // tolerance because ε* and ε# are themselves rounded floats.
    let le = |a: f64, b: f64| a <= b + 1e-9 * b.abs().max(1.0);
    let eq = |a: f64, b: f64| (a - b).abs() <= 1e-6 * b.abs().max(1.0);
    match row.regime {
        Regime::MultiDim | Regime::OneDimLarge => le(row.hm, row.pm) && le(row.pm, row.duchi),
        Regime::OneDimSharp => le(row.hm, row.pm) && eq(row.pm, row.duchi),
        Regime::OneDimMiddle => le(row.hm, row.duchi) && le(row.duchi, row.pm),
        Regime::OneDimSmall => eq(row.hm, row.duchi) && le(row.duchi, row.pm),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_dimensional_regimes_match_table_1() {
        assert_eq!(table1_row(1, 0.3).regime, Regime::OneDimSmall);
        assert_eq!(table1_row(1, epsilon_star()).regime, Regime::OneDimSmall);
        assert_eq!(table1_row(1, 0.9).regime, Regime::OneDimMiddle);
        assert_eq!(table1_row(1, epsilon_sharp()).regime, Regime::OneDimSharp);
        assert_eq!(table1_row(1, 2.0).regime, Regime::OneDimLarge);
        assert_eq!(table1_row(1, 8.0).regime, Regime::OneDimLarge);
    }

    #[test]
    fn multidimensional_always_hm_pm_duchi() {
        for d in [2usize, 5, 16, 40] {
            for eps in [0.2, 0.61, 1.0, 1.29, 4.0, 8.0] {
                let row = table1_row(d, eps);
                assert_eq!(row.regime, Regime::MultiDim);
                assert!(row_consistent(&row), "d={d}, eps={eps}: {row:?}");
            }
        }
    }

    #[test]
    fn every_regime_row_is_internally_consistent() {
        // Dense ε grid over (0, 8]; this is the numeric verification of
        // Table I promised in DESIGN.md.
        for i in 1..=160 {
            let eps = i as f64 * 0.05;
            let row = table1_row(1, eps);
            assert!(row_consistent(&row), "eps={eps}: {row:?}");
        }
        // And the two exact thresholds.
        for eps in [epsilon_star(), epsilon_sharp()] {
            let row = table1_row(1, eps);
            assert!(row_consistent(&row), "threshold eps={eps}: {row:?}");
        }
    }

    #[test]
    fn ordering_strings_match_paper() {
        assert_eq!(
            table1_row(1, 2.0).regime.ordering(),
            "MaxVarHM < MaxVarPM < MaxVarDu"
        );
        assert_eq!(
            table1_row(1, 1.0).regime.ordering(),
            "MaxVarHM < MaxVarDu < MaxVarPM"
        );
        assert_eq!(
            table1_row(1, 0.4).regime.ordering(),
            "MaxVarHM = MaxVarDu < MaxVarPM"
        );
    }

    #[test]
    #[should_panic(expected = "d ≥ 1")]
    fn rejects_zero_dimension() {
        table1_row(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "ε > 0")]
    fn rejects_non_positive_eps() {
        table1_row(1, 0.0);
    }

    /// The defining identity of `ε#`: PM's and Duchi's one-dimensional
    /// worst-case variances cross *exactly* there (machine precision), with
    /// the strict ordering flipping on either side.
    #[test]
    fn pm_and_duchi_cross_exactly_at_epsilon_sharp() {
        let sharp = epsilon_sharp();
        let (pm, du) = (
            variance::pm_1d_worst(sharp),
            variance::duchi_1d_worst(sharp),
        );
        assert!(
            (pm - du).abs() <= 1e-12 * du,
            "variances at ε# differ: {pm} vs {du}"
        );
        let below = sharp - 1e-6;
        assert!(variance::pm_1d_worst(below) > variance::duchi_1d_worst(below));
        let above = sharp + 1e-6;
        assert!(variance::pm_1d_worst(above) < variance::duchi_1d_worst(above));
    }

    /// The defining identity of `ε*`: HM's interior (α > 0) worst-case
    /// branch meets Duchi's worst case *exactly* there, so `hm_1d_worst`
    /// pastes continuously, and α switches off at the threshold.
    #[test]
    fn hm_branches_paste_exactly_at_epsilon_star() {
        let star = epsilon_star();
        let interior = |eps: f64| {
            let eh = (eps / 2.0).exp();
            let e = eps.exp();
            (eh + 3.0) / (3.0 * eh * (eh - 1.0))
                + (e + 1.0) * (e + 1.0) / (eh * (e - 1.0) * (e - 1.0))
        };
        let du = variance::duchi_1d_worst(star);
        assert!(
            (interior(star) - du).abs() <= 1e-12 * du,
            "branches at ε* differ: {} vs {du}",
            interior(star)
        );
        // Below ε*, HM degenerates to Duchi identically (α = 0)…
        assert_eq!(variance::hm_alpha(star), 0.0);
        assert_eq!(
            variance::hm_1d_worst(star - 1e-6),
            variance::duchi_1d_worst(star - 1e-6)
        );
        // …and just above, α jumps positive while the interior branch is
        // already the smaller of the two (HM strictly wins).
        let above = star + 1e-6;
        assert!(variance::hm_alpha(above) > 0.0);
        assert!(variance::hm_1d_worst(above) < variance::duchi_1d_worst(above));
    }

    /// `table1_row`'s regime classification switches exactly at the two
    /// thresholds (with its documented 1e-9 tolerance window around ε#).
    #[test]
    fn regime_switches_exactly_at_thresholds() {
        let (star, sharp) = (epsilon_star(), epsilon_sharp());
        assert_eq!(table1_row(1, star).regime, Regime::OneDimSmall);
        assert_eq!(table1_row(1, star + 1e-8).regime, Regime::OneDimMiddle);
        assert_eq!(table1_row(1, sharp - 1e-8).regime, Regime::OneDimMiddle);
        assert_eq!(table1_row(1, sharp).regime, Regime::OneDimSharp);
        assert_eq!(table1_row(1, sharp + 5e-10).regime, Regime::OneDimSharp);
        assert_eq!(table1_row(1, sharp + 1e-8).regime, Regime::OneDimLarge);
    }
}

#[cfg(test)]
mod regime_proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Table I's multidimensional row over a random (d, ε) grid:
        /// `HM ≤ PM ≤ Duchi` for every d > 1, with `row_consistent`
        /// agreeing.
        #[test]
        fn multidim_ordering_holds_on_random_grid(
            d in 2usize..128,
            eps in 0.05f64..10.0,
        ) {
            let row = table1_row(d, eps);
            prop_assert_eq!(row.regime, Regime::MultiDim);
            prop_assert!(row.hm <= row.pm * (1.0 + 1e-12),
                "d={} eps={}: HM {} > PM {}", d, eps, row.hm, row.pm);
            prop_assert!(row.pm <= row.duchi * (1.0 + 1e-12),
                "d={} eps={}: PM {} > Duchi {}", d, eps, row.pm, row.duchi);
            prop_assert!(row_consistent(&row), "inconsistent row {:?}", row);
        }

        /// The d = 1 rows are classified consistently for random ε, and the
        /// evaluated variances always satisfy the claimed ordering.
        #[test]
        fn one_dim_rows_consistent_on_random_grid(eps in 0.01f64..10.0) {
            let row = table1_row(1, eps);
            prop_assert!(row_consistent(&row), "inconsistent row {:?}", row);
            // HM never loses, in every regime.
            prop_assert!(row.hm <= row.pm * (1.0 + 1e-12), "{:?}", row);
            prop_assert!(row.hm <= row.duchi * (1.0 + 1e-12), "{:?}", row);
        }
    }
}
