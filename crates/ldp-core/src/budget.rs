//! Privacy-budget bookkeeping.
//!
//! Every mechanism takes an [`Epsilon`] rather than a bare `f64`, so that the
//! "finite and strictly positive" invariant is checked exactly once, at the
//! edge of the API. Budget arithmetic (splitting across attributes for the
//! sequential-composition baselines of §IV, or across sampled attributes in
//! Algorithm 4) is expressed as methods, which keeps the accounting auditable.

use crate::error::{LdpError, Result};
use serde::{Deserialize, Serialize};

/// A validated privacy budget `ε > 0`.
///
/// `Epsilon` is a transparent wrapper over `f64`; copying it is free.
///
/// # Examples
/// ```
/// use ldp_core::Epsilon;
/// let eps = Epsilon::new(1.0).unwrap();
/// assert_eq!(eps.value(), 1.0);
/// assert!(Epsilon::new(0.0).is_err());
/// assert!(Epsilon::new(f64::NAN).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(try_from = "f64", into = "f64")]
pub struct Epsilon(f64);

impl Epsilon {
    /// Validates and wraps a privacy budget.
    ///
    /// # Errors
    /// Returns [`LdpError::InvalidEpsilon`] unless `value` is finite and `> 0`.
    pub fn new(value: f64) -> Result<Self> {
        if value.is_finite() && value > 0.0 {
            Ok(Epsilon(value))
        } else {
            Err(LdpError::InvalidEpsilon { value })
        }
    }

    /// The raw budget value.
    #[inline]
    pub fn value(self) -> f64 {
        self.0
    }

    /// `e^ε`, the likelihood-ratio bound of Definition 1.
    #[inline]
    pub fn exp(self) -> f64 {
        self.0.exp()
    }

    /// Splits the budget evenly over `parts` sub-mechanisms.
    ///
    /// By the sequential composition theorem, running each sub-mechanism with
    /// `ε/parts` yields an `ε`-LDP mechanism overall. This is the
    /// "straightforward solution" of §IV that the paper's Algorithm 4 improves
    /// upon.
    ///
    /// # Errors
    /// Returns [`LdpError::InvalidParameter`] if `parts == 0`.
    pub fn split(self, parts: usize) -> Result<Epsilon> {
        if parts == 0 {
            return Err(LdpError::InvalidParameter {
                name: "parts",
                message: "cannot split a budget into zero parts".into(),
            });
        }
        Epsilon::new(self.0 / parts as f64)
    }

    /// Allocates `fraction` of the budget (used by the §VI-A best-effort
    /// baseline, which gives `ε·d_num/d` to the numeric block).
    ///
    /// # Errors
    /// Returns an error when `fraction` is not in `(0, 1]`.
    pub fn fraction(self, fraction: f64) -> Result<Epsilon> {
        if !(fraction > 0.0 && fraction <= 1.0) {
            return Err(LdpError::InvalidParameter {
                name: "fraction",
                message: format!("budget fraction must be in (0, 1], got {fraction}"),
            });
        }
        Epsilon::new(self.0 * fraction)
    }
}

impl TryFrom<f64> for Epsilon {
    type Error = LdpError;
    fn try_from(value: f64) -> Result<Self> {
        Epsilon::new(value)
    }
}

impl From<Epsilon> for f64 {
    fn from(eps: Epsilon) -> f64 {
        eps.value()
    }
}

impl std::fmt::Display for Epsilon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ε={}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_positive_finite() {
        for v in [1e-9, 0.5, 1.0, 8.0, 1e6] {
            assert_eq!(Epsilon::new(v).unwrap().value(), v);
        }
    }

    #[test]
    fn rejects_non_positive_and_non_finite() {
        for v in [0.0, -1.0, f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(matches!(
                Epsilon::new(v),
                Err(LdpError::InvalidEpsilon { .. })
            ));
        }
    }

    #[test]
    fn split_divides_evenly() {
        let eps = Epsilon::new(4.0).unwrap();
        assert_eq!(eps.split(4).unwrap().value(), 1.0);
        assert!(eps.split(0).is_err());
    }

    #[test]
    fn fraction_validates_range() {
        let eps = Epsilon::new(2.0).unwrap();
        assert_eq!(eps.fraction(0.5).unwrap().value(), 1.0);
        assert_eq!(eps.fraction(1.0).unwrap().value(), 2.0);
        assert!(eps.fraction(0.0).is_err());
        assert!(eps.fraction(1.5).is_err());
        assert!(eps.fraction(f64::NAN).is_err());
    }

    #[test]
    fn exp_matches_std() {
        let eps = Epsilon::new(1.25).unwrap();
        assert_eq!(eps.exp(), 1.25f64.exp());
    }

    #[test]
    fn display_shows_value() {
        assert_eq!(Epsilon::new(0.5).unwrap().to_string(), "ε=0.5");
    }

    #[test]
    fn serde_round_trip_rejects_invalid() {
        let eps = Epsilon::new(1.5).unwrap();
        let json = serde_json_like(eps.value());
        assert_eq!(json, 1.5);
        assert!(Epsilon::try_from(-3.0).is_err());
    }

    // Minimal stand-in: we avoid pulling serde_json; the Into<f64> path is
    // what serde would use.
    fn serde_json_like(v: f64) -> f64 {
        f64::from(Epsilon::new(v).unwrap())
    }
}
