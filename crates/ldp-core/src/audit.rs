//! Attack-pair selection for empirical privacy auditing.
//!
//! A distinguishing attack needs two inputs that an attacker tries to tell
//! apart from a single perturbed report. In *local* DP any two tuples over
//! the same schema are neighbors, so the auditor is free to pick the pair
//! adversarially. The strongest generic choice pushes every attribute to
//! opposite extremes of its domain — `-1` vs `+1` for numeric attributes,
//! category `0` vs `k−1` for categorical ones — which maximizes the
//! per-attribute likelihood gap for every mechanism in this crate
//! (the numeric mechanisms' likelihood ratios are monotone in `|t − t'|`,
//! and the frequency oracles' depend only on whether the pair differs).
//!
//! The `ldp-audit` crate consumes this pair, replays the real client
//! encoding path on each side, and turns attacker guessing accuracy into a
//! high-confidence lower bound on the privacy loss actually spent.

use crate::multidim::{AttrSpec, AttrValue};

/// The adversarially-chosen input pair for a distinguishing attack on the
/// given schema: every attribute at opposite domain extremes.
///
/// Returns `(v1, v2)` with `v1 = (-1 | category 0)` per attribute and
/// `v2 = (+1 | category k−1)`.
pub fn worst_case_pair(specs: &[AttrSpec]) -> (Vec<AttrValue>, Vec<AttrValue>) {
    let v1 = specs
        .iter()
        .map(|s| match s {
            AttrSpec::Numeric => AttrValue::Numeric(-1.0),
            AttrSpec::Categorical { .. } => AttrValue::Categorical(0),
        })
        .collect();
    let v2 = specs
        .iter()
        .map(|s| match s {
            AttrSpec::Numeric => AttrValue::Numeric(1.0),
            AttrSpec::Categorical { k } => AttrValue::Categorical(k - 1),
        })
        .collect();
    (v1, v2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extremes_for_mixed_schema() {
        let specs = vec![
            AttrSpec::Numeric,
            AttrSpec::Categorical { k: 16 },
            AttrSpec::Numeric,
        ];
        let (v1, v2) = worst_case_pair(&specs);
        assert_eq!(
            v1,
            vec![
                AttrValue::Numeric(-1.0),
                AttrValue::Categorical(0),
                AttrValue::Numeric(-1.0),
            ]
        );
        assert_eq!(
            v2,
            vec![
                AttrValue::Numeric(1.0),
                AttrValue::Categorical(15),
                AttrValue::Numeric(1.0),
            ]
        );
    }

    #[test]
    fn empty_schema_gives_empty_pair() {
        let (v1, v2) = worst_case_pair(&[]);
        assert!(v1.is_empty() && v2.is_empty());
    }
}
