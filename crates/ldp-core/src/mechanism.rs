//! Core traits implemented by every perturbation primitive.

use crate::budget::Epsilon;
use crate::error::{LdpError, Result};
use rand::RngCore;

/// A one-dimensional ε-LDP mechanism for numeric values in `[-1, 1]`.
///
/// Implementations must be unbiased (`E[perturb(t)] = t`) and must satisfy
/// ε-local differential privacy in the sense of Definition 1 of the paper:
/// for any inputs `t, t'` and output `x`, `pdf(x|t) ≤ e^ε · pdf(x|t')`.
/// Both properties are exercised by the crate's statistical and property
/// tests for every implementation.
///
/// The trait is object-safe (the experiment harness iterates over
/// `Box<dyn NumericMechanism>`), hence the `&mut dyn RngCore` parameter.
pub trait NumericMechanism: Send + Sync {
    /// The privacy budget this mechanism was constructed with.
    fn epsilon(&self) -> Epsilon;

    /// Short stable name used in experiment output ("PM", "HM", "Duchi", …).
    fn name(&self) -> &'static str;

    /// Perturbs a single value `t ∈ [-1, 1]`.
    ///
    /// # Errors
    /// [`LdpError::OutOfDomain`] if `t` is NaN or outside `[-1, 1]`.
    fn perturb(&self, input: f64, rng: &mut dyn RngCore) -> Result<f64>;

    /// Closed-form output variance `Var[t* | t]` for the given input.
    ///
    /// The value is meaningful only for `t ∈ [-1, 1]`.
    fn variance(&self, input: f64) -> f64;

    /// `max_{t ∈ [-1,1]} Var[t* | t]` — the quantity Table I and Figures 1
    /// and 3 of the paper compare across mechanisms.
    fn worst_case_variance(&self) -> f64;

    /// If the output support is bounded, its symmetric bound `b`
    /// (i.e. `|t*| ≤ b`); `None` for mechanisms with unbounded output such as
    /// Laplace, SCDF and Staircase.
    fn output_bound(&self) -> Option<f64>;
}

/// Validates a numeric input against the canonical domain `[-1, 1]`.
#[inline]
pub fn check_unit_interval(t: f64) -> Result<()> {
    if t.is_finite() && (-1.0..=1.0).contains(&t) {
        Ok(())
    } else {
        Err(LdpError::OutOfDomain {
            value: t,
            lo: -1.0,
            hi: 1.0,
        })
    }
}

/// A mechanism for one categorical attribute with domain `{0, …, k-1}`,
/// supporting frequency estimation ("frequency oracle" in the LDP
/// literature; the paper plugs OUE into Algorithm 4 in §IV-C).
pub trait FrequencyOracle: Send + Sync {
    /// Domain size `k ≥ 2`.
    fn k(&self) -> u32;

    /// The privacy budget this oracle was constructed with.
    fn epsilon(&self) -> Epsilon;

    /// Short stable name used in experiment output ("OUE", "GRR", "SUE").
    fn name(&self) -> &'static str;

    /// Perturbs a category `v ∈ {0, …, k-1}`.
    ///
    /// # Errors
    /// [`LdpError::InvalidCategory`] if `v ≥ k`.
    fn perturb(&self, value: u32, rng: &mut dyn RngCore) -> Result<CategoricalReport>;

    /// The *debiased* contribution of `report` to the count estimate of
    /// category `v`: summing this over all reports and dividing by `n` yields
    /// an unbiased estimate of the frequency of `v`.
    fn support(&self, report: &CategoricalReport, v: u32) -> f64;

    /// Per-report variance of [`FrequencyOracle::support`] when the true
    /// frequency of the target category is `f` (used for accuracy analysis
    /// and tested against simulation).
    fn support_variance(&self, f: f64) -> f64;
}

/// The perturbed message a user sends for one categorical attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CategoricalReport {
    /// A single perturbed category (direct encoding, e.g. GRR).
    Value(u32),
    /// A perturbed bit per category (unary encodings: OUE, SUE).
    Bits(BitVec),
}

/// A compact fixed-length bit vector used by unary-encoding oracles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitVec {
    len: u32,
    words: Box<[u64]>,
}

impl BitVec {
    /// An all-zero bit vector of length `len`.
    pub fn zeros(len: u32) -> Self {
        let words = vec![0u64; (len as usize).div_ceil(64)].into_boxed_slice();
        BitVec { len, words }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> u32 {
        self.len
    }

    /// True if the vector has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: u32) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: u32, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let word = &mut self.words[(i / 64) as usize];
        if value {
            *word |= 1 << (i % 64);
        } else {
            *word &= !(1 << (i % 64));
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Iterates over all bits in index order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_unit_interval_accepts_boundary() {
        assert!(check_unit_interval(-1.0).is_ok());
        assert!(check_unit_interval(1.0).is_ok());
        assert!(check_unit_interval(0.0).is_ok());
    }

    #[test]
    fn check_unit_interval_rejects_bad_values() {
        for v in [1.0000001, -1.1, f64::NAN, f64::INFINITY] {
            assert!(check_unit_interval(v).is_err(), "{v}");
        }
    }

    #[test]
    fn bitvec_set_get_roundtrip() {
        let mut b = BitVec::zeros(130);
        assert_eq!(b.len(), 130);
        assert!(!b.is_empty());
        for i in [0u32, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!b.get(i));
            b.set(i, true);
            assert!(b.get(i));
        }
        assert_eq!(b.count_ones(), 8);
        b.set(64, false);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 7);
    }

    #[test]
    fn bitvec_iter_matches_get() {
        let mut b = BitVec::zeros(70);
        b.set(3, true);
        b.set(69, true);
        let collected: Vec<bool> = b.iter().collect();
        assert_eq!(collected.len(), 70);
        for (i, &bit) in collected.iter().enumerate() {
            assert_eq!(bit, b.get(i as u32));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bitvec_get_out_of_range_panics() {
        BitVec::zeros(8).get(8);
    }

    #[test]
    fn bitvec_zero_length() {
        let b = BitVec::zeros(0);
        assert!(b.is_empty());
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b.iter().count(), 0);
    }
}
