//! Core traits implemented by every perturbation primitive.

use crate::budget::Epsilon;
use crate::error::{LdpError, Result};
use rand::RngCore;
use serde::{Deserialize, Serialize};

/// A one-dimensional ε-LDP mechanism for numeric values in `[-1, 1]`.
///
/// Implementations must be unbiased (`E[perturb(t)] = t`) and must satisfy
/// ε-local differential privacy in the sense of Definition 1 of the paper:
/// for any inputs `t, t'` and output `x`, `pdf(x|t) ≤ e^ε · pdf(x|t')`.
/// Both properties are exercised by the crate's statistical and property
/// tests for every implementation.
///
/// The trait is object-safe (the experiment harness iterates over
/// `Box<dyn NumericMechanism>`), hence the `&mut dyn RngCore` parameter.
pub trait NumericMechanism: Send + Sync {
    /// The privacy budget this mechanism was constructed with.
    fn epsilon(&self) -> Epsilon;

    /// Short stable name used in experiment output ("PM", "HM", "Duchi", …).
    fn name(&self) -> &'static str;

    /// Perturbs a single value `t ∈ [-1, 1]`.
    ///
    /// # Errors
    /// [`LdpError::OutOfDomain`] if `t` is NaN or outside `[-1, 1]`.
    fn perturb(&self, input: f64, rng: &mut dyn RngCore) -> Result<f64>;

    /// Closed-form output variance `Var[t* | t]` for the given input.
    ///
    /// The value is meaningful only for `t ∈ [-1, 1]`.
    fn variance(&self, input: f64) -> f64;

    /// `max_{t ∈ [-1,1]} Var[t* | t]` — the quantity Table I and Figures 1
    /// and 3 of the paper compare across mechanisms.
    fn worst_case_variance(&self) -> f64;

    /// If the output support is bounded, its symmetric bound `b`
    /// (i.e. `|t*| ≤ b`); `None` for mechanisms with unbounded output such as
    /// Laplace, SCDF and Staircase.
    fn output_bound(&self) -> Option<f64>;
}

/// Validates a numeric input against the canonical domain `[-1, 1]`.
#[inline]
pub fn check_unit_interval(t: f64) -> Result<()> {
    if t.is_finite() && (-1.0..=1.0).contains(&t) {
        Ok(())
    } else {
        Err(LdpError::OutOfDomain {
            value: t,
            lo: -1.0,
            hi: 1.0,
        })
    }
}

/// The affine debiasing coefficients of a frequency oracle.
///
/// Every oracle in this crate reports, for each category `v`, a Bernoulli
/// "hit bit" `b_v` (the bit of a unary report, or the indicator `x == v` of
/// a direct report) with `Pr[b_v = 1] = p` when `v` is the true value and
/// `q` otherwise. The debiased per-report support is therefore the *affine*
/// function `(b_v − q)/(p − q)` — which is what lets the aggregator
/// accumulate raw hit counts and debias once at estimation time instead of
/// paying an O(k) virtual-call loop per report.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DebiasParams {
    /// Probability that the true category's hit bit is 1.
    pub p: f64,
    /// Probability that any other category's hit bit is 1.
    pub q: f64,
}

impl DebiasParams {
    /// The debiased support value for a raw hit bit.
    #[inline]
    pub fn support_of(&self, hit: bool) -> f64 {
        let b = if hit { 1.0 } else { 0.0 };
        (b - self.q) / (self.p - self.q)
    }

    /// Debiases an aggregate hit count over `reports` reports:
    /// `(count − reports·q)/(p − q)`, the sum of per-report supports.
    #[inline]
    pub fn debias_count(&self, count: u64, reports: usize) -> f64 {
        (count as f64 - reports as f64 * self.q) / (self.p - self.q)
    }
}

/// A mechanism for one categorical attribute with domain `{0, …, k-1}`,
/// supporting frequency estimation ("frequency oracle" in the LDP
/// literature; the paper plugs OUE into Algorithm 4 in §IV-C).
pub trait FrequencyOracle: Send + Sync {
    /// Domain size `k ≥ 2`.
    fn k(&self) -> u32;

    /// The privacy budget this oracle was constructed with.
    fn epsilon(&self) -> Epsilon;

    /// Short stable name used in experiment output ("OUE", "GRR", "SUE").
    fn name(&self) -> &'static str;

    /// Perturbs a category `v ∈ {0, …, k-1}`.
    ///
    /// # Errors
    /// [`LdpError::InvalidCategory`] if `v ≥ k`.
    fn perturb(&self, value: u32, rng: &mut dyn RngCore) -> Result<CategoricalReport>;

    /// Perturbs a category into a caller-owned report, reusing its storage
    /// (the bit vector of a unary report) when possible. This is the
    /// zero-allocation path the streaming pipeline uses; the default
    /// implementation simply replaces `out` with a fresh report.
    ///
    /// # Errors
    /// As [`FrequencyOracle::perturb`].
    fn perturb_into(
        &self,
        value: u32,
        rng: &mut dyn RngCore,
        out: &mut CategoricalReport,
    ) -> Result<()> {
        *out = self.perturb(value, rng)?;
        Ok(())
    }

    /// Reference perturbation path, kept for distribution-equivalence tests
    /// and throughput baselines: unary oracles override this with the naive
    /// bit-by-bit Bernoulli sampler that [`FrequencyOracle::perturb`]'s
    /// sparse sampling must match in distribution. Defaults to `perturb`.
    ///
    /// # Errors
    /// As [`FrequencyOracle::perturb`].
    fn perturb_naive(&self, value: u32, rng: &mut dyn RngCore) -> Result<CategoricalReport> {
        self.perturb(value, rng)
    }

    /// The `(p, q)` pair making the oracle's support affine in the hit bit —
    /// see [`DebiasParams`].
    fn debias_params(&self) -> DebiasParams;

    /// The *debiased* contribution of `report` to the count estimate of
    /// category `v`: summing this over all reports and dividing by `n` yields
    /// an unbiased estimate of the frequency of `v`.
    ///
    /// Provided in terms of [`FrequencyOracle::debias_params`]: unary
    /// reports contribute their bit at `v`, direct reports the indicator
    /// `x == v`.
    fn support(&self, report: &CategoricalReport, v: u32) -> f64 {
        let hit = match report {
            CategoricalReport::Bits(bits) => bits.get(v),
            CategoricalReport::Value(x) => *x == v,
        };
        self.debias_params().support_of(hit)
    }

    /// Per-report variance of [`FrequencyOracle::support`] when the true
    /// frequency of the target category is `f` (used for accuracy analysis
    /// and tested against simulation).
    ///
    /// Provided: `Var[(b−q)/(p−q)]` with `b ~ Bernoulli(f·p + (1−f)·q)`.
    fn support_variance(&self, f: f64) -> f64 {
        let DebiasParams { p, q } = self.debias_params();
        let p_one = f * p + (1.0 - f) * q;
        p_one * (1.0 - p_one) / ((p - q) * (p - q))
    }

    /// Log-likelihood `ln Pr[report | true value = value]` of a report this
    /// oracle produced.
    ///
    /// Provided in terms of [`FrequencyOracle::debias_params`]: a direct
    /// report contributes `ln p` when it equals `value` and `ln q`
    /// otherwise; a unary report is a product of independent per-bit
    /// Bernoullis — `p` at `value`, `q` everywhere else. The independence
    /// model fits the unary encodings (OUE, SUE); GRR overrides this to
    /// reject `Bits` reports, which it never emits and whose bits would not
    /// be independent under direct encoding. The `ldp-audit` attacker
    /// subtracts two of these to form an exact log likelihood ratio between
    /// neighboring inputs.
    ///
    /// # Errors
    /// * [`LdpError::InvalidCategory`] if `value ≥ k`, or if a direct
    ///   report's category is `≥ k`.
    /// * [`LdpError::DimensionMismatch`] if a unary report's length is
    ///   not `k`.
    fn log_likelihood(&self, report: &CategoricalReport, value: u32) -> Result<f64> {
        let k = self.k();
        if value >= k {
            return Err(LdpError::InvalidCategory { value, k });
        }
        let DebiasParams { p, q } = self.debias_params();
        match report {
            CategoricalReport::Value(x) => {
                if *x >= k {
                    return Err(LdpError::InvalidCategory { value: *x, k });
                }
                Ok(if *x == value { p.ln() } else { q.ln() })
            }
            CategoricalReport::Bits(bits) => {
                if bits.len() != k {
                    return Err(LdpError::DimensionMismatch {
                        expected: k as usize,
                        actual: bits.len() as usize,
                    });
                }
                let hit = bits.get(value);
                let other_ones = f64::from(bits.count_ones() - u32::from(hit));
                let other_zeros = f64::from(k - 1) - other_ones;
                let head = if hit { p.ln() } else { (1.0 - p).ln() };
                Ok(head + other_ones * q.ln() + other_zeros * (1.0 - q).ln())
            }
        }
    }
}

/// The perturbed message a user sends for one categorical attribute.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CategoricalReport {
    /// A single perturbed category (direct encoding, e.g. GRR).
    Value(u32),
    /// A perturbed bit per category (unary encodings: OUE, SUE).
    Bits(BitVec),
}

/// A compact fixed-length bit vector used by unary-encoding oracles.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BitVec {
    len: u32,
    words: Box<[u64]>,
}

impl BitVec {
    /// An all-zero bit vector of length `len`.
    pub fn zeros(len: u32) -> Self {
        let words = vec![0u64; (len as usize).div_ceil(64)].into_boxed_slice();
        BitVec { len, words }
    }

    /// Builds a bit vector directly from its backing words (least
    /// significant bit of `words[0]` is bit 0) — the word-level counterpart
    /// of [`BitVec::zeros`] + [`BitVec::set`], used by word-oriented codecs
    /// and benches that produce whole words at a time.
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] when the storage would violate the
    /// type's invariants: a word count other than `⌈len/64⌉`, or a set bit
    /// at or beyond `len` (the word-level walks assume both).
    pub fn from_words(len: u32, words: Vec<u64>) -> Result<Self> {
        let candidate = BitVec {
            len,
            words: words.into_boxed_slice(),
        };
        if candidate.is_well_formed() {
            Ok(candidate)
        } else {
            Err(LdpError::InvalidParameter {
                name: "words",
                message: format!(
                    "{} backing words with bits beyond {} violate the BitVec invariants",
                    candidate.words.len(),
                    len
                ),
            })
        }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> u32 {
        self.len
    }

    /// True if the vector has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: u32) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to `value`.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: u32, value: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let word = &mut self.words[(i / 64) as usize];
        if value {
            *word |= 1 << (i % 64);
        } else {
            *word &= !(1 << (i % 64));
        }
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Clears every bit (word-at-a-time; the length is unchanged).
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
    }

    /// Iterates over all bits in index order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| self.get(i))
    }

    /// Iterates over the indices of set bits in increasing order, touching
    /// each backing word once (O(words + ones), not O(len)). This is the
    /// single canonical set-bit walk — count-based aggregation sits on top
    /// of it, so it must stay branch-light (an explicit word cursor, not an
    /// iterator-combinator chain).
    pub fn iter_ones(&self) -> impl Iterator<Item = u32> + '_ {
        struct IterOnes<'a> {
            words: &'a [u64],
            wi: usize,
            current: u64,
        }
        impl Iterator for IterOnes<'_> {
            type Item = u32;
            #[inline]
            fn next(&mut self) -> Option<u32> {
                while self.current == 0 {
                    self.wi += 1;
                    self.current = *self.words.get(self.wi)?;
                }
                let tz = self.current.trailing_zeros();
                self.current &= self.current - 1;
                Some(self.wi as u32 * 64 + tz)
            }
        }
        IterOnes {
            words: &self.words,
            wi: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// The backing 64-bit words, least-significant bit first. Bits at or
    /// beyond [`BitVec::len`] are always zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// True when the backing storage satisfies the type's invariants:
    /// exactly `⌈len/64⌉` words, with no set bit at or beyond
    /// [`BitVec::len`]. Vectors built by this crate always are; aggregators
    /// must check this on externally deserialized reports before trusting
    /// the word-level walks (`iter_ones`, `count_ones`), which assume it.
    pub fn is_well_formed(&self) -> bool {
        if self.words.len() != (self.len as usize).div_ceil(64) {
            return false;
        }
        let tail = self.len % 64;
        if tail != 0 {
            if let Some(&last) = self.words.last() {
                if last >> tail != 0 {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_unit_interval_accepts_boundary() {
        assert!(check_unit_interval(-1.0).is_ok());
        assert!(check_unit_interval(1.0).is_ok());
        assert!(check_unit_interval(0.0).is_ok());
    }

    #[test]
    fn check_unit_interval_rejects_bad_values() {
        for v in [1.0000001, -1.1, f64::NAN, f64::INFINITY] {
            assert!(check_unit_interval(v).is_err(), "{v}");
        }
    }

    #[test]
    fn bitvec_set_get_roundtrip() {
        let mut b = BitVec::zeros(130);
        assert_eq!(b.len(), 130);
        assert!(!b.is_empty());
        for i in [0u32, 1, 63, 64, 65, 127, 128, 129] {
            assert!(!b.get(i));
            b.set(i, true);
            assert!(b.get(i));
        }
        assert_eq!(b.count_ones(), 8);
        b.set(64, false);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 7);
    }

    #[test]
    fn bitvec_iter_matches_get() {
        let mut b = BitVec::zeros(70);
        b.set(3, true);
        b.set(69, true);
        let collected: Vec<bool> = b.iter().collect();
        assert_eq!(collected.len(), 70);
        for (i, &bit) in collected.iter().enumerate() {
            assert_eq!(bit, b.get(i as u32));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bitvec_get_out_of_range_panics() {
        BitVec::zeros(8).get(8);
    }

    #[test]
    fn bitvec_iter_ones_matches_iter() {
        let mut b = BitVec::zeros(200);
        for i in [0u32, 1, 62, 63, 64, 100, 127, 128, 199] {
            b.set(i, true);
        }
        let ones: Vec<u32> = b.iter_ones().collect();
        assert_eq!(ones, vec![0, 1, 62, 63, 64, 100, 127, 128, 199]);
        let from_iter: Vec<u32> = b
            .iter()
            .enumerate()
            .filter_map(|(i, bit)| bit.then_some(i as u32))
            .collect();
        assert_eq!(ones, from_iter);
        assert_eq!(b.words().len(), 4);
        b.clear();
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b.iter_ones().count(), 0);
        assert_eq!(b.len(), 200);
    }

    #[test]
    fn debias_params_support_and_count_agree() {
        let dp = DebiasParams { p: 0.5, q: 0.2 };
        assert!((dp.support_of(true) - (1.0 - 0.2) / 0.3).abs() < 1e-12);
        assert!((dp.support_of(false) - (0.0 - 0.2) / 0.3).abs() < 1e-12);
        // Count debias = sum of per-report supports: 3 hits out of 10.
        let sum = 3.0 * dp.support_of(true) + 7.0 * dp.support_of(false);
        assert!((dp.debias_count(3, 10) - sum).abs() < 1e-12);
    }

    #[test]
    fn bitvec_well_formedness_detects_violated_invariants() {
        let mut ok = BitVec::zeros(70);
        ok.set(69, true);
        assert!(ok.is_well_formed());
        assert!(BitVec::zeros(0).is_well_formed());
        assert!(BitVec::zeros(64).is_well_formed());
        // Stray bit past `len` in the tail word (what a hostile
        // deserialized report could carry).
        let stray = BitVec {
            len: 5,
            words: vec![u64::MAX].into_boxed_slice(),
        };
        assert!(!stray.is_well_formed());
        // Wrong word count for the length.
        let short = BitVec {
            len: 70,
            words: vec![0].into_boxed_slice(),
        };
        assert!(!short.is_well_formed());
        let long = BitVec {
            len: 3,
            words: vec![0, 0].into_boxed_slice(),
        };
        assert!(!long.is_well_formed());
    }

    #[test]
    fn bitvec_from_words_round_trips_and_validates() {
        let mut reference = BitVec::zeros(70);
        for i in [0u32, 63, 64, 69] {
            reference.set(i, true);
        }
        let rebuilt = BitVec::from_words(70, reference.words().to_vec()).unwrap();
        assert_eq!(rebuilt, reference);
        // Wrong word count and stray tail bits are rejected, not trusted.
        assert!(BitVec::from_words(70, vec![0]).is_err());
        assert!(BitVec::from_words(5, vec![u64::MAX]).is_err());
        assert!(BitVec::from_words(64, vec![u64::MAX]).is_ok());
        assert!(BitVec::from_words(0, vec![]).is_ok());
    }

    #[test]
    fn bitvec_zero_length() {
        let b = BitVec::zeros(0);
        assert!(b.is_empty());
        assert_eq!(b.count_ones(), 0);
        assert_eq!(b.iter().count(), 0);
    }
}
