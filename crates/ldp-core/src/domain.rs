//! Attribute domains and rescaling between user domains and the canonical
//! `[-1, 1]` interval all numeric mechanisms operate on.
//!
//! The paper (§III-B, remark after Algorithm 2) assumes each user knows the
//! public domain `[-r, r]` of her attribute, normalizes to `[-1, 1]`,
//! perturbs, and the aggregator rescales. [`NumericDomain`] generalizes this
//! to an arbitrary interval `[lo, hi]` via an affine map, which keeps
//! unbiasedness: if `E[t*] = t` on `[-1, 1]`, then
//! `E[denormalize(t*)] = denormalize(t)`.

use crate::error::{LdpError, Result};
use serde::{Deserialize, Serialize};

/// A public, bounded numeric attribute domain `[lo, hi]` with `lo < hi`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NumericDomain {
    lo: f64,
    hi: f64,
}

impl NumericDomain {
    /// The canonical mechanism domain `[-1, 1]`.
    pub const UNIT: NumericDomain = NumericDomain { lo: -1.0, hi: 1.0 };

    /// Creates a domain, validating `lo < hi` and finiteness.
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] for non-finite or empty intervals.
    pub fn new(lo: f64, hi: f64) -> Result<Self> {
        if !(lo.is_finite() && hi.is_finite() && lo < hi) {
            return Err(LdpError::InvalidParameter {
                name: "domain",
                message: format!("need finite lo < hi, got [{lo}, {hi}]"),
            });
        }
        Ok(NumericDomain { lo, hi })
    }

    /// Lower bound.
    #[inline]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    #[inline]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Interval width `hi - lo`.
    #[inline]
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Interval midpoint.
    #[inline]
    pub fn mid(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Whether `x` lies in the (closed) domain.
    #[inline]
    pub fn contains(&self, x: f64) -> bool {
        x.is_finite() && x >= self.lo && x <= self.hi
    }

    /// Affinely maps `x ∈ [lo, hi]` to `[-1, 1]`.
    ///
    /// # Errors
    /// [`LdpError::OutOfDomain`] if `x` is outside the domain.
    pub fn normalize(&self, x: f64) -> Result<f64> {
        if !self.contains(x) {
            return Err(LdpError::OutOfDomain {
                value: x,
                lo: self.lo,
                hi: self.hi,
            });
        }
        // Clamp to absorb floating-point rounding at the edges.
        Ok(((2.0 * (x - self.lo) / self.width()) - 1.0).clamp(-1.0, 1.0))
    }

    /// Inverse of [`NumericDomain::normalize`]; accepts any real `y`
    /// (mechanism outputs routinely fall outside `[-1, 1]`).
    #[inline]
    pub fn denormalize(&self, y: f64) -> f64 {
        self.mid() + 0.5 * self.width() * y
    }

    /// Clamps `x` into the domain (used when cleaning raw data, never on
    /// mechanism outputs — clamping outputs would bias the estimates).
    #[inline]
    pub fn clamp(&self, x: f64) -> f64 {
        x.clamp(self.lo, self.hi)
    }

    /// Lowers `x` to one of `g` equal-width grid cells over the domain.
    ///
    /// Cell `i` covers `[lo + i·w/g, lo + (i+1)·w/g)` with the last cell
    /// closed at `hi`. Out-of-domain values clamp to the nearest cell, so
    /// grid lowering never fails on raw survey data.
    ///
    /// # Panics
    /// Panics if `g == 0`.
    #[inline]
    pub fn grid_cell(&self, x: f64, g: usize) -> u32 {
        assert!(g > 0, "grid granularity must be positive");
        let t = (self.clamp(x) - self.lo) / self.width();
        (((t * g as f64).floor() as i64).clamp(0, g as i64 - 1)) as u32
    }

    /// The sub-interval `[lo_i, hi_i]` covered by grid cell `i` out of `g`.
    ///
    /// # Panics
    /// Panics if `g == 0` or `i ≥ g`.
    #[inline]
    pub fn cell_bounds(&self, i: u32, g: usize) -> (f64, f64) {
        assert!(g > 0 && (i as usize) < g, "cell {i} out of range {g}");
        let w = self.width() / g as f64;
        (self.lo + i as f64 * w, self.lo + (i as f64 + 1.0) * w)
    }

    /// Fraction of grid cell `i` (out of `g`) covered by the query interval
    /// `[qlo, qhi]` — the partial-cell weight used by range decomposition.
    /// Returns a value in `[0, 1]`; degenerate queries (`qhi ≤ qlo`) get 0.
    ///
    /// # Panics
    /// Panics if `g == 0` or `i ≥ g`.
    #[inline]
    pub fn cell_overlap(&self, i: u32, g: usize, qlo: f64, qhi: f64) -> f64 {
        let (clo, chi) = self.cell_bounds(i, g);
        let lo = qlo.max(clo);
        let hi = qhi.min(chi);
        ((hi - lo) / (chi - clo)).clamp(0.0, 1.0)
    }
}

impl std::fmt::Display for NumericDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_domains() {
        assert!(NumericDomain::new(1.0, 1.0).is_err());
        assert!(NumericDomain::new(2.0, 1.0).is_err());
        assert!(NumericDomain::new(f64::NAN, 1.0).is_err());
        assert!(NumericDomain::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn normalize_maps_endpoints_and_midpoint() {
        let d = NumericDomain::new(10.0, 30.0).unwrap();
        assert_eq!(d.normalize(10.0).unwrap(), -1.0);
        assert_eq!(d.normalize(30.0).unwrap(), 1.0);
        assert_eq!(d.normalize(20.0).unwrap(), 0.0);
    }

    #[test]
    fn normalize_rejects_out_of_domain() {
        let d = NumericDomain::new(0.0, 1.0).unwrap();
        assert!(d.normalize(-0.1).is_err());
        assert!(d.normalize(1.1).is_err());
        assert!(d.normalize(f64::NAN).is_err());
    }

    #[test]
    fn denormalize_inverts_normalize() {
        let d = NumericDomain::new(-5.0, 3.0).unwrap();
        for x in [-5.0, -1.25, 0.0, 2.9999, 3.0] {
            let y = d.normalize(x).unwrap();
            assert!((d.denormalize(y) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn denormalize_accepts_out_of_unit_values() {
        // PM outputs reach ±C > 1; denormalize must extrapolate linearly.
        let d = NumericDomain::new(0.0, 10.0).unwrap();
        assert_eq!(d.denormalize(3.0), 20.0);
        assert_eq!(d.denormalize(-3.0), -10.0);
    }

    #[test]
    fn unit_domain_is_identity() {
        let d = NumericDomain::UNIT;
        for x in [-1.0, -0.3, 0.7, 1.0] {
            assert!((d.normalize(x).unwrap() - x).abs() < 1e-15);
            assert!((d.denormalize(x) - x).abs() < 1e-15);
        }
    }

    #[test]
    fn grid_cell_partitions_the_domain() {
        let d = NumericDomain::new(15.0, 90.0).unwrap();
        assert_eq!(d.grid_cell(15.0, 5), 0);
        assert_eq!(d.grid_cell(89.999, 5), 4);
        // hi lands in the last cell (closed at the top), not a phantom cell g.
        assert_eq!(d.grid_cell(90.0, 5), 4);
        // Out-of-domain values clamp instead of erroring.
        assert_eq!(d.grid_cell(-3.0, 5), 0);
        assert_eq!(d.grid_cell(1e9, 5), 4);
        // Interior boundaries are half-open: 30.0 starts cell 1 of 5.
        assert_eq!(d.grid_cell(30.0, 5), 1);
        assert_eq!(d.grid_cell(29.999_999, 5), 0);
    }

    #[test]
    fn grid_cell_coarsening_is_consistent() {
        // When g1 = c·g2, the coarse cell is the fine cell divided by c —
        // the alignment the 2-D↔1-D marginal repair relies on.
        let d = NumericDomain::new(0.0, 1.0).unwrap();
        let (g1, g2) = (12, 4);
        let c = g1 / g2;
        for k in 0..1000 {
            let x = k as f64 / 1000.0;
            assert_eq!(d.grid_cell(x, g2), d.grid_cell(x, g1) / c as u32, "x = {x}");
        }
    }

    #[test]
    fn cell_bounds_tile_the_domain() {
        let d = NumericDomain::new(-5.0, 3.0).unwrap();
        let g = 7;
        let (first_lo, _) = d.cell_bounds(0, g);
        let (_, last_hi) = d.cell_bounds(g as u32 - 1, g);
        assert!((first_lo - d.lo()).abs() < 1e-12);
        assert!((last_hi - d.hi()).abs() < 1e-12);
        for i in 1..g as u32 {
            let (_, prev_hi) = d.cell_bounds(i - 1, g);
            let (lo, _) = d.cell_bounds(i, g);
            assert!((prev_hi - lo).abs() < 1e-12);
        }
    }

    #[test]
    fn cell_overlap_weights_partial_cells() {
        let d = NumericDomain::new(0.0, 10.0).unwrap();
        // Cell 1 of 5 covers [2, 4]; query [3, 9] covers half of it.
        assert!((d.cell_overlap(1, 5, 3.0, 9.0) - 0.5).abs() < 1e-12);
        // Fully covered and fully disjoint cells.
        assert_eq!(d.cell_overlap(2, 5, 3.0, 9.0), 1.0);
        assert_eq!(d.cell_overlap(0, 5, 3.0, 9.0), 0.0);
        // Degenerate query.
        assert_eq!(d.cell_overlap(2, 5, 6.0, 5.0), 0.0);
    }

    #[test]
    fn clamp_is_idempotent() {
        let d = NumericDomain::new(-1.0, 1.0).unwrap();
        assert_eq!(d.clamp(5.0), 1.0);
        assert_eq!(d.clamp(-5.0), -1.0);
        assert_eq!(d.clamp(0.5), 0.5);
        assert_eq!(d.clamp(d.clamp(7.0)), 1.0);
    }
}
