//! Attribute domains and rescaling between user domains and the canonical
//! `[-1, 1]` interval all numeric mechanisms operate on.
//!
//! The paper (§III-B, remark after Algorithm 2) assumes each user knows the
//! public domain `[-r, r]` of her attribute, normalizes to `[-1, 1]`,
//! perturbs, and the aggregator rescales. [`NumericDomain`] generalizes this
//! to an arbitrary interval `[lo, hi]` via an affine map, which keeps
//! unbiasedness: if `E[t*] = t` on `[-1, 1]`, then
//! `E[denormalize(t*)] = denormalize(t)`.

use crate::error::{LdpError, Result};
use serde::{Deserialize, Serialize};

/// A public, bounded numeric attribute domain `[lo, hi]` with `lo < hi`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NumericDomain {
    lo: f64,
    hi: f64,
}

impl NumericDomain {
    /// The canonical mechanism domain `[-1, 1]`.
    pub const UNIT: NumericDomain = NumericDomain { lo: -1.0, hi: 1.0 };

    /// Creates a domain, validating `lo < hi` and finiteness.
    ///
    /// # Errors
    /// [`LdpError::InvalidParameter`] for non-finite or empty intervals.
    pub fn new(lo: f64, hi: f64) -> Result<Self> {
        if !(lo.is_finite() && hi.is_finite() && lo < hi) {
            return Err(LdpError::InvalidParameter {
                name: "domain",
                message: format!("need finite lo < hi, got [{lo}, {hi}]"),
            });
        }
        Ok(NumericDomain { lo, hi })
    }

    /// Lower bound.
    #[inline]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound.
    #[inline]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Interval width `hi - lo`.
    #[inline]
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }

    /// Interval midpoint.
    #[inline]
    pub fn mid(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }

    /// Whether `x` lies in the (closed) domain.
    #[inline]
    pub fn contains(&self, x: f64) -> bool {
        x.is_finite() && x >= self.lo && x <= self.hi
    }

    /// Affinely maps `x ∈ [lo, hi]` to `[-1, 1]`.
    ///
    /// # Errors
    /// [`LdpError::OutOfDomain`] if `x` is outside the domain.
    pub fn normalize(&self, x: f64) -> Result<f64> {
        if !self.contains(x) {
            return Err(LdpError::OutOfDomain {
                value: x,
                lo: self.lo,
                hi: self.hi,
            });
        }
        // Clamp to absorb floating-point rounding at the edges.
        Ok(((2.0 * (x - self.lo) / self.width()) - 1.0).clamp(-1.0, 1.0))
    }

    /// Inverse of [`NumericDomain::normalize`]; accepts any real `y`
    /// (mechanism outputs routinely fall outside `[-1, 1]`).
    #[inline]
    pub fn denormalize(&self, y: f64) -> f64 {
        self.mid() + 0.5 * self.width() * y
    }

    /// Clamps `x` into the domain (used when cleaning raw data, never on
    /// mechanism outputs — clamping outputs would bias the estimates).
    #[inline]
    pub fn clamp(&self, x: f64) -> f64 {
        x.clamp(self.lo, self.hi)
    }
}

impl std::fmt::Display for NumericDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_degenerate_domains() {
        assert!(NumericDomain::new(1.0, 1.0).is_err());
        assert!(NumericDomain::new(2.0, 1.0).is_err());
        assert!(NumericDomain::new(f64::NAN, 1.0).is_err());
        assert!(NumericDomain::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn normalize_maps_endpoints_and_midpoint() {
        let d = NumericDomain::new(10.0, 30.0).unwrap();
        assert_eq!(d.normalize(10.0).unwrap(), -1.0);
        assert_eq!(d.normalize(30.0).unwrap(), 1.0);
        assert_eq!(d.normalize(20.0).unwrap(), 0.0);
    }

    #[test]
    fn normalize_rejects_out_of_domain() {
        let d = NumericDomain::new(0.0, 1.0).unwrap();
        assert!(d.normalize(-0.1).is_err());
        assert!(d.normalize(1.1).is_err());
        assert!(d.normalize(f64::NAN).is_err());
    }

    #[test]
    fn denormalize_inverts_normalize() {
        let d = NumericDomain::new(-5.0, 3.0).unwrap();
        for x in [-5.0, -1.25, 0.0, 2.9999, 3.0] {
            let y = d.normalize(x).unwrap();
            assert!((d.denormalize(y) - x).abs() < 1e-12);
        }
    }

    #[test]
    fn denormalize_accepts_out_of_unit_values() {
        // PM outputs reach ±C > 1; denormalize must extrapolate linearly.
        let d = NumericDomain::new(0.0, 10.0).unwrap();
        assert_eq!(d.denormalize(3.0), 20.0);
        assert_eq!(d.denormalize(-3.0), -10.0);
    }

    #[test]
    fn unit_domain_is_identity() {
        let d = NumericDomain::UNIT;
        for x in [-1.0, -0.3, 0.7, 1.0] {
            assert!((d.normalize(x).unwrap() - x).abs() < 1e-15);
            assert!((d.denormalize(x) - x).abs() < 1e-15);
        }
    }

    #[test]
    fn clamp_is_idempotent() {
        let d = NumericDomain::new(-1.0, 1.0).unwrap();
        assert_eq!(d.clamp(5.0), 1.0);
        assert_eq!(d.clamp(-5.0), -1.0);
        assert_eq!(d.clamp(0.5), 0.5);
        assert_eq!(d.clamp(d.clamp(7.0)), 1.0);
    }
}
