//! Error types shared by every mechanism in the crate.

use std::fmt;

/// The I/O condition behind a transport-layer [`LdpError`].
///
/// `std::io::Error` is neither `Clone` nor `PartialEq`, which every
/// consumer of [`LdpError`] relies on, so the frame layer captures the
/// parts that matter — the [`std::io::ErrorKind`] and the rendered message
/// — into this owned, comparable cause. It implements
/// [`std::error::Error`], and the transport variants expose it through
/// [`std::error::Error::source`], so error-reporting crates walk the chain
/// exactly as they would with the original `io::Error`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IoFault {
    /// Kind of the underlying `std::io::Error`.
    pub kind: std::io::ErrorKind,
    /// The underlying error rendered to text.
    pub message: String,
}

impl IoFault {
    /// Captures the comparable parts of an `std::io::Error`.
    pub fn from_io(e: &std::io::Error) -> Self {
        IoFault {
            kind: e.kind(),
            message: e.to_string(),
        }
    }
}

impl fmt::Display for IoFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}: {}", self.kind, self.message)
    }
}

impl std::error::Error for IoFault {}

/// Errors returned by LDP mechanisms and their constructors.
///
/// All constructors validate their parameters eagerly so that perturbation
/// paths (which run once per user, potentially millions of times) only need
/// cheap domain checks.
#[derive(Debug, Clone, PartialEq)]
pub enum LdpError {
    /// The privacy budget must be a finite, strictly positive number.
    InvalidEpsilon {
        /// The rejected value.
        value: f64,
    },
    /// A numeric input fell outside the normalized domain `[lo, hi]`.
    OutOfDomain {
        /// The rejected value (may be NaN).
        value: f64,
        /// Lower end of the accepted domain.
        lo: f64,
        /// Upper end of the accepted domain.
        hi: f64,
    },
    /// A categorical input was not in `{0, 1, …, k-1}`.
    InvalidCategory {
        /// The rejected category index.
        value: u32,
        /// Domain size of the attribute.
        k: u32,
    },
    /// A tuple had the wrong number of attributes.
    DimensionMismatch {
        /// Dimensionality the mechanism was constructed for.
        expected: usize,
        /// Dimensionality of the offending input.
        actual: usize,
    },
    /// A structural parameter (dimension, domain size, sample size, …) was
    /// rejected by a constructor.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Human-readable explanation.
        message: String,
    },
    /// Two aggregation states (or an oracle and an aggregation state)
    /// disagree on the affine debiasing pair `(p, q)` — e.g. reports
    /// produced at different ε fed into one accumulator, or a merge of
    /// accumulators from different sessions. Combining them would silently
    /// bias every estimate, so it is rejected with both pairs attached.
    DebiasMismatch {
        /// The `(p, q)` pair already absorbed.
        expected: crate::mechanism::DebiasParams,
        /// The offending `(p, q)` pair.
        actual: crate::mechanism::DebiasParams,
    },
    /// An aggregation was attempted over zero reports.
    EmptyInput(&'static str),
    /// A wire frame (or the message inside it) could not be decoded: the
    /// stream was truncated mid-frame, the declared payload length exceeded
    /// the transport cap, the frame checksum disagreed with the payload, or
    /// the payload failed to parse as the message its kind byte promised.
    /// The message pinpoints which; aggregate state is never touched by a
    /// frame that raises this.
    MalformedFrame {
        /// Human-readable explanation of the framing violation.
        message: String,
    },
    /// The privacy-budget ledger rejected a second report from the same
    /// user within one epoch. Admitting it would double-spend the user's
    /// per-epoch budget, so the report is dropped and counted instead.
    DuplicateReport {
        /// Keyed hash of the offending user id (the raw id is not kept).
        user: u64,
        /// Epoch in which the duplicate arrived.
        epoch: u64,
    },
    /// A transport operation did not complete in time
    /// (`io::ErrorKind::TimedOut` / `WouldBlock` at the frame layer).
    /// Retryable: nothing about the stream's framing is known to be lost,
    /// but the caller cannot tell whether the far side acted, so any retry
    /// must be idempotent (the budget ledger makes report resubmission so).
    Timeout {
        /// The frame operation that timed out (`"read"` / `"write"` /
        /// `"connect"`).
        op: &'static str,
        /// The captured I/O condition (also the
        /// [`source`](std::error::Error::source)).
        cause: IoFault,
    },
    /// A bounded transport queue was full, so the message was shed before
    /// touching any service state. Retryable after backoff — shedding is
    /// how the server protects itself, not a verdict on the message.
    Overloaded {
        /// Capacity of the queue that shed the message; `0` when the far
        /// end reported overload without disclosing its capacity.
        capacity: usize,
    },
    /// The peer went away mid-stream (connection reset/aborted, broken
    /// pipe, or EOF where bytes were owed). Unacknowledged messages are in
    /// an unknown state; reconnect and resend them idempotently.
    ConnectionLost {
        /// The frame operation that observed the loss.
        op: &'static str,
        /// The captured I/O condition (also the
        /// [`source`](std::error::Error::source)).
        cause: IoFault,
    },
    /// A write-ahead-log record *before the tail* failed its integrity
    /// check: records up to `offset` replayed cleanly, the record starting
    /// at `offset` is provably corrupt, and durable bytes follow it — so
    /// this is disk corruption or tampering, not a torn final write.
    /// Recovery refuses to guess past it (mirroring how a corrupt stream
    /// frame poisons only its own payload but a corrupt *length* field
    /// desyncs the reader). A corrupt or truncated record at the very end
    /// of the log is NOT this error: that is the expected signature of a
    /// crash mid-append, and recovery truncates it away silently.
    WalCorrupt {
        /// Byte offset (from the start of the log file) of the corrupt
        /// record's frame header.
        offset: u64,
        /// Human-readable description of the integrity violation.
        message: String,
    },
}

impl fmt::Display for LdpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LdpError::InvalidEpsilon { value } => {
                write!(f, "privacy budget must be finite and > 0, got {value}")
            }
            LdpError::OutOfDomain { value, lo, hi } => {
                write!(f, "input {value} outside the domain [{lo}, {hi}]")
            }
            LdpError::InvalidCategory { value, k } => {
                write!(
                    f,
                    "category {value} outside the domain {{0, …, {}}}",
                    k.saturating_sub(1)
                )
            }
            LdpError::DimensionMismatch { expected, actual } => {
                write!(
                    f,
                    "expected a {expected}-dimensional tuple, got {actual} attributes"
                )
            }
            LdpError::InvalidParameter { name, message } => {
                write!(f, "invalid parameter `{name}`: {message}")
            }
            LdpError::DebiasMismatch { expected, actual } => {
                write!(
                    f,
                    "cannot combine aggregates debiased with (p={}, q={}) and (p={}, q={})",
                    expected.p, expected.q, actual.p, actual.q
                )
            }
            LdpError::EmptyInput(what) => write!(f, "cannot aggregate zero {what}"),
            LdpError::MalformedFrame { message } => {
                write!(f, "malformed wire frame: {message}")
            }
            LdpError::DuplicateReport { user, epoch } => {
                write!(
                    f,
                    "duplicate report from user {user:#018x} in epoch {epoch}: \
                     per-epoch privacy budget already spent"
                )
            }
            LdpError::Timeout { op, cause } => {
                write!(f, "transport {op} timed out ({cause})")
            }
            LdpError::Overloaded { capacity } => {
                if *capacity > 0 {
                    write!(
                        f,
                        "transport overloaded: bounded queue at capacity {capacity}; \
                         retry after backoff"
                    )
                } else {
                    write!(f, "transport overloaded; retry after backoff")
                }
            }
            LdpError::ConnectionLost { op, cause } => {
                write!(f, "connection lost during {op} ({cause})")
            }
            LdpError::WalCorrupt { offset, message } => {
                write!(
                    f,
                    "write-ahead log corrupt at byte offset {offset}: {message}"
                )
            }
        }
    }
}

impl std::error::Error for LdpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LdpError::Timeout { cause, .. } | LdpError::ConnectionLost { cause, .. } => Some(cause),
            _ => None,
        }
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, LdpError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = LdpError::InvalidEpsilon { value: -1.0 };
        assert!(e.to_string().contains("-1"));

        let e = LdpError::OutOfDomain {
            value: 2.0,
            lo: -1.0,
            hi: 1.0,
        };
        assert!(e.to_string().contains("[-1, 1]"));

        let e = LdpError::InvalidCategory { value: 7, k: 5 };
        assert!(e.to_string().contains('7'));
        assert!(e.to_string().contains('4'));

        let e = LdpError::DimensionMismatch {
            expected: 3,
            actual: 2,
        };
        assert!(e.to_string().contains('3') && e.to_string().contains('2'));

        let e = LdpError::InvalidParameter {
            name: "d",
            message: "must be positive".into(),
        };
        assert!(e.to_string().contains("`d`"));

        let e = LdpError::EmptyInput("reports");
        assert!(e.to_string().contains("reports"));

        let e = LdpError::DebiasMismatch {
            expected: crate::mechanism::DebiasParams { p: 0.5, q: 0.25 },
            actual: crate::mechanism::DebiasParams { p: 0.5, q: 0.125 },
        };
        let msg = e.to_string();
        assert!(msg.contains("0.25") && msg.contains("0.125"), "{msg}");

        let e = LdpError::MalformedFrame {
            message: "checksum mismatch".into(),
        };
        assert!(e.to_string().contains("checksum mismatch"));

        let e = LdpError::DuplicateReport {
            user: 0xDEAD_BEEF,
            epoch: 3,
        };
        let msg = e.to_string();
        assert!(
            msg.contains("0x00000000deadbeef") && msg.contains("epoch 3"),
            "{msg}"
        );

        let e = LdpError::WalCorrupt {
            offset: 1337,
            message: "checksum mismatch".into(),
        };
        let msg = e.to_string();
        assert!(
            msg.contains("1337") && msg.contains("checksum mismatch"),
            "{msg}"
        );
        assert!(std::error::Error::source(&e).is_none());
    }

    #[test]
    fn transport_variants_display_and_source() {
        let cause = IoFault {
            kind: std::io::ErrorKind::TimedOut,
            message: "deadline elapsed".into(),
        };
        let e = LdpError::Timeout {
            op: "read",
            cause: cause.clone(),
        };
        assert!(e.to_string().contains("read"), "{e}");
        assert!(e.to_string().contains("deadline elapsed"), "{e}");
        let src = std::error::Error::source(&e).expect("io-backed variant has a source");
        assert_eq!(src.to_string(), cause.to_string());

        let e = LdpError::ConnectionLost {
            op: "write",
            cause: IoFault {
                kind: std::io::ErrorKind::BrokenPipe,
                message: "peer closed".into(),
            },
        };
        assert!(e.to_string().contains("write"), "{e}");
        assert!(std::error::Error::source(&e).is_some());

        let e = LdpError::Overloaded { capacity: 128 };
        assert!(e.to_string().contains("128"), "{e}");
        assert!(std::error::Error::source(&e).is_none());
        let e = LdpError::Overloaded { capacity: 0 };
        assert!(e.to_string().contains("retry after backoff"), "{e}");

        // Non-transport variants still have no source.
        assert!(std::error::Error::source(&LdpError::EmptyInput("x")).is_none());
    }

    #[test]
    fn io_fault_captures_kind_and_message() {
        let io = std::io::Error::new(std::io::ErrorKind::ConnectionReset, "mid-frame reset");
        let fault = IoFault::from_io(&io);
        assert_eq!(fault.kind, std::io::ErrorKind::ConnectionReset);
        assert!(fault.message.contains("mid-frame reset"));
        // Comparable + cloneable, unlike std::io::Error itself.
        assert_eq!(fault.clone(), fault);
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LdpError>();
    }

    #[test]
    fn invalid_category_with_zero_k_does_not_underflow() {
        let e = LdpError::InvalidCategory { value: 0, k: 0 };
        // Must not panic; the message uses saturating_sub.
        assert!(e.to_string().contains('0'));
    }
}
