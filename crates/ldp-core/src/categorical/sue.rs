//! Symmetric Unary Encoding (SUE) — the "basic RAPPOR" configuration.

use crate::budget::Epsilon;
use crate::categorical::{check_category, check_domain_size, UnaryEncoder};
use crate::error::Result;
use crate::mechanism::{BitVec, CategoricalReport, DebiasParams, FrequencyOracle};
use rand::RngCore;

/// SUE perturbs the one-hot encoding with *symmetric* flip probabilities:
/// every bit is reported truthfully with probability `e^{ε/2}/(e^{ε/2}+1)`,
/// i.e. `p = e^{ε/2}/(e^{ε/2}+1)` for the true bit being 1 and
/// `q = 1/(e^{ε/2}+1)` for any other bit being 1, with `p + q = 1`.
///
/// SUE splits the budget evenly between "the true bit is 1" and "a false bit
/// is 0" events; OUE's asymmetric choice strictly improves on it, which our
/// `ablation_frequency_oracles` bench demonstrates empirically.
#[derive(Debug, Clone)]
pub struct Sue {
    epsilon: Epsilon,
    k: u32,
    p: f64,
    q: f64,
    /// Shared sparse/dense unary sampler (owns the precomputed flip-count
    /// CDF).
    enc: UnaryEncoder,
}

impl Sue {
    /// Creates the oracle for domain size `k ≥ 2` and budget `ε`.
    ///
    /// # Errors
    /// [`crate::LdpError::InvalidParameter`] if `k < 2`.
    pub fn new(epsilon: Epsilon, k: u32) -> Result<Self> {
        check_domain_size(k)?;
        let eh = (epsilon.value() / 2.0).exp();
        let p = eh / (eh + 1.0);
        let q = 1.0 / (eh + 1.0);
        Ok(Sue {
            epsilon,
            k,
            p,
            q,
            enc: UnaryEncoder::new(k, p, q),
        })
    }

    /// Probability that the true bit is reported 1.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Probability that a non-true bit is reported 1.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Generic form of [`FrequencyOracle::perturb_into`]; see
    /// [`crate::categorical::Oue::fill_into`] — SUE only differs in
    /// `(p, q)`.
    ///
    /// # Errors
    /// As [`FrequencyOracle::perturb`].
    #[inline]
    pub fn fill_into<R: crate::rng::DrawSource + ?Sized>(
        &self,
        value: u32,
        rng: &mut R,
        out: &mut CategoricalReport,
    ) -> Result<()> {
        check_category(value, self.k)?;
        self.enc.fill_report(self.k, value, rng, out);
        Ok(())
    }

    /// [`Sue::fill_into`] with the per-set-bit observer; see
    /// [`crate::categorical::Oue::fill_into_noting`].
    ///
    /// # Errors
    /// As [`FrequencyOracle::perturb`].
    #[inline]
    pub fn fill_into_noting<R: crate::rng::DrawSource + ?Sized, F: FnMut(u32)>(
        &self,
        value: u32,
        rng: &mut R,
        out: &mut CategoricalReport,
        note: F,
    ) -> Result<()> {
        check_category(value, self.k)?;
        self.enc.fill_report_noting(self.k, value, rng, out, note);
        Ok(())
    }
}

impl FrequencyOracle for Sue {
    fn k(&self) -> u32 {
        self.k
    }

    fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    fn name(&self) -> &'static str {
        "SUE"
    }

    fn perturb(&self, value: u32, rng: &mut dyn RngCore) -> Result<CategoricalReport> {
        let mut out = CategoricalReport::Bits(BitVec::zeros(self.k));
        self.perturb_into(value, rng, &mut out)?;
        Ok(out)
    }

    /// Zero-allocation sparse path; see [`crate::categorical::Oue`]'s
    /// `perturb_into` — SUE only differs in `(p, q)`.
    fn perturb_into(
        &self,
        value: u32,
        rng: &mut dyn RngCore,
        out: &mut CategoricalReport,
    ) -> Result<()> {
        self.fill_into(value, rng, out)
    }

    /// The naive per-bit reference sampler.
    fn perturb_naive(&self, value: u32, rng: &mut dyn RngCore) -> Result<CategoricalReport> {
        check_category(value, self.k)?;
        let mut bits = BitVec::zeros(self.k);
        self.enc.fill_dense(&mut bits, value, rng);
        Ok(CategoricalReport::Bits(bits))
    }

    fn debias_params(&self) -> DebiasParams {
        DebiasParams {
            p: self.p,
            q: self.q,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    fn oracle(eps: f64, k: u32) -> Sue {
        Sue::new(Epsilon::new(eps).unwrap(), k).unwrap()
    }

    #[test]
    fn p_plus_q_is_one() {
        let o = oracle(1.0, 5);
        assert!((o.p() + o.q() - 1.0).abs() < 1e-12);
        assert!((o.p() / o.q() - 0.5f64.exp()).abs() < 1e-12);
    }

    #[test]
    fn support_is_unbiased() {
        let o = oracle(1.0, 4);
        let mut rng = seeded_rng(100);
        let n = 200_000;
        let mut sum_true = 0.0;
        let mut sum_other = 0.0;
        for _ in 0..n {
            let r = o.perturb(0, &mut rng).unwrap();
            sum_true += o.support(&r, 0);
            sum_other += o.support(&r, 3);
        }
        assert!((sum_true / n as f64 - 1.0).abs() < 0.05);
        assert!((sum_other / n as f64).abs() < 0.05);
    }

    #[test]
    fn oue_variance_never_worse_than_sue() {
        // Wang et al.'s analysis at f → 0: OUE's 4e^ε/(e^ε−1)² vs SUE's
        // e^{ε/2}/(e^{ε/2}−1)². Verify via the support_variance interface.
        use crate::categorical::Oue;
        for eps in [0.5, 1.0, 2.0, 4.0] {
            let e = Epsilon::new(eps).unwrap();
            let sue = Sue::new(e, 10).unwrap();
            let oue = Oue::new(e, 10).unwrap();
            assert!(
                oue.support_variance(0.0) <= sue.support_variance(0.0) + 1e-12,
                "eps={eps}: OUE {} vs SUE {}",
                oue.support_variance(0.0),
                sue.support_variance(0.0)
            );
        }
    }

    #[test]
    fn full_report_ldp_ratio_bounded() {
        // Changing the input flips the roles of two bits; worst-case ratio is
        // (p/q)·((1-q)/(1-p)) = (p/q)² since p+q=1 ⇒ exactly e^ε.
        for eps in [0.5, 2.0] {
            let o = oracle(eps, 4);
            let ratio = (o.p() / o.q()) * ((1.0 - o.q()) / (1.0 - o.p()));
            assert!((ratio - eps.exp()).abs() < 1e-9, "eps={eps}: {ratio}");
        }
    }
}
