//! Generalized randomized response (k-RR / direct encoding).

use crate::budget::Epsilon;
use crate::categorical::{check_category, check_domain_size};
use crate::error::Result;
use crate::math::ConstMod;
use crate::mechanism::{CategoricalReport, DebiasParams, FrequencyOracle};
use crate::rng::{bernoulli, bernoulli_from_threshold, bernoulli_threshold};
use rand::{Rng, RngCore};

/// k-ary randomized response: report the true category with probability
/// `p = e^ε/(e^ε + k − 1)`, otherwise one of the `k−1` other categories
/// uniformly (each with probability `q = 1/(e^ε + k − 1)`).
///
/// The `p/q = e^ε` ratio gives ε-LDP directly. GRR's estimator variance
/// grows linearly in `k`, so it loses to OUE once `k > 3e^ε + 2`; it is
/// included as the classic baseline and for small domains (e.g. binary
/// attributes) where it is optimal.
#[derive(Debug, Clone)]
pub struct Grr {
    epsilon: Epsilon,
    k: u32,
    p: f64,
    q: f64,
    /// `⌈p·2⁵³⌉` — decides the truth coin from one raw word, exactly like
    /// the f64 compare ([`bernoulli_threshold`]).
    p_threshold: u64,
    /// Precomputed `% (k−1)` for the lie draw — same consumed word, same
    /// remainder as the hardware division, ~5× cheaper
    /// ([`ConstMod`]).
    lie_mod: ConstMod,
}

impl Grr {
    /// Creates the oracle for domain size `k ≥ 2` and budget `ε`.
    ///
    /// # Errors
    /// [`crate::LdpError::InvalidParameter`] if `k < 2`.
    pub fn new(epsilon: Epsilon, k: u32) -> Result<Self> {
        check_domain_size(k)?;
        let e = epsilon.exp();
        let denom = e + k as f64 - 1.0;
        // p ∈ (0, 1) strictly: e > 0 and k ≥ 2, so the threshold form is
        // always valid.
        let p = e / denom;
        Ok(Grr {
            epsilon,
            k,
            p,
            q: 1.0 / denom,
            p_threshold: bernoulli_threshold(p),
            lie_mod: ConstMod::new(u64::from(k - 1)),
        })
    }

    /// Probability of reporting the true category.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Probability of reporting any *specific* other category.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// The direct-report fast path: perturbs `value` and returns the
    /// reported category *ordinal* without materializing a
    /// [`CategoricalReport`] at all. This is the kernel the fused
    /// perturb-and-count engines run for GRR — one Bernoulli coin, then
    /// (only on a lie) one range draw, then a bare counter increment on the
    /// aggregator side.
    ///
    /// Draw-for-draw **and value-for-value** identical to
    /// [`FrequencyOracle::perturb`]: it consumes the same raw words and
    /// reports the same category, but through the precomputed forms — the
    /// baked-in integer coin threshold instead of a float compare, and the
    /// [`ConstMod`] magic-multiply remainder instead of a hardware 64-bit
    /// division for the uniform lie. Both precomputations are exact (not
    /// approximations), so swapping engines can never move an estimate;
    /// [`Grr::fill_into`] keeps the plain-arithmetic form as the reference
    /// this kernel is pinned against.
    ///
    /// # Errors
    /// As [`FrequencyOracle::perturb`].
    #[inline]
    pub fn sample<R: RngCore + ?Sized>(&self, value: u32, rng: &mut R) -> Result<u32> {
        check_category(value, self.k)?;
        Ok(if bernoulli_from_threshold(rng, self.p_threshold) {
            value
        } else {
            // Same word, same remainder as `rng.random_range(0..k-1)`.
            let r = self.lie_mod.rem(rng.next_u64()) as u32;
            if r >= value {
                r + 1
            } else {
                r
            }
        })
    }

    /// Generic form of [`FrequencyOracle::perturb_into`], monomorphized over
    /// the concrete rng. Draw-for-draw identical to
    /// [`FrequencyOracle::perturb`] (one Bernoulli coin, then — only on a
    /// lie — one range draw), so the trait and generic paths consume the
    /// same stream.
    ///
    /// Deliberately kept in the plain-arithmetic form (f64 coin compare,
    /// hardware-division range draw): it is the distribution reference the
    /// precomputed [`Grr::sample`] kernel is pinned against, and the engine
    /// the throughput bench's pre-wordhist arms keep measuring.
    ///
    /// # Errors
    /// As [`FrequencyOracle::perturb`].
    #[inline]
    pub fn fill_into<R: RngCore + ?Sized>(
        &self,
        value: u32,
        rng: &mut R,
        out: &mut CategoricalReport,
    ) -> Result<()> {
        check_category(value, self.k)?;
        *out = CategoricalReport::Value(if bernoulli(rng, self.p) {
            value
        } else {
            let r = rng.random_range(0..self.k - 1);
            if r >= value {
                r + 1
            } else {
                r
            }
        });
        Ok(())
    }

    /// [`Grr::fill_into`] with the per-hit observer of the fused
    /// perturb-and-count engine: a direct report's single "hit" is the
    /// reported category itself.
    ///
    /// # Errors
    /// As [`FrequencyOracle::perturb`].
    #[inline]
    pub fn fill_into_noting<R: RngCore + ?Sized, F: FnMut(u32)>(
        &self,
        value: u32,
        rng: &mut R,
        out: &mut CategoricalReport,
        mut note: F,
    ) -> Result<()> {
        self.fill_into(value, rng, out)?;
        let CategoricalReport::Value(x) = out else {
            unreachable!("GRR produces direct reports");
        };
        note(*x);
        Ok(())
    }
}

impl FrequencyOracle for Grr {
    fn k(&self) -> u32 {
        self.k
    }

    fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    fn name(&self) -> &'static str {
        "GRR"
    }

    fn perturb(&self, value: u32, rng: &mut dyn RngCore) -> Result<CategoricalReport> {
        let mut out = CategoricalReport::Value(0);
        self.fill_into(value, rng, &mut out)?;
        Ok(out)
    }

    fn debias_params(&self) -> DebiasParams {
        DebiasParams {
            p: self.p,
            q: self.q,
        }
    }

    fn log_likelihood(&self, report: &CategoricalReport, value: u32) -> Result<f64> {
        check_category(value, self.k)?;
        match report {
            CategoricalReport::Value(x) => {
                check_category(*x, self.k)?;
                Ok(if *x == value {
                    self.p.ln()
                } else {
                    self.q.ln()
                })
            }
            // GRR never emits unary reports, and the provided per-bit
            // independence model would be wrong for direct encoding —
            // reject rather than return a silently bogus likelihood.
            CategoricalReport::Bits(_) => Err(crate::LdpError::InvalidParameter {
                name: "report",
                message: "GRR emits direct reports; a unary report has no GRR likelihood".into(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    fn oracle(eps: f64, k: u32) -> Grr {
        Grr::new(Epsilon::new(eps).unwrap(), k).unwrap()
    }

    #[test]
    fn probabilities_sum_to_one() {
        let o = oracle(1.0, 7);
        let total = o.p() + (o.k() - 1) as f64 * o.q();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((o.p() / o.q() - 1.0f64.exp()).abs() < 1e-12);
    }

    #[test]
    fn truthful_report_rate_matches_p() {
        let o = oracle(2.0, 5);
        let mut rng = seeded_rng(90);
        let n = 200_000;
        let truthful = (0..n)
            .filter(|_| matches!(o.perturb(3, &mut rng).unwrap(), CategoricalReport::Value(3)))
            .count();
        let frac = truthful as f64 / n as f64;
        assert!((frac - o.p()).abs() < 0.01, "{frac} vs {}", o.p());
    }

    #[test]
    fn lies_are_uniform_over_other_categories() {
        let o = oracle(1.0, 4);
        let mut rng = seeded_rng(91);
        let n = 300_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            if let CategoricalReport::Value(x) = o.perturb(1, &mut rng).unwrap() {
                counts[x as usize] += 1;
            }
        }
        // Categories 0, 2, 3 should each appear with probability q.
        for v in [0usize, 2, 3] {
            let frac = counts[v] as f64 / n as f64;
            assert!((frac - o.q()).abs() < 0.01, "v={v}: {frac}");
        }
        assert_eq!(counts[1] + counts[0] + counts[2] + counts[3], n);
    }

    #[test]
    fn support_is_unbiased() {
        let o = oracle(1.5, 6);
        let mut rng = seeded_rng(92);
        let n = 200_000;
        let mut sum_true = 0.0;
        let mut sum_other = 0.0;
        for _ in 0..n {
            let r = o.perturb(4, &mut rng).unwrap();
            sum_true += o.support(&r, 4);
            sum_other += o.support(&r, 0);
        }
        assert!((sum_true / n as f64 - 1.0).abs() < 0.03);
        assert!((sum_other / n as f64).abs() < 0.03);
    }

    #[test]
    fn support_variance_matches_simulation() {
        let o = oracle(1.0, 4);
        let mut rng = seeded_rng(93);
        let n = 200_000;
        let vals: Vec<f64> = (0..n)
            .map(|_| o.support(&o.perturb(2, &mut rng).unwrap(), 2))
            .collect();
        let mean = vals.iter().sum::<f64>() / n as f64;
        let var = vals.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let expect = o.support_variance(1.0);
        assert!((var - expect).abs() / expect < 0.05, "{var} vs {expect}");
    }

    #[test]
    fn sample_is_draw_identical_to_fill_into() {
        let o = oracle(1.0, 9);
        let mut rng_a = seeded_rng(94);
        let mut rng_b = seeded_rng(94);
        let mut out = CategoricalReport::Value(0);
        for i in 0..5_000u32 {
            let direct = o.sample(i % 9, &mut rng_a).unwrap();
            o.fill_into(i % 9, &mut rng_b, &mut out).unwrap();
            assert_eq!(out, CategoricalReport::Value(direct), "round {i}");
        }
        assert!(o.sample(9, &mut rng_a).is_err());
    }

    #[test]
    fn binary_domain_equals_classic_randomized_response() {
        let o = oracle(1.0, 2);
        // Warner's RR: truthful with e^ε/(e^ε+1).
        assert!((o.p() - 1.0f64.exp() / (1.0f64.exp() + 1.0)).abs() < 1e-12);
    }
}
