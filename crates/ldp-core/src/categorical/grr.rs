//! Generalized randomized response (k-RR / direct encoding).

use crate::budget::Epsilon;
use crate::categorical::{check_category, check_domain_size};
use crate::error::Result;
use crate::mechanism::{CategoricalReport, DebiasParams, FrequencyOracle};
use crate::rng::bernoulli;
use rand::{Rng, RngCore};

/// k-ary randomized response: report the true category with probability
/// `p = e^ε/(e^ε + k − 1)`, otherwise one of the `k−1` other categories
/// uniformly (each with probability `q = 1/(e^ε + k − 1)`).
///
/// The `p/q = e^ε` ratio gives ε-LDP directly. GRR's estimator variance
/// grows linearly in `k`, so it loses to OUE once `k > 3e^ε + 2`; it is
/// included as the classic baseline and for small domains (e.g. binary
/// attributes) where it is optimal.
#[derive(Debug, Clone)]
pub struct Grr {
    epsilon: Epsilon,
    k: u32,
    p: f64,
    q: f64,
}

impl Grr {
    /// Creates the oracle for domain size `k ≥ 2` and budget `ε`.
    ///
    /// # Errors
    /// [`crate::LdpError::InvalidParameter`] if `k < 2`.
    pub fn new(epsilon: Epsilon, k: u32) -> Result<Self> {
        check_domain_size(k)?;
        let e = epsilon.exp();
        let denom = e + k as f64 - 1.0;
        Ok(Grr {
            epsilon,
            k,
            p: e / denom,
            q: 1.0 / denom,
        })
    }

    /// Probability of reporting the true category.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Probability of reporting any *specific* other category.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// Generic form of [`FrequencyOracle::perturb_into`], monomorphized over
    /// the concrete rng. Draw-for-draw identical to
    /// [`FrequencyOracle::perturb`] (one Bernoulli coin, then — only on a
    /// lie — one range draw), so the trait and generic paths consume the
    /// same stream.
    ///
    /// # Errors
    /// As [`FrequencyOracle::perturb`].
    #[inline]
    pub fn fill_into<R: RngCore + ?Sized>(
        &self,
        value: u32,
        rng: &mut R,
        out: &mut CategoricalReport,
    ) -> Result<()> {
        check_category(value, self.k)?;
        *out = CategoricalReport::Value(if bernoulli(rng, self.p) {
            value
        } else {
            let r = rng.random_range(0..self.k - 1);
            if r >= value {
                r + 1
            } else {
                r
            }
        });
        Ok(())
    }

    /// [`Grr::fill_into`] with the per-hit observer of the fused
    /// perturb-and-count engine: a direct report's single "hit" is the
    /// reported category itself.
    ///
    /// # Errors
    /// As [`FrequencyOracle::perturb`].
    #[inline]
    pub fn fill_into_noting<R: RngCore + ?Sized, F: FnMut(u32)>(
        &self,
        value: u32,
        rng: &mut R,
        out: &mut CategoricalReport,
        mut note: F,
    ) -> Result<()> {
        self.fill_into(value, rng, out)?;
        let CategoricalReport::Value(x) = out else {
            unreachable!("GRR produces direct reports");
        };
        note(*x);
        Ok(())
    }
}

impl FrequencyOracle for Grr {
    fn k(&self) -> u32 {
        self.k
    }

    fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    fn name(&self) -> &'static str {
        "GRR"
    }

    fn perturb(&self, value: u32, rng: &mut dyn RngCore) -> Result<CategoricalReport> {
        let mut out = CategoricalReport::Value(0);
        self.fill_into(value, rng, &mut out)?;
        Ok(out)
    }

    fn debias_params(&self) -> DebiasParams {
        DebiasParams {
            p: self.p,
            q: self.q,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    fn oracle(eps: f64, k: u32) -> Grr {
        Grr::new(Epsilon::new(eps).unwrap(), k).unwrap()
    }

    #[test]
    fn probabilities_sum_to_one() {
        let o = oracle(1.0, 7);
        let total = o.p() + (o.k() - 1) as f64 * o.q();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((o.p() / o.q() - 1.0f64.exp()).abs() < 1e-12);
    }

    #[test]
    fn truthful_report_rate_matches_p() {
        let o = oracle(2.0, 5);
        let mut rng = seeded_rng(90);
        let n = 200_000;
        let truthful = (0..n)
            .filter(|_| matches!(o.perturb(3, &mut rng).unwrap(), CategoricalReport::Value(3)))
            .count();
        let frac = truthful as f64 / n as f64;
        assert!((frac - o.p()).abs() < 0.01, "{frac} vs {}", o.p());
    }

    #[test]
    fn lies_are_uniform_over_other_categories() {
        let o = oracle(1.0, 4);
        let mut rng = seeded_rng(91);
        let n = 300_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            if let CategoricalReport::Value(x) = o.perturb(1, &mut rng).unwrap() {
                counts[x as usize] += 1;
            }
        }
        // Categories 0, 2, 3 should each appear with probability q.
        for v in [0usize, 2, 3] {
            let frac = counts[v] as f64 / n as f64;
            assert!((frac - o.q()).abs() < 0.01, "v={v}: {frac}");
        }
        assert_eq!(counts[1] + counts[0] + counts[2] + counts[3], n);
    }

    #[test]
    fn support_is_unbiased() {
        let o = oracle(1.5, 6);
        let mut rng = seeded_rng(92);
        let n = 200_000;
        let mut sum_true = 0.0;
        let mut sum_other = 0.0;
        for _ in 0..n {
            let r = o.perturb(4, &mut rng).unwrap();
            sum_true += o.support(&r, 4);
            sum_other += o.support(&r, 0);
        }
        assert!((sum_true / n as f64 - 1.0).abs() < 0.03);
        assert!((sum_other / n as f64).abs() < 0.03);
    }

    #[test]
    fn support_variance_matches_simulation() {
        let o = oracle(1.0, 4);
        let mut rng = seeded_rng(93);
        let n = 200_000;
        let vals: Vec<f64> = (0..n)
            .map(|_| o.support(&o.perturb(2, &mut rng).unwrap(), 2))
            .collect();
        let mean = vals.iter().sum::<f64>() / n as f64;
        let var = vals.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let expect = o.support_variance(1.0);
        assert!((var - expect).abs() / expect < 0.05, "{var} vs {expect}");
    }

    #[test]
    fn binary_domain_equals_classic_randomized_response() {
        let o = oracle(1.0, 2);
        // Warner's RR: truthful with e^ε/(e^ε+1).
        assert!((o.p() - 1.0f64.exp() / (1.0f64.exp() + 1.0)).abs() < 1e-12);
    }
}
