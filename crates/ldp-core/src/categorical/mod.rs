//! Frequency oracles for a single categorical attribute with domain
//! `{0, …, k-1}`.
//!
//! * [`Oue`] — Optimized Unary Encoding (Wang et al., USENIX Security 2017),
//!   the oracle the paper plugs into Algorithm 4 (§IV-C, §VI-A).
//! * [`Grr`] — generalized (k-ary) randomized response, the classic direct
//!   mechanism; better than OUE when `k < 3e^ε + 2`.
//! * [`Sue`] — symmetric unary encoding (basic RAPPOR), included as an
//!   ablation baseline.

mod grr;
mod oue;
mod sue;

pub use grr::Grr;
pub use oue::Oue;
pub use sue::Sue;

use crate::budget::Epsilon;
use crate::error::{LdpError, Result};
use crate::kinds::OracleKind;

/// Wang et al.'s (USENIX Security 2017) selection rule: GRR has lower
/// estimator variance than OUE exactly when `k − 2 < 3e^ε` (GRR's variance
/// grows with `k`, OUE's does not), so pick GRR for small domains and OUE
/// otherwise.
///
/// ```
/// use ldp_core::{categorical::best_oracle, Epsilon, OracleKind};
/// let eps = Epsilon::new(1.0)?;
/// assert_eq!(best_oracle(eps, 2), OracleKind::Grr);   // binary: classic RR
/// assert_eq!(best_oracle(eps, 27), OracleKind::Oue);  // large domain: OUE
/// # Ok::<(), ldp_core::LdpError>(())
/// ```
pub fn best_oracle(epsilon: Epsilon, k: u32) -> OracleKind {
    if (f64::from(k) - 2.0) < 3.0 * epsilon.exp() {
        OracleKind::Grr
    } else {
        OracleKind::Oue
    }
}

/// Validates a category against a domain of size `k`.
#[inline]
pub(crate) fn check_category(value: u32, k: u32) -> Result<()> {
    if value < k {
        Ok(())
    } else {
        Err(LdpError::InvalidCategory { value, k })
    }
}

/// Validates a domain size (`k ≥ 2`: a one-value attribute carries no
/// information and would divide by zero in the estimators).
pub(crate) fn check_domain_size(k: u32) -> Result<()> {
    if k >= 2 {
        Ok(())
    } else {
        Err(LdpError::InvalidParameter {
            name: "k",
            message: format!("categorical domain needs k ≥ 2, got {k}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_validation() {
        assert!(check_category(0, 3).is_ok());
        assert!(check_category(2, 3).is_ok());
        assert!(check_category(3, 3).is_err());
    }

    #[test]
    fn domain_size_validation() {
        assert!(check_domain_size(2).is_ok());
        assert!(check_domain_size(100).is_ok());
        assert!(check_domain_size(1).is_err());
        assert!(check_domain_size(0).is_err());
    }

    use crate::mechanism::FrequencyOracle;

    #[test]
    fn best_oracle_rule_matches_variance_comparison() {
        // The selection rule must agree with the oracles' own
        // support_variance at f → 0 (the regime the rule optimizes).
        for eps in [0.5, 1.0, 2.0, 4.0] {
            let e = Epsilon::new(eps).unwrap();
            for k in [2u32, 4, 8, 16, 32, 64, 128] {
                let chosen = best_oracle(e, k);
                let grr = Grr::new(e, k).unwrap().support_variance(0.0);
                let oue = Oue::new(e, k).unwrap().support_variance(0.0);
                let better = if grr <= oue {
                    OracleKind::Grr
                } else {
                    OracleKind::Oue
                };
                assert_eq!(chosen, better, "eps={eps} k={k}: grr={grr} oue={oue}");
            }
        }
    }

    #[test]
    fn best_oracle_threshold_is_sharp() {
        // At the boundary k = 3e^ε + 2 the variances coincide (up to the
        // integrality of k); check the rule flips within one step of it.
        let e = Epsilon::new(1.0).unwrap();
        let boundary = (3.0 * 1.0f64.exp() + 2.0).floor() as u32; // 10
        assert_eq!(best_oracle(e, boundary), OracleKind::Grr);
        assert_eq!(best_oracle(e, boundary + 1), OracleKind::Oue);
    }
}
