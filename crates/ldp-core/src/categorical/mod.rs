//! Frequency oracles for a single categorical attribute with domain
//! `{0, …, k-1}`.
//!
//! * [`Oue`] — Optimized Unary Encoding (Wang et al., USENIX Security 2017),
//!   the oracle the paper plugs into Algorithm 4 (§IV-C, §VI-A).
//! * [`Grr`] — generalized (k-ary) randomized response, the classic direct
//!   mechanism; better than OUE when `k < 3e^ε + 2`.
//! * [`Sue`] — symmetric unary encoding (basic RAPPOR), included as an
//!   ablation baseline.

mod grr;
mod oue;
mod sue;

pub use grr::Grr;
pub use oue::Oue;
pub use sue::Sue;

use crate::budget::Epsilon;
use crate::error::{LdpError, Result};
use crate::kinds::OracleKind;
use crate::mechanism::{CategoricalReport, DebiasParams, FrequencyOracle};
use crate::rng::DrawSource;

/// Enum dispatch over the concrete frequency oracles.
///
/// The [`FrequencyOracle`] trait stays object-safe for the experiment
/// harness (boxed oracles, `&mut dyn RngCore`), but a boxed oracle forces a
/// virtual call per report *and* per draw — the dispatch the batched-RNG hot
/// path exists to remove. `AnyOracle` is the monomorphic alternative the
/// streaming pipelines hold: one predictable match per report, and a
/// [`AnyOracle::perturb_into`] generic over the rng so the whole sampling
/// loop inlines when driven by an [`crate::rng::RngBlock`].
#[derive(Debug, Clone)]
pub enum AnyOracle {
    /// Optimized unary encoding (the paper's choice).
    Oue(Oue),
    /// k-ary randomized response.
    Grr(Grr),
    /// Symmetric unary encoding (basic RAPPOR).
    Sue(Sue),
}

impl AnyOracle {
    /// Instantiates the oracle selected by `kind` for budget `ε` and domain
    /// size `k` — the unboxed counterpart of [`OracleKind::build`].
    ///
    /// # Errors
    /// Propagates the oracle constructor's validation (`k ≥ 2`).
    pub fn build(kind: OracleKind, epsilon: Epsilon, k: u32) -> Result<Self> {
        Ok(match kind {
            OracleKind::Oue => AnyOracle::Oue(Oue::new(epsilon, k)?),
            OracleKind::Grr => AnyOracle::Grr(Grr::new(epsilon, k)?),
            OracleKind::Sue => AnyOracle::Sue(Sue::new(epsilon, k)?),
        })
    }

    /// Borrows the oracle as a trait object, for the object-safe half of the
    /// API (accumulators, harness tables, diagnostics).
    pub fn as_dyn(&self) -> &dyn FrequencyOracle {
        match self {
            AnyOracle::Oue(o) => o,
            AnyOracle::Grr(o) => o,
            AnyOracle::Sue(o) => o,
        }
    }

    /// The unboxed GRR oracle when this is the direct-encoding variant,
    /// `None` for the unary encodings. Fused perturb-and-count engines
    /// branch on this once per report: a direct report needs no bit vector
    /// (or report object) at all — [`Grr::sample`] hands back the category
    /// ordinal straight into a counter increment — while unary reports go
    /// through the bit-vector path and are absorbed word-at-a-time.
    #[inline]
    pub fn as_grr(&self) -> Option<&Grr> {
        match self {
            AnyOracle::Grr(o) => Some(o),
            _ => None,
        }
    }

    /// Domain size `k`.
    #[inline]
    pub fn k(&self) -> u32 {
        self.as_dyn().k()
    }

    /// The oracle's `(p, q)` debiasing pair.
    #[inline]
    pub fn debias_params(&self) -> DebiasParams {
        self.as_dyn().debias_params()
    }

    /// Log-likelihood of a report given a true value — see
    /// [`FrequencyOracle::log_likelihood`].
    ///
    /// # Errors
    /// As [`FrequencyOracle::log_likelihood`].
    #[inline]
    pub fn log_likelihood(&self, report: &CategoricalReport, value: u32) -> Result<f64> {
        self.as_dyn().log_likelihood(report, value)
    }

    /// Monomorphized perturbation into a caller-owned report: one match,
    /// then the concrete oracle's generic `fill_into`. Draw-for-draw
    /// identical to the trait's `perturb_into`.
    ///
    /// # Errors
    /// As [`FrequencyOracle::perturb`].
    #[inline]
    pub fn perturb_into<R: DrawSource + ?Sized>(
        &self,
        value: u32,
        rng: &mut R,
        out: &mut CategoricalReport,
    ) -> Result<()> {
        match self {
            AnyOracle::Oue(o) => o.fill_into(value, rng, out),
            AnyOracle::Grr(o) => o.fill_into(value, rng, out),
            AnyOracle::Sue(o) => o.fill_into(value, rng, out),
        }
    }

    /// [`AnyOracle::perturb_into`] with a per-raw-hit observer: `note(v)`
    /// fires once for every set bit of a unary report (as it is placed) or
    /// once with the reported category of a direct report. Draw-for-draw
    /// identical to `perturb_into`; the observed hits are exactly the hits
    /// [`crate::mechanism::FrequencyOracle::support`] would see, which is
    /// what lets a count-based aggregator skip re-walking the report.
    ///
    /// # Errors
    /// As [`FrequencyOracle::perturb`].
    #[inline]
    pub fn perturb_into_noting<R: DrawSource + ?Sized, F: FnMut(u32)>(
        &self,
        value: u32,
        rng: &mut R,
        out: &mut CategoricalReport,
        note: F,
    ) -> Result<()> {
        match self {
            AnyOracle::Oue(o) => o.fill_into_noting(value, rng, out, note),
            AnyOracle::Grr(o) => o.fill_into_noting(value, rng, out, note),
            AnyOracle::Sue(o) => o.fill_into_noting(value, rng, out, note),
        }
    }
}

/// Wang et al.'s (USENIX Security 2017) selection rule: GRR has lower
/// estimator variance than OUE exactly when `k − 2 < 3e^ε` (GRR's variance
/// grows with `k`, OUE's does not), so pick GRR for small domains and OUE
/// otherwise.
///
/// ```
/// use ldp_core::{categorical::best_oracle, Epsilon, OracleKind};
/// let eps = Epsilon::new(1.0)?;
/// assert_eq!(best_oracle(eps, 2), OracleKind::Grr);   // binary: classic RR
/// assert_eq!(best_oracle(eps, 27), OracleKind::Oue);  // large domain: OUE
/// # Ok::<(), ldp_core::LdpError>(())
/// ```
pub fn best_oracle(epsilon: Epsilon, k: u32) -> OracleKind {
    if (f64::from(k) - 2.0) < 3.0 * epsilon.exp() {
        OracleKind::Grr
    } else {
        OracleKind::Oue
    }
}

/// The shared client-side sampler of the unary encodings (OUE and SUE
/// differ only in their `(p, q)` pair): the true bit is set with
/// probability `p`, every other bit independently with probability `q`.
///
/// [`UnaryEncoder::fill_sparse`] draws reports in O(k·q) expected work
/// instead of `k−1` Bernoulli draws:
///
/// 1. the number of flipped non-true bits comes from Binomial(k−1, q) via
///    one uniform and a binary search over a CDF precomputed at
///    construction (no transcendentals, no per-draw recurrence);
/// 2. the flips are placed with Floyd's distinct-index sampling, using the
///    bit vector itself as the membership structure (the true bit cannot
///    collide: placement indices skip it).
///
/// A uniformly random m-subset with `m ~ Binomial(n, q)` is exactly `n`
/// independent Bernoulli(q) coins, so marginals are identical to the naive
/// per-bit sampler ([`UnaryEncoder::fill_dense`]); the `sparse_equivalence`
/// integration tests pin that equivalence. When `(1−q)^{k−1}` underflows
/// f64 (astronomically dense reports), a geometric-gap walk
/// ([`crate::rng::for_each_bernoulli_index`]) covers the tail.
#[derive(Debug, Clone)]
pub(crate) struct UnaryEncoder {
    p: f64,
    q: f64,
    /// CDF of Binomial(k−1, q), truncated 12σ past the mean (tail mass
    /// < 1e-30); empty when the inversion must fall back to the walk.
    flip_cdf: Vec<f64>,
}

impl UnaryEncoder {
    pub(crate) fn new(k: u32, p: f64, q: f64) -> Self {
        let n = k - 1;
        let mut flip_cdf = Vec::new();
        if n > 0 && q > 0.0 && q < 1.0 {
            let ln_1q = (-q).ln_1p();
            // Same representability rule as `sample_binomial_inversion`:
            // beyond −700, exp() lands in (or near) the subnormal range,
            // where p0's large relative error would scale the whole CDF and
            // bias the flip counts — use the geometric walk instead.
            if f64::from(n) * ln_1q > -700.0 {
                let p0 = (f64::from(n) * ln_1q).exp();
                let mean = f64::from(n) * q;
                let sd = (mean * (1.0 - q)).sqrt();
                let cap = ((mean + 12.0 * sd + 16.0).ceil() as u32).min(n);
                let r = q / (1.0 - q);
                let mut c = p0;
                let mut cum = 0.0f64;
                flip_cdf.reserve(cap as usize + 1);
                for m in 0..=cap {
                    if m > 0 {
                        c *= r * f64::from(n - m + 1) / f64::from(m);
                    }
                    cum += c;
                    flip_cdf.push(cum);
                }
            }
        }
        UnaryEncoder { p, q, flip_cdf }
    }

    /// Sparse-samples one unary report into a caller-owned
    /// [`crate::mechanism::CategoricalReport`], reusing its bit vector when
    /// it already has length `k` and replacing it otherwise. This is the
    /// shared implementation behind OUE's and SUE's `perturb_into`. Generic
    /// over the rng so concrete generators (e.g.
    /// [`crate::rng::RngBlock`]) monomorphize the whole sampling loop and
    /// serve the placement draws as buffer slices.
    pub(crate) fn fill_report<R: DrawSource + ?Sized>(
        &self,
        k: u32,
        value: u32,
        rng: &mut R,
        out: &mut crate::mechanism::CategoricalReport,
    ) {
        self.fill_report_noting(k, value, rng, out, |_| {});
    }

    /// [`UnaryEncoder::fill_report`] with the per-set-bit observer of
    /// [`UnaryEncoder::fill_sparse_noting`].
    #[inline]
    pub(crate) fn fill_report_noting<R: DrawSource + ?Sized, F: FnMut(u32)>(
        &self,
        k: u32,
        value: u32,
        rng: &mut R,
        out: &mut crate::mechanism::CategoricalReport,
        note: F,
    ) {
        use crate::mechanism::{BitVec, CategoricalReport};
        let bits = match out {
            CategoricalReport::Bits(bits) if bits.len() == k => bits,
            _ => {
                *out = CategoricalReport::Bits(BitVec::zeros(k));
                let CategoricalReport::Bits(bits) = out else {
                    unreachable!("just assigned Bits");
                };
                bits
            }
        };
        self.fill_sparse_noting(bits, value, rng, note);
    }

    /// O(k·q) sparse report sampling (see the type docs), kept as the
    /// observer-free entry point for tests and future callers.
    #[cfg(test)]
    pub(crate) fn fill_sparse<R: DrawSource + ?Sized>(
        &self,
        bits: &mut crate::mechanism::BitVec,
        value: u32,
        rng: &mut R,
    ) {
        self.fill_sparse_noting(bits, value, rng, |_| {});
    }

    /// [`UnaryEncoder::fill_sparse`] with an observer: `note` is called once
    /// for every bit that ends up set, as it is placed. This is the hook the
    /// fused perturb-and-count engine uses — the aggregator counts hits
    /// during placement instead of re-walking the finished bit vector, so a
    /// report costs O(set bits) *total*, not O(set bits) twice plus a
    /// word scan.
    #[inline]
    pub(crate) fn fill_sparse_noting<R: DrawSource + ?Sized, F: FnMut(u32)>(
        &self,
        bits: &mut crate::mechanism::BitVec,
        value: u32,
        rng: &mut R,
        mut note: F,
    ) {
        use rand::Rng;
        bits.clear();
        if crate::rng::bernoulli(rng, self.p) {
            bits.set(value, true);
            note(value);
        }
        let n = bits.len() - 1; // non-true positions
        if n == 0 || self.q <= 0.0 {
            return;
        }
        // Indices over the n non-true positions; at or past `value` they
        // shift by one to skip the true bit.
        let place = |idx: u32| if idx >= value { idx + 1 } else { idx };
        if self.flip_cdf.is_empty() {
            // Underflow/extreme regime: geometric-gap walk.
            crate::rng::for_each_bernoulli_index(rng, n, self.q, |idx| {
                bits.set(place(idx), true);
                note(place(idx));
            });
            return;
        }
        let u = rng.random::<f64>();
        let m = (self.flip_cdf.partition_point(|&c| c <= u) as u32).min(n);
        // Floyd's algorithm, with the report itself as the "already chosen"
        // set: bit place(t) is set iff flip-index t was already chosen,
        // because place() never lands on the true bit. (Each iteration sets
        // exactly one previously-unset bit: on a collision it falls back to
        // place(j), and j cannot have been chosen in an earlier iteration —
        // all earlier picks are < j.) The m placement draws stream through
        // `with_raw`: a batched source hands them over as buffer slices, so
        // this loop walks plain memory instead of paying per-draw generator
        // bookkeeping.
        let mut j = n - m;
        rng.with_raw(m, |chunk| {
            for &raw in chunk {
                let t = place(crate::rng::index_from_raw(raw, j + 1));
                if bits.get(t) {
                    bits.set(place(j), true);
                    note(place(j));
                } else {
                    bits.set(t, true);
                    note(t);
                }
                j += 1;
            }
        });
    }

    /// The naive per-bit reference sampler: one Bernoulli draw per bit.
    /// Kept as the distribution oracle for equivalence tests and as the
    /// throughput bench's pre-optimization baseline.
    pub(crate) fn fill_dense<R: rand::RngCore + ?Sized>(
        &self,
        bits: &mut crate::mechanism::BitVec,
        value: u32,
        rng: &mut R,
    ) {
        bits.clear();
        for i in 0..bits.len() {
            let one_prob = if i == value { self.p } else { self.q };
            if crate::rng::bernoulli(rng, one_prob) {
                bits.set(i, true);
            }
        }
    }
}

/// Validates a category against a domain of size `k`.
#[inline]
pub(crate) fn check_category(value: u32, k: u32) -> Result<()> {
    if value < k {
        Ok(())
    } else {
        Err(LdpError::InvalidCategory { value, k })
    }
}

/// Validates a domain size (`k ≥ 2`: a one-value attribute carries no
/// information and would divide by zero in the estimators).
pub(crate) fn check_domain_size(k: u32) -> Result<()> {
    if k >= 2 {
        Ok(())
    } else {
        Err(LdpError::InvalidParameter {
            name: "k",
            message: format!("categorical domain needs k ≥ 2, got {k}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_validation() {
        assert!(check_category(0, 3).is_ok());
        assert!(check_category(2, 3).is_ok());
        assert!(check_category(3, 3).is_err());
    }

    #[test]
    fn domain_size_validation() {
        assert!(check_domain_size(2).is_ok());
        assert!(check_domain_size(100).is_ok());
        assert!(check_domain_size(1).is_err());
        assert!(check_domain_size(0).is_err());
    }

    use crate::mechanism::FrequencyOracle;

    #[test]
    fn unary_encoder_falls_back_to_walk_when_cdf_would_underflow() {
        // ε = 1 ⇒ q = 1/(e+1); at k−1 = 2400, n·ln(1−q) ≈ −751.8 < −700, so
        // (1−q)^n is (sub)normal-garbage territory and the CDF must not be
        // built — the geometric walk covers this regime.
        let q = 1.0 / (1.0f64.exp() + 1.0);
        let enc = UnaryEncoder::new(2401, 0.5, q);
        assert!(enc.flip_cdf.is_empty(), "CDF must not be built past −700");
        // And the walk still produces the right popcount mean.
        let n = 2400u32;
        let mut bits = crate::mechanism::BitVec::zeros(2401);
        let mut rng = crate::rng::seeded_rng(77);
        let trials = 2_000;
        let mut total = 0.0f64;
        for _ in 0..trials {
            enc.fill_sparse(&mut bits, 7, &mut rng);
            total += f64::from(bits.count_ones());
        }
        let mean = 0.5 + f64::from(n) * q;
        let var = 0.25 + f64::from(n) * q * (1.0 - q);
        crate::assert_within_ci!(total / trials as f64, mean, var, trials);
        // Just inside the bound the CDF is built and carries ≈ unit mass.
        let safe = UnaryEncoder::new(2201, 0.5, q);
        assert!(!safe.flip_cdf.is_empty());
        let last = *safe.flip_cdf.last().unwrap();
        assert!((last - 1.0).abs() < 1e-9, "CDF mass {last}");
    }

    #[test]
    fn best_oracle_rule_matches_variance_comparison() {
        // The selection rule must agree with the oracles' own
        // support_variance at f → 0 (the regime the rule optimizes).
        for eps in [0.5, 1.0, 2.0, 4.0] {
            let e = Epsilon::new(eps).unwrap();
            for k in [2u32, 4, 8, 16, 32, 64, 128] {
                let chosen = best_oracle(e, k);
                let grr = Grr::new(e, k).unwrap().support_variance(0.0);
                let oue = Oue::new(e, k).unwrap().support_variance(0.0);
                let better = if grr <= oue {
                    OracleKind::Grr
                } else {
                    OracleKind::Oue
                };
                assert_eq!(chosen, better, "eps={eps} k={k}: grr={grr} oue={oue}");
            }
        }
    }

    #[test]
    fn best_oracle_threshold_is_sharp() {
        // At the boundary k = 3e^ε + 2 the variances coincide (up to the
        // integrality of k); check the rule flips within one step of it.
        let e = Epsilon::new(1.0).unwrap();
        let boundary = (3.0 * 1.0f64.exp() + 2.0).floor() as u32; // 10
        assert_eq!(best_oracle(e, boundary), OracleKind::Grr);
        assert_eq!(best_oracle(e, boundary + 1), OracleKind::Oue);
    }
}
