//! Optimized Unary Encoding (OUE) — Wang et al., USENIX Security 2017.

use crate::budget::Epsilon;
use crate::categorical::{check_category, check_domain_size, UnaryEncoder};
use crate::error::Result;
use crate::mechanism::{BitVec, CategoricalReport, DebiasParams, FrequencyOracle};
use rand::RngCore;

/// OUE perturbs the one-hot encoding of a category bit-by-bit with
/// *asymmetric* flip probabilities:
///
/// * the true bit stays 1 with `p = 1/2`, and
/// * every other bit becomes 1 with `q = 1/(e^ε + 1)`.
///
/// Each bit's two transition probabilities differ by a factor ≤ e^ε in both
/// directions, and only the true bit's distribution depends on the input, so
/// the report satisfies ε-LDP. The `(p, q)` choice minimizes the estimator
/// variance `4e^ε / (n(e^ε−1)²)` at small true frequencies, which is why the
/// paper calls OUE the state of the art for frequency estimation (§IV-C).
#[derive(Debug, Clone)]
pub struct Oue {
    epsilon: Epsilon,
    k: u32,
    /// `q = 1/(e^ε+1)`; `p` is the constant 1/2.
    q: f64,
    /// Shared sparse/dense unary sampler (owns the precomputed flip-count
    /// CDF).
    enc: UnaryEncoder,
}

/// The probability that the true bit remains set.
const P_TRUE: f64 = 0.5;

impl Oue {
    /// Creates the oracle for domain size `k ≥ 2` and budget `ε`.
    ///
    /// # Errors
    /// [`crate::LdpError::InvalidParameter`] if `k < 2`.
    pub fn new(epsilon: Epsilon, k: u32) -> Result<Self> {
        check_domain_size(k)?;
        let q = 1.0 / (epsilon.exp() + 1.0);
        Ok(Oue {
            epsilon,
            k,
            q,
            enc: UnaryEncoder::new(k, P_TRUE, q),
        })
    }

    /// The perturbation probability `q = 1/(e^ε+1)` for non-true bits.
    pub fn q(&self) -> f64 {
        self.q
    }

    /// The retention probability `p = 1/2` for the true bit.
    pub fn p(&self) -> f64 {
        P_TRUE
    }

    /// Generic form of [`FrequencyOracle::perturb_into`]: the same sparse
    /// sampler, monomorphized over the concrete rng so hot loops driven by a
    /// [`crate::rng::RngBlock`] pay no virtual call per draw. The trait
    /// method delegates here with `R = dyn RngCore`, so both paths consume
    /// identical draw streams.
    ///
    /// # Errors
    /// As [`FrequencyOracle::perturb`].
    #[inline]
    pub fn fill_into<R: crate::rng::DrawSource + ?Sized>(
        &self,
        value: u32,
        rng: &mut R,
        out: &mut CategoricalReport,
    ) -> Result<()> {
        check_category(value, self.k)?;
        self.enc.fill_report(self.k, value, rng, out);
        Ok(())
    }

    /// [`Oue::fill_into`] with an observer called once per set bit, as it
    /// is placed — the fused perturb-and-count hook (the aggregator
    /// increments its raw hit counts here instead of re-walking the
    /// finished bit vector).
    ///
    /// # Errors
    /// As [`FrequencyOracle::perturb`].
    #[inline]
    pub fn fill_into_noting<R: crate::rng::DrawSource + ?Sized, F: FnMut(u32)>(
        &self,
        value: u32,
        rng: &mut R,
        out: &mut CategoricalReport,
        note: F,
    ) -> Result<()> {
        check_category(value, self.k)?;
        self.enc.fill_report_noting(self.k, value, rng, out, note);
        Ok(())
    }
}

impl FrequencyOracle for Oue {
    fn k(&self) -> u32 {
        self.k
    }

    fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    fn name(&self) -> &'static str {
        "OUE"
    }

    fn perturb(&self, value: u32, rng: &mut dyn RngCore) -> Result<CategoricalReport> {
        let mut out = CategoricalReport::Bits(BitVec::zeros(self.k));
        self.perturb_into(value, rng, &mut out)?;
        Ok(out)
    }

    /// Zero-allocation sparse path: reuses `out`'s bit vector (when it has
    /// the right length) and draws only the non-true bits that come up 1 via
    /// geometric gap sampling — O(k·q) expected work instead of k Bernoulli
    /// draws.
    fn perturb_into(
        &self,
        value: u32,
        rng: &mut dyn RngCore,
        out: &mut CategoricalReport,
    ) -> Result<()> {
        self.fill_into(value, rng, out)
    }

    /// The naive per-bit sampler (one Bernoulli draw per bit) — the
    /// reference distribution the sparse path must match.
    fn perturb_naive(&self, value: u32, rng: &mut dyn RngCore) -> Result<CategoricalReport> {
        check_category(value, self.k)?;
        let mut bits = BitVec::zeros(self.k);
        self.enc.fill_dense(&mut bits, value, rng);
        Ok(CategoricalReport::Bits(bits))
    }

    fn debias_params(&self) -> DebiasParams {
        DebiasParams {
            p: P_TRUE,
            q: self.q,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    fn oracle(eps: f64, k: u32) -> Oue {
        Oue::new(Epsilon::new(eps).unwrap(), k).unwrap()
    }

    #[test]
    fn rejects_tiny_domain_and_bad_category() {
        assert!(Oue::new(Epsilon::new(1.0).unwrap(), 1).is_err());
        let o = oracle(1.0, 4);
        let mut rng = seeded_rng(80);
        assert!(o.perturb(4, &mut rng).is_err());
        assert!(o.perturb(3, &mut rng).is_ok());
    }

    #[test]
    fn report_has_k_bits() {
        let o = oracle(1.0, 10);
        let mut rng = seeded_rng(81);
        match o.perturb(3, &mut rng).unwrap() {
            CategoricalReport::Bits(b) => assert_eq!(b.len(), 10),
            _ => panic!("OUE must produce bit reports"),
        }
    }

    #[test]
    fn bit_probabilities_match_p_and_q() {
        let o = oracle(1.0, 5);
        let mut rng = seeded_rng(82);
        let n = 100_000;
        let mut true_bit = 0usize;
        let mut other_bit = 0usize;
        for _ in 0..n {
            match o.perturb(2, &mut rng).unwrap() {
                CategoricalReport::Bits(b) => {
                    if b.get(2) {
                        true_bit += 1;
                    }
                    if b.get(0) {
                        other_bit += 1;
                    }
                }
                _ => unreachable!(),
            }
        }
        let p_hat = true_bit as f64 / n as f64;
        let q_hat = other_bit as f64 / n as f64;
        assert!((p_hat - 0.5).abs() < 0.01, "p̂ = {p_hat}");
        assert!((q_hat - o.q()).abs() < 0.01, "q̂ = {q_hat} vs {}", o.q());
    }

    #[test]
    fn support_is_unbiased_indicator() {
        // E[support(report, v)] should equal 1 if v is the true value, 0
        // otherwise.
        let o = oracle(1.0, 4);
        let mut rng = seeded_rng(83);
        let n = 200_000;
        let mut sums = [0.0f64; 4];
        for _ in 0..n {
            let r = o.perturb(1, &mut rng).unwrap();
            for v in 0..4 {
                sums[v as usize] += o.support(&r, v);
            }
        }
        for (v, s) in sums.iter().enumerate() {
            let mean = s / n as f64;
            let expect = if v == 1 { 1.0 } else { 0.0 };
            assert!((mean - expect).abs() < 0.03, "v={v}: {mean}");
        }
    }

    #[test]
    fn support_variance_matches_simulation() {
        let o = oracle(2.0, 3);
        let mut rng = seeded_rng(84);
        let n = 200_000;
        // All users hold the target value, so f = 1.
        let vals: Vec<f64> = (0..n)
            .map(|_| o.support(&o.perturb(0, &mut rng).unwrap(), 0))
            .collect();
        let mean = vals.iter().sum::<f64>() / n as f64;
        let var = vals.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let expect = o.support_variance(1.0);
        assert!((var - expect).abs() / expect < 0.05, "{var} vs {expect}");
    }

    #[test]
    fn per_bit_ldp_ratio_bounded() {
        // Each bit's report distribution depends on the input only through
        // whether the bit is the true one. The likelihood ratio of a full
        // report between two inputs v, v' involves exactly two differing
        // bits; verify the worst-case product is within e^ε.
        for eps in [0.5, 1.0, 4.0] {
            let o = oracle(eps, 6);
            let p = o.p();
            let q = o.q();
            // Worst case: bit v reported 1 & bit v' reported 0 under input v
            // vs input v': ratio = [p/q] · [(1-q)/(1-p)].
            let ratio = (p / q) * ((1.0 - q) / (1.0 - p));
            assert!(ratio <= eps.exp() * (1.0 + 1e-12), "eps={eps}: {ratio}");
            // And the construction is tight: ratio = e^ε exactly.
            assert!((ratio - eps.exp()).abs() < 1e-9, "eps={eps}: {ratio}");
        }
    }
}
