//! Shared test support: seeded RNG fixtures and confidence-bounded
//! statistical assertions.
//!
//! Statistical tests in this workspace run at **fixed seeds** (the RNG is
//! fully deterministic — see `shims/README.md`), so an assertion either
//! always passes or always fails for a given seed. The helpers here replace
//! hand-tuned tolerances ("`< 0.05`, seems to work") with explicit
//! CLT/Chernoff-style confidence bounds: the tolerance is derived from the
//! estimator's analytic variance and the sample size, at a z-score whose
//! two-sided tail mass is ≈ 1e-5. A fixed seed landing outside such a bound
//! is then overwhelming evidence of an estimator bug (bias or mis-scaled
//! variance), not bad luck — which is exactly what a statistical test
//! should mean. (Arcolezi et al.'s audit of multidimensional-LDP analyses
//! is the cautionary tale for eyeballed tolerances.)

use crate::rng::seeded_rng;
use rand::rngs::StdRng;

/// z-score used by every confidence bound here: `P(|Z| > 4.4172) ≈ 1e-5`
/// for a standard normal.
pub const Z_CI: f64 = 4.4172;

/// A deterministic RNG fixture derived from a test's name, so distinct
/// tests get decorrelated (but reproducible) streams without hand-picking
/// integer seeds. FNV-1a over the name, fed to [`seeded_rng`]. (The
/// proptest shim carries its own copy of this hash — it stands in for a
/// crates.io package and cannot depend on this crate.)
pub fn fixture_rng(test_name: &str) -> StdRng {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    seeded_rng(hash)
}

/// Half-width of the CLT confidence interval for a mean of `n` independent
/// samples with per-sample variance `var`: `Z_CI · √(var/n)`.
///
/// # Panics
/// Panics if `var` is negative or `n == 0`.
pub fn clt_half_width(var: f64, n: usize) -> f64 {
    assert!(var >= 0.0, "variance must be non-negative, got {var}");
    assert!(n > 0, "need at least one sample");
    Z_CI * (var / n as f64).sqrt()
}

/// Confidence bounds for an **empirical MSE** built from `cells`
/// (attribute × run) squared errors whose expected value is at most
/// `expected_mse_hi` and at least `expected_mse_lo`.
///
/// Each squared error of an (approximately) Gaussian estimator is
/// `var · χ²(1)`; averaging `cells` of them concentrates like
/// `χ²(cells)/cells`, which has standard deviation `√(2/cells)`. The
/// returned interval is `[lo·(1 − Z√(2/c))⁺, hi·(1 + Z√(2/c))]`.
pub fn mse_ci_bounds(expected_mse_lo: f64, expected_mse_hi: f64, cells: usize) -> (f64, f64) {
    assert!(cells > 0, "need at least one squared-error cell");
    assert!(
        expected_mse_lo >= 0.0 && expected_mse_hi >= expected_mse_lo,
        "need 0 ≤ lo ≤ hi, got [{expected_mse_lo}, {expected_mse_hi}]"
    );
    let spread = Z_CI * (2.0 / cells as f64).sqrt();
    let lo = expected_mse_lo * (1.0 - spread).max(0.0);
    let hi = expected_mse_hi * (1.0 + spread);
    (lo, hi)
}

/// Asserts that `estimate` lies within the CLT confidence interval around
/// `truth` for a mean of `n` samples with per-sample variance `var`:
///
/// ```
/// use ldp_core::assert_within_ci;
/// use ldp_core::rng::seeded_rng;
/// use ldp_core::{numeric::Hybrid, Epsilon, NumericMechanism};
///
/// let eps = Epsilon::new(1.0)?;
/// let hm = Hybrid::new(eps);
/// let mut rng = seeded_rng(7);
/// let (t, n) = (0.25, 50_000);
/// let mean = (0..n).map(|_| hm.perturb(t, &mut rng).unwrap()).sum::<f64>() / n as f64;
/// assert_within_ci!(mean, t, hm.variance(t), n);
/// # Ok::<(), ldp_core::LdpError>(())
/// ```
///
/// Extra context, `format!`-style, can follow the required arguments.
#[macro_export]
macro_rules! assert_within_ci {
    ($estimate:expr, $truth:expr, $var:expr, $n:expr $(,)?) => {
        $crate::assert_within_ci!($estimate, $truth, $var, $n, "")
    };
    ($estimate:expr, $truth:expr, $var:expr, $n:expr, $($ctx:tt)+) => {{
        let (est, truth) = ($estimate as f64, $truth as f64);
        let half = $crate::testutil::clt_half_width($var, $n);
        assert!(
            (est - truth).abs() <= half,
            "estimate {est} outside CI [{}, {}] (truth {truth}, half-width {half}): {}",
            truth - half,
            truth + half,
            format_args!($($ctx)+)
        );
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn fixture_rng_is_deterministic_and_name_sensitive() {
        let mut a = fixture_rng("some::test");
        let mut b = fixture_rng("some::test");
        let mut c = fixture_rng("other::test");
        let (xa, xb, xc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn half_width_scales_with_root_n() {
        let w1 = clt_half_width(4.0, 100);
        let w2 = clt_half_width(4.0, 400);
        assert!((w1 / w2 - 2.0).abs() < 1e-12);
        assert!((w1 - Z_CI * 0.2).abs() < 1e-12);
    }

    #[test]
    fn mse_bounds_bracket_expectation() {
        let (lo, hi) = mse_ci_bounds(1.0, 2.0, 8);
        assert!(lo < 1.0 && hi > 2.0);
        // Huge cell counts collapse the interval onto [lo, hi].
        let (lo, hi) = mse_ci_bounds(1.0, 2.0, 10_000_000);
        assert!(lo > 0.99 && hi < 2.01);
    }

    #[test]
    fn within_ci_accepts_sample_mean_of_unit_uniform() {
        use rand::Rng;
        let mut rng = fixture_rng("testutil::unit_uniform");
        let n = 100_000;
        let mean = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        // Uniform [0,1): mean 1/2, variance 1/12.
        assert_within_ci!(mean, 0.5, 1.0 / 12.0, n);
    }

    #[test]
    #[should_panic(expected = "outside CI")]
    fn within_ci_rejects_biased_estimate() {
        // 10σ bias: must fail at the 4.4σ bound.
        let n = 10_000;
        let bias = 10.0 * (1.0f64 / n as f64).sqrt();
        assert_within_ci!(bias, 0.0, 1.0, n);
    }
}
