//! Length-framed wire transport for report streams.
//!
//! The aggregation service absorbs messages from untrusted byte streams
//! (sockets, pipes, files). This module fixes the outermost layer: how a
//! message is delimited and integrity-checked, independently of what the
//! payload means. Every frame is
//!
//! ```text
//! ┌──────────────┬──────────┬──────────────────┬─────────────┐
//! │ len: u32 BE  │ kind: u8 │ checksum: u64 BE │ payload     │
//! │ (payload     │          │ FNV-1a over      │ len bytes   │
//! │  bytes)      │          │ kind ‖ payload   │             │
//! └──────────────┴──────────┴──────────────────┴─────────────┘
//! ```
//!
//! Three properties the service layer relies on:
//!
//! * **Typed failure, never panic.** Truncation, an oversized length field,
//!   and checksum disagreement each produce [`LdpError::MalformedFrame`]
//!   with a message naming the violation.
//! * **Corruption is detected before interpretation.** The checksum covers
//!   the kind byte and the whole payload, so a bit-flipped frame is rejected
//!   here — payload decoders only ever see bytes the sender actually wrote.
//! * **Clean end-of-stream is not an error.** EOF *between* frames returns
//!   `Ok(None)`; EOF *inside* a frame is a truncation error, because the
//!   sender evidently meant to say more.
//!
//! A corrupted payload leaves the reader synchronized (the length field
//! already consumed the right number of bytes), so a server may count the
//! frame and keep reading. A corrupted *length* field destroys framing —
//! there is no way to know where the next frame starts — which is why the
//! oversize cap exists: it turns the most common desync symptom (an absurd
//! length) into an immediate typed error instead of an attempt to buffer
//! gigabytes.

use crate::error::{IoFault, LdpError, Result};
use std::io::{Read, Write};

/// Hard cap on the payload length a frame may declare, in bytes.
///
/// Far above any legitimate report (the largest schema in the test grid
/// encodes to well under a kilobyte) but small enough that a corrupted
/// length field fails fast instead of allocating unbounded memory.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 24;

/// Size of the fixed frame header: length, kind, checksum.
pub const FRAME_HEADER_BYTES: usize = 4 + 1 + 8;

/// FNV-1a checksum over the kind byte followed by the payload.
///
/// The same 64-bit FNV-1a the bench harness uses for estimate checksums:
/// cheap, dependency-free, and plenty to detect corruption (this is an
/// integrity check against accidents and fuzzing, not an authenticator).
pub fn frame_checksum(kind: u8, payload: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x1000_0000_01b3;
    let mut h = OFFSET ^ u64::from(kind);
    h = h.wrapping_mul(PRIME);
    for &b in payload {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

fn malformed(message: String) -> LdpError {
    LdpError::MalformedFrame { message }
}

/// Classifies an `std::io::Error` raised during frame `op` into the typed
/// transport errors.
///
/// * `TimedOut` / `WouldBlock` → [`LdpError::Timeout`] — the stream may
///   still be synchronized; the operation just did not complete in time.
/// * `ConnectionReset` / `ConnectionAborted` / `BrokenPipe` /
///   `NotConnected` / `UnexpectedEof` → [`LdpError::ConnectionLost`] — the
///   peer is gone and unacknowledged frames are in an unknown state.
/// * everything else → [`LdpError::MalformedFrame`] — framing cannot be
///   trusted past an unclassified I/O failure.
///
/// `Interrupted` never reaches this function: the frame read and write
/// loops retry it in place, which *is* its mapping.
pub fn io_error(op: &'static str, e: &std::io::Error) -> LdpError {
    use std::io::ErrorKind;
    match e.kind() {
        ErrorKind::TimedOut | ErrorKind::WouldBlock => LdpError::Timeout {
            op,
            cause: IoFault::from_io(e),
        },
        ErrorKind::ConnectionReset
        | ErrorKind::ConnectionAborted
        | ErrorKind::BrokenPipe
        | ErrorKind::NotConnected
        | ErrorKind::UnexpectedEof => LdpError::ConnectionLost {
            op,
            cause: IoFault::from_io(e),
        },
        _ => malformed(format!("frame {op} failed: {e}")),
    }
}

/// Encode one frame into a fresh byte vector.
///
/// Useful when building a stream in memory (tests, the in-process pipes in
/// `examples/report_service.rs`) or when the caller wants to hand a complete
/// frame to a transport in one write.
pub fn frame_to_vec(kind: u8, payload: &[u8]) -> Result<Vec<u8>> {
    if payload.len() > MAX_FRAME_PAYLOAD {
        return Err(malformed(format!(
            "refusing to write a {}-byte payload (cap {MAX_FRAME_PAYLOAD})",
            payload.len()
        )));
    }
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.push(kind);
    out.extend_from_slice(&frame_checksum(kind, payload).to_be_bytes());
    out.extend_from_slice(payload);
    Ok(out)
}

/// Write one frame to `w`.
///
/// Transport failures surface as typed errors via [`io_error`]: timeouts
/// as [`LdpError::Timeout`], peer loss as [`LdpError::ConnectionLost`],
/// anything unclassified as [`LdpError::MalformedFrame`] — the error type
/// stays `Clone + PartialEq`, which the rest of the crate relies on.
/// `Interrupted` is retried by `write_all` itself.
pub fn write_frame<W: Write + ?Sized>(w: &mut W, kind: u8, payload: &[u8]) -> Result<()> {
    let bytes = frame_to_vec(kind, payload)?;
    w.write_all(&bytes).map_err(|e| io_error("write", &e))
}

/// Outcome of reading one complete frame — see [`read_frame`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameRead {
    /// Checksum verified: the scratch buffer holds the payload the sender
    /// wrote, and `kind` is its kind byte.
    Valid {
        /// The frame's kind byte.
        kind: u8,
    },
    /// The frame's declared length consumed cleanly but the checksum
    /// disagrees with the content: the payload must be discarded, yet the
    /// reader is still positioned at the next frame boundary, so a server
    /// may count the corruption and keep reading.
    Corrupt {
        /// Checksum the frame header declared.
        declared: u64,
        /// Checksum computed over the received kind byte and payload.
        computed: u64,
    },
}

/// Read one frame from `r` into `payload`.
///
/// Returns `Ok(None)` on a clean end of stream (EOF exactly at a frame
/// boundary) and [`FrameRead::Corrupt`] on a checksum mismatch (frame
/// consumed, reader synchronized, payload poison). Every irregularity that
/// loses framing is a typed error: EOF inside a frame and a length above
/// [`MAX_FRAME_PAYLOAD`] are [`LdpError::MalformedFrame`], while I/O
/// failures classify through [`io_error`] (timeouts as
/// [`LdpError::Timeout`], peer loss as [`LdpError::ConnectionLost`],
/// anything else as [`LdpError::MalformedFrame`]) — after any of them the
/// stream cannot be trusted to contain further frame boundaries.
/// `payload` is reused as scratch
/// space so a serve loop reading millions of frames performs no per-frame
/// allocation once the buffer has grown to the stream's largest payload.
pub fn read_frame<R: Read + ?Sized>(r: &mut R, payload: &mut Vec<u8>) -> Result<Option<FrameRead>> {
    let mut header = [0u8; FRAME_HEADER_BYTES];
    match read_full(r, &mut header)? {
        0 => return Ok(None),
        n if n < FRAME_HEADER_BYTES => {
            return Err(malformed(format!(
                "truncated frame header: got {n} of {FRAME_HEADER_BYTES} bytes"
            )));
        }
        _ => {}
    }
    let len = u32::from_be_bytes([header[0], header[1], header[2], header[3]]) as usize;
    let kind = header[4];
    let declared = u64::from_be_bytes(header[5..13].try_into().expect("8-byte slice"));
    if len > MAX_FRAME_PAYLOAD {
        return Err(malformed(format!(
            "oversized frame: declared payload of {len} bytes exceeds the cap of \
             {MAX_FRAME_PAYLOAD}"
        )));
    }
    payload.clear();
    payload.resize(len, 0);
    let got = read_full(r, payload)?;
    if got < len {
        return Err(malformed(format!(
            "truncated frame payload: got {got} of {len} bytes"
        )));
    }
    let computed = frame_checksum(kind, payload);
    if computed != declared {
        return Ok(Some(FrameRead::Corrupt { declared, computed }));
    }
    Ok(Some(FrameRead::Valid { kind }))
}

/// Fill `buf` from `r`, returning how many bytes were read before EOF.
fn read_full<R: Read + ?Sized>(r: &mut R, buf: &mut [u8]) -> Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => break,
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(io_error("read", &e)),
        }
    }
    Ok(filled)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_a_frame() {
        let payload = b"twenty-three bytes of payload".to_vec();
        let bytes = frame_to_vec(7, &payload).unwrap();
        assert_eq!(bytes.len(), FRAME_HEADER_BYTES + payload.len());

        let mut reader = bytes.as_slice();
        let mut scratch = Vec::new();
        let kind = read_frame(&mut reader, &mut scratch).unwrap();
        assert_eq!(kind, Some(FrameRead::Valid { kind: 7 }));
        assert_eq!(scratch, payload);
        // Stream exhausted cleanly.
        assert_eq!(read_frame(&mut reader, &mut scratch).unwrap(), None);
    }

    #[test]
    fn round_trips_an_empty_payload() {
        let bytes = frame_to_vec(0, &[]).unwrap();
        let mut reader = bytes.as_slice();
        let mut scratch = vec![1, 2, 3];
        assert_eq!(
            read_frame(&mut reader, &mut scratch).unwrap(),
            Some(FrameRead::Valid { kind: 0 })
        );
        assert!(scratch.is_empty());
    }

    #[test]
    fn every_truncation_point_is_a_typed_error() {
        let bytes = frame_to_vec(3, b"payload").unwrap();
        for cut in 1..bytes.len() {
            let mut reader = &bytes[..cut];
            let mut scratch = Vec::new();
            let err = read_frame(&mut reader, &mut scratch).unwrap_err();
            assert!(
                matches!(err, LdpError::MalformedFrame { .. }),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let bytes = frame_to_vec(3, b"sensitive report bytes").unwrap();
        for bit in 0..bytes.len() * 8 {
            let mut corrupt = bytes.clone();
            corrupt[bit / 8] ^= 1 << (bit % 8);
            let mut reader = corrupt.as_slice();
            let mut scratch = Vec::new();
            let got = read_frame(&mut reader, &mut scratch);
            // A flip is never mistaken for a valid frame: either the
            // checksum catches it (kind/checksum/payload flips) or the
            // length field no longer matches the stream (typed error).
            assert!(
                !matches!(got, Ok(Some(FrameRead::Valid { .. }))),
                "flip of bit {bit} gave {got:?}"
            );
        }
    }

    #[test]
    fn payload_corruption_keeps_the_reader_synchronized() {
        let mut stream = frame_to_vec(1, b"first payload").unwrap();
        let tail = frame_to_vec(2, b"second payload").unwrap();
        let flip_at = FRAME_HEADER_BYTES + 3;
        stream[flip_at] ^= 0x40;
        stream.extend_from_slice(&tail);

        let mut reader = stream.as_slice();
        let mut scratch = Vec::new();
        assert!(matches!(
            read_frame(&mut reader, &mut scratch).unwrap(),
            Some(FrameRead::Corrupt { .. })
        ));
        // The corrupt frame consumed exactly its declared bytes, so the
        // next frame still parses.
        assert_eq!(
            read_frame(&mut reader, &mut scratch).unwrap(),
            Some(FrameRead::Valid { kind: 2 })
        );
        assert_eq!(scratch, b"second payload");
        assert_eq!(read_frame(&mut reader, &mut scratch).unwrap(), None);
    }

    #[test]
    fn oversized_length_is_rejected_without_reading_the_payload() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&u32::MAX.to_be_bytes());
        bytes.push(1);
        bytes.extend_from_slice(&0u64.to_be_bytes());
        let mut reader = bytes.as_slice();
        let mut scratch = Vec::new();
        let err = read_frame(&mut reader, &mut scratch).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("oversized"), "{msg}");
    }

    #[test]
    fn refuses_to_write_an_oversized_payload() {
        let payload = vec![0u8; MAX_FRAME_PAYLOAD + 1];
        assert!(matches!(
            frame_to_vec(0, &payload),
            Err(LdpError::MalformedFrame { .. })
        ));
    }

    #[test]
    fn checksum_covers_the_kind_byte() {
        let a = frame_checksum(1, b"same payload");
        let b = frame_checksum(2, b"same payload");
        assert_ne!(a, b);
    }

    /// A reader scripted to fail with one io::ErrorKind per call (after
    /// optionally yielding a few real bytes first).
    struct FailingReader {
        data: Vec<u8>,
        pos: usize,
        kinds: Vec<std::io::ErrorKind>,
    }

    impl Read for FailingReader {
        fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
            if self.pos < self.data.len() {
                let n = (self.data.len() - self.pos).min(out.len());
                out[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
                self.pos += n;
                return Ok(n);
            }
            match self.kinds.pop() {
                Some(kind) => Err(std::io::Error::new(kind, "scripted fault")),
                None => Ok(0),
            }
        }
    }

    #[test]
    fn timed_out_and_would_block_map_to_typed_timeout() {
        for kind in [std::io::ErrorKind::TimedOut, std::io::ErrorKind::WouldBlock] {
            let mut reader = FailingReader {
                data: Vec::new(),
                pos: 0,
                kinds: vec![kind],
            };
            let mut scratch = Vec::new();
            let err = read_frame(&mut reader, &mut scratch).unwrap_err();
            assert!(
                matches!(err, LdpError::Timeout { op: "read", .. }),
                "{kind:?} gave {err:?}"
            );
        }
    }

    #[test]
    fn peer_loss_kinds_map_to_connection_lost() {
        for kind in [
            std::io::ErrorKind::ConnectionReset,
            std::io::ErrorKind::ConnectionAborted,
            std::io::ErrorKind::BrokenPipe,
            std::io::ErrorKind::UnexpectedEof,
        ] {
            let mut reader = FailingReader {
                data: frame_to_vec(1, b"partial").unwrap()[..6].to_vec(),
                pos: 0,
                kinds: vec![kind],
            };
            let mut scratch = Vec::new();
            let err = read_frame(&mut reader, &mut scratch).unwrap_err();
            assert!(
                matches!(err, LdpError::ConnectionLost { op: "read", .. }),
                "{kind:?} gave {err:?}"
            );
        }
    }

    #[test]
    fn interrupted_reads_are_retried_to_a_valid_frame() {
        // Interrupted between every delivered byte: the read loop absorbs
        // them all and the frame still parses.
        struct Interrupting {
            data: Vec<u8>,
            pos: usize,
            interrupt_next: bool,
        }
        impl Read for Interrupting {
            fn read(&mut self, out: &mut [u8]) -> std::io::Result<usize> {
                if self.interrupt_next {
                    self.interrupt_next = false;
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::Interrupted,
                        "signal",
                    ));
                }
                self.interrupt_next = true;
                if self.pos == self.data.len() {
                    return Ok(0);
                }
                out[0] = self.data[self.pos];
                self.pos += 1;
                Ok(1)
            }
        }
        let mut reader = Interrupting {
            data: frame_to_vec(9, b"survives signals").unwrap(),
            pos: 0,
            interrupt_next: true,
        };
        let mut scratch = Vec::new();
        assert_eq!(
            read_frame(&mut reader, &mut scratch).unwrap(),
            Some(FrameRead::Valid { kind: 9 })
        );
        assert_eq!(scratch, b"survives signals");
    }

    #[test]
    fn write_side_peer_loss_is_typed() {
        struct BrokenWriter;
        impl Write for BrokenWriter {
            fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::new(
                    std::io::ErrorKind::BrokenPipe,
                    "peer closed",
                ))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let err = write_frame(&mut BrokenWriter, 1, b"doomed").unwrap_err();
        assert!(
            matches!(err, LdpError::ConnectionLost { op: "write", .. }),
            "{err:?}"
        );
    }

    #[test]
    fn back_to_back_frames_parse_in_order() {
        let mut stream = Vec::new();
        for kind in 0..5u8 {
            let payload = vec![kind; kind as usize * 3];
            stream.extend_from_slice(&frame_to_vec(kind, &payload).unwrap());
        }
        let mut reader = stream.as_slice();
        let mut scratch = Vec::new();
        for kind in 0..5u8 {
            assert_eq!(
                read_frame(&mut reader, &mut scratch).unwrap(),
                Some(FrameRead::Valid { kind })
            );
            assert_eq!(scratch, vec![kind; kind as usize * 3]);
        }
        assert_eq!(read_frame(&mut reader, &mut scratch).unwrap(), None);
    }
}
