//! The budget-splitting baseline: ε/d per attribute via sequential
//! composition (the "straightforward solution" of §IV's introduction).

use crate::budget::Epsilon;
use crate::categorical::AnyOracle;
use crate::error::{LdpError, Result};
use crate::kinds::{NumericKind, OracleKind};
use crate::mechanism::FrequencyOracle;
use crate::multidim::{AttrReport, AttrSpec, AttrValue};
use crate::numeric::AnyNumeric;
use rand::RngCore;

/// A dense perturbed tuple: one report per attribute.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct DenseReport {
    /// One report per attribute, in schema order.
    pub entries: Vec<AttrReport>,
}

impl DenseReport {
    /// Extracts the numeric values (panics on categorical entries), for
    /// numeric-only schemas.
    pub fn to_numeric(&self) -> Vec<f64> {
        self.entries
            .iter()
            .map(|r| match r {
                AttrReport::Numeric(x) => *x,
                AttrReport::Categorical(_) => {
                    panic!("to_numeric on a report with categorical entries")
                }
            })
            .collect()
    }
}

/// Perturbs every attribute of a tuple independently with budget `ε/d`.
///
/// By sequential composition the full report is ε-LDP, but the per-attribute
/// noise scales super-linearly in `d` (the §IV introduction computes
/// `O(d√(log d)/(ε√n))` for PM under splitting) — this is the baseline the
/// paper's Algorithm 4 beats, and the configuration used for the Laplace /
/// SCDF / Staircase / OUE columns of Figure 4.
#[derive(Clone)]
pub struct CompositionPerturber {
    epsilon: Epsilon,
    specs: Vec<AttrSpec>,
    /// Unboxed ([`AnyNumeric`]/[`AnyOracle`]) so the perturber is clonable
    /// and the per-attribute dispatch is a match, not a vtable.
    numeric: Option<AnyNumeric>,
    oracles: Vec<Option<AnyOracle>>,
}

impl CompositionPerturber {
    /// Builds the baseline perturber: every attribute gets `ε/d`.
    ///
    /// # Errors
    /// Fails on an empty schema or invalid categorical domains.
    pub fn new(
        epsilon: Epsilon,
        specs: Vec<AttrSpec>,
        numeric_kind: NumericKind,
        oracle_kind: OracleKind,
    ) -> Result<Self> {
        let d = specs.len();
        if d == 0 {
            return Err(LdpError::InvalidParameter {
                name: "specs",
                message: "schema must contain at least one attribute".into(),
            });
        }
        let per_attr = epsilon.split(d)?;
        let any_numeric = specs.iter().any(AttrSpec::is_numeric);
        let numeric = any_numeric.then(|| AnyNumeric::build(numeric_kind, per_attr));
        let oracles = specs
            .iter()
            .map(|spec| match spec {
                AttrSpec::Numeric => Ok(None),
                AttrSpec::Categorical { k } => {
                    AnyOracle::build(oracle_kind, per_attr, *k).map(Some)
                }
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(CompositionPerturber {
            epsilon,
            specs,
            numeric,
            oracles,
        })
    }

    /// Total privacy budget.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// Number of attributes.
    pub fn d(&self) -> usize {
        self.specs.len()
    }

    /// The per-attribute budget `ε/d`.
    pub fn per_attribute_epsilon(&self) -> Epsilon {
        self.epsilon
            .split(self.specs.len())
            .expect("d ≥ 1 by construction")
    }

    /// The frequency oracle assigned to attribute `j`, if categorical.
    pub fn oracle(&self, j: usize) -> Option<&dyn FrequencyOracle> {
        self.any_oracle(j).map(AnyOracle::as_dyn)
    }

    /// The unboxed oracle for attribute `j`, if categorical.
    pub fn any_oracle(&self, j: usize) -> Option<&AnyOracle> {
        self.oracles.get(j).and_then(Option::as_ref)
    }

    /// The shared ε/d numeric mechanism, if the schema has numeric
    /// attributes.
    pub fn any_numeric(&self) -> Option<&AnyNumeric> {
        self.numeric.as_ref()
    }

    /// Perturbs one user tuple, touching every attribute.
    ///
    /// # Errors
    /// Rejects tuples that do not match the schema.
    pub fn perturb<R: crate::rng::DrawSource + ?Sized>(
        &self,
        tuple: &[AttrValue],
        rng: &mut R,
    ) -> Result<DenseReport> {
        let d = self.specs.len();
        if tuple.len() != d {
            return Err(LdpError::DimensionMismatch {
                expected: d,
                actual: tuple.len(),
            });
        }
        for (i, (value, spec)) in tuple.iter().zip(&self.specs).enumerate() {
            value.validate(spec, i)?;
        }
        let entries = tuple
            .iter()
            .enumerate()
            .map(|(j, value)| match value {
                AttrValue::Numeric(x) => {
                    let mech = self
                        .numeric
                        .as_ref()
                        .expect("schema has numeric attributes");
                    Ok(AttrReport::Numeric(mech.perturb(*x, &mut *rng)?))
                }
                AttrValue::Categorical(v) => {
                    let oracle = self.oracles[j]
                        .as_ref()
                        .expect("schema marks attribute categorical");
                    let mut out = crate::mechanism::CategoricalReport::Value(0);
                    oracle.perturb_into(*v, &mut *rng, &mut out)?;
                    Ok(AttrReport::Categorical(out))
                }
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(DenseReport { entries })
    }

    /// Convenience for numeric-only schemas.
    ///
    /// # Errors
    /// As [`CompositionPerturber::perturb`].
    pub fn perturb_numeric(&self, t: &[f64], rng: &mut dyn RngCore) -> Result<Vec<f64>> {
        let tuple: Vec<AttrValue> = t.iter().map(|&x| AttrValue::Numeric(x)).collect();
        Ok(self.perturb(&tuple, rng)?.to_numeric())
    }
}

impl std::fmt::Debug for CompositionPerturber {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompositionPerturber")
            .field("epsilon", &self.epsilon)
            .field("d", &self.specs.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn splits_budget_evenly() {
        let p = CompositionPerturber::new(
            Epsilon::new(4.0).unwrap(),
            vec![AttrSpec::Numeric, AttrSpec::Categorical { k: 3 }],
            NumericKind::Laplace,
            OracleKind::Oue,
        )
        .unwrap();
        assert_eq!(p.per_attribute_epsilon().value(), 2.0);
        assert_eq!(p.oracle(1).unwrap().epsilon().value(), 2.0);
        assert_eq!(p.d(), 2);
    }

    #[test]
    fn unbiased_means_under_splitting() {
        let d = 4;
        let p = CompositionPerturber::new(
            Epsilon::new(4.0).unwrap(),
            vec![AttrSpec::Numeric; d],
            NumericKind::Piecewise,
            OracleKind::Oue,
        )
        .unwrap();
        let mut rng = seeded_rng(140);
        let t = [0.5, -0.5, 0.0, 0.9];
        let n = 150_000;
        let mut sums = vec![0.0; d];
        for _ in 0..n {
            for (j, x) in p
                .perturb_numeric(&t, &mut rng)
                .unwrap()
                .into_iter()
                .enumerate()
            {
                sums[j] += x;
            }
        }
        for j in 0..d {
            let mean = sums[j] / n as f64;
            assert!((mean - t[j]).abs() < 0.05, "j={j}: {mean}");
        }
    }

    #[test]
    fn splitting_noise_exceeds_sampling_noise() {
        // The whole point of Algorithm 4: with d = 8 attributes and ε = 1,
        // the splitting baseline perturbs each attribute at ε/8 while the
        // sampling wrapper spends the full ε on one attribute. Compare the
        // empirical per-attribute MSE of the two estimators.
        use crate::multidim::SamplingPerturber;
        let d = 8;
        let eps = Epsilon::new(1.0).unwrap();
        let split = CompositionPerturber::new(
            eps,
            vec![AttrSpec::Numeric; d],
            NumericKind::Piecewise,
            OracleKind::Oue,
        )
        .unwrap();
        let sampled = SamplingPerturber::new(
            eps,
            vec![AttrSpec::Numeric; d],
            NumericKind::Piecewise,
            OracleKind::Oue,
        )
        .unwrap();
        let mut rng = seeded_rng(141);
        let t = vec![0.25; d];
        let n = 40_000usize;
        let mut mse_split = 0.0;
        let mut mse_sampled = 0.0;
        let mut acc_split = vec![0.0; d];
        let mut acc_sampled = vec![0.0; d];
        for _ in 0..n {
            for (j, x) in split
                .perturb_numeric(&t, &mut rng)
                .unwrap()
                .into_iter()
                .enumerate()
            {
                acc_split[j] += x;
            }
            for (j, x) in sampled
                .perturb_numeric(&t, &mut rng)
                .unwrap()
                .into_iter()
                .enumerate()
            {
                acc_sampled[j] += x;
            }
        }
        for j in 0..d {
            mse_split += (acc_split[j] / n as f64 - t[j]).powi(2);
            mse_sampled += (acc_sampled[j] / n as f64 - t[j]).powi(2);
        }
        assert!(
            mse_sampled < mse_split,
            "sampling MSE {mse_sampled} should beat splitting MSE {mse_split}"
        );
    }

    #[test]
    fn validates_input() {
        let p = CompositionPerturber::new(
            Epsilon::new(1.0).unwrap(),
            vec![AttrSpec::Numeric],
            NumericKind::Laplace,
            OracleKind::Oue,
        )
        .unwrap();
        let mut rng = seeded_rng(142);
        assert!(p.perturb(&[], &mut rng).is_err());
        assert!(p.perturb(&[AttrValue::Numeric(7.0)], &mut rng).is_err());
        assert!(CompositionPerturber::new(
            Epsilon::new(1.0).unwrap(),
            vec![],
            NumericKind::Laplace,
            OracleKind::Oue
        )
        .is_err());
    }
}
