//! The budget-splitting baseline: ε/d per attribute via sequential
//! composition (the "straightforward solution" of §IV's introduction).

use crate::budget::Epsilon;
use crate::categorical::AnyOracle;
use crate::error::{LdpError, Result};
use crate::kinds::{NumericKind, OracleKind};
use crate::mechanism::{CategoricalReport, FrequencyOracle};
use crate::multidim::{AttrReport, AttrSpec, AttrValue, CatReportView};
use crate::numeric::AnyNumeric;
use rand::RngCore;

/// A dense perturbed tuple: one report per attribute.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct DenseReport {
    /// One report per attribute, in schema order.
    pub entries: Vec<AttrReport>,
}

impl DenseReport {
    /// Extracts the numeric values (panics on categorical entries), for
    /// numeric-only schemas.
    pub fn to_numeric(&self) -> Vec<f64> {
        self.entries
            .iter()
            .map(|r| match r {
                AttrReport::Numeric(x) => *x,
                AttrReport::Categorical(_) => {
                    panic!("to_numeric on a report with categorical entries")
                }
            })
            .collect()
    }
}

/// Perturbs every attribute of a tuple independently with budget `ε/d`.
///
/// By sequential composition the full report is ε-LDP, but the per-attribute
/// noise scales super-linearly in `d` (the §IV introduction computes
/// `O(d√(log d)/(ε√n))` for PM under splitting) — this is the baseline the
/// paper's Algorithm 4 beats, and the configuration used for the Laplace /
/// SCDF / Staircase / OUE columns of Figure 4.
#[derive(Clone)]
pub struct CompositionPerturber {
    epsilon: Epsilon,
    specs: Vec<AttrSpec>,
    /// Unboxed ([`AnyNumeric`]/[`AnyOracle`]) so the perturber is clonable
    /// and the per-attribute dispatch is a match, not a vtable.
    numeric: Option<AnyNumeric>,
    oracles: Vec<Option<AnyOracle>>,
}

impl CompositionPerturber {
    /// Builds the baseline perturber: every attribute gets `ε/d`.
    ///
    /// # Errors
    /// Fails on an empty schema or invalid categorical domains.
    pub fn new(
        epsilon: Epsilon,
        specs: Vec<AttrSpec>,
        numeric_kind: NumericKind,
        oracle_kind: OracleKind,
    ) -> Result<Self> {
        let d = specs.len();
        if d == 0 {
            return Err(LdpError::InvalidParameter {
                name: "specs",
                message: "schema must contain at least one attribute".into(),
            });
        }
        let per_attr = epsilon.split(d)?;
        let any_numeric = specs.iter().any(AttrSpec::is_numeric);
        let numeric = any_numeric.then(|| AnyNumeric::build(numeric_kind, per_attr));
        let oracles = specs
            .iter()
            .map(|spec| match spec {
                AttrSpec::Numeric => Ok(None),
                AttrSpec::Categorical { k } => {
                    AnyOracle::build(oracle_kind, per_attr, *k).map(Some)
                }
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(CompositionPerturber {
            epsilon,
            specs,
            numeric,
            oracles,
        })
    }

    /// Total privacy budget.
    pub fn epsilon(&self) -> Epsilon {
        self.epsilon
    }

    /// Number of attributes.
    pub fn d(&self) -> usize {
        self.specs.len()
    }

    /// The per-attribute budget `ε/d`.
    pub fn per_attribute_epsilon(&self) -> Epsilon {
        self.epsilon
            .split(self.specs.len())
            .expect("d ≥ 1 by construction")
    }

    /// The frequency oracle assigned to attribute `j`, if categorical.
    pub fn oracle(&self, j: usize) -> Option<&dyn FrequencyOracle> {
        self.any_oracle(j).map(AnyOracle::as_dyn)
    }

    /// The unboxed oracle for attribute `j`, if categorical.
    pub fn any_oracle(&self, j: usize) -> Option<&AnyOracle> {
        self.oracles.get(j).and_then(Option::as_ref)
    }

    /// The shared ε/d numeric mechanism, if the schema has numeric
    /// attributes.
    pub fn any_numeric(&self) -> Option<&AnyNumeric> {
        self.numeric.as_ref()
    }

    /// Perturbs one user tuple, touching every attribute.
    ///
    /// # Errors
    /// Rejects tuples that do not match the schema.
    pub fn perturb<R: crate::rng::DrawSource + ?Sized>(
        &self,
        tuple: &[AttrValue],
        rng: &mut R,
    ) -> Result<DenseReport> {
        let d = self.specs.len();
        if tuple.len() != d {
            return Err(LdpError::DimensionMismatch {
                expected: d,
                actual: tuple.len(),
            });
        }
        for (i, (value, spec)) in tuple.iter().zip(&self.specs).enumerate() {
            value.validate(spec, i)?;
        }
        let entries = tuple
            .iter()
            .enumerate()
            .map(|(j, value)| match value {
                AttrValue::Numeric(x) => {
                    let mech = self
                        .numeric
                        .as_ref()
                        .expect("schema has numeric attributes");
                    Ok(AttrReport::Numeric(mech.perturb(*x, &mut *rng)?))
                }
                AttrValue::Categorical(v) => {
                    let oracle = self.oracles[j]
                        .as_ref()
                        .expect("schema marks attribute categorical");
                    let mut out = crate::mechanism::CategoricalReport::Value(0);
                    oracle.perturb_into(*v, &mut *rng, &mut out)?;
                    Ok(AttrReport::Categorical(out))
                }
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(DenseReport { entries })
    }

    /// A scratch buffer sized for this perturber, enabling the
    /// zero-allocation [`CompositionPerturber::perturb_wordwise`] loop
    /// (recycled bit vectors for the unary oracles).
    pub fn scratch(&self) -> CompositionScratch {
        CompositionScratch {
            pool: self
                .specs
                .iter()
                .map(|spec| match spec {
                    AttrSpec::Numeric => None,
                    AttrSpec::Categorical { .. } => Some(CategoricalReport::Value(0)),
                })
                .collect(),
        }
    }

    /// Fused perturb-and-count kernel, mirroring
    /// [`crate::multidim::SamplingPerturber::perturb_wordwise`] for the
    /// composition baseline: every attribute is perturbed at its ε/d split,
    /// numeric draws land in `numeric_out` (one per numeric attribute, in
    /// schema order — exactly the `numeric` vector of a dense composition
    /// report), and each categorical attribute is observed once as a
    /// [`CatReportView`] instead of materializing a report entry.
    ///
    /// For GRR this is the direct-report fast path: no bit vector — no
    /// report object of any kind — exists anywhere between the Bernoulli
    /// coin and the aggregator's counter increment, so the per-attribute
    /// cost approaches a bare rng draw plus one add. Unary oracles fill a
    /// scratch-owned bit vector and hand over its backing words for
    /// word-histogram absorption.
    ///
    /// Draw-for-draw identical to [`CompositionPerturber::perturb`] under
    /// the same rng state on valid tuples, so the fused and
    /// report-materializing paths yield bit-identical aggregates (pinned by
    /// tests and the per-cell bench asserts). Validation is fused into the
    /// dispatch — the type match routes each attribute and the mechanism /
    /// oracle checks its own domain — so an invalid tuple is still
    /// rejected, but may have consumed draws for the attributes preceding
    /// it (the caller discards the aggregate on error either way).
    ///
    /// # Errors
    /// As [`CompositionPerturber::perturb`].
    #[inline]
    pub fn perturb_wordwise<R: crate::rng::DrawSource + ?Sized, F: FnMut(CatReportView)>(
        &self,
        tuple: &[AttrValue],
        rng: &mut R,
        numeric_out: &mut Vec<f64>,
        scratch: &mut CompositionScratch,
        mut on_cat: F,
    ) -> Result<()> {
        let d = self.specs.len();
        if tuple.len() != d {
            return Err(LdpError::DimensionMismatch {
                expected: d,
                actual: tuple.len(),
            });
        }
        debug_assert_eq!(scratch.pool.len(), d, "scratch built for another schema");
        numeric_out.clear();
        let mech = self.numeric.as_ref();
        for (j, (value, spec)) in tuple.iter().zip(&self.specs).enumerate() {
            match (value, spec) {
                (AttrValue::Numeric(x), AttrSpec::Numeric) => {
                    // `perturb` validates the unit interval itself.
                    let mech = mech.expect("schema has numeric attributes");
                    numeric_out.push(mech.perturb(*x, &mut *rng)?);
                }
                (AttrValue::Categorical(v), AttrSpec::Categorical { .. }) => {
                    let oracle = self.oracles[j]
                        .as_ref()
                        .expect("schema marks attribute categorical");
                    let attr = j as u32;
                    if let Some(grr) = oracle.as_grr() {
                        // `sample` validates the category itself.
                        let category = grr.sample(*v, &mut *rng)?;
                        on_cat(CatReportView::Direct { attr, category });
                    } else {
                        // Out of line so the much larger unary fill
                        // machinery never bloats this loop's codegen (the
                        // direct fast path lives or dies on staying lean).
                        absorb_unary(
                            oracle,
                            *v,
                            &mut *rng,
                            &mut scratch.pool[j],
                            attr,
                            &mut on_cat,
                        )?;
                    }
                }
                _ => {
                    return Err(LdpError::InvalidParameter {
                        name: "tuple",
                        message: format!("attribute {j} does not match its schema type"),
                    })
                }
            }
        }
        Ok(())
    }

    /// Convenience for numeric-only schemas.
    ///
    /// # Errors
    /// As [`CompositionPerturber::perturb`].
    pub fn perturb_numeric(&self, t: &[f64], rng: &mut dyn RngCore) -> Result<Vec<f64>> {
        let tuple: Vec<AttrValue> = t.iter().map(|&x| AttrValue::Numeric(x)).collect();
        Ok(self.perturb(&tuple, rng)?.to_numeric())
    }
}

/// The unary half of the word-level kernels: fill the pooled bit vector
/// and hand its backing words to the observer. Deliberately `inline(never)`
/// — the fill machinery is an order of magnitude bigger than the direct
/// fast path, and keeping it out of line keeps the GRR loop's registers
/// clean without measurably taxing the (already fill-dominated) unary
/// protocols.
#[inline(never)]
pub(crate) fn absorb_unary<R: crate::rng::DrawSource + ?Sized, F: FnMut(CatReportView)>(
    oracle: &AnyOracle,
    value: u32,
    rng: &mut R,
    slot: &mut Option<CategoricalReport>,
    attr: u32,
    on_cat: &mut F,
) -> Result<()> {
    let cat = slot.get_or_insert(CategoricalReport::Value(0));
    oracle.perturb_into(value, rng, cat)?;
    let CategoricalReport::Bits(bits) = &*cat else {
        unreachable!("unary oracles produce bit reports");
    };
    on_cat(CatReportView::Unary {
        attr,
        words: bits.words(),
    });
    Ok(())
}

/// Caller-owned scratch for [`CompositionPerturber::perturb_wordwise`]: a
/// per-attribute pool of categorical payload buffers (bit vectors for the
/// unary oracles) recycled across users.
#[derive(Debug, Clone)]
pub struct CompositionScratch {
    pool: Vec<Option<CategoricalReport>>,
}

impl std::fmt::Debug for CompositionPerturber {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompositionPerturber")
            .field("epsilon", &self.epsilon)
            .field("d", &self.specs.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded_rng;

    #[test]
    fn splits_budget_evenly() {
        let p = CompositionPerturber::new(
            Epsilon::new(4.0).unwrap(),
            vec![AttrSpec::Numeric, AttrSpec::Categorical { k: 3 }],
            NumericKind::Laplace,
            OracleKind::Oue,
        )
        .unwrap();
        assert_eq!(p.per_attribute_epsilon().value(), 2.0);
        assert_eq!(p.oracle(1).unwrap().epsilon().value(), 2.0);
        assert_eq!(p.d(), 2);
    }

    #[test]
    fn unbiased_means_under_splitting() {
        let d = 4;
        let p = CompositionPerturber::new(
            Epsilon::new(4.0).unwrap(),
            vec![AttrSpec::Numeric; d],
            NumericKind::Piecewise,
            OracleKind::Oue,
        )
        .unwrap();
        let mut rng = seeded_rng(140);
        let t = [0.5, -0.5, 0.0, 0.9];
        let n = 150_000;
        let mut sums = vec![0.0; d];
        for _ in 0..n {
            for (j, x) in p
                .perturb_numeric(&t, &mut rng)
                .unwrap()
                .into_iter()
                .enumerate()
            {
                sums[j] += x;
            }
        }
        for j in 0..d {
            let mean = sums[j] / n as f64;
            assert!((mean - t[j]).abs() < 0.05, "j={j}: {mean}");
        }
    }

    #[test]
    fn splitting_noise_exceeds_sampling_noise() {
        // The whole point of Algorithm 4: with d = 8 attributes and ε = 1,
        // the splitting baseline perturbs each attribute at ε/8 while the
        // sampling wrapper spends the full ε on one attribute. Compare the
        // empirical per-attribute MSE of the two estimators.
        use crate::multidim::SamplingPerturber;
        let d = 8;
        let eps = Epsilon::new(1.0).unwrap();
        let split = CompositionPerturber::new(
            eps,
            vec![AttrSpec::Numeric; d],
            NumericKind::Piecewise,
            OracleKind::Oue,
        )
        .unwrap();
        let sampled = SamplingPerturber::new(
            eps,
            vec![AttrSpec::Numeric; d],
            NumericKind::Piecewise,
            OracleKind::Oue,
        )
        .unwrap();
        let mut rng = seeded_rng(141);
        let t = vec![0.25; d];
        let n = 40_000usize;
        let mut mse_split = 0.0;
        let mut mse_sampled = 0.0;
        let mut acc_split = vec![0.0; d];
        let mut acc_sampled = vec![0.0; d];
        for _ in 0..n {
            for (j, x) in split
                .perturb_numeric(&t, &mut rng)
                .unwrap()
                .into_iter()
                .enumerate()
            {
                acc_split[j] += x;
            }
            for (j, x) in sampled
                .perturb_numeric(&t, &mut rng)
                .unwrap()
                .into_iter()
                .enumerate()
            {
                acc_sampled[j] += x;
            }
        }
        for j in 0..d {
            mse_split += (acc_split[j] / n as f64 - t[j]).powi(2);
            mse_sampled += (acc_sampled[j] / n as f64 - t[j]).powi(2);
        }
        assert!(
            mse_sampled < mse_split,
            "sampling MSE {mse_sampled} should beat splitting MSE {mse_split}"
        );
    }

    #[test]
    fn perturb_wordwise_matches_perturb_draw_for_draw() {
        // The fused kernel is the same computation as the dense report path:
        // identical numeric draws, and each categorical view exactly the
        // report entry perturb() would have produced.
        let specs = vec![
            AttrSpec::Numeric,
            AttrSpec::Categorical { k: 70 },
            AttrSpec::Categorical { k: 4 },
            AttrSpec::Numeric,
        ];
        let tuple = vec![
            AttrValue::Numeric(0.4),
            AttrValue::Categorical(69),
            AttrValue::Categorical(0),
            AttrValue::Numeric(-0.2),
        ];
        for oracle in [OracleKind::Oue, OracleKind::Sue, OracleKind::Grr] {
            let p = CompositionPerturber::new(
                Epsilon::new(3.0).unwrap(),
                specs.clone(),
                NumericKind::Laplace,
                oracle,
            )
            .unwrap();
            let mut rng_a = seeded_rng(333);
            let mut rng_b = seeded_rng(333);
            let mut numeric_out = Vec::new();
            let mut scratch = p.scratch();
            for round in 0..200 {
                let dense = p.perturb(&tuple, &mut rng_a).unwrap();
                let mut views: Vec<(u32, Vec<u64>)> = Vec::new();
                p.perturb_wordwise(&tuple, &mut rng_b, &mut numeric_out, &mut scratch, |view| {
                    views.push(match view {
                        crate::multidim::CatReportView::Unary { attr, words } => {
                            (attr, words.to_vec())
                        }
                        crate::multidim::CatReportView::Direct { attr, category } => {
                            (attr, vec![u64::from(category)])
                        }
                    })
                })
                .unwrap();
                let mut expected_numeric = Vec::new();
                let mut expected_views: Vec<(u32, Vec<u64>)> = Vec::new();
                for (j, rep) in dense.entries.iter().enumerate() {
                    match rep {
                        AttrReport::Numeric(x) => expected_numeric.push(*x),
                        AttrReport::Categorical(crate::mechanism::CategoricalReport::Bits(b)) => {
                            expected_views.push((j as u32, b.words().to_vec()));
                        }
                        AttrReport::Categorical(crate::mechanism::CategoricalReport::Value(x)) => {
                            expected_views.push((j as u32, vec![u64::from(*x)]));
                        }
                    }
                }
                assert_eq!(numeric_out, expected_numeric, "{oracle:?} round {round}");
                assert_eq!(views, expected_views, "{oracle:?} round {round}");
            }
        }
    }

    #[test]
    fn validates_input() {
        let p = CompositionPerturber::new(
            Epsilon::new(1.0).unwrap(),
            vec![AttrSpec::Numeric],
            NumericKind::Laplace,
            OracleKind::Oue,
        )
        .unwrap();
        let mut rng = seeded_rng(142);
        assert!(p.perturb(&[], &mut rng).is_err());
        assert!(p.perturb(&[AttrValue::Numeric(7.0)], &mut rng).is_err());
        assert!(CompositionPerturber::new(
            Epsilon::new(1.0).unwrap(),
            vec![],
            NumericKind::Laplace,
            OracleKind::Oue
        )
        .is_err());
    }
}
